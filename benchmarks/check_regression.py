#!/usr/bin/env python
"""Throughput-regression gate against the committed baseline.

Re-runs the decoder speed benchmark and compares its headline
``samples_per_second`` to the value recorded in
``benchmarks/BENCH_decoder.json``.  A drop of more than 20% fails the
process with a non-zero exit code, so CI catches changes that slow the
decoder down without anyone staring at benchmark tables::

    PYTHONPATH=src python benchmarks/check_regression.py
    PYTHONPATH=src python benchmarks/check_regression.py --tolerance 0.3
    PYTHONPATH=src python benchmarks/check_regression.py --candidate out.json

The 20% default is deliberately loose: shared CI runners jitter by
±10% run to run, and the gate exists to catch real regressions (2x
slowdowns from an accidental O(n^2) path), not 5% noise.  Ratcheting
the baseline downward is a deliberate act — regenerate the JSON with
``run_bench.py`` and commit it alongside the change that explains it.

Faster-than-baseline runs never fail; they just suggest refreshing the
baseline.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent
BASELINE = BENCH_DIR / "BENCH_decoder.json"
#: The benchmark whose samples_per_second is the headline number.
HEADLINE = "test_decode_speed_16_tags"
DEFAULT_TOLERANCE = 0.20


def _headline_rate(benchmarks: list) -> float:
    for bench in benchmarks:
        if bench.get("name") == HEADLINE and \
                bench.get("samples_per_second"):
            return float(bench["samples_per_second"])
    raise SystemExit(
        f"no samples_per_second recorded for {HEADLINE!r}")


def load_baseline(path: Path) -> float:
    if not path.exists():
        raise SystemExit(f"baseline {path} not found — run "
                         f"benchmarks/run_bench.py first")
    return _headline_rate(json.loads(path.read_text())["benchmarks"])


def measure_candidate(candidate: Path | None) -> float:
    """Headline rate of the candidate: a saved export or a fresh run."""
    if candidate is not None:
        payload = json.loads(candidate.read_text())
        # Accept either our summary format or pytest-benchmark's raw
        # export (whose entries keep extra_info nested).
        benches = payload.get("benchmarks", [])
        for bench in benches:
            extra = bench.get("extra_info")
            if extra and "samples_per_second" in extra:
                bench.setdefault("samples_per_second",
                                 extra["samples_per_second"])
        return _headline_rate(benches)
    with tempfile.TemporaryDirectory() as tmp:
        json_path = Path(tmp) / "candidate.json"
        cmd = [sys.executable, "-m", "pytest",
               str(BENCH_DIR / "test_decoder_speed.py"), "-q",
               f"--benchmark-json={json_path}"]
        completed = subprocess.run(cmd, cwd=REPO_ROOT)
        if completed.returncode != 0:
            raise SystemExit("candidate benchmark run failed with "
                             f"exit code {completed.returncode}")
        payload = json.loads(json_path.read_text())
    return measure_candidate_from_raw(payload)


def measure_candidate_from_raw(payload: dict) -> float:
    for bench in payload.get("benchmarks", []):
        extra = bench.get("extra_info", {})
        if bench.get("name") == HEADLINE and \
                "samples_per_second" in extra:
            return float(extra["samples_per_second"])
    raise SystemExit(
        f"benchmark export carries no samples_per_second for "
        f"{HEADLINE!r}")


def main(argv: list | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when decoder throughput regresses past the "
                    "tolerance.")
    parser.add_argument("--baseline", type=Path, default=BASELINE,
                        help="committed BENCH_decoder.json to compare "
                             "against")
    parser.add_argument("--candidate", type=Path, default=None,
                        help="pre-recorded benchmark JSON; omitted = "
                             "run the benchmark now")
    parser.add_argument("--tolerance", type=float,
                        default=DEFAULT_TOLERANCE,
                        help="allowed fractional drop (default 0.20)")
    args = parser.parse_args(argv)
    if not 0.0 <= args.tolerance < 1.0:
        parser.error("--tolerance must be in [0, 1)")

    baseline = load_baseline(args.baseline)
    candidate = measure_candidate(args.candidate)
    floor = baseline * (1.0 - args.tolerance)
    change = candidate / baseline - 1.0

    print(f"baseline : {baseline:,.0f} samples/s")
    print(f"candidate: {candidate:,.0f} samples/s ({change:+.1%})")
    print(f"floor    : {floor:,.0f} samples/s "
          f"(-{args.tolerance:.0%} tolerance)")
    if candidate < floor:
        print("FAIL: throughput regressed past the tolerance")
        return 1
    if candidate > baseline:
        print("OK (faster than baseline — consider refreshing it with "
              "benchmarks/run_bench.py)")
    else:
        print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
