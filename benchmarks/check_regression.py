#!/usr/bin/env python
"""Throughput-regression gate against the committed baseline.

Re-runs the decoder speed benchmark and compares its headline
``samples_per_second`` to the value recorded in
``benchmarks/BENCH_decoder.json``.  A drop of more than 20% fails the
process with a non-zero exit code, so CI catches changes that slow the
decoder down without anyone staring at benchmark tables::

    PYTHONPATH=src python benchmarks/check_regression.py
    PYTHONPATH=src python benchmarks/check_regression.py --tolerance 0.3
    PYTHONPATH=src python benchmarks/check_regression.py --candidate out.json

The gate also checks the candidate's fidelity escalation rate: on the
clean 16-tag benchmark most gate decisions should take the fast path,
so a rate above the sanity ceiling (or a dead fast path — zero gate
decisions, which reads as rate 1.0) means the adaptive ladder silently
stopped paying for itself and fails the run even when raw throughput
still clears the floor.

When a service soak export (``BENCH_service.json``, written by
``benchmarks/run_soak.py``) is present the gate also checks the
streaming service: sustained throughput against the committed
``benchmarks/BENCH_service.json`` baseline (same tolerance), the
overload phase's shed fraction against a ceiling, and the exact
terminal accounting both phases must keep (every submitted chunk
decoded, failed, or shed — nothing lost).  With no committed service
baseline the throughput comparison is informational only, so the gate
can land before the first baseline does.

The 20% default is deliberately loose: shared CI runners jitter by
±10% run to run, and the gate exists to catch real regressions (2x
slowdowns from an accidental O(n^2) path), not 5% noise.  Ratcheting
the baseline downward is a deliberate act — regenerate the JSON with
``run_bench.py`` and commit it alongside the change that explains it.

Faster-than-baseline runs never fail; they just suggest refreshing the
baseline.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent
BASELINE = BENCH_DIR / "BENCH_decoder.json"
#: The benchmark whose samples_per_second is the headline number.  The
#: speed test is parametrized per kernel backend, so exports carry
#: entries like ``test_decode_speed_16_tags[reference]``; matching
#: strips the parameter and the gate compares backend against backend.
HEADLINE = "test_decode_speed_16_tags"
DEFAULT_TOLERANCE = 0.20
#: Highest acceptable fidelity escalation rate on the clean 16-tag
#: benchmark.  The fixture is low-noise and collision-light, so a
#: healthy adaptive ladder resolves well over half its gate decisions
#: on the fast path; a dead ladder reports rate 1.0 (no decisions at
#: all) and fails too.
DEFAULT_ESCALATION_CEILING = 0.5
#: Committed soak baseline for the streaming service.
SERVICE_BASELINE = BENCH_DIR / "BENCH_service.json"
#: Default location run_soak.py drops its summary (uncommitted; what
#: CI uploads).
SERVICE_CANDIDATE = BENCH_DIR / "results" / "BENCH_service.json"
#: Default location the survival sweep drops its matrix
#: (``python -m repro.robustness.survival --out ...``).
SURVIVAL_CANDIDATE = BENCH_DIR / "results" / "survival_matrix.json"
#: Highest acceptable shed fraction in the overload phase.  The phase
#: offers 2x the measured capacity, so a healthy service sheds about
#: half its chunks; far above that means real throughput collapsed
#: under load (the shedding itself got expensive).
DEFAULT_SHED_CEILING = 0.75
#: Committed quick-grid signoff baseline (run_signoff.py --quick).
SIGNOFF_BASELINE = BENCH_DIR / "SIGNOFF_quick.json"
#: Default location run_signoff.py drops its export.
SIGNOFF_CANDIDATE = BENCH_DIR / "results" / "signoff.json"
#: Absolute slack when requiring the BER waterfall to be monotone:
#: with a few hundred bits per cell, counting noise can tick a cell
#: up by a couple of errors without any real trend break.
WATERFALL_SLACK = 0.02
#: Absolute tolerance for per-cell fraction regressions (capacity
#: goodput, eye opening) against the committed signoff baseline.
DEFAULT_SIGNOFF_TOLERANCE = 0.10


def _entry_backend(bench: dict) -> str:
    """Which kernel backend a headline entry measured.

    Prefers the explicit ``backend`` field (summary format, or raw
    extra_info); falls back to the pytest parameter in the name
    (``...[numba]``); entries predating the A/B split carry neither and
    default to ``"reference"`` — the only code path that existed then.
    """
    backend = bench.get("backend") \
        or bench.get("extra_info", {}).get("backend")
    if backend:
        return str(backend)
    name = bench.get("name", "")
    if "[" in name and name.endswith("]"):
        return name[name.index("[") + 1:-1]
    return "reference"


def _is_headline(bench: dict) -> bool:
    return bench.get("name", "").split("[")[0] == HEADLINE


def _headline_rates(benchmarks: list) -> dict:
    """``{backend: samples_per_second}`` for every headline entry."""
    rates: dict = {}
    for bench in benchmarks:
        if _is_headline(bench) and bench.get("samples_per_second"):
            rates[_entry_backend(bench)] = \
                float(bench["samples_per_second"])
    if not rates:
        raise SystemExit(
            f"no samples_per_second recorded for {HEADLINE!r}")
    return rates


def _headline_fidelity_stats(benchmarks: list) -> dict | None:
    """The headline benchmark's fidelity counters, if recorded.

    Accepts both the summary format (counters at the top level) and
    pytest-benchmark's raw export (nested under ``extra_info``).  The
    counters track the adaptive ladder, which is backend-independent;
    the reference entry is canonical when several backends ran.
    """
    found = None
    for bench in benchmarks:
        if not _is_headline(bench):
            continue
        stats = bench.get("fidelity_stats")
        if stats is None:
            stats = bench.get("extra_info", {}).get("fidelity_stats")
        found = stats
        if _entry_backend(bench) == "reference":
            break
    return found


def _normalize(benches: list) -> list:
    """Lift raw pytest-benchmark extra_info fields to the top level."""
    for bench in benches:
        extra = bench.get("extra_info")
        if extra and "samples_per_second" in extra:
            bench.setdefault("samples_per_second",
                             extra["samples_per_second"])
    return benches


def load_baseline(path: Path) -> dict:
    if not path.exists():
        raise SystemExit(f"baseline {path} not found — run "
                         f"benchmarks/run_bench.py first")
    return _headline_rates(
        _normalize(json.loads(path.read_text())["benchmarks"]))


def measure_candidate(candidate: Path | None) -> tuple:
    """Headline ({backend: rate}, fidelity_stats) of a saved export or
    fresh run."""
    if candidate is not None:
        payload = json.loads(candidate.read_text())
        # Accept either our summary format or pytest-benchmark's raw
        # export (whose entries keep extra_info nested).
        benches = _normalize(payload.get("benchmarks", []))
        return _headline_rates(benches), _headline_fidelity_stats(benches)
    with tempfile.TemporaryDirectory() as tmp:
        json_path = Path(tmp) / "candidate.json"
        cmd = [sys.executable, "-m", "pytest",
               str(BENCH_DIR / "test_decoder_speed.py"), "-q",
               f"--benchmark-json={json_path}"]
        completed = subprocess.run(cmd, cwd=REPO_ROOT)
        if completed.returncode != 0:
            raise SystemExit("candidate benchmark run failed with "
                             f"exit code {completed.returncode}")
        payload = json.loads(json_path.read_text())
    return measure_candidate_from_raw(payload)


def measure_candidate_from_raw(payload: dict) -> tuple:
    benches = _normalize(payload.get("benchmarks", []))
    return _headline_rates(benches), _headline_fidelity_stats(benches)


def check_escalation_rate(stats: dict | None, ceiling: float) -> int:
    """0 when the escalation rate clears the ceiling, 1 otherwise.

    ``None`` (an export predating the fidelity counters) passes with a
    note — old saved candidates stay usable — but an all-zero counter
    dict fails: the decoder *has* the counters and none of its fast
    paths ever fired, which is exactly the dead-ladder regression the
    ceiling exists to catch.
    """
    if stats is None:
        print("escalation: no fidelity counters in export (skipped)")
        return 0
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.core.fidelity import escalation_rate

    rate = escalation_rate(stats)
    print(f"escalation: {rate:.1%} of gate decisions "
          f"(ceiling {ceiling:.0%})")
    if rate > ceiling:
        print("FAIL: fidelity escalation rate above the sanity ceiling"
              " — the adaptive fast paths are not paying for themselves")
        return 1
    return 0


def check_service(candidate_path: Path, baseline_path: Path,
                  tolerance: float, shed_ceiling: float) -> int:
    """Gate the streaming-service soak export, if one is present.

    0 when no candidate exists (nothing to gate), when the candidate
    keeps its invariants and clears the baseline floor, or when no
    baseline is committed yet (informational); 1 on any failure.
    """
    if not candidate_path.exists():
        print("service: no soak export found (skipped) — run "
              "benchmarks/run_soak.py to produce one")
        return 0
    try:
        candidate = json.loads(candidate_path.read_text())
    except ValueError as exc:
        print(f"service: FAIL: unreadable soak export "
              f"{candidate_path}: {exc}")
        return 1

    failed = False
    for phase in ("throughput", "overload"):
        report = candidate.get(phase)
        if report is None:
            continue
        if not report.get("accounting_exact", False):
            print(f"service: FAIL: {phase} phase lost records "
                  f"(submitted != decoded + failed + shed)")
            failed = True
    # Chaos phases (present only for --chaos runs): the service must
    # keep exact accounting, bound its queues, and let nothing but
    # deliberate worker kills escape a thread, under every cocktail.
    queue_bound = int(candidate.get("config", {})
                      .get("queue_depth", 0)) or None
    for name, report in (candidate.get("chaos") or {}).items():
        if not report.get("accounting_exact", False):
            print(f"service: FAIL: chaos[{name}] lost records "
                  f"(submitted != decoded + failed + shed)")
            failed = True
        escapes = int(report.get("unexpected_thread_exceptions", 0))
        if escapes:
            print(f"service: FAIL: chaos[{name}] let {escapes} "
                  f"unexpected exception(s) escape a worker thread")
            failed = True
        depth = int(report.get("max_queue_depth", 0))
        if queue_bound is not None and depth > queue_bound:
            print(f"service: FAIL: chaos[{name}] queue depth {depth} "
                  f"exceeded the configured bound {queue_bound}")
            failed = True
        injected = {k: v for k, v in
                    (report.get("injected") or {}).items() if v}
        print(f"service: chaos[{name}] survived "
              f"(injected {injected or 'nothing'}, "
              f"max queue depth {depth})")
    throughput = candidate.get("throughput", {})
    if throughput.get("shed", 0):
        # The throughput phase runs closed-loop: shedding there means
        # the backpressure path is broken, not that load was high.
        print("service: FAIL: closed-loop throughput phase shed "
              f"{throughput['shed']} chunks")
        failed = True
    overload = candidate.get("overload")
    if overload is not None:
        shed_fraction = float(overload.get("shed_fraction", 0.0))
        print(f"service: overload shed fraction {shed_fraction:.1%} "
              f"(ceiling {shed_ceiling:.0%})")
        if shed_fraction > shed_ceiling:
            print("service: FAIL: overload shed fraction above the "
                  "ceiling — throughput collapsed under load")
            failed = True

    # Scaling-sweep cells (present for --scaling-sweep runs): every
    # cell ran closed-loop, so exact accounting and zero shed are
    # invariants regardless of which executor produced the cell.
    for executor, curve in (candidate.get("scaling") or {}).items():
        for shards, cell in sorted(curve.items(),
                                   key=lambda kv: int(kv[0])):
            if not cell.get("accounting_exact", False):
                print(f"service: FAIL: scaling[{executor} x{shards}] "
                      f"lost records")
                failed = True
            if cell.get("shed", 0):
                print(f"service: FAIL: scaling[{executor} x{shards}] "
                      f"shed {cell['shed']} chunks in closed loop")
                failed = True

    sustained = float(throughput.get(
        "sustained_samples_per_second", 0.0))
    if not sustained:
        print("service: FAIL: no sustained throughput recorded")
        return 1
    if not baseline_path.exists():
        print(f"service: sustained {sustained:,.0f} samples/s "
              f"(no committed baseline at {baseline_path.name} — "
              f"informational, not gated)")
        return 1 if failed else 0
    baseline = json.loads(baseline_path.read_text())
    baseline_rate = float(baseline.get("throughput", {})
                          .get("sustained_samples_per_second", 0.0))
    if not baseline_rate:
        print("service: baseline has no sustained throughput — "
              "regenerate it with benchmarks/run_soak.py")
        return 1 if failed else 0
    floor = baseline_rate * (1.0 - tolerance)
    change = sustained / baseline_rate - 1.0
    print(f"service: baseline : {baseline_rate:,.0f} samples/s")
    print(f"service: candidate: {sustained:,.0f} samples/s "
          f"({change:+.1%})")
    print(f"service: floor    : {floor:,.0f} samples/s "
          f"(-{tolerance:.0%} tolerance)")
    if sustained < floor:
        print("service: FAIL: sustained throughput regressed past "
              "the tolerance")
        failed = True
    elif sustained > baseline_rate:
        print("service: faster than baseline — consider refreshing "
              "benchmarks/BENCH_service.json")
    if check_process_scaling(candidate, baseline, tolerance):
        failed = True
    return 1 if failed else 0


def check_process_scaling(candidate: dict, baseline: dict,
                          tolerance: float) -> int:
    """Gate the process-executor scaling curve against the baseline's.

    Compares the best sustained rate in the candidate's
    ``scaling["process"]`` curve to the same figure in the committed
    baseline.  A committed baseline that *predates* the scaling field
    (pre-process-executor soaks) only warns — the gate must be able to
    land before the first refreshed baseline does.  0 = pass/warn,
    1 = regression.
    """
    curve = (candidate.get("scaling") or {}).get("process")
    if not curve:
        return 0                 # no sweep in this run: nothing to gate
    best = max(float(c.get("sustained_samples_per_second", 0.0))
               for c in curve.values())
    base_curve = (baseline.get("scaling") or {}).get("process")
    if not base_curve:
        print(f"service: WARNING: committed baseline predates the "
              f"process-executor scaling field — candidate best "
              f"{best:,.0f} samples/s recorded, not gated; refresh "
              f"benchmarks/BENCH_service.json with "
              f"run_soak.py --scaling-sweep")
        return 0
    base_best = max(float(c.get("sustained_samples_per_second", 0.0))
                    for c in base_curve.values())
    if not base_best:
        return 0
    floor = base_best * (1.0 - tolerance)
    change = best / base_best - 1.0
    print(f"service: process-executor best: {best:,.0f} samples/s "
          f"({change:+.1%} vs baseline {base_best:,.0f}, floor "
          f"{floor:,.0f})")
    if best < floor:
        print("service: FAIL: process-executor throughput regressed "
              "past the tolerance")
        return 1
    return 0


def check_survival(path: Path) -> int:
    """Gate the robustness survival matrix, if one is present.

    Three informal invariants (0 when they hold or no matrix exists):

    * no cell is ``failed`` — fault confinement never broke;
    * the flat-channel baselines decode — impairment handling cost
      nothing on the paper's own regime;
    * at least one multipath scenario is confined/degraded without the
      equalizer pre-stage yet decoded with it — the stage still earns
      its place in the pipeline.
    """
    if not path.exists():
        print("survival: no matrix found (skipped) — run "
              "python -m repro.robustness.survival to produce one")
        return 0
    try:
        matrix = json.loads(path.read_text())
        scenarios = matrix["scenarios"]
    except (ValueError, KeyError) as exc:
        print(f"survival: FAIL: unreadable matrix {path}: {exc}")
        return 1

    failed = False
    for name, row in scenarios.items():
        for config, cell in row.items():
            if cell.get("classification") == "failed":
                print(f"survival: FAIL: {name}/{config} raised "
                      f"({cell.get('error', '?')}) — confinement "
                      f"broke")
                failed = True
    for name in ("flat_6", "flat_14"):
        row = scenarios.get(name)
        if row is None:
            continue
        cls = row.get("baseline", {}).get("classification")
        if cls != "decoded":
            print(f"survival: FAIL: flat baseline {name} is {cls!r}, "
                  f"expected 'decoded'")
            failed = True
    rescued = [
        name for name, row in scenarios.items()
        if row.get("baseline", {}).get("classification")
        in ("degraded", "confined")
        and row.get("equalizer", {}).get("classification") == "decoded"]
    if rescued:
        print(f"survival: equalizer rescues {sorted(rescued)}")
    else:
        print("survival: FAIL: no scenario is degraded/confined at "
              "baseline yet decoded with the equalizer — the "
              "pre-stage no longer earns its place")
        failed = True
    if not failed:
        print(f"survival: OK ({len(scenarios)} scenarios)")
    return 1 if failed else 0


def check_signoff(candidate_path: Path, baseline_path: Path,
                  tolerance: float) -> int:
    """Gate the link-margin signoff export, if one is present.

    Shape invariants hold unconditionally: the BER waterfall must fall
    (noise-tolerantly) with SNR for both schemes, LF must sit at or
    above ASK on (nearly) every row — the Figure 14 geometry — and
    every auto-tuned family must score at least its own baseline (the
    tuner only ever accepts improving moves, so worse-than-stock means
    the harness broke).

    Against the committed quick baseline the gate also requires that
    no capacity cell's goodput and no eye scenario's opening regresses
    past the tolerance.  With no baseline committed (or a candidate
    from a different grid), the comparison is informational only.
    """
    if not candidate_path.exists():
        print("signoff: no export found (skipped) — run "
              "benchmarks/run_signoff.py to produce one")
        return 0
    try:
        candidate = json.loads(candidate_path.read_text())
    except ValueError as exc:
        print(f"signoff: FAIL: unreadable export {candidate_path}: "
              f"{exc}")
        return 1

    failed = False
    rows = (candidate.get("waterfall") or {}).get("rows") or []
    by_snr = sorted(rows, key=lambda r: r["snr_db"])
    for scheme in ("lf_ber", "ask_ber"):
        for low, high in zip(by_snr, by_snr[1:]):
            if high[scheme] > low[scheme] + WATERFALL_SLACK:
                print(f"signoff: FAIL: {scheme} rises from "
                      f"{low[scheme]:.3f} @ {low['snr_db']:g} dB to "
                      f"{high[scheme]:.3f} @ {high['snr_db']:g} dB — "
                      f"waterfall is not monotone")
                failed = True
    if by_snr:
        inverted = sum(1 for r in by_snr
                       if r["lf_ber"] + WATERFALL_SLACK < r["ask_ber"])
        if inverted > 1:
            print(f"signoff: FAIL: LF beats ASK on {inverted} rows — "
                  f"the Figure 14 gap direction flipped")
            failed = True
        gap = (candidate.get("waterfall") or {}).get("snr_gap_db")
        gap_text = f"{gap:.2f} dB" if gap is not None else "unfitted"
        print(f"signoff: waterfall {len(by_snr)} rows, SNR gap "
              f"{gap_text}")

    for family, report in (candidate.get("autotune") or {}).items():
        if report["best_score"] < report["baseline_score"]:
            print(f"signoff: FAIL: autotune[{family}] scored below "
                  f"stock settings — the tuner harness is broken")
            failed = True
    improved = sorted(f for f, r in
                      (candidate.get("autotune") or {}).items()
                      if r.get("improved"))
    if candidate.get("autotune"):
        print(f"signoff: autotune improves {improved or 'nothing'}")

    if not baseline_path.exists():
        print(f"signoff: no committed baseline at "
              f"{baseline_path.name} — cell comparison skipped "
              f"(informational)")
        return 1 if failed else 0
    baseline = json.loads(baseline_path.read_text())

    def _cells(payload):
        return {(r["snr_db"], r["n_tags"], r["drift_ppm"]):
                r["goodput_fraction"]
                for r in (payload.get("capacity") or {})
                .get("rows", [])}

    base_cells = _cells(baseline)
    cand_cells = _cells(candidate)
    compared = 0
    for coords, base_value in base_cells.items():
        got = cand_cells.get(coords)
        if got is None:
            continue
        compared += 1
        if got < base_value - tolerance:
            print(f"signoff: FAIL: capacity cell {coords} goodput "
                  f"{got:.3f} regressed past baseline "
                  f"{base_value:.3f} - {tolerance}")
            failed = True
    for name, base_eye in (baseline.get("eye") or {}).items():
        cand_eye = (candidate.get("eye") or {}).get(name)
        if cand_eye is None:
            continue
        base_open = base_eye["summary"]["min_opening"]
        cand_open = cand_eye["summary"]["min_opening"]
        compared += 1
        if cand_open < base_open - tolerance:
            print(f"signoff: FAIL: eye[{name}] min opening "
                  f"{cand_open:.3f} regressed past baseline "
                  f"{base_open:.3f} - {tolerance}")
            failed = True
    if compared:
        print(f"signoff: {compared} cells compared against "
              f"{baseline_path.name}")
    else:
        print("signoff: no overlapping cells with the baseline "
              "(different grids?) — informational only")
    if not failed:
        print("signoff: OK")
    return 1 if failed else 0


def main(argv: list | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when decoder throughput regresses past the "
                    "tolerance.")
    parser.add_argument("--baseline", type=Path, default=BASELINE,
                        help="committed BENCH_decoder.json to compare "
                             "against")
    parser.add_argument("--candidate", type=Path, default=None,
                        help="pre-recorded benchmark JSON; omitted = "
                             "run the benchmark now")
    parser.add_argument("--tolerance", type=float,
                        default=DEFAULT_TOLERANCE,
                        help="allowed fractional drop (default 0.20)")
    parser.add_argument("--escalation-ceiling", type=float,
                        default=DEFAULT_ESCALATION_CEILING,
                        help="maximum fidelity escalation rate on the "
                             "clean benchmark (default 0.5)")
    parser.add_argument("--service-candidate", type=Path,
                        default=SERVICE_CANDIDATE,
                        help="soak export from run_soak.py (gated "
                             "only when the file exists)")
    parser.add_argument("--service-baseline", type=Path,
                        default=SERVICE_BASELINE,
                        help="committed BENCH_service.json baseline")
    parser.add_argument("--shed-ceiling", type=float,
                        default=DEFAULT_SHED_CEILING,
                        help="maximum overload-phase shed fraction "
                             "(default 0.75)")
    parser.add_argument("--survival", type=Path,
                        default=SURVIVAL_CANDIDATE,
                        help="survival matrix JSON from "
                             "repro.robustness.survival (gated only "
                             "when the file exists)")
    parser.add_argument("--signoff-candidate", type=Path,
                        default=SIGNOFF_CANDIDATE,
                        help="signoff export from run_signoff.py "
                             "(gated only when the file exists)")
    parser.add_argument("--signoff-baseline", type=Path,
                        default=SIGNOFF_BASELINE,
                        help="committed SIGNOFF_quick.json baseline")
    parser.add_argument("--signoff-tolerance", type=float,
                        default=DEFAULT_SIGNOFF_TOLERANCE,
                        help="allowed absolute per-cell drop vs the "
                             "signoff baseline (default 0.10)")
    args = parser.parse_args(argv)
    if not 0.0 <= args.tolerance < 1.0:
        parser.error("--tolerance must be in [0, 1)")
    if not 0.0 < args.escalation_ceiling <= 1.0:
        parser.error("--escalation-ceiling must be in (0, 1]")

    baselines = load_baseline(args.baseline)
    candidates, fidelity = measure_candidate(args.candidate)

    failed = False
    any_faster = False
    for backend in sorted(baselines):
        baseline = baselines[backend]
        candidate = candidates.get(backend)
        if candidate is None:
            # The baseline machine had this backend but this run does
            # not (typically numba absent in a minimal CI job).  An
            # uninstallable accelerator is an environment difference,
            # not a decoder regression — warn and gate the rest.
            print(f"[{backend}] baseline {baseline:,.0f} samples/s but "
                  f"no candidate entry — backend unavailable here, "
                  f"skipping (not a regression)")
            continue
        floor = baseline * (1.0 - args.tolerance)
        change = candidate / baseline - 1.0
        print(f"[{backend}] baseline : {baseline:,.0f} samples/s")
        print(f"[{backend}] candidate: {candidate:,.0f} samples/s "
              f"({change:+.1%})")
        print(f"[{backend}] floor    : {floor:,.0f} samples/s "
              f"(-{args.tolerance:.0%} tolerance)")
        if candidate < floor:
            print(f"[{backend}] FAIL: throughput regressed past the "
                  f"tolerance")
            failed = True
        elif candidate > baseline:
            any_faster = True
    for backend in sorted(set(candidates) - set(baselines)):
        # A backend with no recorded baseline cannot regress; report
        # it so the next run_bench.py refresh picks it up.
        print(f"[{backend}] candidate: {candidates[backend]:,.0f} "
              f"samples/s (no baseline recorded — informational)")
    status = check_escalation_rate(fidelity, args.escalation_ceiling)
    service_status = check_service(
        args.service_candidate, args.service_baseline,
        args.tolerance, args.shed_ceiling)
    survival_status = check_survival(args.survival)
    signoff_status = check_signoff(
        args.signoff_candidate, args.signoff_baseline,
        args.signoff_tolerance)
    if failed:
        return 1
    if status:
        return status
    if service_status:
        return service_status
    if survival_status:
        return survival_status
    if signoff_status:
        return signoff_status
    if any_faster:
        print("OK (faster than baseline — consider refreshing it with "
              "benchmarks/run_bench.py)")
    else:
        print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
