"""Benchmark harness helpers.

Every benchmark regenerates one of the paper's tables or figures.  The
timing numbers come from pytest-benchmark; the regenerated rows are
printed and also written to ``benchmarks/results/<id>.txt`` so they
survive output capturing.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def record(result, benchmark=None) -> None:
    """Print an ExperimentResult and persist it under results/."""
    text = result.format_table()
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / f"{result.experiment_id}.txt"
    out.write_text(text + "\n")
    if benchmark is not None:
        benchmark.extra_info["experiment"] = result.experiment_id
        benchmark.extra_info["rows"] = len(result.rows)
