"""Benchmark harness helpers.

Every benchmark regenerates one of the paper's tables or figures.  The
timing numbers come from pytest-benchmark; the regenerated rows are
printed and also written to ``benchmarks/results/<id>.txt`` so they
survive output capturing.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"

#: The benchmarks' standard load: 16 tags at 10 kbps, seed 77.
BENCH_SEED = 77
BENCH_N_TAGS = 16


def sixteen_tag_synth(drift_ppm=None, noise_std=0.01):
    """The shared 16-tag benchmark network, as a scenario synthesizer.

    Both speed benchmarks draw the same population (seed 77, inherited
    simulator generator — the convention their committed baselines
    were recorded under); they differ only in crystal quality and
    noise floor, which callers override here.  Consecutive
    ``capture(epoch_index=i)`` calls on the returned synthesizer renders
    a multi-epoch session, matching the sessions the baselines pinned.
    """
    from repro.experiments.scenario import ScenarioSpec, ScenarioSynth
    spec = ScenarioSpec(
        name="bench_16_tag", n_tags=BENCH_N_TAGS, bitrate_bps=10e3,
        noise_std=noise_std, drift_ppm=drift_ppm, seed=BENCH_SEED,
        spawn_sim_rng=False)
    return ScenarioSynth(spec)


def record(result, benchmark=None) -> None:
    """Print an ExperimentResult and persist it under results/."""
    text = result.format_table()
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / f"{result.experiment_id}.txt"
    out.write_text(text + "\n")
    if benchmark is not None:
        benchmark.extra_info["experiment"] = result.experiment_id
        benchmark.extra_info["rows"] = len(result.rows)
