#!/usr/bin/env python
"""Decoder-throughput benchmark harness.

Runs the pytest-benchmark speed test (``test_decoder_speed.py``) in a
subprocess, pulls out the timing statistics and the decoder's
per-stage wall-clock split, and writes them to
``benchmarks/BENCH_decoder.json`` so successive runs can be diffed::

    PYTHONPATH=src python benchmarks/run_bench.py

The JSON payload records samples/second (the headline number), the
mean/min/stddev decode time for the 16-tag epoch, and the
edge/fold/extract/separate/viterbi stage breakdown.
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
from datetime import datetime, timezone
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent
OUTPUT = BENCH_DIR / "BENCH_decoder.json"
SPEED_TEST = BENCH_DIR / "test_decoder_speed.py"


def run_speed_benchmark(json_path: Path) -> None:
    """Run the speed test with pytest-benchmark's JSON export."""
    cmd = [sys.executable, "-m", "pytest", str(SPEED_TEST), "-q",
           f"--benchmark-json={json_path}"]
    completed = subprocess.run(cmd, cwd=REPO_ROOT)
    if completed.returncode != 0:
        raise SystemExit(
            f"benchmark run failed with exit code "
            f"{completed.returncode}")


def summarize(raw: dict) -> dict:
    """Reduce pytest-benchmark's export to the numbers we track."""
    benchmarks = []
    for bench in raw.get("benchmarks", []):
        stats = bench["stats"]
        extra = bench.get("extra_info", {})
        entry = {
            "name": bench["name"],
            "mean_s": stats["mean"],
            "min_s": stats["min"],
            "stddev_s": stats["stddev"],
            "rounds": stats["rounds"],
            "samples_per_second": extra.get("samples_per_second"),
            "stage_timings_s": extra.get("stage_timings", {}),
        }
        timings = entry["stage_timings_s"]
        total = timings.get("total", 0.0)
        if total > 0:
            entry["stage_fractions"] = {
                name: seconds / total
                for name, seconds in timings.items()
                if name != "total"}
        benchmarks.append(entry)
    return {
        "generated_at": datetime.now(timezone.utc).isoformat(),
        "machine": raw.get("machine_info", {}).get("node"),
        "python": raw.get("machine_info", {}).get("python_version"),
        "benchmarks": benchmarks,
    }


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        json_path = Path(tmp) / "pytest_benchmark.json"
        run_speed_benchmark(json_path)
        raw = json.loads(json_path.read_text())
    summary = summarize(raw)
    OUTPUT.write_text(json.dumps(summary, indent=2) + "\n")
    for bench in summary["benchmarks"]:
        sps = bench["samples_per_second"]
        print(f"{bench['name']}: mean {bench['mean_s'] * 1e3:.1f} ms, "
              f"{sps:,.0f} samples/s" if sps else bench["name"])
        for name, fraction in bench.get("stage_fractions",
                                        {}).items():
            print(f"  {name:>9s}: {fraction * 100:5.1f}%")
    print(f"wrote {OUTPUT}")


if __name__ == "__main__":
    main()
