#!/usr/bin/env python
"""Decoder-throughput benchmark harness.

Runs the pytest-benchmark speed tests (``test_decoder_speed.py`` and
``test_session_speed.py``) in a subprocess, pulls out the timing
statistics and the decoder's per-stage wall-clock split, and writes
them to ``benchmarks/BENCH_decoder.json`` so successive runs can be
diffed::

    PYTHONPATH=src python benchmarks/run_bench.py

The JSON payload records samples/second (the headline number), the
mean/min/stddev decode time for the 16-tag epoch, the
edge/fold/extract/detect/separate/viterbi stage breakdown, and the
session benchmark's steady-state warm/cold speedup.

Stage fractions are normalized by the *sum of the stages*, not by the
pipeline's wall clock: the wall clock includes untimed glue (python
dispatch, result assembly) and dividing by it silently understated
every stage.  The glue shows up explicitly as ``overhead_s`` instead,
and the fractions are asserted to sum to 1.
"""

from __future__ import annotations

import json
import math
import subprocess
import sys
import tempfile
from datetime import datetime, timezone
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent
OUTPUT = BENCH_DIR / "BENCH_decoder.json"
SPEED_TESTS = [BENCH_DIR / "test_decoder_speed.py",
               BENCH_DIR / "test_session_speed.py"]

#: extra_info keys copied through to the summary when present.
EXTRA_KEYS = ("samples_per_second", "steady_state_speedup",
              "warm_separate_fraction", "steady_cold_epoch_s",
              "steady_warm_epoch_s", "cache_stats", "n_trackers")


def run_speed_benchmark(json_path: Path) -> None:
    """Run the speed tests with pytest-benchmark's JSON export."""
    cmd = [sys.executable, "-m", "pytest",
           *[str(path) for path in SPEED_TESTS], "-q",
           f"--benchmark-json={json_path}"]
    completed = subprocess.run(cmd, cwd=REPO_ROOT)
    if completed.returncode != 0:
        raise SystemExit(
            f"benchmark run failed with exit code "
            f"{completed.returncode}")


def summarize(raw: dict) -> dict:
    """Reduce pytest-benchmark's export to the numbers we track."""
    benchmarks = []
    for bench in raw.get("benchmarks", []):
        stats = bench["stats"]
        extra = bench.get("extra_info", {})
        entry = {
            "name": bench["name"],
            "mean_s": stats["mean"],
            "min_s": stats["min"],
            "stddev_s": stats["stddev"],
            "rounds": stats["rounds"],
            "stage_timings_s": extra.get("stage_timings", {}),
        }
        for key in EXTRA_KEYS:
            if key in extra:
                entry[key] = extra[key]
        timings = entry["stage_timings_s"]
        stage_sum = sum(seconds for name, seconds in timings.items()
                        if name != "total")
        if stage_sum > 0:
            fractions = {name: seconds / stage_sum
                         for name, seconds in timings.items()
                         if name != "total"}
            assert math.isclose(sum(fractions.values()), 1.0,
                                rel_tol=1e-9), \
                "stage fractions must sum to 1"
            entry["stage_fractions"] = fractions
            # Wall clock the stage timers never saw (dispatch, result
            # assembly); kept explicit instead of being smeared across
            # the stage fractions.
            total = timings.get("total", 0.0)
            entry["overhead_s"] = max(total - stage_sum, 0.0)
        benchmarks.append(entry)
    return {
        "generated_at": datetime.now(timezone.utc).isoformat(),
        "machine": raw.get("machine_info", {}).get("node"),
        "python": raw.get("machine_info", {}).get("python_version"),
        "benchmarks": benchmarks,
    }


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        json_path = Path(tmp) / "pytest_benchmark.json"
        run_speed_benchmark(json_path)
        raw = json.loads(json_path.read_text())
    summary = summarize(raw)
    OUTPUT.write_text(json.dumps(summary, indent=2) + "\n")
    for bench in summary["benchmarks"]:
        line = f"{bench['name']}: mean {bench['mean_s'] * 1e3:.1f} ms"
        if bench.get("samples_per_second"):
            line += f", {bench['samples_per_second']:,.0f} samples/s"
        if bench.get("steady_state_speedup"):
            line += (f", steady-state speedup "
                     f"{bench['steady_state_speedup']:.2f}x")
        print(line)
        for name, fraction in bench.get("stage_fractions", {}).items():
            print(f"  {name:>9s}: {fraction * 100:5.1f}%")
        if "overhead_s" in bench:
            print(f"  overhead: {bench['overhead_s'] * 1e3:.1f} ms "
                  f"(outside stage timers)")
    print(f"wrote {OUTPUT}")


if __name__ == "__main__":
    main()
