#!/usr/bin/env python
"""Decoder-throughput benchmark harness.

Runs the pytest-benchmark speed tests (``test_decoder_speed.py`` and
``test_session_speed.py``) in a subprocess, pulls out the timing
statistics and the decoder's per-stage wall-clock split, and writes
them to ``benchmarks/BENCH_decoder.json`` (plus a copy at the repo
root, where release tooling picks it up) so successive runs can be
diffed::

    PYTHONPATH=src python benchmarks/run_bench.py
    PYTHONPATH=src python benchmarks/run_bench.py --profile

The JSON payload records samples/second (the headline number), the
mean/min/stddev decode time for the 16-tag epoch, the
edge/fold/extract/detect/separate/viterbi stage breakdown, the
fidelity gate counters (fast-path hits versus escalations per gate),
and the session benchmark's steady-state warm/cold speedup.

``--profile`` additionally runs one 16-tag decode under cProfile and
prints the top 20 functions by cumulative time — the first place to
look when the stage split shifts and you need attribution below stage
granularity.

Stage fractions are normalized by the *sum of the stages*, not by the
pipeline's wall clock: the wall clock includes untimed glue (python
dispatch, result assembly) and dividing by it silently understated
every stage.  The glue shows up explicitly as ``overhead_s`` instead,
and the fractions are asserted to sum to 1.
"""

from __future__ import annotations

import argparse
import json
import math
import subprocess
import sys
import tempfile
from datetime import datetime, timezone
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent
OUTPUT = BENCH_DIR / "BENCH_decoder.json"
#: Root-level copy of the summary (same payload, easier for tooling
#: that only checks out the repo top level).
ROOT_OUTPUT = REPO_ROOT / "BENCH_decoder.json"
SPEED_TESTS = [BENCH_DIR / "test_decoder_speed.py",
               BENCH_DIR / "test_session_speed.py"]

#: extra_info keys copied through to the summary when present.
EXTRA_KEYS = ("samples_per_second", "steady_state_speedup",
              "warm_separate_fraction", "steady_cold_epoch_s",
              "steady_warm_epoch_s", "cache_stats", "n_trackers",
              "fidelity_stats", "backend")


def _backend_header() -> dict:
    """Kernel-backend metadata for the summary header."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.core.kernels import available_backends

    try:
        import numba
        numba_version = numba.__version__
    except ImportError:
        numba_version = None
    return {"backends": list(available_backends()),
            "numba_version": numba_version}


def run_speed_benchmark(json_path: Path) -> None:
    """Run the speed tests with pytest-benchmark's JSON export."""
    cmd = [sys.executable, "-m", "pytest",
           *[str(path) for path in SPEED_TESTS], "-q",
           f"--benchmark-json={json_path}"]
    completed = subprocess.run(cmd, cwd=REPO_ROOT)
    if completed.returncode != 0:
        raise SystemExit(
            f"benchmark run failed with exit code "
            f"{completed.returncode}")


def summarize(raw: dict) -> dict:
    """Reduce pytest-benchmark's export to the numbers we track."""
    benchmarks = []
    for bench in raw.get("benchmarks", []):
        stats = bench["stats"]
        extra = bench.get("extra_info", {})
        entry = {
            "name": bench["name"],
            # Entries predating the backend A/B split (and benchmarks
            # that never dispatch through kernels) ran the pure-numpy
            # code path, so "reference" is the honest default.
            "backend": extra.get("backend", "reference"),
            "mean_s": stats["mean"],
            "min_s": stats["min"],
            "stddev_s": stats["stddev"],
            "rounds": stats["rounds"],
            "stage_timings_s": extra.get("stage_timings", {}),
        }
        for key in EXTRA_KEYS:
            if key in extra:
                entry[key] = extra[key]
        timings = entry["stage_timings_s"]
        stage_sum = sum(seconds for name, seconds in timings.items()
                        if name != "total")
        if stage_sum > 0:
            fractions = {name: seconds / stage_sum
                         for name, seconds in timings.items()
                         if name != "total"}
            assert math.isclose(sum(fractions.values()), 1.0,
                                rel_tol=1e-9), \
                "stage fractions must sum to 1"
            entry["stage_fractions"] = fractions
            # Wall clock the stage timers never saw (dispatch, result
            # assembly); kept explicit instead of being smeared across
            # the stage fractions.
            total = timings.get("total", 0.0)
            entry["overhead_s"] = max(total - stage_sum, 0.0)
        benchmarks.append(entry)
    return {
        "generated_at": datetime.now(timezone.utc).isoformat(),
        "machine": raw.get("machine_info", {}).get("node"),
        "python": raw.get("machine_info", {}).get("python_version"),
        **_backend_header(),
        "benchmarks": benchmarks,
    }


def profile_one_decode(backend: str = "reference",
                       top: int = 20) -> None:
    """cProfile a single 16-tag epoch decode; print top functions.

    Reuses the speed benchmark's fixture (same seed, same tag
    population) so the profile attributes exactly the workload the
    headline number measures.  ``backend`` selects the kernel backend
    under profile, so a JIT-backend slowdown can be attributed without
    editing the environment.
    """
    import cProfile
    import pstats

    sys.path.insert(0, str(REPO_ROOT / "src"))
    sys.path.insert(0, str(BENCH_DIR))
    from test_decoder_speed import sixteen_tag_capture
    from repro.core.pipeline import LFDecoder, LFDecoderConfig

    profile, capture = sixteen_tag_capture.__wrapped__()
    decoder = LFDecoder(LFDecoderConfig(
        candidate_bitrates_bps=[10e3], profile=profile,
        kernel_backend=backend), rng=1)
    # One untimed decode first so numpy/jit warm-up does not pollute
    # the profile; a fresh decoder for the measured pass keeps the
    # session-free cold path honest.
    decoder.decode_epoch(capture.trace)
    decoder = LFDecoder(LFDecoderConfig(
        candidate_bitrates_bps=[10e3], profile=profile,
        kernel_backend=backend), rng=1)
    profiler = cProfile.Profile()
    profiler.enable()
    decoder.decode_epoch(capture.trace)
    profiler.disable()
    stats = pstats.Stats(profiler, stream=sys.stdout)
    # Secondary sort on the function name so equal-cumulative rows
    # print in a stable order — profile diffs stay line-comparable
    # across runs.
    stats.sort_stats("cumulative", "name").print_stats(top)


def main(argv: list | None = None) -> None:
    parser = argparse.ArgumentParser(
        description="Run the decoder speed benchmarks and record the "
                    "summary JSON.")
    parser.add_argument("--profile", action="store_true",
                        help="also cProfile one 16-tag decode and "
                             "print the top 20 cumulative functions")
    parser.add_argument("--backend", default="reference",
                        choices=("reference", "numba", "auto"),
                        help="kernel backend for the --profile decode "
                             "(default: reference)")
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory() as tmp:
        json_path = Path(tmp) / "pytest_benchmark.json"
        run_speed_benchmark(json_path)
        raw = json.loads(json_path.read_text())
    summary = summarize(raw)
    payload = json.dumps(summary, indent=2) + "\n"
    OUTPUT.write_text(payload)
    ROOT_OUTPUT.write_text(payload)
    for bench in summary["benchmarks"]:
        line = bench["name"]
        # Parametrized entries already carry the backend in the name.
        if f"[{bench['backend']}]" not in line:
            line += f" [{bench['backend']}]"
        line += f": mean {bench['mean_s'] * 1e3:.1f} ms"
        if bench.get("samples_per_second"):
            line += f", {bench['samples_per_second']:,.0f} samples/s"
        if bench.get("steady_state_speedup"):
            line += (f", steady-state speedup "
                     f"{bench['steady_state_speedup']:.2f}x")
        print(line)
        for name, fraction in bench.get("stage_fractions", {}).items():
            print(f"  {name:>9s}: {fraction * 100:5.1f}%")
        if "overhead_s" in bench:
            print(f"  overhead: {bench['overhead_s'] * 1e3:.1f} ms "
                  f"(outside stage timers)")
        stats = bench.get("fidelity_stats")
        if stats and any(stats.values()):
            fired = {name: count for name, count in stats.items()
                     if count}
            print(f"  fidelity: {fired}")
    print(f"wrote {OUTPUT} and {ROOT_OUTPUT}")
    if args.profile:
        profile_one_decode(backend=args.backend)


if __name__ == "__main__":
    main()
