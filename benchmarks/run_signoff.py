#!/usr/bin/env python
"""Link-margin signoff suite: eye metrics, BER waterfalls, capacity
surfaces and decoder auto-tuning, exported as machine-readable JSON.

Runs the full margin battery through the unified scenario/sweep layer
and writes one ``signoff.json`` that ``check_regression.py`` can gate
(waterfall monotonicity, no cell regressing past tolerance vs the
committed ``SIGNOFF_quick.json`` baseline)::

    PYTHONPATH=src python benchmarks/run_signoff.py --quick
    PYTHONPATH=src python benchmarks/run_signoff.py --out signoff.json

``--quick`` shrinks every grid to CI size (a couple of minutes on one
core); the default grids are the full signoff surface.  Results are
deterministic for a given ``--seed`` — captures, decoder seeds and
tuner evaluations are all pinned through the sweep layer.

Refreshing the committed baseline is a deliberate act::

    PYTHONPATH=src python benchmarks/run_signoff.py --quick \
        --out benchmarks/SIGNOFF_quick.json
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

DEFAULT_OUT = BENCH_DIR / "results" / "signoff.json"

#: Eye-analysis scenarios: name -> ScenarioSpec kwargs.
EYE_SCENARIOS = {
    "clean": dict(n_tags=4, snr_db=15.0),
    "low_snr": dict(n_tags=4, snr_db=7.0),
    "drift_heavy": dict(n_tags=4, snr_db=15.0, drift_ppm=4000.0),
}


def _json_safe(value):
    """Replace non-finite floats with None, recursively."""
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, dict):
        return {k: _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return value


def run_eye_section(quick: bool, seed: int) -> dict:
    from repro.analysis.eye import eye_metrics, eye_summary
    from repro.experiments.scenario import ScenarioSpec, ScenarioSynth
    section = {}
    for name, kwargs in EYE_SCENARIOS.items():
        spec = ScenarioSpec(name=f"eye_{name}", bitrate_bps=10e3,
                            seed=seed, **kwargs)
        capture = ScenarioSynth(spec).capture(0.012)
        metrics = eye_metrics(capture)
        section[name] = {
            "tags": [m.as_dict() for m in metrics],
            "summary": eye_summary(metrics),
        }
    return section


def run_waterfall_section(quick: bool, seed: int) -> dict:
    from repro.analysis.waterfall import ber_waterfall
    if quick:
        return ber_waterfall([6.0, 9.0, 12.0, 15.0], n_bits=200,
                             n_trials=2, seed=seed)
    return ber_waterfall([5.0, 7.0, 9.0, 11.0, 13.0, 15.0],
                         n_bits=400, n_trials=3, seed=seed)


def run_capacity_section(quick: bool, seed: int) -> dict:
    from repro.analysis.waterfall import capacity_surface
    if quick:
        rows = capacity_surface([8.0, 15.0], [2, 6], [150.0, 16000.0],
                                bitrate_bps=10e3, n_trials=1,
                                seed=seed)
    else:
        rows = capacity_surface([6.0, 9.0, 12.0, 15.0], [2, 6, 10],
                                [150.0, 1000.0, 4000.0, 16000.0],
                                bitrate_bps=10e3, n_trials=2,
                                seed=seed)
    return {"rows": rows}


def run_autotune_section(quick: bool, seed: int) -> dict:
    from repro.analysis.autotune import SCENARIO_FAMILIES, autotune
    rounds = 1 if quick else 2
    section = {}
    for family in SCENARIO_FAMILIES:
        result = autotune(family, rounds=rounds, seed=seed)
        section[family] = result.as_dict()
    return section


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Run the link-margin signoff suite and export "
                    "signoff.json.")
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized grids (minutes, not hours)")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help=f"output path (default {DEFAULT_OUT})")
    parser.add_argument("--seed", type=int, default=14,
                        help="master seed for every section")
    parser.add_argument("--skip", action="append", default=[],
                        choices=["eye", "waterfall", "capacity",
                                 "autotune"],
                        help="omit a section (repeatable)")
    args = parser.parse_args(argv)

    sections = {
        "eye": run_eye_section,
        "waterfall": run_waterfall_section,
        "capacity": run_capacity_section,
        "autotune": run_autotune_section,
    }
    payload = {"schema": 1, "quick": bool(args.quick),
               "seed": args.seed}
    for name, runner in sections.items():
        if name in args.skip:
            continue
        started = time.monotonic()
        payload[name] = _json_safe(runner(args.quick, args.seed))
        print(f"{name}: done in {time.monotonic() - started:.1f}s")

    waterfall = payload.get("waterfall")
    if waterfall:
        gap = waterfall.get("snr_gap_db")
        gap_text = f"{gap:.2f} dB" if gap is not None else "unfitted"
        print(f"waterfall: SNR gap {gap_text} "
              f"(paper: ~4 dB)")
    tuned = payload.get("autotune") or {}
    improved = sorted(f for f, r in tuned.items() if r["improved"])
    if tuned:
        print(f"autotune: {len(improved)}/{len(tuned)} families beat "
              f"defaults {improved}")

    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True)
                        + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
