#!/usr/bin/env python
"""Soak benchmark: sustained multi-reader traffic through the service.

Replays minutes of synthetic traffic — ``--readers`` reader front ends,
each with ``--tags`` tags and periodic tag churn — through the
streaming decode service (:mod:`repro.service`) and records the
numbers that make "many readers, heavy traffic" a gated, trended
quantity::

    PYTHONPATH=src python benchmarks/run_soak.py
    PYTHONPATH=src python benchmarks/run_soak.py --duration 30 \
        --readers 2 --tags 8 --churn-every 3

Two phases per run:

* **throughput** — closed loop (bounded queues backpressure the
  producer): sustained samples/s is the service's decode capacity,
  p50/p99 chunk latency its service quality under full load;
* **overload** — open loop at ``--overload-factor`` × the measured
  capacity: the service must shed (oldest first) with exact
  accounting and bounded queues instead of growing memory or
  crashing.

The summary lands in ``BENCH_service.json`` (repo root, plus a copy
at ``--out``); ``benchmarks/check_regression.py`` gates it against
the committed ``benchmarks/BENCH_service.json`` baseline.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from datetime import datetime, timezone
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.service.soak import SoakConfig, run_soak  # noqa: E402

#: Root-level copy (same payload; what CI uploads and the gate reads).
ROOT_JSON = REPO_ROOT / "BENCH_service.json"


def _decoder_baseline() -> float | None:
    """Headline single-epoch rate from BENCH_decoder.json, if present.

    The soak report records its sustained rate as a ratio of this so
    the "streaming costs <20% over the raw decoder" story is one
    number in the JSON.
    """
    path = BENCH_DIR / "BENCH_decoder.json"
    if not path.exists():
        return None
    try:
        payload = json.loads(path.read_text())
        for bench in payload.get("benchmarks", []):
            if bench.get("name", "").startswith(
                    "test_decode_speed_16_tags") and \
                    bench.get("samples_per_second"):
                return float(bench["samples_per_second"])
    except (ValueError, KeyError):  # malformed baseline: skip ratio
        return None
    return None


def main(argv: list | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Replay sustained multi-reader traffic through "
                    "the streaming decode service.")
    parser.add_argument("--duration", type=float, default=60.0,
                        help="wall-clock seconds per phase "
                             "(default 60)")
    parser.add_argument("--readers", type=int, default=2,
                        help="reader front ends (default 2)")
    parser.add_argument("--tags", type=int, default=8,
                        help="tags per reader (default 8)")
    parser.add_argument("--churn-every", type=int, default=3,
                        help="rebuild a reader's tag population every "
                             "N pool epochs (default 3; 0 = no churn)")
    parser.add_argument("--shards", type=int, default=2,
                        help="worker shards (default 2)")
    parser.add_argument("--queue-depth", type=int, default=8,
                        help="bounded per-shard queue depth "
                             "(default 8)")
    parser.add_argument("--chunks-per-epoch", type=int, default=2,
                        help="ring-buffer chunks per epoch capture "
                             "(default 2)")
    parser.add_argument("--overload-factor", type=float, default=2.0,
                        help="offered load multiple in the overload "
                             "phase (default 2.0)")
    parser.add_argument("--no-overload", action="store_true",
                        help="skip the overload phase")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", type=Path,
                        default=BENCH_DIR / "results"
                        / "BENCH_service.json",
                        help="where to write the summary JSON")
    args = parser.parse_args(argv)

    cfg = SoakConfig(
        n_readers=args.readers,
        tags_per_reader=args.tags,
        churn_every=args.churn_every,
        duration_s=args.duration,
        overload_factor=args.overload_factor,
        overload=not args.no_overload,
        seed=args.seed,
        n_shards=args.shards,
        queue_depth=args.queue_depth,
        chunks_per_epoch=args.chunks_per_epoch,
    )
    report = run_soak(cfg, log=print)

    summary = {
        "generated_at": datetime.now(timezone.utc).isoformat(),
        "machine": platform.node(),
        "python": platform.python_version(),
        **report.to_dict(),
    }
    baseline = _decoder_baseline()
    if baseline:
        summary["decoder_baseline_samples_per_second"] = baseline
        summary["throughput_vs_decoder_baseline"] = (
            report.throughput.sustained_samples_per_second / baseline)

    payload = json.dumps(summary, indent=2) + "\n"
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(payload)
    ROOT_JSON.write_text(payload)
    print(f"\nwrote {args.out} (and {ROOT_JSON})")
    t = report.throughput
    print(f"sustained : {t.sustained_samples_per_second:,.0f} "
          f"samples/s over {t.wall_s:.1f}s "
          f"({t.decoded} chunks, {t.failed} failed)")
    print(f"latency   : p50 {t.p50_chunk_latency_s * 1e3:.1f} ms, "
          f"p99 {t.p99_chunk_latency_s * 1e3:.1f} ms")
    if baseline:
        print(f"vs decoder: "
              f"{summary['throughput_vs_decoder_baseline']:.2f}x the "
              f"single-epoch bench rate ({baseline:,.0f})")
    if report.overload is not None:
        o = report.overload
        print(f"overload  : shed {o.shed_fraction:.1%} at "
              f"{o.offered_samples_per_second:,.0f} offered "
              f"samples/s, max queue depth {o.max_queue_depth}, "
              f"accounting "
              f"{'exact' if o.accounting_exact else 'BROKEN'}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
