#!/usr/bin/env python
"""Soak benchmark: sustained multi-reader traffic through the service.

Replays minutes of synthetic traffic — ``--readers`` reader front ends,
each with ``--tags`` tags and periodic tag churn — through the
streaming decode service (:mod:`repro.service`) and records the
numbers that make "many readers, heavy traffic" a gated, trended
quantity::

    PYTHONPATH=src python benchmarks/run_soak.py
    PYTHONPATH=src python benchmarks/run_soak.py --duration 30 \
        --readers 2 --tags 8 --churn-every 3

Two phases per run:

* **throughput** — closed loop (bounded queues backpressure the
  producer): sustained samples/s is the service's decode capacity,
  p50/p99 chunk latency its service quality under full load;
* **overload** — open loop at ``--overload-factor`` × the measured
  capacity: the service must shed (oldest first) with exact
  accounting and bounded queues instead of growing memory or
  crashing.

``--executor process`` runs the same phases with one child process
per shard (multi-core scaling); ``--scaling-sweep`` additionally
replays the closed-loop phase at n_shards in {1, 2, 4} under *both*
executors and records the scaling table in the JSON (the
``BENCH_service.json`` ``scaling`` section the regression gate and
the CI scaling-curve artifact read).

``--chaos`` adds a phase per named fault cocktail (worker stalls,
crashes, kills, shm corruption, clock skew — see
:mod:`repro.service.chaos`): the service must keep exact accounting
and suffer zero unexpected thread exceptions while the injector
sabotages it from the inside.  ``--chaos everything`` runs just the
combined cocktail; bare ``--chaos`` sweeps them all.

The summary lands at ``--out`` (default
``benchmarks/results/BENCH_service.json`` — the uncommitted candidate
CI uploads); ``benchmarks/check_regression.py`` gates it against the
committed ``benchmarks/BENCH_service.json`` baseline.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from datetime import datetime, timezone
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.service.chaos import CHAOS_COCKTAILS  # noqa: E402
from repro.service.config import (PROCESS, THREAD,  # noqa: E402
                                  _default_executor)
from repro.service.soak import (DEFAULT_SCALING_SHARDS,  # noqa: E402
                                SoakConfig, run_soak)


def _decoder_baseline() -> float | None:
    """Headline single-epoch rate from BENCH_decoder.json, if present.

    The soak report records its sustained rate as a ratio of this so
    the "streaming costs <20% over the raw decoder" story is one
    number in the JSON.
    """
    path = BENCH_DIR / "BENCH_decoder.json"
    if not path.exists():
        return None
    try:
        payload = json.loads(path.read_text())
        for bench in payload.get("benchmarks", []):
            if bench.get("name", "").startswith(
                    "test_decode_speed_16_tags") and \
                    bench.get("samples_per_second"):
                return float(bench["samples_per_second"])
    except (ValueError, KeyError):  # malformed baseline: skip ratio
        return None
    return None


def main(argv: list | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Replay sustained multi-reader traffic through "
                    "the streaming decode service.")
    parser.add_argument("--duration", type=float, default=60.0,
                        help="wall-clock seconds per phase "
                             "(default 60)")
    parser.add_argument("--readers", type=int, default=2,
                        help="reader front ends (default 2)")
    parser.add_argument("--tags", type=int, default=8,
                        help="tags per reader (default 8)")
    parser.add_argument("--churn-every", type=int, default=3,
                        help="rebuild a reader's tag population every "
                             "N pool epochs (default 3; 0 = no churn)")
    parser.add_argument("--shards", type=int, default=2,
                        help="worker shards (default 2)")
    parser.add_argument("--executor", choices=[THREAD, PROCESS],
                        default=_default_executor(),
                        help="shard executor (default: "
                             "$REPRO_SERVICE_EXECUTOR or 'thread')")
    parser.add_argument("--scaling-sweep", action="store_true",
                        help="also run the closed-loop phase at "
                             f"n_shards in {list(DEFAULT_SCALING_SHARDS)} "
                             "per executor and record the scaling "
                             "table")
    parser.add_argument("--scaling-shards", type=int, nargs="+",
                        default=None, metavar="N",
                        help="shard counts for the scaling sweep "
                             f"(default {list(DEFAULT_SCALING_SHARDS)})")
    parser.add_argument("--scaling-executors", nargs="+",
                        choices=[THREAD, PROCESS], default=None,
                        help="executors for the scaling sweep "
                             "(default: both)")
    parser.add_argument("--scaling-duration", type=float, default=None,
                        help="wall-clock seconds per scaling cell "
                             "(default: --duration)")
    parser.add_argument("--queue-depth", type=int, default=8,
                        help="bounded per-shard queue depth "
                             "(default 8)")
    parser.add_argument("--chunks-per-epoch", type=int, default=2,
                        help="ring-buffer chunks per epoch capture "
                             "(default 2)")
    parser.add_argument("--overload-factor", type=float, default=2.0,
                        help="offered load multiple in the overload "
                             "phase (default 2.0)")
    parser.add_argument("--no-overload", action="store_true",
                        help="skip the overload phase")
    parser.add_argument("--chaos", nargs="*", default=None,
                        metavar="COCKTAIL",
                        help="add chaos phases; names from "
                             f"{sorted(CHAOS_COCKTAILS)}, bare flag "
                             "= all of them")
    parser.add_argument("--chaos-duration", type=float, default=5.0,
                        help="wall-clock seconds per chaos cocktail "
                             "(default 5)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", type=Path,
                        default=BENCH_DIR / "results"
                        / "BENCH_service.json",
                        help="where to write the summary JSON")
    args = parser.parse_args(argv)

    cocktails = None
    if args.chaos is not None:
        names = args.chaos or sorted(CHAOS_COCKTAILS)
        unknown = sorted(set(names) - set(CHAOS_COCKTAILS))
        if unknown:
            parser.error(f"unknown chaos cocktails {unknown}; pick "
                         f"from {sorted(CHAOS_COCKTAILS)}")
        cocktails = {name: CHAOS_COCKTAILS[name] for name in names}

    cfg = SoakConfig(
        n_readers=args.readers,
        tags_per_reader=args.tags,
        churn_every=args.churn_every,
        duration_s=args.duration,
        overload_factor=args.overload_factor,
        overload=not args.no_overload,
        seed=args.seed,
        n_shards=args.shards,
        executor=args.executor,
        queue_depth=args.queue_depth,
        chunks_per_epoch=args.chunks_per_epoch,
        chaos_duration_s=args.chaos_duration,
    )
    scaling_shards = None
    if args.scaling_sweep or args.scaling_shards:
        scaling_shards = tuple(args.scaling_shards
                               or DEFAULT_SCALING_SHARDS)
    report = run_soak(
        cfg, log=print, chaos_cocktails=cocktails,
        scaling_shards=scaling_shards,
        scaling_executors=tuple(args.scaling_executors
                                or (THREAD, PROCESS)),
        scaling_duration_s=args.scaling_duration)

    summary = {
        "generated_at": datetime.now(timezone.utc).isoformat(),
        "machine": platform.node(),
        "python": platform.python_version(),
        **report.to_dict(),
    }
    baseline = _decoder_baseline()
    if baseline:
        summary["decoder_baseline_samples_per_second"] = baseline
        summary["throughput_vs_decoder_baseline"] = (
            report.throughput.sustained_samples_per_second / baseline)

    payload = json.dumps(summary, indent=2) + "\n"
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(payload)
    print(f"\nwrote {args.out}")
    t = report.throughput
    print(f"sustained : {t.sustained_samples_per_second:,.0f} "
          f"samples/s over {t.wall_s:.1f}s "
          f"({t.decoded} chunks, {t.failed} failed)")
    print(f"latency   : p50 {t.p50_chunk_latency_s * 1e3:.1f} ms, "
          f"p99 {t.p99_chunk_latency_s * 1e3:.1f} ms")
    if baseline:
        print(f"vs decoder: "
              f"{summary['throughput_vs_decoder_baseline']:.2f}x the "
              f"single-epoch bench rate ({baseline:,.0f})")
    if report.overload is not None:
        o = report.overload
        print(f"overload  : shed {o.shed_fraction:.1%} at "
              f"{o.offered_samples_per_second:,.0f} offered "
              f"samples/s, max queue depth {o.max_queue_depth}, "
              f"accounting "
              f"{'exact' if o.accounting_exact else 'BROKEN'}")
    for name, phase in report.chaos.items():
        injected = ", ".join(f"{k}={v}" for k, v in
                             sorted(phase.injected.items()) if v)
        print(f"chaos[{name}]: {phase.decoded} decoded, "
              f"{phase.failed} failed, {phase.shed} shed; injected "
              f"{injected or 'nothing'}; accounting "
              f"{'exact' if phase.accounting_exact else 'BROKEN'}; "
              f"{phase.unexpected_thread_exceptions} unexpected "
              f"thread exceptions")
    if report.scaling:
        print("scaling   : executor x n_shards -> sustained samples/s")
        for executor, curve in report.scaling.items():
            cells = ", ".join(
                f"x{shards}: "
                f"{phase.sustained_samples_per_second:,.0f}"
                for shards, phase in sorted(
                    curve.items(), key=lambda kv: int(kv[0])))
            print(f"  {executor:8s} {cells}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
