"""Bench (ablation): the analog eye-pattern fallback at low SNR."""

from repro.experiments import run_experiment

from conftest import record


def test_ablation_analog(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("ablation_analog"), rounds=1,
        iterations=1)
    record(result, benchmark)
    # The fallback never hurts, and at the low end of the sweep it
    # acquires streams the edge-based search cannot.
    gains = 0
    for row in result.rows:
        assert row["acquired_with_fallback"] >= \
            row["acquired_without"] - 1e-9
        if row["acquired_with_fallback"] > row["acquired_without"]:
            gains += 1
    assert gains >= 1
    # At comfortable SNR both paths acquire everything.
    assert result.rows[-1]["acquired_with_fallback"] == 1.0
