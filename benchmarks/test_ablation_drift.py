"""Bench (ablation): decoder tolerance to clock drift (Section 4.1)."""

from repro.experiments import run_experiment

from conftest import record


def test_ablation_drift(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("ablation_drift"), rounds=1,
        iterations=1)
    record(result, benchmark)
    by_drift = {r["drift_ppm"]: r["goodput_fraction"]
                for r in result.rows}
    # Within the paper's 200 ppm tolerance budget the decoder holds.
    assert by_drift[200.0] > 0.85
    # At the Moo DCO's drift class the decoder collapses, which is why
    # the paper replaced it with a crystal (Section 4.1).  (Our
    # progressive tracker actually absorbs constant ppm offsets well
    # past the paper's 200 ppm budget — the binding limit is the
    # per-bit phase walk against the matching tolerance.)
    assert by_drift[40000.0] < 0.5 * by_drift[0.0]
    assert by_drift[1000.0] > 0.85
