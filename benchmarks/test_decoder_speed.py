"""Pure performance benchmark: decoder throughput in samples/second.

Not a paper artefact — this measures the *implementation*: how fast the
full pipeline chews through a 16-tag epoch.  Useful for tracking
regressions when the decoder changes.
"""

import pytest

from conftest import sixteen_tag_synth
from repro.core.kernels import available_backends
from repro.core.pipeline import LFDecoder, LFDecoderConfig


@pytest.fixture(scope="module")
def sixteen_tag_capture():
    synth = sixteen_tag_synth()
    return synth.profile, synth.capture(0.010)


# One A/B entry per kernel backend the environment can construct:
# always [reference]; [numba] rides along when the [jit] extra is
# installed.  Backend resolution (and any JIT warm-up) happens in the
# LFDecoder constructor, outside the timed region.
@pytest.mark.parametrize("backend", available_backends())
def test_decode_speed_16_tags(benchmark, sixteen_tag_capture, backend):
    profile, capture = sixteen_tag_capture
    decoder = LFDecoder(LFDecoderConfig(
        candidate_bitrates_bps=[10e3], profile=profile,
        kernel_backend=backend), rng=1)

    result = benchmark(decoder.decode_epoch, capture.trace)
    assert result.n_streams >= 12
    samples_per_second = len(capture.trace) / benchmark.stats["mean"]
    benchmark.extra_info["samples_per_second"] = samples_per_second
    # Which kernel backend produced this entry — run_bench.py copies it
    # into the summary and check_regression.py gates per backend.
    benchmark.extra_info["backend"] = backend
    # Last-round per-stage wall-clock split, for attribution of any
    # regression (keys: edge/fold/extract/detect/separate/viterbi/
    # total).
    benchmark.extra_info["stage_timings"] = {
        name: float(seconds)
        for name, seconds in result.stage_timings.items()}
    # Last-round fidelity gate counters: how often each adaptive fast
    # path fired versus escalated.  check_regression.py reads these to
    # flag a dead fast path or a runaway escalation rate.
    benchmark.extra_info["fidelity_stats"] = {
        name: int(count)
        for name, count in result.fidelity_stats.items()}
    # Sanity floor only — absolute speed depends on the host; the
    # recorded samples_per_second in extra_info is the number to watch
    # across runs.
    assert samples_per_second > 10_000


def test_guard_passthrough_speed(benchmark, sixteen_tag_capture):
    """The trace guard's clean fast path runs in front of every decode
    (PR: hardened decode path); it must stay a negligible slice of the
    pipeline and return the capture untouched."""
    from repro.robustness.guard import sanitize_trace

    _, capture = sixteen_tag_capture
    out, health = benchmark(sanitize_trace, capture.trace)
    assert out is capture.trace
    assert health.verdict == "clean"
    samples_per_second = len(capture.trace) / benchmark.stats["mean"]
    benchmark.extra_info["samples_per_second"] = samples_per_second
    # The guard sweeps the capture a handful of times (finiteness,
    # rails, spread) — orders of magnitude cheaper than decoding it.
    assert samples_per_second > 1_000_000
