"""Bench: regenerate Figure 1 (channel-coefficient dynamics)."""

from repro.experiments import run_experiment

from conftest import record


def test_fig01_dynamics(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("fig1"), rounds=1, iterations=1)
    record(result, benchmark)
    rows = {r["scenario"]: r for r in result.rows}
    assert rows["coupled_tag_a"]["excursion_first_half"] == 0.0
    assert rows["coupled_tag_a"]["excursion_second_half"] > 0.01
    assert rows["people_movement"]["excursion_total"] > 0.05
    assert rows["tag_rotation"]["excursion_total"] > 0.5
