"""Bench: regenerate Figure 2 (IQ cluster structure vs tag count)."""

from repro.experiments import run_experiment

from conftest import record


def test_fig02_clusters(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("fig2"), rounds=1, iterations=1)
    record(result, benchmark)
    rows = {r["scenario"]: r for r in result.rows}
    assert rows["2_tags"]["n_clusters"] == 4
    assert rows["6_tags"]["n_clusters"] == 64
    # Figure 2c: 64 clusters crowd together and decoding degrades.
    assert rows["6_tags"]["symbol_accuracy"] < \
        rows["2_tags"]["symbol_accuracy"]
    assert rows["6_tags"]["min_gap_over_noise"] < \
        rows["2_tags"]["min_gap_over_noise"]
