"""Bench: regenerate Figure 4 (comparator fire-time jitter)."""

from repro.experiments import run_experiment

from conftest import record


def test_fig04_capacitor(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("fig4"), rounds=1, iterations=1)
    record(result, benchmark)
    rows = {r["quantity"]: r["value_bit_periods"] for r in result.rows}
    assert rows["crossing_time_energy_0.8"] > \
        rows["crossing_time_energy_1.0"] > \
        rows["crossing_time_energy_1.2"]
    assert rows["fire_time_spread"] > 1.0
    assert rows["phase_std"] > 0.15
    assert rows["single_tag_epoch_jitter_std"] > 0.0
