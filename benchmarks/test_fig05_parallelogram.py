"""Bench: regenerate Figure 5 (collision parallelogram separation)."""

from repro.experiments import run_experiment

from conftest import record


def test_fig05_parallelogram(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("fig5"), rounds=1, iterations=1)
    record(result, benchmark)
    for row in result.rows:
        assert row["mean_basis_error"] < 0.1
    methods = {r["method"] for r in result.rows}
    assert "lattice_fit" in methods
    assert "collinear_midpoints (paper)" in methods
