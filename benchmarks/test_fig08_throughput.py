"""Bench: regenerate Figure 8 (aggregate throughput vs tag count)."""

from repro.experiments import run_experiment

from conftest import record


def test_fig08_throughput(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("fig8", n_epochs=3),
        rounds=1, iterations=1)
    record(result, benchmark)
    # Orderings the paper reports: LF near the maximum, Buzz ~2x a
    # single channel, TDMA pinned at 1x.
    for row in result.rows:
        assert row["tdma_x"] == 1.0
        assert 1.5 < row["buzz_x"] < 2.5
        assert row["lf_x"] > row["buzz_x"]
        assert row["lf_x"] <= row["max_x"] + 1e-9
    last = result.rows[-1]
    # LF scales with the tag count (at 16 nodes the paper reports
    # 16.4x TDMA; our simulated collisions cost a bit more).
    assert last["lf_x"] > 0.75 * last["max_x"]
    assert last["lf_x"] / last["tdma_x"] > 10
    assert last["lf_x"] / last["buzz_x"] > 5
