"""Bench: regenerate Figure 9 (decoder-stage ablation)."""

from repro.experiments import run_experiment

from conftest import record


def test_fig09_breakdown(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("fig9", n_epochs=3),
        rounds=1, iterations=1)
    record(result, benchmark)
    for row in result.rows:
        # Each stage adds (or at least never costs) throughput.
        assert row["edge_iq_x"] >= row["edge_x"] * 0.95
        assert row["edge_iq_error_x"] >= row["edge_iq_x"] * 0.95
    # The gap matters most at high concurrency (Figure 9's story).
    last = result.rows[-1]
    assert last["edge_iq_error_x"] >= last["edge_x"]
