"""Bench: regenerate Figure 10 (throughput vs per-tag bitrate)."""

from repro.experiments import run_experiment

from conftest import record


def test_fig10_bitrate(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("fig10", n_epochs=2),
        rounds=1, iterations=1)
    record(result, benchmark)
    by_rate = {r["rate_x"]: r for r in result.rows}
    rates = sorted(by_rate)
    # Throughput grows through the moderate-rate region...
    assert by_rate[1.0]["edge_iq_error_x"] > \
        by_rate[rates[0]]["edge_iq_error_x"]
    # ...and crashes once edges can no longer interleave (the paper's
    # collapse past ~2x the reference rate).
    peak = max(r["edge_iq_error_x"] for r in result.rows)
    crash = by_rate[rates[-1]]["edge_iq_error_x"]
    assert crash < 0.65 * peak
