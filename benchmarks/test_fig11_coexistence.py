"""Bench: regenerate Figure 11 (slow/fast tag coexistence)."""

from repro.experiments import run_experiment

from conftest import record


def test_fig11_coexistence(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("fig11"), rounds=1, iterations=1)
    record(result, benchmark)
    # Figure 11's claim: slow nodes are not hurt by fast nodes (the
    # paper reports zero loss; our slow frames carry ~20 bits, so one
    # residual bit error already reads as 5%).
    slow_rows = [r for r in result.rows if r["rate_x"] <= 0.05]
    fast_rows = [r for r in result.rows if r["rate_x"] >= 0.5]
    assert slow_rows and fast_rows
    lossless = sum(1 for r in slow_rows if r["loss_rate"] == 0.0)
    assert lossless >= len(slow_rows) / 2
    for row in slow_rows:
        assert row["loss_rate"] < 0.25
    # Fast nodes reach a large fraction of their upper bound.
    for row in fast_rows:
        assert row["achieved_bps_x"] > 0.7 * row["upper_bound_x"]
