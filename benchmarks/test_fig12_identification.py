"""Bench: regenerate Figure 12 (node identification time)."""

from repro.experiments import run_experiment

from conftest import record


def test_fig12_identification(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("fig12", n_trials=3),
        rounds=1, iterations=1)
    record(result, benchmark)
    for row in result.rows:
        assert row["lf_x_id_airtime"] < row["buzz_x_id_airtime"] \
            < row["tdma_x_id_airtime"]
    last = result.rows[-1]
    # Paper: 17x vs TDMA and 9.5x vs Buzz at 16 tags; our TDMA model
    # (pure slotted ALOHA) is somewhat slower and Buzz's estimation
    # model somewhat cheaper, but the order-of-magnitude LF win holds.
    assert last["tdma_over_lf"] > 8
    assert last["buzz_over_lf"] > 2
