"""Bench: regenerate Figure 13 (energy efficiency, bits/uJ)."""

from repro.experiments import run_experiment

from conftest import record


def test_fig13_energy(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("fig13", n_epochs=2),
        rounds=1, iterations=1)
    record(result, benchmark)
    for row in result.rows:
        assert row["lf_bits_per_uj"] > row["buzz_bits_per_uj"] \
            > row["tdma_bits_per_uj"]
    last = result.rows[-1]
    # Paper: LF ~20x Buzz, ~two orders of magnitude over Gen 2.
    assert 10 < last["lf_bits_per_uj"] / last["buzz_bits_per_uj"] < 40
    assert last["lf_bits_per_uj"] / last["tdma_bits_per_uj"] > 60
    # Absolute scale near the paper's ~3000 bits/uJ.
    assert 1000 < last["lf_bits_per_uj"] < 6000
