"""Bench: regenerate Figure 14 (SNR vs BER, LF vs ASK)."""

from repro.experiments import run_experiment

from conftest import record


def test_fig14_snr_ber(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("fig14", n_bits=400, n_trials=3),
        rounds=1, iterations=1)
    record(result, benchmark)
    rows = result.rows
    # LF needs more SNR than ASK throughout the waterfall.
    worse = sum(1 for r in rows if r["lf_ber"] >= r["ask_ber"])
    assert worse >= len(rows) - 1
    # Both reach (near) zero by the top of the sweep, like the paper's
    # 15 dB point.
    assert rows[-1]["lf_ber"] < 0.02
    assert rows[-1]["ask_ber"] < 0.01
    # Monotone-ish waterfalls.
    assert rows[0]["lf_ber"] > rows[-1]["lf_ber"]
    assert rows[0]["ask_ber"] > rows[-1]["ask_ber"]
