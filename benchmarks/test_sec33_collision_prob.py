"""Bench: regenerate the Section 3.3 collision probabilities."""

import pytest

from repro.experiments import run_experiment

from conftest import record


def test_sec33_collision_prob(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("sec33"), rounds=1, iterations=1)
    record(result, benchmark)
    rows = {r["case"]: r for r in result.rows}
    two = rows["16 nodes @100kbps, 2-way"]
    three = rows["16 nodes @100kbps, 3-way"]
    assert two["analytic"] == pytest.approx(two["paper"], abs=0.02)
    assert three["analytic"] == pytest.approx(three["paper"],
                                              abs=0.01)
    assert two["monte_carlo"] == pytest.approx(two["analytic"],
                                               abs=0.02)
    # Three-way collisions are an order of magnitude rarer.
    assert three["analytic"] < two["analytic"] / 5
