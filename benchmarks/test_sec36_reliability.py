"""Bench (extension): Section 3.6's Broadcast-ACK reliability loop."""

from repro.experiments import run_experiment

from conftest import record


def test_sec36_reliability(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("sec36"), rounds=1, iterations=1)
    record(result, benchmark)
    for row in result.rows:
        assert row["delivery_ratio"] == 1.0
    # Epoch-level retransmission converges quickly: even the largest
    # network completes within a handful of epochs.
    assert result.rows[-1]["mean_epochs_to_complete"] <= 8
    # Small networks mostly deliver in the first epoch.
    assert result.rows[0]["first_epoch_delivery"] > 0.8
