"""Bench (extension): Section 5.2's reduced-rate scalability claim."""

from repro.experiments import run_experiment

from conftest import record


def test_sec52_scaling(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("sec52"), rounds=1, iterations=1)
    record(result, benchmark)
    analytic = {r["rate_x"]: r for r in result.rows
                if r["max_tags_p3_below_1pct"] > 0}
    # "a few hundred tags" at a tenth of the reference rate.
    assert analytic[0.1]["max_tags_p3_below_1pct"] >= 150
    # Capacity grows as the bitrate falls.
    caps = [analytic[x]["max_tags_p3_below_1pct"]
            for x in sorted(analytic, reverse=True)]
    assert caps == sorted(caps)
    # The empirical spot check: a 32-tag decode at reduced rate keeps
    # high goodput (double the paper's 16-tag testbed).
    empirical = result.rows[-1]
    assert empirical["empirical_n_tags"] >= 32
    assert empirical["empirical_goodput_fraction"] > 0.8
