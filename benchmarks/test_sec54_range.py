"""Bench: regenerate the Section 5.4 range-equivalence numbers."""

import pytest

from repro.experiments import run_experiment

from conftest import record


def test_sec54_range(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("sec54"), rounds=1, iterations=1)
    record(result, benchmark)
    by_ask = {row["ask_range_ft"]: row for row in result.rows[:2]}
    # Paper: 10 ft ASK ~ 8.1 ft LF; 30 ft ~ 23.7 ft.
    assert by_ask[10.0]["lf_range_ft"] == pytest.approx(8.0, abs=0.3)
    assert by_ask[30.0]["lf_range_ft"] == pytest.approx(23.8,
                                                        abs=0.5)
    # The full radar-equation cross-check row agrees on the ratio.
    assert result.rows[-1]["range_ratio"] == pytest.approx(
        by_ask[10.0]["range_ratio"], rel=1e-6)
