"""Bench (extension): Section 6's modulation-efficiency comparison."""

from repro.experiments import run_experiment

from conftest import record


def test_sec6_modulation(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("sec6"), rounds=1, iterations=1)
    record(result, benchmark)
    by_mod = {r["modulation"]: r for r in result.rows}
    ask = by_mod["ask (LF-Backscatter)"]
    fsk = by_mod["fsk"]
    qam = by_mod["qam16"]
    # FSK burns several times ASK's per-bit energy (multiple edge
    # transitions per bit, Section 6).
    assert fsk["energy_pj_per_bit"] > 3 * ask["energy_pj_per_bit"]
    # QAM trades toggles for a much bigger tag switch network.
    assert qam["tag_transistors"] > 5 * ask["tag_transistors"]
    assert qam["toggles_per_bit"] < ask["toggles_per_bit"]
