"""Multi-epoch session benchmark: warm-start caches vs cold restarts.

The tentpole scenario for :class:`repro.core.session.SessionDecoder`:
16 tags at 10 kbps with 40 ppm clock drift transmit for 8 consecutive
reader epochs.  The cold baseline decodes every epoch with a fresh
:class:`LFDecoder` (exactly what a stateless deployment would do); the
warm path decodes the same captures through one ``SessionDecoder``
whose trackers carry (rate, offset) hypotheses, k-means centroids,
lattice bases and frame polarity across epochs.

Numbers recorded in ``BENCH_decoder.json`` via ``run_bench.py``:

* ``steady_state_speedup`` — ratio of steady-state (epochs 2..7)
  per-epoch decode time, cold over warm, each denoised by taking the
  per-epoch minimum across rounds.
* ``warm_separate_fraction`` — the ``separate`` stage's share of warm
  steady-state stage time (the acceptance line is < 40%).

Timing assertions here are genuine performance gates: a heavily loaded
host can flake them, which is exactly the signal a perf benchmark is
for.  Correctness gates (warm output bit-identical to cold on stable
streams, for any worker count) do not depend on timing at all.
"""

import time

import numpy as np
import pytest

from conftest import sixteen_tag_synth
from repro.core import LFDecoder, LFDecoderConfig, SessionDecoder
from repro.core.engine import BatchDecoder

N_TAGS = 16
N_EPOCHS = 8
EPOCH_S = 0.006
ROUNDS = 5
STEADY = slice(2, N_EPOCHS)  # epochs with fully-populated caches


@pytest.fixture(scope="module")
def session_captures():
    """Eight consecutive 16-tag epochs plus the per-epoch ground truth."""
    synth = sixteen_tag_synth(drift_ppm=40.0, noise_std=0.015)
    captures = [synth.capture(EPOCH_S, epoch_index=i)
                for i in range(N_EPOCHS)]
    config = LFDecoderConfig(candidate_bitrates_bps=[10e3],
                             profile=synth.profile)
    return synth.profile, config, captures


def _truth_decoded(result, truth) -> bool:
    """True when a stream carries the truth's bits (either polarity)."""
    target = tuple(int(b) for b in truth.bits)
    n = len(target)
    if n == 0:
        return False
    inverse = tuple(1 - b for b in target)
    for stream in result.streams:
        bits = tuple(stream.bits.tolist())
        for off in range(0, max(1, len(bits) - n + 1)):
            window = bits[off:off + n]
            if window == target or window == inverse:
                return True
    return False


def _exact_tags(result, truths):
    return {t.tag_id for t in truths if _truth_decoded(result, t)}


def test_session_steady_state_speedup(benchmark, session_captures):
    profile, config, captures = session_captures

    warm_epoch_s = [[] for _ in range(N_EPOCHS)]
    warm_results = [None] * N_EPOCHS

    def warm_run():
        session = SessionDecoder(config, rng=123)
        for i, capture in enumerate(captures):
            t0 = time.perf_counter()
            result = session.decode_epoch(capture.trace)
            warm_epoch_s[i].append(time.perf_counter() - t0)
            warm_results[i] = result
        return session

    session = benchmark.pedantic(warm_run, rounds=ROUNDS, iterations=1)

    cold_epoch_s = [[] for _ in range(N_EPOCHS)]
    cold_results = [None] * N_EPOCHS
    for _ in range(ROUNDS):
        for i, capture in enumerate(captures):
            decoder = LFDecoder(config, rng=123)
            t0 = time.perf_counter()
            result = decoder.decode_epoch(capture.trace)
            cold_epoch_s[i].append(time.perf_counter() - t0)
            cold_results[i] = result

    # Per-epoch minimum across rounds: the decode is deterministic per
    # epoch, so the minimum is the run least perturbed by host load.
    warm_best = np.array([min(times) for times in warm_epoch_s])
    cold_best = np.array([min(times) for times in cold_epoch_s])
    steady_speedup = float(cold_best[STEADY].mean()
                           / warm_best[STEADY].mean())

    # The separate stage's share of warm steady-state stage time.
    separate_s = sum(warm_results[i].stage_timings.get("separate", 0.0)
                     for i in range(N_EPOCHS)[STEADY])
    stages_s = sum(sum(v for k, v in
                       warm_results[i].stage_timings.items()
                       if k != "total")
                   for i in range(N_EPOCHS)[STEADY])
    separate_fraction = separate_s / stages_s

    cache_stats = {}
    for i in range(N_EPOCHS)[STEADY]:
        for key, value in warm_results[i].cache_stats.items():
            cache_stats[key] = cache_stats.get(key, 0) + value

    benchmark.extra_info["steady_state_speedup"] = steady_speedup
    benchmark.extra_info["warm_separate_fraction"] = separate_fraction
    benchmark.extra_info["steady_cold_epoch_s"] = float(
        cold_best[STEADY].mean())
    benchmark.extra_info["steady_warm_epoch_s"] = float(
        warm_best[STEADY].mean())
    benchmark.extra_info["cache_stats"] = cache_stats
    benchmark.extra_info["n_trackers"] = session.n_trackers

    # Correctness before speed: on stable streams the warm path must
    # reproduce the cold path's bits.  A tag decoded exactly by both
    # paths carries identical bits by construction; the warm path may
    # lose at most a stray tag per session to churned collisions (it
    # typically *gains* several instead).
    lost = 0
    for i in range(N_EPOCHS)[STEADY]:
        truths = captures[i].truths
        cold_ok = _exact_tags(cold_results[i], truths)
        warm_ok = _exact_tags(warm_results[i], truths)
        lost += len(cold_ok - warm_ok)
        assert len(cold_ok) >= 8, \
            f"cold baseline collapsed at epoch {i}: {len(cold_ok)}/16"
    assert lost <= 2, f"warm path lost {lost} cold-decoded tags"

    # The warm caches must actually be doing the work.
    assert cache_stats.get("fold_hits", 0) >= 6 * (N_TAGS // 2)
    assert cache_stats.get("kmeans_hits", 0) > \
        cache_stats.get("kmeans_misses", 0)

    # The acceptance line was 1.5x when every cold decode paid full
    # fidelity; the adaptive ladder now claims much of the same savings
    # cold (planarity pre-gates, subsampled sweeps, banded Viterbi), so
    # the cache's *relative* advantage is structurally smaller even
    # though warm epochs got faster in absolute terms.  The line only
    # asserts the caches still pay their way at all; the recorded
    # steady_state_speedup in extra_info is the number to track.
    assert steady_speedup >= 1.05, (
        f"steady-state warm speedup {steady_speedup:.3f} below the "
        f"1.05x acceptance line")
    assert separate_fraction < 0.40, (
        f"separate stage is {separate_fraction:.0%} of warm stage time")


def test_warm_output_matches_cold_for_any_worker_count(session_captures):
    """Cold results are transport- and worker-count-invariant, and the
    warm path reproduces them bit-for-bit on stable streams."""
    profile, config, captures = session_captures
    traces = [c.trace for c in captures]

    serial = BatchDecoder(config, seed=123, max_workers=1) \
        .decode_epochs(traces)
    pooled = BatchDecoder(config, seed=123, max_workers=3) \
        .decode_epochs(traces)
    assert [
        [s.bits.tolist() for s in r.streams] for r in serial
    ] == [
        [s.bits.tolist() for s in r.streams] for r in pooled
    ], "cold decode differs between worker counts"

    session = SessionDecoder(config, rng=123)
    warm = [session.decode_epoch(t) for t in traces]
    for i, capture in enumerate(captures):
        cold_ok = _exact_tags(serial[i], capture.truths)
        warm_ok = _exact_tags(warm[i], capture.truths)
        for tag_id in cold_ok & warm_ok:
            truth = next(t for t in capture.truths
                         if t.tag_id == tag_id)
            assert _truth_decoded(warm[i], truth) \
                and _truth_decoded(serial[i], truth)
