"""Bench: regenerate Table 1 (anchor-bit single-node recovery)."""

from repro.experiments import run_experiment

from conftest import record


def test_table1_anchor(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("table1"), rounds=1, iterations=1)
    record(result, benchmark)
    row = result.rows[0]
    assert row["bit_errors"] == 0
    assert row["anchor_resolved"]
    assert row["sent_bits"] == row["decoded_bits"]
