"""Bench: regenerate Table 2 (IQ separation accuracy, 3 settings)."""

from repro.experiments import run_experiment

from conftest import record


def test_table2_separation(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("table2", n_trials=12),
        rounds=1, iterations=1)
    record(result, benchmark)
    by_setting = {r["setting"]: r["accuracy"] for r in result.rows}
    clean = by_setting["fast rate, no background"]
    background = by_setting["fast rate, background nodes"]
    slow = by_setting["slow rate, no background"]
    # The paper's dominant ordering: background chatter hurts most.
    assert background < clean
    # The slow-rate averaging gain is muted in our regime — collider
    # losses are dominated by degenerate (near-parallel) IQ geometry
    # rather than differential noise — so slow ~ clean within trial
    # noise rather than clearly above it.
    assert slow >= clean - 0.15
    assert clean > 0.6
