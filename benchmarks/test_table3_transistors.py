"""Bench: regenerate Table 3 (tag hardware complexity)."""

from repro.experiments import run_experiment

from conftest import record


def test_table3_transistors(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("table3"), rounds=1, iterations=1)
    record(result, benchmark)
    for row in result.rows:
        assert row["transistors_without_fifo"] == \
            row["paper_without_fifo"]
        assert row["transistors_with_1k_fifo"] == \
            row["paper_with_fifo"]
