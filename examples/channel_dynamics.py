#!/usr/bin/env python3
"""Channel dynamics: why estimation-free decoding matters (Figure 1).

A person walks around the room while six tags stream.  Buzz estimated
every tag's channel coefficient at t=0; by the time it transmits, the
coefficients have wandered and its least-squares inversion starts
mis-decoding.  LF-Backscatter never estimated anything: each epoch's
cluster geometry is learned from that epoch's own differentials, so the
decode is unaffected as long as the channel holds still for a few
milliseconds at a time (the paper's only channel assumption).

Run:  python examples/channel_dynamics.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.analysis.throughput import score_epoch
from repro.baselines.buzz import BuzzSimulator
from repro.phy.dynamics import people_movement


def main() -> None:
    profile = repro.SimulationProfile.fast()
    n_tags = 6
    rng = np.random.default_rng(1)

    base = repro.random_coefficients(n_tags, rng=rng)
    trajectories = {
        k: people_movement(base[k], duration_s=20.0,
                           wander_scale=0.04, rng=k)
        for k in range(n_tags)}
    channel = repro.ChannelModel(
        {k: base[k] for k in range(n_tags)},
        environment_offset=0.5 + 0.3j,
        trajectories=trajectories)

    # --- Buzz: estimate once, decode later with stale coefficients.
    buzz = BuzzSimulator(channel, noise_std=0.01, rng=2)
    estimates = buzz.estimate_channels(at_time_s=0.0)
    messages = {k: rng.integers(0, 2, 64).astype(np.int8)
                for k in range(n_tags)}
    print("Buzz (channel estimated once at t=0):")
    print(f"  {'t (s)':>6s} {'bit errors':>11s}")
    for t in (0.0, 5.0, 12.0, 18.0):
        decoded, _ = buzz.transmit(messages, at_time_s=t,
                                   estimated=estimates)
        errors = sum(int(np.count_nonzero(decoded[k] != messages[k]))
                     for k in range(n_tags))
        print(f"  {t:6.1f} {errors:11d} / {n_tags * 64}")

    # --- LF: decode the same moving channel, epoch by epoch.
    tags = [repro.LFTag(
        repro.TagConfig(tag_id=k, bitrate_bps=10e3,
                        channel_coefficient=base[k]),
        profile=profile,
        rng=np.random.default_rng(rng.integers(0, 2 ** 63)))
        for k in range(n_tags)]
    sim = repro.NetworkSimulator(tags, channel, profile=profile,
                                 noise_std=0.01, rng=3)
    decoder = repro.LFDecoder(
        repro.LFDecoderConfig(candidate_bitrates_bps=[10e3],
                              profile=profile),
        rng=4)
    print("\nLF-Backscatter (no estimation; same moving channel):")
    print(f"  {'epoch t (s)':>11s} {'goodput':>8s}")
    for index, t in enumerate((0.0, 5.0, 12.0, 18.0)):
        # Place the 10 ms epoch at time t within the wander.
        capture = sim.run_epoch(0.010,
                                epoch_index=int(t / 0.010))
        report = score_epoch(capture,
                             decoder.decode_epoch(capture.trace))
        print(f"  {t:11.1f} {report.goodput_fraction:8.2f}")

    print("\nBuzz degrades as its estimates go stale; LF's per-epoch "
          "cluster geometry\nis self-contained (Section 2.2 vs 2.4).")


if __name__ == "__main__":
    main()
