#!/usr/bin/env python3
"""Quickstart: simulate four laissez-faire tags and decode them.

Demonstrates the core loop of the library:

1. place tags in front of a simulated reader (complex channel
   coefficients per tag + environment reflection),
2. run one carrier epoch — every tag blindly transmits as soon as it
   sees the carrier, at its own rate, from a naturally-jittered offset,
3. decode the combined IQ capture with the LF-Backscatter pipeline,
4. compare against ground truth.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

import repro


def main() -> None:
    profile = repro.SimulationProfile.fast()   # 2.5 Msps, 10 kbps tags
    n_tags = 4
    rng = np.random.default_rng(2015)

    # 1. Channel: one complex coefficient per tag, plus the static
    #    environment reflection (Equation 1 of the paper).
    coefficients = repro.random_coefficients(n_tags, rng=rng)
    channel = repro.ChannelModel(
        {k: coefficients[k] for k in range(n_tags)},
        environment_offset=0.5 + 0.3j)

    # 2. Tags: blind NRZ ASK transmitters.  No MAC, no buffers — each
    #    tag starts when its comparator fires and streams its frame.
    tags = [
        repro.LFTag(
            repro.TagConfig(tag_id=k, bitrate_bps=10e3,
                            channel_coefficient=coefficients[k]),
            profile=profile,
            rng=np.random.default_rng(rng.integers(0, 2 ** 63)))
        for k in range(n_tags)
    ]

    # 3. One 10 ms epoch through a noisy reader front end.
    simulator = repro.NetworkSimulator(tags, channel, profile=profile,
                                       noise_std=0.01, rng=rng)
    capture = simulator.run_epoch(duration_s=0.010)
    print(f"captured {len(capture.trace)} IQ samples "
          f"({capture.duration_s * 1e3:.1f} ms at "
          f"{capture.trace.sample_rate_hz / 1e6:.1f} Msps)")

    # 4. Decode: edge detection -> eye-pattern folding -> collision
    #    handling -> Viterbi -> anchor disambiguation.
    decoder = repro.LFDecoder(
        repro.LFDecoderConfig(candidate_bitrates_bps=[10e3],
                              profile=profile),
        rng=rng)
    result = decoder.decode_epoch(capture.trace)
    print(f"decoded {result.n_streams} concurrent streams "
          f"({result.n_edges_detected} edges, "
          f"{result.n_collisions_detected} collisions detected)")

    # 5. Score against ground truth.
    from repro.analysis.throughput import match_streams
    matches = match_streams(capture, result)
    total_bits = sum(m.bits_sent for m in matches)
    correct = sum(m.bits_correct for m in matches)
    for match in matches:
        status = "ok" if match.matched else "LOST"
        print(f"  tag {match.tag_id}: {status:4s} "
              f"{match.bits_correct}/{match.bits_sent} bits correct")
    print(f"aggregate goodput: {correct / capture.duration_s / 1e3:.1f} "
          f"kbps ({100 * correct / total_bits:.1f}% of transmitted)")


if __name__ == "__main__":
    main()
