#!/usr/bin/env python3
"""Rate adaptation: the reader talks the network down from a rate that
is too hot, then back up (Section 3.6).

Sixteen tags start at 2.5x the reference rate — deep inside Figure 10's
crash region, where edges can no longer interleave.  The reader's
RateController watches each epoch's decode health and broadcasts
bitrate reductions until the network is healthy, then probes back up
after a clean streak.

Run:  python examples/rate_adaptation.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.analysis.throughput import score_epoch
from repro.link.rate_control import RateController


def run_epoch_at(rate: float, n_tags: int, profile, rng):
    coeffs = repro.random_coefficients(n_tags, rng=rng)
    channel = repro.ChannelModel(
        {k: coeffs[k] for k in range(n_tags)},
        environment_offset=0.5 + 0.3j)
    tags = [repro.LFTag(
        repro.TagConfig(tag_id=k, bitrate_bps=rate,
                        channel_coefficient=coeffs[k]),
        profile=profile,
        rng=np.random.default_rng(rng.integers(0, 2 ** 63)))
        for k in range(n_tags)]
    sim = repro.NetworkSimulator(tags, channel, profile=profile,
                                 noise_std=0.01,
                                 rng=np.random.default_rng(
                                     rng.integers(0, 2 ** 63)))
    duration = 130.0 / rate
    capture = sim.run_epoch(duration)
    decoder = repro.LFDecoder(
        repro.LFDecoderConfig(candidate_bitrates_bps=[rate],
                              profile=profile),
        rng=np.random.default_rng(rng.integers(0, 2 ** 63)))
    result = decoder.decode_epoch(capture.trace)
    report = score_epoch(capture, result)
    return result, report


def main() -> None:
    profile = repro.SimulationProfile.fast()
    n_tags = 16
    rng = np.random.default_rng(36)
    hot_rate = profile.default_bitrate_bps * 2.5   # crash region

    controller = RateController(hot_rate, profile=profile,
                                recover_after=2)
    print(f"{'epoch':>5s} {'rate (x)':>9s} {'goodput':>8s} "
          f"{'streams':>8s}  decision")
    for epoch in range(8):
        rate = controller.current_bitrate_bps
        result, report = run_epoch_at(rate, n_tags, profile, rng)
        decision = controller.observe(result,
                                      expected_streams=n_tags)
        print(f"{epoch:5d} {rate / profile.default_bitrate_bps:9.2f} "
              f"{report.goodput_fraction:8.2f} "
              f"{result.n_streams:8d}  "
              f"{'-> ' + str(decision.max_bitrate_bps / profile.default_bitrate_bps) + 'x ' if decision.changed else ''}"
              f"({decision.reason})")

    print("\nthe controller halves the network rate while decode "
          "health is poor,\nthen steps back up after clean epochs — "
          "the paper's broadcast\nrate-reduction hook (Section 3.6).")


if __name__ == "__main__":
    main()
