#!/usr/bin/env python3
"""Record-and-replay: save an IQ capture to disk, decode it offline.

The decoder consumes raw complex baseband samples, so the workflow with
real SDR recordings is identical: record an epoch at the reader, store
it, and run the pipeline offline — here the "recording" comes from the
simulator, and we also demonstrate decoding a deliberately degraded
copy (extra noise injected post-capture) to see the pipeline's
robustness margin.

Run:  python examples/record_and_replay.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

import repro
from repro.analysis.throughput import match_streams
from repro.utils.serialization import load_trace, save_trace


def decode_and_score(trace, capture, decoder) -> float:
    result = decoder.decode_epoch(trace)
    matches = match_streams(capture, result)
    sent = sum(m.bits_sent for m in matches)
    correct = sum(m.bits_correct for m in matches)
    return correct / sent if sent else 0.0


def main() -> None:
    profile = repro.SimulationProfile.fast()
    rng = np.random.default_rng(99)

    coefficients = repro.random_coefficients(3, rng=rng)
    channel = repro.ChannelModel(
        {k: coefficients[k] for k in range(3)},
        environment_offset=0.5 + 0.3j)
    tags = [repro.LFTag(
        repro.TagConfig(tag_id=k, bitrate_bps=10e3,
                        channel_coefficient=coefficients[k]),
        profile=profile,
        rng=np.random.default_rng(rng.integers(0, 2 ** 63)))
        for k in range(3)]
    simulator = repro.NetworkSimulator(tags, channel, profile=profile,
                                       noise_std=0.008, rng=rng)
    capture = simulator.run_epoch(0.012)

    with tempfile.TemporaryDirectory() as tmp:
        path = save_trace(capture.trace, Path(tmp) / "epoch0.npz")
        size_kb = path.stat().st_size / 1024
        print(f"recorded {len(capture.trace)} samples -> {path.name} "
              f"({size_kb:.0f} KiB compressed)")

        recording = load_trace(path)
        decoder = repro.LFDecoder(
            repro.LFDecoderConfig(candidate_bitrates_bps=[10e3],
                                  profile=profile),
            rng=rng)
        clean_score = decode_and_score(recording, capture, decoder)
        print(f"offline decode of the recording: "
              f"{100 * clean_score:.1f}% of bits recovered")

        # Replay with extra injected noise to probe the margin.
        print("\nrobustness sweep (extra noise injected post-capture):")
        for extra_noise in (0.01, 0.03, 0.06):
            noisy = repro.IQTrace(
                samples=recording.samples + (
                    rng.normal(0, extra_noise / np.sqrt(2),
                               len(recording))
                    + 1j * rng.normal(0, extra_noise / np.sqrt(2),
                                      len(recording))),
                sample_rate_hz=recording.sample_rate_hz)
            score = decode_and_score(noisy, capture, decoder)
            print(f"  +{extra_noise:.2f} noise std: "
                  f"{100 * score:5.1f}% recovered")


if __name__ == "__main__":
    main()
