#!/usr/bin/env python3
"""Reproduce every artefact of the paper in one run.

Runs all registered experiments (the paper's 16 tables/figures plus
this reproduction's extensions and ablations), prints each regenerated
table, and writes a combined report plus per-experiment JSON files.

Run:  python examples/reproduce_all.py [--quick] [--out DIR]
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.experiments import REGISTRY, run_experiment
from repro.utils.serialization import save_results

#: Run order: paper artefacts in paper order, then extensions.
ORDER = [
    "fig1", "fig2", "fig4", "fig5", "table1", "table2",
    "fig8", "fig9", "fig10", "fig11", "fig12",
    "table3", "fig13", "fig14", "sec33", "sec54",
    "sec36", "sec52", "sec6", "ablation_drift", "ablation_analog",
]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="reduced-size runs (~1 minute total)")
    parser.add_argument("--out", default="reproduction_report",
                        help="output directory for the report")
    args = parser.parse_args(argv)

    missing = set(ORDER) ^ set(REGISTRY)
    if missing:
        print(f"warning: registry/order mismatch: {sorted(missing)}",
              file=sys.stderr)

    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    report_lines = []
    total_start = time.perf_counter()
    for experiment_id in ORDER:
        if experiment_id not in REGISTRY:
            continue
        start = time.perf_counter()
        result = run_experiment(experiment_id, quick=args.quick)
        elapsed = time.perf_counter() - start
        table = result.format_table()
        print(table)
        print(f"({elapsed:.1f}s)\n")
        report_lines.append(table)
        report_lines.append(f"({elapsed:.1f}s)\n")
        save_results({
            "experiment_id": result.experiment_id,
            "description": result.description,
            "rows": result.rows,
            "paper_reference": result.paper_reference,
            "notes": result.notes,
            "elapsed_s": elapsed,
        }, out_dir / f"{experiment_id}.json")

    total = time.perf_counter() - total_start
    summary = (f"reproduced {len(ORDER)} artefacts in {total:.0f}s "
               f"({'quick' if args.quick else 'full'} mode)")
    print(summary)
    report_lines.append(summary)
    (out_dir / "report.txt").write_text("\n".join(report_lines) + "\n")
    print(f"report written to {out_dir}/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
