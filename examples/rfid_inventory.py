#!/usr/bin/env python3
"""RFID inventory: read every tag's EPC identifier, three ways.

The canonical backscatter application (Section 5.2): N tags must each
deliver a 96-bit EPC identifier (plus CRC-5) reliably.  This example
races the three protocols the paper compares:

* LF-Backscatter — all tags blast concurrently each epoch, CRC-checked,
  retransmitting with fresh random offsets until read (measured
  end-to-end through the real simulator + decoder);
* stripped EPC Gen 2 TDMA — framed slotted ALOHA;
* Buzz — channel estimation plus lock-step randomized retransmission.

Run:  python examples/rfid_inventory.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.analysis.latency import LFIdentification
from repro.baselines.buzz import BuzzConfig, BuzzSimulator
from repro.baselines.tdma import TdmaConfig, TdmaSimulator
from repro.phy.channel import ChannelModel, random_coefficients


def main() -> None:
    profile = repro.SimulationProfile.fast()
    rate = profile.default_bitrate_bps
    rng = np.random.default_rng(42)
    id_airtime = (96 + 5) / rate  # one identifier's raw airtime

    print(f"{'tags':>5s} {'LF (ms)':>10s} {'Buzz (ms)':>10s} "
          f"{'TDMA (ms)':>10s} {'TDMA/LF':>8s}")
    for n_tags in (4, 8, 12, 16):
        ident = LFIdentification(
            n_tags, bitrate_bps=rate, profile=profile,
            rng=np.random.default_rng(rng.integers(0, 2 ** 63)))
        lf_result = ident.run()
        assert lf_result.complete, "LF inventory did not finish"
        lf_ms = lf_result.elapsed_s * 1e3

        tdma = TdmaSimulator(TdmaConfig(bitrate_bps=rate),
                             rng=np.random.default_rng(
                                 rng.integers(0, 2 ** 63)))
        tdma_ms = np.mean([tdma.identification_time_s(n_tags)
                           for _ in range(10)]) * 1e3

        coeffs = random_coefficients(n_tags, rng=rng)
        buzz = BuzzSimulator(
            ChannelModel({k: c for k, c in enumerate(coeffs)}),
            BuzzConfig(bitrate_bps=rate), rng=rng)
        buzz_ms = buzz.identification_time_s(n_tags) * 1e3

        print(f"{n_tags:5d} {lf_ms:10.2f} {buzz_ms:10.2f} "
              f"{tdma_ms:10.2f} {tdma_ms / lf_ms:8.1f}x")

    print(f"\n(one identifier's airtime is {id_airtime * 1e3:.2f} ms "
          "at this bitrate; LF reads every tag in a handful of "
          "concurrent epochs while TDMA serializes slots and Buzz "
          "pays estimation plus lock-step retransmission)")


if __name__ == "__main__":
    main()
