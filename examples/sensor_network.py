#!/usr/bin/env python3
"""Heterogeneous sensor network: a slow harvesting sensor next to a
fast streaming sensor.

This is the scenario the paper's introduction motivates: a battery-less
temperature sensor that samples at a trickle and must stay under a few
micro-watts, sharing the air with a data-rich sensor streaming at the
full rate.  Laissez-faire lets both transmit blindly; the reader's
eye-pattern fold separates the rates, and the slow sensor pays no
protocol cost for the fast one's presence.

The temperature sensor transmits 16-bit ADC words from a counter-like
source (a sense-and-transmit loop with no buffering); the streaming
sensor sends random payload standing in for compressed audio.

Run:  python examples/sensor_network.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.analysis.throughput import match_streams
from repro.hardware.power import default_tag_power_w


def main() -> None:
    profile = repro.SimulationProfile.fast()
    rng = np.random.default_rng(7)

    slow_rate = 200.0      # the "2 kbps at 25 Msps" class of sensor
    fast_rate = 10e3       # full-rate streaming sensor

    coefficients = repro.random_coefficients(2, min_separation=0.03,
                                             rng=rng)
    channel = repro.ChannelModel(
        {0: coefficients[0], 1: coefficients[1]},
        environment_offset=0.5 + 0.3j)

    temperature_sensor = repro.LFTag(
        repro.TagConfig(tag_id=0, bitrate_bps=slow_rate,
                        channel_coefficient=coefficients[0]),
        payload_source=repro.CounterPayload(word_bits=16, start=4096),
        profile=profile,
        rng=np.random.default_rng(rng.integers(0, 2 ** 63)))
    audio_sensor = repro.LFTag(
        repro.TagConfig(tag_id=1, bitrate_bps=fast_rate,
                        channel_coefficient=coefficients[1]),
        profile=profile,
        rng=np.random.default_rng(rng.integers(0, 2 ** 63)))

    simulator = repro.NetworkSimulator(
        [temperature_sensor, audio_sensor], channel, profile=profile,
        noise_std=0.01, rng=rng)

    # Epoch long enough for the slow sensor to deliver two ADC words.
    duration = 45.0 / slow_rate
    capture = simulator.run_epoch(duration)

    decoder = repro.LFDecoder(
        repro.LFDecoderConfig(
            candidate_bitrates_bps=[slow_rate, fast_rate],
            profile=profile),
        rng=rng)
    result = decoder.decode_epoch(capture.trace)
    matches = {m.tag_id: m for m in match_streams(capture, result)}

    print(f"epoch: {duration * 1e3:.0f} ms, "
          f"{len(capture.trace)} samples\n")

    slow = matches[0]
    print("temperature sensor (slow, harvesting-class):")
    print(f"  rate: {slow_rate:.0f} bps, "
          f"loss rate: {slow.bit_errors / slow.bits_sent:.3f}")
    if slow.matched and slow.stream_index is not None:
        payload = result.streams[slow.stream_index].payload_bits()
        words = [int("".join(map(str, payload[k:k + 16])), 2)
                 for k in range(0, len(payload) - 15, 16)]
        print(f"  decoded ADC words: {words[:4]}")
    power = default_tag_power_w("lf", slow_rate)
    print(f"  modeled radio power at this rate: {power * 1e6:.1f} uW")

    fast = matches[1]
    print("\naudio sensor (fast, streaming):")
    print(f"  rate: {fast_rate / 1e3:.0f} kbps, "
          f"goodput: {fast.bits_correct / duration / 1e3:.2f} kbps, "
          f"loss rate: {fast.bit_errors / fast.bits_sent:.3f}")
    power = default_tag_power_w("lf", fast_rate)
    print(f"  modeled radio power at this rate: {power * 1e6:.1f} uW")

    print("\nthe slow sensor transmitted blindly through the fast "
          "sensor's stream —\nno MAC, no slotting, no receive circuit "
          "(the laissez-faire model).")


if __name__ == "__main__":
    main()
