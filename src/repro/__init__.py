"""LF-Backscatter: fully asymmetric backscatter communication.

A from-scratch Python reproduction of *Laissez-Faire: Fully Asymmetric
Backscatter Communication* (Hu, Zhang, Ganesan — SIGCOMM 2015).

Quick start::

    import repro

    profile = repro.SimulationProfile.fast()
    configs = [repro.TagConfig(tag_id=k, bitrate_bps=10e3)
               for k in range(2)]
    channel = repro.ChannelModel.with_random_coefficients(
        [c.tag_id for c in configs], rng=1)
    tags = [repro.LFTag(c.with_coefficient(channel.coefficients[c.tag_id]),
                        profile=profile, rng=c.tag_id)
            for c in configs]
    sim = repro.NetworkSimulator(tags, channel, profile=profile,
                                 noise_std=0.005, rng=7)
    capture = sim.run_epoch(duration_s=0.01)

    decoder = repro.LFDecoder(repro.LFDecoderConfig(
        candidate_bitrates_bps=[10e3], profile=profile))
    result = decoder.decode_epoch(capture.trace)
    for stream in result.streams:
        print(stream.bitrate_bps, stream.payload_bits())

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for
the paper-vs-measured record of every table and figure.
"""

from . import constants
from .errors import (
    ReproError,
    ConfigurationError,
    SignalError,
    SignalQualityError,
    NonFiniteSignalError,
    SaturatedSignalError,
    FlatlineSignalError,
    DecodeError,
    CollisionUnresolvableError,
    ChannelEstimationError,
    HardwareModelError,
)
from .types import (
    SimulationProfile,
    IQTrace,
    TagConfig,
    DecodedStream,
    StreamFault,
    EpochResult,
    ThroughputReport,
    bits_from_string,
    bits_to_string,
)
from .phy import (
    ChannelModel,
    random_coefficients,
    CapacitorModel,
    ComparatorJitterModel,
    DriftingClock,
    EpochSchedule,
    LinkBudget,
    equivalent_range,
)
from .tags import (
    LFTag,
    AskTag,
    TdmaTag,
    BuzzTag,
    FixedPayload,
    RandomPayload,
    CounterPayload,
    UniformOffsetModel,
)
from .reader import (
    NetworkSimulator,
    ReaderFrontend,
    EpochCapture,
    TagTruth,
)
from .core import (
    LFDecoder,
    LFDecoderConfig,
    EdgeDetector,
    EdgeDetectorConfig,
    ViterbiDecoder,
    BatchDecoder,
    EpochOutcome,
    TrialSpec,
)
from .robustness import (
    GuardConfig,
    TraceHealth,
    sanitize_trace,
    apply_impairments,
    impair_capture,
    random_cocktail,
)

__version__ = "1.0.0"

__all__ = [
    "constants",
    # errors
    "ReproError",
    "ConfigurationError",
    "SignalError",
    "SignalQualityError",
    "NonFiniteSignalError",
    "SaturatedSignalError",
    "FlatlineSignalError",
    "DecodeError",
    "CollisionUnresolvableError",
    "ChannelEstimationError",
    "HardwareModelError",
    # types
    "SimulationProfile",
    "IQTrace",
    "TagConfig",
    "DecodedStream",
    "StreamFault",
    "EpochResult",
    "ThroughputReport",
    "bits_from_string",
    "bits_to_string",
    # phy
    "ChannelModel",
    "random_coefficients",
    "CapacitorModel",
    "ComparatorJitterModel",
    "DriftingClock",
    "EpochSchedule",
    "LinkBudget",
    "equivalent_range",
    # tags
    "LFTag",
    "AskTag",
    "TdmaTag",
    "BuzzTag",
    "FixedPayload",
    "RandomPayload",
    "CounterPayload",
    "UniformOffsetModel",
    # reader
    "NetworkSimulator",
    "ReaderFrontend",
    "EpochCapture",
    "TagTruth",
    # core
    "LFDecoder",
    "LFDecoderConfig",
    "EdgeDetector",
    "EdgeDetectorConfig",
    "ViterbiDecoder",
    "BatchDecoder",
    "EpochOutcome",
    "TrialSpec",
    # robustness
    "GuardConfig",
    "TraceHealth",
    "sanitize_trace",
    "apply_impairments",
    "impair_capture",
    "random_cocktail",
    "__version__",
]
