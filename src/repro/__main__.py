"""Command-line interface: ``python -m repro``.

Subcommands:

* ``list`` — show every registered experiment (paper artefacts and
  extensions/ablations);
* ``run <id> [--quick] [--save PATH]`` — run one experiment and print
  the regenerated table;
* ``decode <trace.npz> --bitrates R[,R...]`` — decode a recorded IQ
  capture offline and print the recovered streams.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import __version__
from .core.pipeline import LFDecoder, LFDecoderConfig
from .errors import ReproError
from .experiments import REGISTRY, run_experiment
from .types import SimulationProfile, bits_to_string
from .utils.serialization import load_trace, save_results


def _cmd_list(_: argparse.Namespace) -> int:
    paper = sorted(k for k in REGISTRY
                   if k.startswith(("fig", "table"))
                   or k in ("sec33", "sec54"))
    extensions = sorted(set(REGISTRY) - set(paper))
    print("paper artefacts:")
    for key in paper:
        print(f"  {key}")
    print("extensions / ablations:")
    for key in extensions:
        print(f"  {key}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    result = run_experiment(args.experiment, quick=args.quick)
    print(result.format_table())
    if args.save:
        payload = {
            "experiment_id": result.experiment_id,
            "description": result.description,
            "rows": result.rows,
            "paper_reference": result.paper_reference,
            "notes": result.notes,
        }
        path = save_results(payload, args.save)
        print(f"\nsaved to {path}")
    return 0


def _cmd_decode(args: argparse.Namespace) -> int:
    trace = load_trace(args.trace)
    bitrates = [float(r) for r in args.bitrates.split(",")]
    profile = SimulationProfile(
        sample_rate_hz=trace.sample_rate_hz,
        base_rate_bps=args.base_rate,
        default_bitrate_bps=max(bitrates))
    decoder = LFDecoder(LFDecoderConfig(
        candidate_bitrates_bps=bitrates, profile=profile))
    result = decoder.decode_epoch(trace)
    print(f"{result.n_streams} stream(s) decoded "
          f"({result.n_edges_detected} edges, "
          f"{result.n_collisions_detected} collisions, "
          f"{result.n_collisions_resolved} resolved)")
    health = result.trace_health
    if health is not None and health.verdict != "clean":
        notes = "; ".join(health.notes) if health.notes else (
            f"{health.n_interpolated} interpolated, "
            f"{health.n_excised} excised, "
            f"{health.n_clipped} clipped samples")
        print(f"  trace health: {health.verdict} — {notes}")
    for fault in result.degraded_streams:
        if not fault.expected:
            print(f"  fault [{fault.stage}] {fault.error_type}: "
                  f"{fault.message}")
    for i, stream in enumerate(result.streams):
        payload = stream.payload_bits()
        shown = bits_to_string(payload[:64])
        suffix = "..." if payload.size > 64 else ""
        print(f"  [{i}] {stream.bitrate_bps:.0f} bps, offset "
              f"{stream.offset_samples:.1f} samples, confidence "
              f"{stream.confidence:.2f}"
              f"{' (collided)' if stream.collided else ''}")
        print(f"      payload[{payload.size}]: {shown}{suffix}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LF-Backscatter reproduction (SIGCOMM 2015)")
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run_p = sub.add_parser("run", help="run one experiment")
    run_p.add_argument("experiment", choices=sorted(REGISTRY))
    run_p.add_argument("--quick", action="store_true",
                       help="reduced-size run for a fast look")
    run_p.add_argument("--save", metavar="PATH",
                       help="also write the rows as JSON")

    dec_p = sub.add_parser("decode",
                           help="decode a recorded IQ capture (.npz)")
    dec_p.add_argument("trace", help="path to a trace saved with "
                                     "repro.utils.serialization")
    dec_p.add_argument("--bitrates", required=True,
                       help="comma-separated candidate bitrates in bps")
    dec_p.add_argument("--base-rate", type=float, default=10.0,
                       help="protocol base rate in bps (default 10)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {"list": _cmd_list, "run": _cmd_run,
                "decode": _cmd_decode}
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
