"""Evaluation machinery: scoring, probabilities, latency, BER, range."""

from .throughput import match_streams, score_epoch, lf_throughput_sweep
from .collision_prob import (
    collision_probability,
    collision_probability_mc,
)
from .latency import LFIdentification, crc5, append_crc5, check_crc5
from .ber import ber_sweep, fitted_ber_curve, snr_gap_db
from .link_budget import range_equivalents

__all__ = [
    "match_streams",
    "score_epoch",
    "lf_throughput_sweep",
    "collision_probability",
    "collision_probability_mc",
    "LFIdentification",
    "crc5",
    "append_crc5",
    "check_crc5",
    "ber_sweep",
    "fitted_ber_curve",
    "snr_gap_db",
    "range_equivalents",
]
