"""Gradient-free decoder auto-tuning for link-margin signoff.

The decoder exposes a handful of scalar knobs — header-match
thresholds, fidelity-gate margins, the Viterbi band, equalizer
regularization, guard-interpolation windows — whose defaults were set
on the paper's clean testbed regime.  Other regimes (low SNR, heavy
drift, multipath) prefer different settings: the analog-fallback
ablation already showed ``min_header_score=0.6`` acquiring streams the
default 0.75 rejects at low SNR.

:func:`autotune` runs plain coordinate descent over a discrete knob
registry against a throughput-vs-BER objective, evaluated on a
*scenario family* (a tuple of pinned :class:`ScenarioSpec` s rendered
through the unified factory).  Every candidate evaluation dispatches
through the sweep layer, captures and decoder seeds are pinned per
spec (identical across candidates), and scores are cached, so a tune
is deterministic and re-runnable.

The objective is ``goodput_bps - ber_weight_bps * error_fraction``:
decoded-correct bits per second, charged one weight's worth of
throughput per unit of bit-error fraction.  The default weight (one
per-tag bitrate) makes "decode one more tag's worth of bits" and
"avoid a full-rate stream of errors" trade at par.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..types import SimulationProfile

__all__ = ["Knob", "DEFAULT_KNOBS", "SCENARIO_FAMILIES",
           "default_params", "build_decoder_config", "TuneResult",
           "autotune"]


@dataclass(frozen=True)
class Knob:
    """One tunable decoder parameter and its candidate settings.

    ``name`` is either a plain :class:`LFDecoderConfig` field or a
    dotted path into a sub-config: ``fidelity.*``
    (:class:`FidelityPolicy`), ``equalizer.*``
    (:class:`EqualizerConfig`), ``guard.*`` (:class:`GuardConfig`).
    """

    name: str
    values: Tuple


#: The signoff tuning surface.  Candidate lists bracket each default.
DEFAULT_KNOBS: Tuple[Knob, ...] = (
    Knob("min_header_score", (0.55, 0.6, 0.65, 0.7, 0.75)),
    Knob("refine_window_fraction", (0.6, 0.7, 0.8, 0.9)),
    Knob("collision_guard_extra", (1, 2, 3, 5)),
    Knob("fidelity.pregate_margin", (0.25, 0.5, 0.75, 0.9)),
    Knob("fidelity.viterbi_band_margin", (1e-09, 0.05, 0.1)),
    Knob("enable_equalizer", (False, True)),
    Knob("equalizer.noise_regularization", (0.005, 0.02, 0.05)),
    Knob("guard.max_interp_gap", (32, 64, 128)),
)

_SUB_CONFIGS = ("fidelity", "equalizer", "guard")


def _field_default(cls, field_name: str):
    for field in dataclasses.fields(cls):
        if field.name == field_name:
            if field.default is not dataclasses.MISSING:
                return field.default
            return field.default_factory()
    raise ConfigurationError(
        f"{cls.__name__} has no field {field_name!r}")


def default_params(knobs: Sequence[Knob] = DEFAULT_KNOBS
                   ) -> Dict[str, object]:
    """The decoder's stock settings for every knob in the registry."""
    from ..core.equalizer import EqualizerConfig
    from ..core.fidelity import FidelityPolicy
    from ..core.pipeline import LFDecoderConfig
    from ..robustness.guard import GuardConfig
    owners = {"fidelity": FidelityPolicy, "equalizer": EqualizerConfig,
              "guard": GuardConfig}
    params: Dict[str, object] = {}
    for knob in knobs:
        if "." in knob.name:
            prefix, field_name = knob.name.split(".", 1)
            if prefix not in owners:
                raise ConfigurationError(
                    f"unknown knob prefix {prefix!r} in {knob.name!r}")
            params[knob.name] = _field_default(owners[prefix],
                                               field_name)
        else:
            params[knob.name] = _field_default(LFDecoderConfig,
                                               knob.name)
    return params


def build_decoder_config(params: Dict[str, object],
                         candidate_bitrates_bps: Sequence[float],
                         profile: SimulationProfile):
    """Materialize an :class:`LFDecoderConfig` from a knob assignment."""
    from ..core.equalizer import EqualizerConfig
    from ..core.fidelity import FidelityPolicy
    from ..core.pipeline import LFDecoderConfig
    from ..robustness.guard import GuardConfig
    top: Dict[str, object] = {}
    nested: Dict[str, Dict[str, object]] = {
        name: {} for name in _SUB_CONFIGS}
    for name, value in params.items():
        if "." in name:
            prefix, field_name = name.split(".", 1)
            nested[prefix][field_name] = value
        else:
            top[name] = value
    if nested["fidelity"]:
        top["fidelity"] = FidelityPolicy(**nested["fidelity"])
    if nested["equalizer"]:
        top["equalizer_config"] = EqualizerConfig(
            **nested["equalizer"])
    if nested["guard"]:
        top["guard_config"] = GuardConfig(**nested["guard"])
    return LFDecoderConfig(
        candidate_bitrates_bps=list(candidate_bitrates_bps),
        profile=profile, **top)


def _quick_spec(**kwargs):
    from ..experiments.scenario import ScenarioSpec
    return ScenarioSpec(**kwargs)


def _family(name: str, count: int, base_seed: int, **kwargs) -> Tuple:
    return tuple(
        _quick_spec(name=f"{name}_{k}", seed=base_seed + 101 * k,
                    **kwargs)
        for k in range(count))


def scenario_families(profile: Optional[SimulationProfile] = None,
                      count: int = 3) -> Dict[str, Tuple]:
    """The signoff scenario families, pinned and profile-resolved.

    Each family is a tuple of specs sharing a channel regime but
    differing in seed — the tuner optimizes the regime, not one lucky
    capture.
    """
    prof = profile or SimulationProfile.fast()
    rate = prof.default_bitrate_bps
    return {
        "low_snr": _family("tune_low_snr", count, 4100,
                           n_tags=3, snr_db=7.0, bitrate_bps=rate,
                           epoch_s=0.01),
        "dense": _family("tune_dense", count, 4300,
                         n_tags=10, noise_std=0.01, bitrate_bps=rate,
                         epoch_s=0.01),
        "multipath_room": _family("tune_room", count, 4500,
                                  n_tags=4, noise_std=0.01,
                                  bitrate_bps=rate,
                                  channel_preset="room",
                                  epoch_s=0.01),
        "drift_heavy": _family("tune_drift", count, 4700,
                               n_tags=4, drift_ppm=4000.0,
                               bitrate_bps=rate, epoch_s=0.01),
    }


#: Family names, for CLI listings.
SCENARIO_FAMILIES = ("low_snr", "dense", "multipath_room",
                     "drift_heavy")


@dataclass
class TuneResult:
    """Outcome of one coordinate-descent tune."""

    family: str
    baseline_params: Dict[str, object]
    baseline_score: float
    best_params: Dict[str, object]
    best_score: float
    #: Knob assignments that differ from stock settings.
    changed_params: Dict[str, object]
    #: ``(knob, value, score)`` for every accepted move, in order.
    history: List[Tuple[str, object, float]]
    evaluations: int

    @property
    def improved(self) -> bool:
        return self.best_score > self.baseline_score

    def as_dict(self) -> dict:
        return {
            "family": self.family,
            "baseline_score": self.baseline_score,
            "best_score": self.best_score,
            "improved": self.improved,
            "changed_params": dict(self.changed_params),
            "history": [list(step) for step in self.history],
            "evaluations": self.evaluations,
        }


def _decoder_seed(base: int, spec_index: int) -> int:
    return int(np.random.SeedSequence(
        entropy=base, spawn_key=(spec_index,)).generate_state(1)[0])


class _Evaluator:
    """Scores knob assignments on a family, batched and cached."""

    def __init__(self, family_specs, profile, ber_weight_bps, seed,
                 runner=None):
        from ..experiments.sweep import SweepRunner
        from ..experiments.trials import scenario_decode_trial
        self.specs = tuple(family_specs)
        self.profile = profile
        self.ber_weight_bps = ber_weight_bps
        self.seed = seed
        self.runner = runner or SweepRunner(scenario_decode_trial)
        self.cache: Dict[Tuple, float] = {}
        self.evaluations = 0

    @staticmethod
    def _key(params: Dict[str, object]) -> Tuple:
        return tuple(sorted(params.items()))

    def score_many(self, param_sets: List[Dict[str, object]]
                   ) -> List[float]:
        from ..core.engine import TrialSpec
        from ..experiments.sweep import SweepGrid, results_of
        pending = [p for p in param_sets
                   if self._key(p) not in self.cache]
        if pending:
            grid = SweepGrid()
            for cell_index, params in enumerate(pending):
                trials = []
                for spec_index, spec in enumerate(self.specs):
                    rates = sorted(set(spec.tag_rates(self.profile)))
                    config = build_decoder_config(params, rates,
                                                  self.profile)
                    trials.append(TrialSpec(
                        seed=_decoder_seed(self.seed, spec_index),
                        payload={"spec": spec,
                                 "profile": self.profile,
                                 "decoder_config": config}))
                grid.add_cell({"candidate": cell_index}, trials)

            def _fold(cell, outcomes):
                results = results_of(outcomes)
                correct = sum(r["bits_correct"] for r in results)
                sent = sum(r["bits_sent"] for r in results)
                duration = sum(s.epoch_s for s in self.specs)
                goodput_bps = correct / duration
                error_fraction = 1.0 - (correct / sent if sent
                                        else 0.0)
                return {"candidate": cell.coords["candidate"],
                        "score": goodput_bps
                        - self.ber_weight_bps * error_fraction}

            rows = self.runner.run(grid, _fold)
            self.evaluations += len(pending)
            for row in rows:
                self.cache[self._key(pending[row["candidate"]])] = \
                    row["score"]
        return [self.cache[self._key(p)] for p in param_sets]

    def score(self, params: Dict[str, object]) -> float:
        return self.score_many([params])[0]


def autotune(family: str,
             family_specs: Optional[Sequence] = None,
             knobs: Sequence[Knob] = DEFAULT_KNOBS,
             rounds: int = 2,
             profile: Optional[SimulationProfile] = None,
             ber_weight_bps: Optional[float] = None,
             seed: int = 4242,
             min_gain: float = 1e-09,
             runner=None) -> TuneResult:
    """Coordinate descent over the knob registry on one family.

    ``family`` names a built-in scenario family (see
    :func:`scenario_families`) unless ``family_specs`` supplies an
    explicit spec tuple.  Each round sweeps every knob in registry
    order, evaluating all its candidate values in one engine batch and
    keeping the best; descent stops early when a full round changes
    nothing.
    """
    if rounds < 1:
        raise ConfigurationError("rounds must be >= 1")
    prof = profile or SimulationProfile.fast()
    if family_specs is None:
        families = scenario_families(prof)
        if family not in families:
            raise ConfigurationError(
                f"unknown scenario family {family!r}; available: "
                f"{sorted(families)}")
        family_specs = families[family]
    if not family_specs:
        raise ConfigurationError("family has no scenarios")
    weight = ber_weight_bps if ber_weight_bps is not None \
        else prof.default_bitrate_bps
    evaluator = _Evaluator(family_specs, prof, weight, seed,
                           runner=runner)

    baseline_params = default_params(knobs)
    params = dict(baseline_params)
    baseline_score = evaluator.score(params)
    best_score = baseline_score
    history: List[Tuple[str, object, float]] = []
    for _ in range(rounds):
        round_changed = False
        for knob in knobs:
            candidates = [{**params, knob.name: value}
                          for value in knob.values
                          if value != params[knob.name]]
            if not candidates:
                continue
            scores = evaluator.score_many(candidates)
            top = int(np.argmax(scores))
            if scores[top] > best_score + min_gain:
                params = candidates[top]
                best_score = scores[top]
                history.append((knob.name,
                                params[knob.name], best_score))
                round_changed = True
        if not round_changed:
            break
    changed = {name: value for name, value in params.items()
               if value != baseline_params[name]}
    return TuneResult(
        family=family,
        baseline_params=baseline_params,
        baseline_score=baseline_score,
        best_params=params,
        best_score=best_score,
        changed_params=changed,
        history=history,
        evaluations=evaluator.evaluations)
