"""Bit-error-rate versus SNR sweeps (Section 5.4, Figure 14).

A single tag transmits across a range of SNRs; the same captures are
decoded two ways:

* **LF edge decoding** — IQ differentials at the bit boundaries
  (averaging windows bounded by the adjacent boundaries, where the
  signal is guaranteed constant), Viterbi error correction, anchor
  disambiguation;
* **conventional ASK** — whole-bit integration against on/off
  reference levels learned from the preamble.

Both decoders are given the stream timing ("genie timing"), isolating
the comparison to the *detection method* — which is what the paper's
Figure 14 measures ("LF-Backscatter relies on edge detection and
requires higher SNR than ASK modulation").  SNR is quoted in the
decision domain (raw-sample SNR plus the full-bit integration gain),
which is where the paper's 5-15 dB axis lives; the edge detector pays
about 3 dB for differencing two windows plus a little more for the
edge-guard exclusions, reproducing the ~4 dB gap.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..baselines.ask import AskDecoder
from ..core.anchor import assemble_bits
from ..core.edges import EdgeDetector, EdgeDetectorConfig
from ..errors import ConfigurationError, DecodeError
from ..types import IQTrace, SimulationProfile
from ..utils.rng import SeedLike, make_rng
from ..utils.stats import ber_from_bits


@dataclass
class BerPoint:
    """One (SNR, BER) measurement."""

    snr_db: float
    ber: float
    bits_measured: int


def _single_tag_capture(snr_db: float, n_bits: int,
                        profile: SimulationProfile,
                        coefficient: complex,
                        rng: np.random.Generator):
    """One epoch of a lone ASK tag at the requested raw-sample SNR.

    Rendered through the unified scenario factory (pinned coefficient
    skips the draw; the per-tag and noise generators consume ``rng``
    in the canonical order, matching the pre-factory construction bit
    for bit).
    """
    from ..experiments.scenario import ScenarioSpec, ScenarioSynth
    spec = ScenarioSpec(
        name="ber_single_tag", n_tags=1, tag_kind="ask",
        coefficients=(coefficient,), snr_db=snr_db,
        start_offset_s=2.0 / profile.default_bitrate_bps)
    synth = ScenarioSynth(spec, profile=profile, rng=rng)
    header = synth.tags[0].header_bits()
    duration = (n_bits + header + 4) / profile.default_bitrate_bps
    return synth.capture(duration)


def genie_lf_decode(trace: IQTrace, offset_samples: float,
                    period_samples: float, n_bits: int) -> np.ndarray:
    """Edge-differential decode with known stream timing.

    Differentials are measured at every bit boundary with averaging
    windows bounded by the *adjacent boundaries* — between boundaries
    the antenna state is constant, so the windows are clean by
    construction; only the transition guard is excluded.  The result is
    projected, Viterbi-corrected, and anchor-disambiguated exactly as
    in the full pipeline.
    """
    # Use the production pipeline's averaging window (80% of the bit
    # period per side) so the measured gap reflects the deployed
    # decoder, not an idealized variant.
    period = int(round(period_samples))
    detector = EdgeDetector(EdgeDetectorConfig(
        max_refine_window=max(int(period * 0.8), 8)))
    grid = np.round(offset_samples
                    + np.arange(n_bits) * period_samples).astype(np.int64)
    grid = np.clip(grid, 0, len(trace) - 1)
    diffs = detector.refine_differentials(trace, grid, bounds=grid)
    from ..core.pipeline import _project_single
    from ..core.viterbi import RISE, ViterbiDecoder
    from ..tags.base import build_frame
    observations = _project_single(diffs)
    # Polarity from a matched filter against the known header's edge
    # pattern: the alternating preamble plus anchor produces the edge
    # template +1,-1,+1,... at the first boundaries.
    header = build_frame(np.empty(0, dtype=np.int8))
    template = np.empty(header.size, dtype=np.float64)
    level = 0
    for i, bit in enumerate(header):
        template[i] = 1.0 if (bit == 1 and level == 0) else (
            -1.0 if (bit == 0 and level == 1) else 0.0)
        level = int(bit)
    n_tpl = min(template.size, observations.size)
    correlation = float(np.dot(observations[:n_tpl], template[:n_tpl]))
    signed = observations if correlation >= 0 else -observations
    return ViterbiDecoder().decode_bits(signed, initial_state=RISE)


def decode_against_truth(capture, decoder: str) -> Dict[str, int]:
    """Genie-timing decode of a lone-tag capture, scored vs truth."""
    truth = capture.truths[0]
    try:
        if decoder == "ask":
            bits = AskDecoder().decode(
                capture.trace, truth.offset_samples,
                truth.period_samples, truth.n_bits)
        else:
            bits = genie_lf_decode(
                capture.trace, truth.offset_samples,
                truth.period_samples, truth.n_bits)
    except DecodeError:
        bits = np.empty(0, dtype=np.int8)
    ber = ber_from_bits(truth.bits, bits)
    return {"errors": int(round(ber * truth.n_bits)),
            "bits": truth.n_bits}


def ber_trial(trace, payload, rng, config) -> Dict[str, int]:
    """Engine-dispatched single-tag BER trial.

    The capture's entropy is fully pinned inside the payload's spec
    (coefficient + population seeds), so the trial is reproducible in
    any worker; ``rng`` is unused (genie decodes draw no randomness).
    """
    from ..experiments.scenario import ScenarioSynth
    profile = payload["profile"]
    synth = ScenarioSynth(payload["spec"], profile=profile)
    header = synth.tags[0].header_bits()
    duration = (payload["n_bits"] + header + 4) \
        / profile.default_bitrate_bps
    return decode_against_truth(synth.capture(duration),
                                payload["decoder"])


def ber_sweep(snr_db_values: Sequence[float],
              decoder: str = "lf",
              n_bits: int = 400,
              n_trials: int = 3,
              profile: Optional[SimulationProfile] = None,
              coefficient: complex = 0.1 + 0.04j,
              decision_domain: bool = True,
              rng: SeedLike = None,
              runner=None) -> List[BerPoint]:
    """Measure BER at each SNR for one decoding scheme.

    ``decoder`` is ``"lf"`` (edge-differential decoding) or ``"ask"``
    (matched filter).  With ``decision_domain=True`` (default, the
    Figure 14 convention) the SNR values are interpreted post
    integration: the raw-sample SNR of the capture is lowered by the
    full-bit averaging gain ``10*log10(samples_per_bit)``.

    Trials execute through the batch engine: each (SNR, trial) cell's
    capture entropy is pre-drawn from ``rng`` in the legacy serial
    order and pinned into a self-contained scenario spec, so results
    are identical to the old in-process loop for any worker count.
    Pass a :class:`~repro.experiments.sweep.SweepRunner` built over
    :func:`ber_trial` as ``runner`` to share one engine across sweeps.
    """
    if decoder not in ("lf", "ask"):
        raise ConfigurationError(
            f"decoder must be 'lf' or 'ask', got {decoder!r}")
    if n_bits < 10:
        raise ConfigurationError("need at least 10 bits per trial")
    from ..core.engine import TrialSpec
    from ..experiments.scenario import ScenarioSpec
    from ..experiments.sweep import SweepGrid, SweepRunner, results_of
    prof = profile or SimulationProfile.fast()
    gen = make_rng(rng)
    gain_db = 10.0 * math.log10(prof.samples_per_bit()) \
        if decision_domain else 0.0

    grid = SweepGrid()
    start_offset = 2.0 / prof.default_bitrate_bps
    for snr_db in snr_db_values:
        raw_snr = snr_db - gain_db
        trials = []
        for _ in range(n_trials):
            tag_seed = int(gen.integers(0, 2 ** 63))
            sim_seed = int(gen.integers(0, 2 ** 63))
            spec = ScenarioSpec(
                name="ber_single_tag", n_tags=1, tag_kind="ask",
                coefficients=(coefficient,), snr_db=raw_snr,
                start_offset_s=start_offset,
                population_seeds=(tag_seed, sim_seed))
            trials.append(TrialSpec(payload={
                "spec": spec, "profile": prof, "decoder": decoder,
                "n_bits": n_bits}))
        grid.add_cell({"snr_db": float(snr_db)}, trials)

    def _fold(cell, outcomes):
        results = results_of(outcomes)
        errors = sum(r["errors"] for r in results)
        total = sum(r["bits"] for r in results)
        return {"snr_db": cell.coords["snr_db"],
                "ber": errors / total, "bits_measured": total}

    rows = (runner or SweepRunner(ber_trial)).run(grid, _fold)
    return [BerPoint(snr_db=r["snr_db"], ber=r["ber"],
                     bits_measured=r["bits_measured"]) for r in rows]


def fitted_ber_curve(points: Sequence[BerPoint]
                     ) -> Dict[str, float]:
    """Fit ``log10(BER) = a + b * SNR_dB`` over the non-zero region.

    The paper overlays fitted curves on the measured points (Figure
    14); in the waterfall region BER falls close to exponentially in
    SNR dB, so a log-linear fit captures it with two parameters.
    """
    # Restrict to the waterfall: near 0.5 the curve saturates and near
    # zero the estimate is dominated by counting noise.
    xs = [p.snr_db for p in points if 0 < p.ber < 0.3]
    ys = [math.log10(p.ber) for p in points if 0 < p.ber < 0.3]
    if len(xs) < 2:
        raise ConfigurationError(
            "need at least two non-zero BER points to fit")
    b, a = np.polyfit(xs, ys, 1)
    return {"intercept": float(a), "slope": float(b)}


def snr_gap_db(lf_points: Sequence[BerPoint],
               ask_points: Sequence[BerPoint],
               target_ber: float = 1e-2) -> float:
    """SNR difference between the two schemes at equal target BER.

    Uses the fitted log-linear curves: the horizontal distance between
    them at ``target_ber``.  This is the paper's ~4 dB number.
    """
    if not 0 < target_ber < 1:
        raise ConfigurationError("target BER must be in (0, 1)")
    lf_fit = fitted_ber_curve(lf_points)
    ask_fit = fitted_ber_curve(ask_points)
    want = math.log10(target_ber)
    snr_lf = (want - lf_fit["intercept"]) / lf_fit["slope"]
    snr_ask = (want - ask_fit["intercept"]) / ask_fit["slope"]
    return snr_lf - snr_ask
