"""Analytic and Monte-Carlo collision probabilities (Section 3.3).

The paper quantifies why cluster separation only ever faces a handful
of colliders: with 16 nodes at 100 kbps under a 25 Msps reader and
3-sample edges, "the probability of two-node collisions is 0.1890,
whereas the probability of three node collisions is only 0.0181"; at
10 kbps, three-way collisions stay below 0.0022 "even when 200 nodes
transmit concurrently".

Model: each tag's grid phase is uniform over the ``n_positions`` =
samples-per-bit offsets; a given tag collides with another when their
phases land within a ``window`` of each other, and an edge collision
additionally requires the other tag to actually toggle at that boundary
(probability ``toggle_probability`` for random data).  The probability
that a given tag is in an exactly-k-way collision is then binomial in
the number of other tags falling (and toggling) inside its window.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from .. import constants
from ..errors import ConfigurationError
from ..utils.rng import SeedLike, make_rng


def collision_probability(n_tags: int, k: int,
                          n_positions: Optional[float] = None,
                          bitrate_bps: float = constants.
                          DEFAULT_BITRATE_BPS,
                          sample_rate_hz: float = constants.
                          READER_SAMPLE_RATE_HZ,
                          window: float = constants.EDGE_WIDTH_SAMPLES
                          + 1,
                          toggle_probability: float = 1.0) -> float:
    """P(a given tag is in an exactly k-way collision).

    ``k`` counts the total colliders including the tag itself (k=2 is a
    pairwise collision; k=1 returns the no-collision probability).
    ``toggle_probability`` < 1 models per-edge collisions for random
    data (a colliding neighbour only produces an edge at a boundary
    when its bit flips).
    """
    if n_tags < 1:
        raise ConfigurationError("need at least one tag")
    if not 1 <= k <= n_tags:
        raise ConfigurationError(f"k must be in [1, {n_tags}], got {k}")
    if not 0 < toggle_probability <= 1:
        raise ConfigurationError("toggle probability must be in (0, 1]")
    if n_positions is None:
        n_positions = constants.samples_per_bit(bitrate_bps,
                                                sample_rate_hz)
    if window <= 0 or window >= n_positions:
        raise ConfigurationError(
            f"window must be in (0, {n_positions}), got {window}")
    q = (window / n_positions) * toggle_probability
    others = n_tags - 1
    hits = k - 1
    return (math.comb(others, hits) * q ** hits
            * (1.0 - q) ** (others - hits))


def collision_probability_at_least(n_tags: int, k: int,
                                   **kwargs) -> float:
    """P(a given tag is in a k-or-more-way collision)."""
    return sum(collision_probability(n_tags, j, **kwargs)
               for j in range(k, n_tags + 1))


def collision_probability_mc(n_tags: int, k: int,
                             n_positions: Optional[float] = None,
                             bitrate_bps: float = constants.
                             DEFAULT_BITRATE_BPS,
                             sample_rate_hz: float = constants.
                             READER_SAMPLE_RATE_HZ,
                             window: float = constants.
                             EDGE_WIDTH_SAMPLES + 1,
                             toggle_probability: float = 1.0,
                             n_trials: int = 20_000,
                             rng: SeedLike = None) -> float:
    """Monte-Carlo estimate of :func:`collision_probability`.

    Draws uniform phases for all tags and counts, for tag 0, how many
    others land (and toggle) within its window, circularly.
    """
    if n_trials < 1:
        raise ConfigurationError("need at least one trial")
    if n_positions is None:
        n_positions = constants.samples_per_bit(bitrate_bps,
                                                sample_rate_hz)
    if not 1 <= k <= n_tags:
        raise ConfigurationError(f"k must be in [1, {n_tags}], got {k}")
    gen = make_rng(rng)
    hits_target = k - 1
    count = 0
    for _ in range(n_trials):
        phases = gen.uniform(0, n_positions, n_tags)
        delta = np.abs(phases[1:] - phases[0])
        delta = np.minimum(delta, n_positions - delta)
        # ``window`` is the total collision width (matching the
        # analytic q = window / n_positions), so each neighbour
        # collides when within half of it on either side.
        close = delta < window / 2.0
        if toggle_probability < 1.0:
            close &= gen.random(n_tags - 1) < toggle_probability
        if int(np.count_nonzero(close)) == hits_target:
            count += 1
    return count / n_trials
