"""Per-tag eye-diagram analysis for link-margin signoff.

The paper's decoder lives or dies by the *eye pattern* (Section 3.2):
fold a tag's samples at its bit period and the transitions cluster at
the boundary while the flats stay quiet.  This module quantifies that
picture against ground truth so the signoff suite can track link
margin as a number instead of a figure:

* **opening** — vertical eye opening: the gap between the weakest
  true-transition differential and the loudest quiet-boundary
  differential, normalized by the median transition magnitude.
  Positive means the clusters separate (an open eye); zero or negative
  means the noise floor reaches into the signal cluster.
* **jitter** — the standard deviation of edge-timing residuals
  (detected edge position minus the truth boundary), in samples: the
  horizontal thickness of the crossing.
* **crossing spread** — the peak-to-peak extent of those residuals:
  how wide a guard window must be to contain every crossing.

All metrics are genie-timed (they use the capture's truth grid), so
they measure the *channel and front end*, not stream acquisition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..core.edges import EdgeDetector, EdgeDetectorConfig
from ..errors import ConfigurationError
from ..reader.epoch import EpochCapture, TagTruth

__all__ = ["EyeMetrics", "tag_eye_metrics", "eye_metrics",
           "eye_summary"]


@dataclass(frozen=True)
class EyeMetrics:
    """Eye-diagram statistics for one tag in one capture."""

    tag_id: int
    #: Truth bit boundaries that carry a level transition.
    n_transitions: int
    #: All truth bit boundaries examined.
    n_boundaries: int
    #: Normalized vertical opening (>= 0 is open; see module docs).
    opening: float
    #: Median |differential| at true transitions.
    signal_level: float
    #: 90th-percentile |differential| at quiet boundaries.
    noise_level: float
    #: Std of matched edge-timing residuals, in samples.
    jitter_samples: float
    #: Peak-to-peak extent of the residuals, in samples.
    crossing_spread_samples: float
    #: Fraction of true transitions matched to a detected edge.
    matched_fraction: float

    def as_dict(self) -> dict:
        return {
            "tag_id": self.tag_id,
            "n_transitions": self.n_transitions,
            "n_boundaries": self.n_boundaries,
            "opening": self.opening,
            "signal_level": self.signal_level,
            "noise_level": self.noise_level,
            "jitter_samples": self.jitter_samples,
            "crossing_spread_samples": self.crossing_spread_samples,
            "matched_fraction": self.matched_fraction,
        }


def _truth_transitions(truth: TagTruth) -> np.ndarray:
    """Boolean mask over bit boundaries: does the level change there?

    Tags idle low before their first bit, so boundary ``i`` carries a
    transition when ``bits[i]`` differs from the previous level
    (``bits[i-1]``, or 0 for the first boundary).
    """
    bits = np.asarray(truth.bits, dtype=np.int8)
    previous = np.concatenate(([np.int8(0)], bits[:-1]))
    return bits != previous


def _boundary_grid(truth: TagTruth, n_samples: int) -> np.ndarray:
    grid = np.round(truth.offset_samples
                    + np.arange(truth.n_bits)
                    * truth.period_samples).astype(np.int64)
    return np.clip(grid, 0, n_samples - 1)


def tag_eye_metrics(capture: EpochCapture, truth: TagTruth,
                    detected_positions: Optional[np.ndarray] = None,
                    match_tolerance_samples: int = 12) -> EyeMetrics:
    """Eye statistics for one tag, genie-timed against its truth.

    Differential windows are bounded by the union of *all* tags' truth
    boundaries (exactly how the production grid reader bounds them), so
    a window never averages across another tag's transition.
    ``detected_positions`` optionally reuses a shared edge-detection
    pass across tags.
    """
    trace = capture.trace
    grid = _boundary_grid(truth, len(trace))
    all_bounds = np.unique(np.concatenate(
        [_boundary_grid(t, len(trace)) for t in capture.truths]))
    period = max(int(round(truth.period_samples)), 2)
    detector = EdgeDetector(EdgeDetectorConfig(
        max_refine_window=max(int(period * 0.8), 8)))
    diffs = detector.refine_differentials(trace, grid,
                                          bounds=all_bounds)
    magnitudes = np.abs(diffs)

    transitions = _truth_transitions(truth)
    signal = magnitudes[transitions]
    quiet = magnitudes[~transitions]
    if signal.size == 0:
        raise ConfigurationError(
            f"tag {truth.tag_id} has no level transitions — cannot "
            f"measure an eye")
    signal_level = float(np.median(signal))
    noise_level = float(np.percentile(quiet, 90)) if quiet.size else 0.0
    floor = signal_level if signal_level > 0 else 1.0
    opening = (float(np.percentile(signal, 10)) - noise_level) / floor

    if detected_positions is None:
        detected_positions = np.array(
            [e.position for e in detector.detect(trace)],
            dtype=np.int64)
    # Tight matching window: a clean edge refines to within a sample
    # or two of the truth boundary, and jitter from comparator offsets
    # or drift stays within a few samples per bit — while another
    # tag's nearest edge is usually much farther.  A period-scaled
    # window would mostly measure cross-tag contamination.
    residuals = []
    tolerance = min(match_tolerance_samples, max(period // 4, 2))
    expected = grid[transitions]
    if detected_positions.size:
        for position in expected:
            nearest = detected_positions[
                np.argmin(np.abs(detected_positions - position))]
            residual = float(nearest - position)
            if abs(residual) <= tolerance:
                residuals.append(residual)
    if residuals:
        jitter = float(np.std(residuals))
        spread = float(np.max(residuals) - np.min(residuals))
    else:
        jitter = float("inf")
        spread = float("inf")
    return EyeMetrics(
        tag_id=truth.tag_id,
        n_transitions=int(transitions.sum()),
        n_boundaries=int(transitions.size),
        opening=opening,
        signal_level=signal_level,
        noise_level=noise_level,
        jitter_samples=jitter,
        crossing_spread_samples=spread,
        matched_fraction=len(residuals) / int(transitions.sum()),
    )


def eye_metrics(capture: EpochCapture) -> List[EyeMetrics]:
    """Per-tag eye statistics for every tag in the capture.

    Edge detection runs once over the combined trace and is shared by
    all tags' jitter measurements.
    """
    if not capture.truths:
        raise ConfigurationError("capture has no tag truths")
    detector = EdgeDetector()
    positions = np.array([e.position
                          for e in detector.detect(capture.trace)],
                         dtype=np.int64)
    return [tag_eye_metrics(capture, truth, positions)
            for truth in capture.truths]


def eye_summary(metrics: List[EyeMetrics]) -> dict:
    """Worst-case view across tags — the numbers signoff gates on."""
    if not metrics:
        raise ConfigurationError("no eye metrics to summarize")
    finite_jitter = [m.jitter_samples for m in metrics
                     if np.isfinite(m.jitter_samples)]
    finite_spread = [m.crossing_spread_samples for m in metrics
                     if np.isfinite(m.crossing_spread_samples)]
    return {
        "n_tags": len(metrics),
        "min_opening": min(m.opening for m in metrics),
        "mean_opening": float(np.mean([m.opening for m in metrics])),
        "max_jitter_samples":
            max(finite_jitter) if finite_jitter else None,
        "max_crossing_spread_samples":
            max(finite_spread) if finite_spread else None,
        "min_matched_fraction":
            min(m.matched_fraction for m in metrics),
    }
