"""Node identification latency (Section 5.2, Figure 12).

The LF identification protocol: every tag transmits its EPC identifier
(96 bits + 5-bit CRC) once per epoch at a random offset.  The reader
decodes whatever streams it can; a tag is identified once a decoded
stream's CRC validates.  Unidentified tags simply transmit again next
epoch — the fresh comparator jitter re-randomizes the collision pattern
(Section 3.6) — and the reader may optionally command a lower bitrate
when collisions persist.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

import numpy as np

from .. import constants
from ..core.pipeline import LFDecoder, LFDecoderConfig
from ..errors import ConfigurationError
from ..phy.channel import ChannelModel, random_coefficients
from ..reader.simulator import NetworkSimulator
from ..tags.base import FixedPayload
from ..tags.lf_tag import LFTag
from ..types import SimulationProfile, TagConfig
from ..utils.rng import SeedLike, make_rng

#: CRC-5 generator polynomial x^5 + x^2 + 1 (the USB CRC5 polynomial).
CRC5_POLY = 0b00101
CRC5_BITS = 5


def crc5(bits: np.ndarray) -> np.ndarray:
    """CRC-5 remainder of a bit sequence (MSB-first)."""
    arr = np.asarray(bits, dtype=np.int8)
    if arr.size == 0:
        raise ConfigurationError("cannot CRC an empty message")
    reg = 0
    for bit in arr:
        feedback = ((reg >> (CRC5_BITS - 1)) & 1) ^ int(bit)
        reg = ((reg << 1) & ((1 << CRC5_BITS) - 1))
        if feedback:
            reg ^= CRC5_POLY
    return np.array([(reg >> (CRC5_BITS - 1 - i)) & 1
                     for i in range(CRC5_BITS)], dtype=np.int8)


def append_crc5(message: np.ndarray) -> np.ndarray:
    """Message with its CRC-5 appended (what the tag transmits)."""
    msg = np.asarray(message, dtype=np.int8)
    return np.concatenate([msg, crc5(msg)])


def check_crc5(frame: np.ndarray) -> bool:
    """Validate a message+CRC frame."""
    arr = np.asarray(frame, dtype=np.int8)
    if arr.size <= CRC5_BITS:
        return False
    return bool(np.array_equal(crc5(arr[:-CRC5_BITS]),
                               arr[-CRC5_BITS:]))


@dataclass
class IdentificationResult:
    """Outcome of one LF inventory run."""

    n_tags: int
    identified: Set[int] = field(default_factory=set)
    epochs_used: int = 0
    elapsed_s: float = 0.0

    @property
    def complete(self) -> bool:
        return len(self.identified) == self.n_tags


class LFIdentification:
    """Simulates LF-Backscatter RFID inventory rounds."""

    def __init__(self, n_tags: int,
                 bitrate_bps: float = 10e3,
                 profile: Optional[SimulationProfile] = None,
                 id_bits: int = constants.EPC_ID_BITS,
                 noise_std: float = 0.01,
                 max_epochs: int = 25,
                 rng: SeedLike = None):
        if n_tags < 1:
            raise ConfigurationError("need at least one tag")
        if max_epochs < 1:
            raise ConfigurationError("need at least one epoch")
        self.profile = profile or SimulationProfile.fast()
        self.profile.validate_bitrate(bitrate_bps)
        self.n_tags = n_tags
        self.bitrate_bps = bitrate_bps
        self.id_bits = id_bits
        self.noise_std = noise_std
        self.max_epochs = max_epochs
        self._rng = make_rng(rng)

        gen = self._rng
        coeffs = random_coefficients(n_tags, rng=gen)
        self.identifiers: Dict[int, np.ndarray] = {
            k: gen.integers(0, 2, id_bits).astype(np.int8)
            for k in range(n_tags)}
        frames = {k: append_crc5(v) for k, v in self.identifiers.items()}
        channel = ChannelModel({k: coeffs[k] for k in range(n_tags)},
                               environment_offset=0.5 + 0.3j)
        tags = [LFTag(TagConfig(tag_id=k, bitrate_bps=bitrate_bps,
                                channel_coefficient=coeffs[k]),
                      payload_source=FixedPayload(frames[k]),
                      profile=self.profile,
                      rng=np.random.default_rng(
                          gen.integers(0, 2 ** 63)))
                for k in range(n_tags)]
        self.simulator = NetworkSimulator(
            tags, channel, profile=self.profile, noise_std=noise_std,
            rng=np.random.default_rng(gen.integers(0, 2 ** 63)))
        self.decoder = LFDecoder(
            LFDecoderConfig(candidate_bitrates_bps=[bitrate_bps],
                            profile=self.profile),
            rng=np.random.default_rng(gen.integers(0, 2 ** 63)))

    def epoch_duration_s(self) -> float:
        """Epoch long enough for the offset spread plus one frame."""
        frame_bits = (constants.PREAMBLE_BITS + 1 + self.id_bits
                      + CRC5_BITS)
        # Comparator fire times spread over roughly 10 bit periods with
        # the default jitter model; leave headroom.
        return (frame_bits + 14) / self.bitrate_bps

    def run(self) -> IdentificationResult:
        """Run inventory epochs until every tag's CRC validates."""
        result = IdentificationResult(n_tags=self.n_tags)
        duration = self.epoch_duration_s()
        frame_len = self.id_bits + CRC5_BITS
        id_lookup = {k: v for k, v in self.identifiers.items()}
        for epoch in range(self.max_epochs):
            capture = self.simulator.run_epoch(duration,
                                               epoch_index=epoch)
            decoded = self.decoder.decode_epoch(capture.trace)
            for stream in decoded.streams:
                payload = stream.payload_bits()[:frame_len]
                if payload.size < frame_len or not check_crc5(payload):
                    continue
                identifier = payload[:self.id_bits]
                for tag_id, true_id in id_lookup.items():
                    if tag_id in result.identified:
                        continue
                    if np.array_equal(identifier, true_id):
                        result.identified.add(tag_id)
                        break
            result.epochs_used = epoch + 1
            result.elapsed_s = result.epochs_used * duration
            if result.complete:
                break
        return result


def lf_identification_time_s(n_tags: int,
                             bitrate_bps: float = 10e3,
                             n_trials: int = 3,
                             profile: Optional[SimulationProfile] = None,
                             rng: SeedLike = None) -> float:
    """Mean LF inventory completion time over ``n_trials`` runs.

    Incomplete runs (max epochs exhausted) are charged their full
    elapsed time, which only penalizes LF.
    """
    gen = make_rng(rng)
    times = []
    for _ in range(n_trials):
        ident = LFIdentification(
            n_tags, bitrate_bps=bitrate_bps, profile=profile,
            rng=np.random.default_rng(gen.integers(0, 2 ** 63)))
        times.append(ident.run().elapsed_s)
    return float(np.mean(times))
