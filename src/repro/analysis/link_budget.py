"""Operating-range equivalence via the radar equation (Section 5.4).

The paper converts the measured ~4 dB SNR gap between LF-Backscatter
and conventional ASK decoding into range: backscatter received power
falls as d^-4, so a gap of G dB shrinks range by 10^(-G/40) — a 10 ft
ASK range becomes ~8.1 ft, 30 ft becomes ~23.7 ft.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..errors import ConfigurationError
from ..phy.antenna import LinkBudget, equivalent_range


@dataclass(frozen=True)
class RangePair:
    """ASK range and the equivalent LF range at the same BER."""

    ask_range_ft: float
    lf_range_ft: float

    @property
    def ratio(self) -> float:
        return self.lf_range_ft / self.ask_range_ft


def range_equivalents(ask_ranges_ft: Sequence[float],
                      snr_gap_db: float = 4.0) -> List[RangePair]:
    """LF-equivalent ranges for each ASK operating range.

    With the paper's 4 dB gap: 10 ft -> 7.9 ft and 30 ft -> 23.8 ft
    (the paper quotes 8.1 and 23.7, consistent with a gap between 3.7
    and 4.1 dB across its fitted curves).
    """
    if snr_gap_db < 0:
        raise ConfigurationError("SNR gap must be >= 0 dB")
    return [RangePair(ask_range_ft=float(r),
                      lf_range_ft=equivalent_range(float(r), snr_gap_db))
            for r in ask_ranges_ft]


def snr_at_range(budget: LinkBudget, distance_m: float,
                 noise_floor_dbm: float = -90.0) -> float:
    """Receiver SNR (dB) for a tag at ``distance_m`` under ``budget``."""
    return budget.received_power_dbm(distance_m) - noise_floor_dbm


def max_range_m(budget: LinkBudget, required_snr_db: float,
                noise_floor_dbm: float = -90.0) -> float:
    """Largest distance at which the required SNR is still met."""
    min_power_dbm = noise_floor_dbm + required_snr_db
    min_power_w = 10.0 ** (min_power_dbm / 10.0) / 1e3
    return budget.range_for_power(min_power_w)


def range_table(budget: LinkBudget,
                required_snr_ask_db: float,
                snr_gap_db: float,
                noise_floor_dbm: float = -90.0) -> Dict[str, float]:
    """Side-by-side maximum ranges of ASK and LF decoding."""
    ask = max_range_m(budget, required_snr_ask_db, noise_floor_dbm)
    lf = max_range_m(budget, required_snr_ask_db + snr_gap_db,
                     noise_floor_dbm)
    return {"ask_range_m": ask, "lf_range_m": lf, "ratio": lf / ask}
