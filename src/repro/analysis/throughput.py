"""Goodput scoring: matching decoded streams to ground truth.

The simulator keeps per-tag ground truth next to every capture, so an
epoch decode can be scored exactly: decoded streams are assigned to
truths by minimum bit-error cost (Hungarian assignment over candidate
pairs whose timing matches), and the aggregate goodput counts only
correctly recovered bits — the same accounting the paper's Figure 8
uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy.optimize import linear_sum_assignment

from ..core.pipeline import LFDecoder, LFDecoderConfig
from ..errors import ConfigurationError
from ..reader.epoch import EpochCapture
from ..types import EpochResult, SimulationProfile, ThroughputReport
from ..utils.rng import SeedLike, make_rng

_UNMATCHED = 10 ** 9


@dataclass
class StreamMatch:
    """One truth-to-stream assignment with its bit-error count."""

    tag_id: int
    stream_index: Optional[int]
    bit_errors: int
    bits_sent: int

    @property
    def matched(self) -> bool:
        return self.stream_index is not None

    @property
    def bits_correct(self) -> int:
        return self.bits_sent - self.bit_errors


def _pair_cost(truth, stream, offset_tolerance: float) -> int:
    """Bit-error cost of assigning ``stream`` to ``truth``."""
    if abs(stream.offset_samples - truth.offset_samples) \
            > offset_tolerance:
        return _UNMATCHED
    if abs(stream.period_samples - truth.period_samples) \
            > 0.02 * truth.period_samples:
        return _UNMATCHED
    n = min(stream.bits.size, truth.bits.size)
    errors = int(np.count_nonzero(stream.bits[:n] != truth.bits[:n]))
    return errors + max(truth.bits.size - n, 0)


def match_streams(capture: EpochCapture, result: EpochResult,
                  offset_tolerance_samples: float = 60.0
                  ) -> List[StreamMatch]:
    """Optimally assign decoded streams to transmitted tags.

    Unmatched truths count every transmitted bit as an error (the tag's
    data was lost); surplus decoded streams are ignored (they carry no
    correct payload by definition of the assignment).
    """
    truths = capture.truths
    streams = result.streams
    if not truths:
        return []
    cost = np.full((len(truths), max(len(streams), 1)), _UNMATCHED,
                   dtype=np.int64)
    for i, truth in enumerate(truths):
        for j, stream in enumerate(streams):
            cost[i, j] = _pair_cost(truth, stream,
                                    offset_tolerance_samples)
    rows, cols = linear_sum_assignment(cost)
    matches: List[StreamMatch] = []
    assigned = dict(zip(rows.tolist(), cols.tolist()))
    for i, truth in enumerate(truths):
        j = assigned.get(i)
        if j is None or cost[i, j] >= _UNMATCHED:
            matches.append(StreamMatch(
                tag_id=truth.tag_id, stream_index=None,
                bit_errors=truth.n_bits, bits_sent=truth.n_bits))
        else:
            matches.append(StreamMatch(
                tag_id=truth.tag_id, stream_index=int(j),
                bit_errors=int(cost[i, j]), bits_sent=truth.n_bits))
    return matches


def score_epoch(capture: EpochCapture, result: EpochResult,
                scheme: str = "lf") -> ThroughputReport:
    """Turn one epoch's decode into a :class:`ThroughputReport`."""
    matches = match_streams(capture, result)
    bits_sent = sum(m.bits_sent for m in matches)
    bits_correct = sum(m.bits_correct for m in matches)
    per_tag = {m.tag_id: m.bits_correct for m in matches}
    return ThroughputReport(
        scheme=scheme, n_tags=capture.n_tags,
        bits_correct=bits_correct, bits_sent=bits_sent,
        elapsed_s=capture.duration_s, per_tag_bits=per_tag)


@dataclass
class LFRunResult:
    """Aggregate of several scored epochs of one LF configuration."""

    n_tags: int
    bitrate_bps: float
    reports: List[ThroughputReport] = field(default_factory=list)

    @property
    def throughput_bps(self) -> float:
        total_bits = sum(r.bits_correct for r in self.reports)
        total_time = sum(r.elapsed_s for r in self.reports)
        return total_bits / total_time if total_time else 0.0

    @property
    def goodput_fraction(self) -> float:
        sent = sum(r.bits_sent for r in self.reports)
        ok = sum(r.bits_correct for r in self.reports)
        return ok / sent if sent else 0.0


def run_lf_epochs(n_tags: int,
                  bitrate_bps: float,
                  n_epochs: int,
                  epoch_duration_s: float,
                  profile: Optional[SimulationProfile] = None,
                  noise_std: float = 0.01,
                  decoder_config: Optional[LFDecoderConfig] = None,
                  rng: SeedLike = None) -> LFRunResult:
    """Simulate and decode several LF epochs; return scored results.

    Synthesis goes through the unified scenario factory: the
    population draws (coefficients, tag generators, noise generator)
    come from one :class:`~repro.experiments.scenario.ScenarioSynth`
    consuming ``rng`` in the canonical order, after which the decoder
    draws its generator from the same stream — bit-identical to the
    hand-rolled construction this function used before the factory
    existed.  One decoder persists across epochs (its RNG state
    carries over), mirroring a long-lived reader session.
    """
    if n_epochs < 1:
        raise ConfigurationError("need at least one epoch")
    from ..experiments.scenario import ScenarioSpec, ScenarioSynth
    prof = profile or SimulationProfile.fast()
    gen = make_rng(rng)
    synth = ScenarioSynth(
        ScenarioSpec(name="lf_epochs", n_tags=n_tags,
                     bitrate_bps=bitrate_bps, noise_std=noise_std),
        profile=prof, rng=gen)
    config = decoder_config or LFDecoderConfig(
        candidate_bitrates_bps=[bitrate_bps], profile=prof)
    decoder = LFDecoder(config,
                        rng=np.random.default_rng(
                            gen.integers(0, 2 ** 63)))
    run = LFRunResult(n_tags=n_tags, bitrate_bps=bitrate_bps)
    for epoch in range(n_epochs):
        capture = synth.capture(epoch_duration_s, epoch_index=epoch)
        result = decoder.decode_epoch(capture.trace)
        run.reports.append(score_epoch(capture, result))
    return run


def lf_throughput_sweep(tag_counts: List[int],
                        bitrate_bps: float,
                        n_epochs: int = 3,
                        epoch_duration_s: float = 0.01,
                        profile: Optional[SimulationProfile] = None,
                        noise_std: float = 0.01,
                        decoder_config: Optional[LFDecoderConfig] = None,
                        rng: SeedLike = None
                        ) -> Dict[int, LFRunResult]:
    """Measure LF aggregate throughput across network sizes (Figure 8)."""
    gen = make_rng(rng)
    return {n: run_lf_epochs(n, bitrate_bps, n_epochs, epoch_duration_s,
                             profile=profile, noise_std=noise_std,
                             decoder_config=decoder_config,
                             rng=np.random.default_rng(
                                 gen.integers(0, 2 ** 63)))
            for n in tag_counts}
