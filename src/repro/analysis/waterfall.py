"""BER waterfalls and capacity surfaces for link-margin signoff.

Two sweep families, both dispatched through the sweep layer:

* :func:`ber_waterfall` — the Figure 14 shape as a machine-checkable
  table: LF and ASK BER side by side per SNR, plus the fitted SNR gap
  between the schemes.  Signoff gates on the waterfall being (noise-
  tolerantly) monotone and the gap staying in the paper's ballpark.
* :func:`capacity_surface` — decoded goodput across the
  SNR × tag-count × drift grid, the link-margin map a deployment
  actually cares about ("how many tags at what SNR with what crystal").

Cell seeds derive from ``SeedSequence(base_seed, cell coordinates)``,
so adding an axis value never reshuffles the other cells' captures.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..types import SimulationProfile

__all__ = ["ber_waterfall", "capacity_surface"]


def ber_waterfall(snr_db_values: Sequence[float],
                  n_bits: int = 400,
                  n_trials: int = 3,
                  profile: Optional[SimulationProfile] = None,
                  seed: int = 14,
                  runner=None) -> Dict[str, object]:
    """LF vs ASK BER per SNR plus the fitted gap (Figure 14's axes).

    Returns ``{"rows": [{snr_db, lf_ber, ask_ber, bits_measured}...],
    "snr_gap_db": float | None}`` — the gap is ``None`` when either
    curve lacks enough non-zero points to fit (e.g. very quick grids).
    """
    from .ber import ber_sweep, snr_gap_db
    if not snr_db_values:
        raise ConfigurationError("need at least one SNR value")
    prof = profile or SimulationProfile.fast()
    curves = {}
    for decoder in ("lf", "ask"):
        curves[decoder] = ber_sweep(
            snr_db_values, decoder=decoder, n_bits=n_bits,
            n_trials=n_trials, profile=prof, rng=seed, runner=runner)
    rows = []
    for lf_point, ask_point in zip(curves["lf"], curves["ask"]):
        rows.append({
            "snr_db": lf_point.snr_db,
            "lf_ber": lf_point.ber,
            "ask_ber": ask_point.ber,
            "bits_measured": lf_point.bits_measured,
        })
    try:
        gap = float(snr_gap_db(curves["lf"], curves["ask"]))
    except ConfigurationError:
        gap = None
    return {"rows": rows, "snr_gap_db": gap}


def _cell_seed(base: int, *coords: int) -> int:
    """Deterministic, order-stable seed for one grid cell."""
    state = np.random.SeedSequence(
        entropy=base, spawn_key=tuple(coords)).generate_state(1)[0]
    return int(state)


def capacity_surface(snr_db_values: Sequence[float],
                     tag_counts: Sequence[int],
                     drift_values_ppm: Sequence[float],
                     bitrate_bps: Optional[float] = None,
                     epoch_s: float = 0.012,
                     n_trials: int = 2,
                     profile: Optional[SimulationProfile] = None,
                     seed: int = 520,
                     runner=None) -> List[dict]:
    """Decoded goodput over the SNR × tags × drift grid.

    Each cell renders ``n_trials`` independent scenario epochs through
    the unified factory, decodes them with default settings via the
    sweep layer, and reports goodput fraction and aggregate decoded
    rate (normalized to the per-tag bitrate).
    """
    from ..core.engine import TrialSpec
    from ..core.pipeline import LFDecoderConfig
    from ..experiments.scenario import ScenarioSpec
    from ..experiments.sweep import SweepGrid, SweepRunner, results_of
    from ..experiments.trials import scenario_decode_trial
    if not (snr_db_values and tag_counts and drift_values_ppm):
        raise ConfigurationError("every capacity axis needs values")
    prof = profile or SimulationProfile.fast()
    rate = bitrate_bps if bitrate_bps is not None \
        else prof.default_bitrate_bps
    prof.validate_bitrate(rate)
    config = LFDecoderConfig(candidate_bitrates_bps=[rate],
                             profile=prof)

    grid = SweepGrid()
    for i, snr_db in enumerate(snr_db_values):
        for j, n_tags in enumerate(tag_counts):
            for k, drift in enumerate(drift_values_ppm):
                trials = []
                for t in range(n_trials):
                    spec = ScenarioSpec(
                        name=f"capacity_s{i}_n{j}_d{k}_t{t}",
                        n_tags=int(n_tags), bitrate_bps=rate,
                        snr_db=float(snr_db), drift_ppm=float(drift),
                        epoch_s=epoch_s,
                        seed=_cell_seed(seed, i, j, k, t))
                    trials.append(TrialSpec(
                        seed=_cell_seed(spec.seed, 977),
                        payload={"spec": spec, "profile": prof,
                                 "decoder_config": config,
                                 "duration": epoch_s,
                                 "epoch_index": 0}))
                grid.add_cell({"snr_db": float(snr_db),
                               "n_tags": int(n_tags),
                               "drift_ppm": float(drift)}, trials)

    def _fold(cell, outcomes):
        results = results_of(outcomes)
        correct = sum(r["bits_correct"] for r in results)
        sent = sum(r["bits_sent"] for r in results)
        duration = epoch_s * len(results)
        return {
            **cell.coords,
            "goodput_fraction": correct / sent if sent else 0.0,
            "decoded_bps_x": (correct / duration) / rate,
            "offered_bps_x": (sent / duration) / rate,
        }

    return (runner or SweepRunner(scenario_decode_trial)).run(
        grid, _fold)
