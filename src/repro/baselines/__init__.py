"""Baseline systems the paper compares against (Sections 2 and 4.2).

* :mod:`ask` — conventional matched-filter ASK decoding (the Figure 14
  robustness baseline);
* :mod:`tdma` — a stripped EPC Gen 2 TDMA protocol (96-bit slots at
  100 kbps);
* :mod:`buzz` — Buzz [Wang et al., SIGCOMM 2012]: lock-step randomized
  retransmission with least-squares separation;
* :mod:`qam_cluster` — pure IQ-cluster separation (Section 2.3), which
  does not scale past two tags.
"""

from .ask import AskDecoder
from .tdma import TdmaConfig, TdmaSimulator
from .buzz import BuzzConfig, BuzzSimulator, BuzzDecoder
from .qam_cluster import ClusterSeparator

__all__ = [
    "AskDecoder",
    "TdmaConfig",
    "TdmaSimulator",
    "BuzzConfig",
    "BuzzSimulator",
    "BuzzDecoder",
    "ClusterSeparator",
]
