"""Conventional ASK (on-off keying) decoding of a single backscatter tag.

The Figure 14 baseline: instead of decoding from 3-sample edge
differentials, a conventional ASK receiver integrates the received
signal over the *whole* bit period and thresholds, which buys it an
averaging gain of roughly the oversampling factor.  The paper measures
LF-Backscatter needing ~4 dB more SNR than this decoder for the same
bit error rate, and maps that gap to operating range in Section 5.4.

The decoder is given the stream timing (offset and bit period) — a
conventional receiver recovers timing from the preamble; granting it
exact timing isolates the comparison to the detection method itself.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import constants
from ..errors import ConfigurationError, DecodeError
from ..tags.base import build_frame
from ..types import IQTrace


class AskDecoder:
    """Matched-filter (per-bit integration) OOK decoder for one tag."""

    def __init__(self, preamble_bits: int = constants.PREAMBLE_BITS,
                 anchor_bit: int = constants.ANCHOR_BIT,
                 edge_guard_samples: int = constants.EDGE_WIDTH_SAMPLES):
        if preamble_bits < 2:
            raise ConfigurationError(
                "ASK decoding needs a preamble of at least 2 bits to "
                "learn the on/off levels")
        self.preamble_bits = preamble_bits
        self.anchor_bit = anchor_bit
        self.edge_guard_samples = edge_guard_samples

    def bit_means(self, trace: IQTrace, offset_samples: float,
                  period_samples: float,
                  n_bits: Optional[int] = None) -> np.ndarray:
        """Complex mean of the received signal over each bit window.

        A guard of one edge width is trimmed from both ends of every
        window so the transition ramps do not dilute the level.
        """
        if period_samples <= 2 * self.edge_guard_samples + 1:
            raise ConfigurationError(
                f"bit period {period_samples} too short for the edge "
                f"guard {self.edge_guard_samples}")
        n = len(trace)
        max_bits = int(np.floor((n - offset_samples) / period_samples))
        if n_bits is None:
            n_bits = max_bits
        if n_bits < 1 or n_bits > max_bits:
            raise ConfigurationError(
                f"cannot read {n_bits} bits; only {max_bits} fit")
        csum = np.concatenate([[0], np.cumsum(trace.samples)])
        starts = offset_samples + np.arange(n_bits) * period_samples
        lo = np.clip(np.round(starts + self.edge_guard_samples
                              ).astype(np.int64), 0, n)
        hi = np.clip(np.round(starts + period_samples
                              - self.edge_guard_samples
                              ).astype(np.int64), 0, n)
        hi = np.maximum(hi, lo + 1)
        return (csum[hi] - csum[lo]) / (hi - lo)

    def decode(self, trace: IQTrace, offset_samples: float,
               period_samples: float,
               n_bits: Optional[int] = None) -> np.ndarray:
        """Decode the tag's frame bits given its timing.

        The on/off reference levels are learned from the known
        alternating preamble, then every bit is assigned to the nearer
        level in the complex plane.
        """
        means = self.bit_means(trace, offset_samples, period_samples,
                               n_bits)
        header = build_frame(np.empty(0, dtype=np.int8),
                             preamble_bits=self.preamble_bits,
                             anchor_bit=self.anchor_bit)
        if means.size < header.size:
            raise DecodeError(
                f"only {means.size} bits available; header needs "
                f"{header.size}")
        on_ref = means[:header.size][header == 1].mean()
        off_ref = means[:header.size][header == 0].mean()
        if abs(on_ref - off_ref) == 0:
            raise DecodeError("on/off levels are indistinguishable")
        d_on = np.abs(means - on_ref)
        d_off = np.abs(means - off_ref)
        return (d_on < d_off).astype(np.int8)

    def decode_payload(self, trace: IQTrace, offset_samples: float,
                       period_samples: float,
                       n_bits: Optional[int] = None) -> np.ndarray:
        """Frame decode with the header stripped."""
        bits = self.decode(trace, offset_samples, period_samples, n_bits)
        return bits[self.preamble_bits + 1:]
