"""Buzz baseline: lock-step randomized retransmission (Section 2.2).

Buzz [Wang et al., SIGCOMM 2012] makes all tags transmit synchronously,
bit position by bit position.  Each bit position is repeated over ``m``
lock-step slots; in slot t tag i reflects ``d[t, i] * b[i]`` for a
pre-agreed random 0/1 matrix ``d``.  The reader observes

    y_t = env + sum_i d[t, i] * h_i * b_i + noise

and, knowing ``d`` and the per-tag channel coefficients ``h_i`` from a
prior estimation phase, inverts the linear system for the bit vector b.

Two structural costs follow, which the paper's comparison leans on:

* every complex measurement supplies two real equations, so
  identifiability needs ``m >= n/2`` lock-step slots per bit — the
  aggregate throughput is capped near ``2x`` the single-tag bitrate
  regardless of n (the paper's Figure 8 shows Buzz at roughly 2x TDMA);
* the channel coefficients must be re-estimated whenever tags or the
  environment move (Figure 1), and the estimation airtime is charged to
  every one-shot interaction such as inventory (Figure 12).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import constants
from ..errors import ChannelEstimationError, ConfigurationError
from ..phy.channel import ChannelModel
from ..tags.buzz_tag import randomization_matrix
from ..utils.rng import SeedLike, make_rng


@dataclass(frozen=True)
class BuzzConfig:
    """Parameters of the Buzz reproduction.

    ``retransmissions_per_bit`` defaults to ``ceil(n / 2)`` — the
    minimum for identifiability since each complex sample gives two
    real equations — which calibrates Buzz's aggregate throughput to
    the ~2x-single-channel level of the paper's Figure 8.
    ``estimation_repetitions`` is the per-tag sounding airtime modelling
    Buzz's compressive channel estimation.
    """

    bitrate_bps: float = constants.DEFAULT_BITRATE_BPS
    retransmissions_per_bit: Optional[int] = None
    estimation_repetitions: int = 48
    matrix_seed: int = 2012

    def __post_init__(self) -> None:
        if self.bitrate_bps <= 0:
            raise ConfigurationError("bitrate must be positive")
        if (self.retransmissions_per_bit is not None
                and self.retransmissions_per_bit < 1):
            raise ConfigurationError("retransmissions must be >= 1")
        if self.estimation_repetitions < 1:
            raise ConfigurationError("estimation repetitions must be >= 1")

    def slots_per_bit(self, n_tags: int) -> int:
        """Lock-step slots spent on each message bit position."""
        if n_tags < 1:
            raise ConfigurationError("need at least one tag")
        if self.retransmissions_per_bit is not None:
            return self.retransmissions_per_bit
        return max(1, math.ceil(n_tags / 2))

    @property
    def slot_duration_s(self) -> float:
        """One lock-step slot lasts one bit time."""
        return 1.0 / self.bitrate_bps


class BuzzDecoder:
    """Least-squares inversion of the randomized linear system."""

    def __init__(self, d_matrix: np.ndarray,
                 coefficients: Sequence[complex]):
        d = np.asarray(d_matrix, dtype=np.float64)
        h = np.asarray(coefficients, dtype=np.complex128)
        if d.ndim != 2:
            raise ConfigurationError("d matrix must be 2-D")
        if h.ndim != 1 or h.size != d.shape[1]:
            raise ConfigurationError(
                f"need one coefficient per tag column; got {h.size} for "
                f"{d.shape[1]} columns")
        self.d = d
        self.h = h
        # A[t, i] = d[t, i] * h_i; stacked real system (2m x n).
        a = d * h[None, :]
        self._a_real = np.vstack([a.real, a.imag])
        if np.linalg.matrix_rank(self._a_real) < h.size:
            raise ChannelEstimationError(
                "randomized system is rank-deficient; bits cannot be "
                "uniquely recovered (coefficients too similar or too "
                "few retransmissions)")

    def decode_symbol(self, measurements: np.ndarray,
                      environment: complex = 0j) -> np.ndarray:
        """Recover one bit per tag from the m lock-step measurements."""
        y = np.asarray(measurements, dtype=np.complex128).ravel()
        if y.size != self.d.shape[0]:
            raise ConfigurationError(
                f"expected {self.d.shape[0]} measurements, got {y.size}")
        y = y - environment
        rhs = np.concatenate([y.real, y.imag])
        solution, *_ = np.linalg.lstsq(self._a_real, rhs, rcond=None)
        return (solution > 0.5).astype(np.int8)

    def decode_message(self, measurements: np.ndarray,
                       environment: complex = 0j) -> np.ndarray:
        """Recover a (n_bits, n_tags) bit matrix from per-bit rows."""
        m = np.asarray(measurements, dtype=np.complex128)
        if m.ndim != 2 or m.shape[1] != self.d.shape[0]:
            raise ConfigurationError(
                f"measurements must be (n_bits, {self.d.shape[0]})")
        return np.vstack([self.decode_symbol(row, environment)
                          for row in m])


class BuzzSimulator:
    """Symbol-level simulation of the full Buzz protocol.

    Works from per-slot complex means rather than raw 25 Msps samples —
    the Buzz decoder only ever consumes per-slot integrals, and the
    per-slot noise is scaled by the integration gain accordingly.
    """

    def __init__(self, channel: ChannelModel,
                 config: Optional[BuzzConfig] = None,
                 noise_std: float = 0.0,
                 samples_per_slot: int = 250,
                 rng: SeedLike = None):
        if noise_std < 0:
            raise ConfigurationError("noise std must be >= 0")
        if samples_per_slot < 1:
            raise ConfigurationError("samples per slot must be >= 1")
        self.channel = channel
        self.config = config or BuzzConfig()
        self.noise_std = noise_std
        self.samples_per_slot = samples_per_slot
        self._rng = make_rng(rng)

    @property
    def tag_ids(self) -> List[int]:
        return self.channel.tag_ids

    def _slot_noise(self, n: int) -> np.ndarray:
        """Per-slot integrated noise (averaging gain applied)."""
        if self.noise_std == 0:
            return np.zeros(n, dtype=np.complex128)
        std = self.noise_std / math.sqrt(self.samples_per_slot)
        scale = std / math.sqrt(2.0)
        return (self._rng.normal(0.0, scale, n)
                + 1j * self._rng.normal(0.0, scale, n))

    # -- channel estimation ----------------------------------------------

    def estimation_slot_count(self) -> int:
        """Airtime (slots) of the channel-estimation phase."""
        return len(self.tag_ids) * self.config.estimation_repetitions

    def estimate_channels(self, at_time_s: float = 0.0
                          ) -> Dict[int, complex]:
        """Sound each tag and estimate its coefficient.

        Every tag reflects alone for ``estimation_repetitions`` slots;
        the coefficient estimate is the mean sounding measurement minus
        the quiet-air environment measurement, both taken at
        ``at_time_s`` (which matters under channel dynamics).
        """
        reps = self.config.estimation_repetitions
        env = complex(self.channel.environment_at(
            np.array([at_time_s]))[0])
        quiet = env + complex(np.mean(self._slot_noise(reps)))
        estimates: Dict[int, complex] = {}
        for tag_id in self.tag_ids:
            coeff = complex(self.channel.coefficient_at(
                tag_id, np.array([at_time_s]))[0])
            # Sounding: reader sees env + h_i; estimate = mean - quiet.
            soundings = env + coeff + self._slot_noise(reps)
            estimates[tag_id] = complex(np.mean(soundings)) - quiet
        return estimates

    # -- data transfer -----------------------------------------------------

    def transmit(self, messages: Dict[int, np.ndarray],
                 at_time_s: float = 0.0,
                 estimated: Optional[Dict[int, complex]] = None
                 ) -> Tuple[Dict[int, np.ndarray], float]:
        """Run one lock-step message exchange.

        All tags transmit their equal-length messages bit-by-bit.
        Returns (decoded bits per tag, total airtime seconds including
        the estimation phase unless ``estimated`` is supplied).
        """
        ids = self.tag_ids
        if set(messages) != set(ids):
            raise ConfigurationError(
                "every tag in the channel must have a message")
        lengths = {len(np.asarray(m)) for m in messages.values()}
        if len(lengths) != 1:
            raise ConfigurationError(
                "Buzz is lock-step: all messages must have equal length")
        n_bits = lengths.pop()
        if n_bits < 1:
            raise ConfigurationError("messages must be non-empty")
        n = len(ids)
        m = self.config.slots_per_bit(n)

        airtime_slots = n_bits * m
        if estimated is None:
            estimated = self.estimate_channels(at_time_s)
            airtime_slots += self.estimation_slot_count()

        # The minimal m = ceil(n/2) system is square once stacked into
        # real equations; an unlucky 0/1 draw can be singular, in which
        # case reader and tags move to the next pre-agreed matrix.
        decoder = None
        d = None
        for attempt in range(32):
            d = randomization_matrix(
                m, n, seed=self.config.matrix_seed + attempt)
            try:
                decoder = BuzzDecoder(d, [estimated[i] for i in ids])
                break
            except ChannelEstimationError:
                continue
        if decoder is None:
            raise ChannelEstimationError(
                f"no invertible {m}x{n} randomization matrix found; "
                "coefficients may be degenerate")

        env = complex(self.channel.environment_at(
            np.array([at_time_s]))[0])
        bit_matrix = np.vstack([np.asarray(messages[i], dtype=np.int8)
                                for i in ids]).T  # (n_bits, n)
        true_h = np.array([complex(self.channel.coefficient_at(
            i, np.array([at_time_s]))[0]) for i in ids])

        # Physical measurements use the *true* channel; the decoder only
        # gets the estimates.
        measurements = np.empty((n_bits, m), dtype=np.complex128)
        for j in range(n_bits):
            contributions = d @ (true_h * bit_matrix[j])
            measurements[j] = env + contributions + self._slot_noise(m)
        decoded = decoder.decode_message(measurements, environment=env)
        out = {tag_id: decoded[:, col] for col, tag_id in enumerate(ids)}
        return out, airtime_slots * self.config.slot_duration_s

    def transmit_waveform_level(self, messages: Dict[int, np.ndarray],
                                samples_per_slot: Optional[int] = None,
                                at_time_s: float = 0.0,
                                estimated: Optional[Dict[int, complex]]
                                = None
                                ) -> Tuple[Dict[int, np.ndarray],
                                           float]:
        """Like :meth:`transmit`, but each lock-step slot is rendered
        as an actual waveform that the reader integrates.

        This grounds the symbol-level model: the per-slot measurement
        is the mean of ``samples_per_slot`` noisy IQ samples of the
        combined reflection, which is exactly what
        :meth:`transmit`'s integrated-noise shortcut assumes.
        """
        ids = self.tag_ids
        if set(messages) != set(ids):
            raise ConfigurationError(
                "every tag in the channel must have a message")
        lengths = {len(np.asarray(m)) for m in messages.values()}
        if len(lengths) != 1:
            raise ConfigurationError(
                "Buzz is lock-step: all messages must have equal length")
        n_bits = lengths.pop()
        if n_bits < 1:
            raise ConfigurationError("messages must be non-empty")
        spb = samples_per_slot or self.samples_per_slot
        n = len(ids)
        m = self.config.slots_per_bit(n)

        airtime_slots = n_bits * m
        if estimated is None:
            estimated = self.estimate_channels(at_time_s)
            airtime_slots += self.estimation_slot_count()

        decoder = None
        d = None
        for attempt in range(32):
            d = randomization_matrix(
                m, n, seed=self.config.matrix_seed + attempt)
            try:
                decoder = BuzzDecoder(d, [estimated[i] for i in ids])
                break
            except ChannelEstimationError:
                continue
        if decoder is None:
            raise ChannelEstimationError(
                "no invertible randomization matrix found")

        env = complex(self.channel.environment_at(
            np.array([at_time_s]))[0])
        true_h = np.array([complex(self.channel.coefficient_at(
            i, np.array([at_time_s]))[0]) for i in ids])
        bit_matrix = np.vstack([np.asarray(messages[i], dtype=np.int8)
                                for i in ids]).T

        measurements = np.empty((n_bits, m), dtype=np.complex128)
        scale = self.noise_std / math.sqrt(2.0) if self.noise_std             else 0.0
        for j in range(n_bits):
            for t in range(m):
                # Constant combined reflection over the slot: every
                # active tag holds its antenna state for the whole
                # lock-step slot.
                level = env + complex(d[t] @ (true_h * bit_matrix[j]))
                samples = np.full(spb, level, dtype=np.complex128)
                if scale:
                    samples = samples + (
                        self._rng.normal(0, scale, spb)
                        + 1j * self._rng.normal(0, scale, spb))
                measurements[j, t] = samples.mean()
        decoded = decoder.decode_message(measurements, environment=env)
        out = {tag_id: decoded[:, col]
               for col, tag_id in enumerate(ids)}
        return out, airtime_slots * self.config.slot_duration_s

    # -- analytic figures ---------------------------------------------------

    def aggregate_throughput_bps(self, n_tags: Optional[int] = None,
                                 message_bits: int = 4096) -> float:
        """Steady-state aggregate goodput for long transfers.

        Estimation amortizes over ``message_bits``; as messages grow the
        throughput approaches ``n * bitrate / slots_per_bit`` which is
        about 2x the single-tag bitrate.
        """
        n = len(self.tag_ids) if n_tags is None else n_tags
        if n < 1:
            raise ConfigurationError("need at least one tag")
        m = self.config.slots_per_bit(n)
        est = n * self.config.estimation_repetitions
        total_slots = est + message_bits * m
        return n * message_bits / (total_slots * self.config.slot_duration_s)

    def identification_time_s(self, n_tags: Optional[int] = None,
                              id_bits: int = constants.EPC_ID_BITS
                              + constants.EPC_CRC_BITS) -> float:
        """One-shot inventory time: estimation + lock-step identifiers."""
        n = len(self.tag_ids) if n_tags is None else n_tags
        if n < 1:
            raise ConfigurationError("need at least one tag")
        m = self.config.slots_per_bit(n)
        slots = n * self.config.estimation_repetitions + id_bits * m
        return slots * self.config.slot_duration_s
