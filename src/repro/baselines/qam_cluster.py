"""Pure IQ-cluster separation, the Section 2.3 strawman.

When N tags toggle concurrently, the raw received IQ samples form 2^N
clusters (one per combination of antenna states).  Decoding by nearest
cluster works for two tags but "simply does not scale to a larger
number of nodes" — with 6 tags the 64 clusters crowd together (Figure
2c) and dwell points between clusters dominate.  This module implements
that approach so the scaling failure can be measured rather than
asserted.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError, DecodeError
from ..utils.rng import SeedLike, make_rng
from ..core.clustering import kmeans


@dataclass
class ClusterSeparator:
    """Nearest-cluster decoding of synchronous multi-tag ASK.

    ``coefficients`` are the per-tag channel coefficients; with them
    the 2^N ideal cluster centres are known exactly and decoding is a
    nearest-centre lookup.  Without them (``calibrate_from_samples``)
    centres are learned by k-means, which is where the approach starts
    to crumble as N grows.
    """

    coefficients: Sequence[complex]
    environment: complex = 0j
    _centres: np.ndarray = field(init=False, repr=False)
    _combos: Tuple[Tuple[int, ...], ...] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        coeffs = [complex(c) for c in self.coefficients]
        if not coeffs:
            raise ConfigurationError("need at least one coefficient")
        if len(coeffs) > 12:
            raise ConfigurationError(
                f"2^{len(coeffs)} clusters is not tractable; the whole "
                "point of Section 2.3 is that this fails long before")
        self.coefficients = coeffs
        self._combos = tuple(itertools.product((0, 1),
                                               repeat=len(coeffs)))
        self._centres = np.array(
            [self.environment + sum(c * s for c, s in zip(coeffs, combo))
             for combo in self._combos], dtype=np.complex128)

    @property
    def n_tags(self) -> int:
        return len(self.coefficients)

    @property
    def n_clusters(self) -> int:
        return len(self._combos)

    def cluster_centres(self) -> np.ndarray:
        """Ideal cluster centres for the current coefficients."""
        return self._centres.copy()

    def min_cluster_gap(self) -> float:
        """Smallest pairwise distance between ideal cluster centres.

        This is the decodability margin: once it falls near the noise
        scale, nearest-cluster decoding collapses (Figure 2c).
        """
        diffs = np.abs(self._centres[:, None] - self._centres[None, :])
        np.fill_diagonal(diffs, np.inf)
        return float(diffs.min())

    def decode_samples(self, samples: np.ndarray) -> np.ndarray:
        """Map each IQ sample to the per-tag states of its nearest
        centre; returns an (n_samples, n_tags) 0/1 matrix."""
        pts = np.asarray(samples, dtype=np.complex128).ravel()
        if pts.size == 0:
            raise DecodeError("no samples to decode")
        nearest = np.argmin(np.abs(pts[:, None]
                                   - self._centres[None, :]), axis=1)
        combos = np.asarray(self._combos, dtype=np.int8)
        return combos[nearest]

    def symbol_accuracy(self, samples: np.ndarray,
                        true_states: np.ndarray) -> float:
        """Fraction of samples whose full state vector decodes exactly."""
        decoded = self.decode_samples(samples)
        truth = np.asarray(true_states, dtype=np.int8)
        if truth.shape != decoded.shape:
            raise ConfigurationError(
                f"true states shape {truth.shape} != decoded "
                f"{decoded.shape}")
        return float(np.mean(np.all(decoded == truth, axis=1)))


def synthesize_synchronous_samples(
        coefficients: Sequence[complex],
        n_symbols: int,
        samples_per_symbol: int = 20,
        environment: complex = 0j,
        noise_std: float = 0.01,
        rng: SeedLike = None) -> Tuple[np.ndarray, np.ndarray]:
    """Generate the Figure 2(b)/(c) style scatter for N synchronous tags.

    Returns (samples, per-sample true state matrix).  Tags flip to an
    independent random state each symbol; every symbol contributes
    ``samples_per_symbol`` noisy IQ points at its combined reflection.
    """
    coeffs = np.asarray([complex(c) for c in coefficients])
    if n_symbols < 1 or samples_per_symbol < 1:
        raise ConfigurationError("need at least one symbol and sample")
    gen = make_rng(rng)
    states = gen.integers(0, 2, (n_symbols, coeffs.size)).astype(np.int8)
    centres = environment + states @ coeffs
    samples = np.repeat(centres, samples_per_symbol)
    truth = np.repeat(states, samples_per_symbol, axis=0)
    if noise_std > 0:
        scale = noise_std / np.sqrt(2.0)
        samples = samples + (gen.normal(0, scale, samples.size)
                             + 1j * gen.normal(0, scale, samples.size))
    return samples, truth


def blind_cluster_accuracy(samples: np.ndarray, n_tags: int,
                           rng: SeedLike = None) -> float:
    """How well blind k-means recovers the 2^N cluster structure.

    Returns the fraction of samples assigned to a cluster whose centroid
    is nearest to the sample's true centre — a proxy for decodability
    without known coefficients.  Used to quantify the Figure 2(c)
    degradation.
    """
    pts = np.asarray(samples, dtype=np.complex128).ravel()
    k = 2 ** n_tags
    if pts.size < k:
        raise ConfigurationError(
            f"need at least {k} samples for {k} clusters")
    fit = kmeans(pts, k, rng=rng, n_init=2)
    dist = np.abs(pts - fit.centroids[fit.labels])
    # Tight assignment: a sample "decodes" if it sits within a quarter
    # of the median inter-centroid gap of its own centroid.
    centre_gaps = np.abs(fit.centroids[:, None] - fit.centroids[None, :])
    np.fill_diagonal(centre_gaps, np.inf)
    margin = float(np.median(np.min(centre_gaps, axis=1))) / 4.0
    return float(np.mean(dist < margin))
