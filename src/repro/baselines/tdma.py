"""Stripped EPC Gen 2 TDMA baseline (Section 4.2).

"We use a stripped down version of EPC Gen 2 where we remove a
significant fraction of its protocol overhead ... slots are 96 bits
long, and the bitrate is 100 kbps."

Throughput: TDMA serializes all transmissions on one channel, so its
aggregate goodput is capped at the single-tag bitrate regardless of the
number of tags (Figure 8's flat TDMA line).

Identification: Gen 2 inventories tags with framed-slotted ALOHA driven
by the Q algorithm; empty and collision slots inflate the slot count by
a well-known factor around e ~ 2.7 optimal-case ~2 with Q adaptation.
We model that with an explicit slotted-ALOHA round simulation plus an
analytic fast path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from .. import constants
from ..errors import ConfigurationError
from ..types import SimulationProfile, ThroughputReport
from ..utils.rng import SeedLike, make_rng


@dataclass(frozen=True)
class TdmaConfig:
    """Parameters of the stripped Gen 2 baseline."""

    slot_bits: int = constants.TDMA_SLOT_BITS
    bitrate_bps: float = constants.DEFAULT_BITRATE_BPS
    #: Reader control overhead per slot, in bit-times.  The stripped
    #: baseline keeps only a minimal slot-boundary marker.
    control_bits_per_slot: int = 0
    #: Extra identification bits (CRC) per tag in inventory rounds.
    crc_bits: int = constants.EPC_CRC_BITS

    def __post_init__(self) -> None:
        if self.slot_bits < 1:
            raise ConfigurationError("slot length must be >= 1 bit")
        if self.bitrate_bps <= 0:
            raise ConfigurationError("bitrate must be positive")
        if self.control_bits_per_slot < 0:
            raise ConfigurationError("control overhead must be >= 0")

    @property
    def slot_duration_s(self) -> float:
        """Airtime of one slot including control overhead."""
        return (self.slot_bits
                + self.control_bits_per_slot) / self.bitrate_bps


class TdmaSimulator:
    """Protocol-level TDMA simulation."""

    def __init__(self, config: Optional[TdmaConfig] = None,
                 rng: SeedLike = None):
        self.config = config or TdmaConfig()
        self._rng = make_rng(rng)

    # -- throughput (Figure 8) -------------------------------------------

    def aggregate_throughput_bps(self, n_tags: int) -> float:
        """Steady-state aggregate goodput for ``n_tags`` streaming tags.

        Slots serialize perfectly under reader assignment, so the
        aggregate equals the per-slot efficiency times the bitrate,
        independent of the tag count.
        """
        if n_tags < 1:
            raise ConfigurationError("need at least one tag")
        cfg = self.config
        efficiency = cfg.slot_bits / (cfg.slot_bits
                                      + cfg.control_bits_per_slot)
        return cfg.bitrate_bps * efficiency

    def run_transfer(self, n_tags: int, duration_s: float
                     ) -> ThroughputReport:
        """Simulate round-robin slotted transfer for ``duration_s``."""
        if duration_s <= 0:
            raise ConfigurationError("duration must be positive")
        cfg = self.config
        n_slots = int(duration_s / cfg.slot_duration_s)
        per_tag: Dict[int, int] = {k: 0 for k in range(n_tags)}
        for slot in range(n_slots):
            per_tag[slot % n_tags] += cfg.slot_bits
        total = sum(per_tag.values())
        return ThroughputReport(
            scheme="tdma", n_tags=n_tags, bits_correct=total,
            bits_sent=total, elapsed_s=duration_s, per_tag_bits=per_tag)

    def run_transfer_signal_level(self, n_tags: int, n_slots: int,
                                  profile: Optional[SimulationProfile]
                                  = None,
                                  noise_std: float = 0.01,
                                  rng: SeedLike = None
                                  ) -> ThroughputReport:
        """Waveform-level TDMA: one tag transmits per slot, the reader
        decodes it with the matched-filter ASK receiver.

        This grounds the protocol-level throughput model in the same
        physical substrate the LF pipeline is measured on: each slot is
        synthesized as a real IQ capture and decoded bit by bit.
        """
        if n_tags < 1:
            raise ConfigurationError("need at least one tag")
        if n_slots < 1:
            raise ConfigurationError("need at least one slot")
        from ..baselines.ask import AskDecoder
        from ..phy.channel import ChannelModel, random_coefficients
        from ..reader.simulator import NetworkSimulator
        from ..tags.ask_tag import AskTag
        from ..tags.base import FixedPayload
        from ..types import TagConfig

        prof = profile or SimulationProfile.fast()
        rate = self.config.bitrate_bps
        prof.validate_bitrate(rate)
        gen = make_rng(rng) if rng is not None else self._rng
        coeffs = random_coefficients(n_tags, rng=gen)
        decoder = AskDecoder()
        slot_bits = self.config.slot_bits
        correct = 0
        sent = 0
        per_tag: Dict[int, int] = {k: 0 for k in range(n_tags)}
        for slot in range(n_slots):
            owner = slot % n_tags
            payload = gen.integers(0, 2, slot_bits).astype(np.int8)
            tag = AskTag(
                TagConfig(tag_id=owner, bitrate_bps=rate,
                          channel_coefficient=coeffs[owner]),
                payload_source=FixedPayload(payload),
                start_offset_s=2.0 / rate, profile=prof,
                rng=np.random.default_rng(gen.integers(0, 2 ** 63)))
            channel = ChannelModel({owner: coeffs[owner]},
                                   environment_offset=0.5 + 0.3j)
            sim = NetworkSimulator(
                [tag], channel, profile=prof, noise_std=noise_std,
                rng=np.random.default_rng(gen.integers(0, 2 ** 63)))
            duration = (slot_bits + tag.header_bits() + 4) / rate
            capture = sim.run_epoch(duration, epoch_index=slot)
            truth = capture.truths[0]
            bits = decoder.decode_payload(
                capture.trace, truth.offset_samples,
                truth.period_samples, truth.n_bits)[:slot_bits]
            ok = int(np.count_nonzero(bits == payload[:bits.size]))
            correct += ok
            sent += slot_bits
            per_tag[owner] += ok
        elapsed = n_slots * self.config.slot_duration_s
        return ThroughputReport(
            scheme="tdma_signal", n_tags=n_tags,
            bits_correct=correct, bits_sent=sent, elapsed_s=elapsed,
            per_tag_bits=per_tag)

    # -- identification (Figure 12) --------------------------------------

    def identification_slots(self, n_tags: int,
                             simulate: bool = True) -> int:
        """Number of slots to inventory ``n_tags`` tags.

        With ``simulate=True``, runs framed-slotted ALOHA rounds with an
        idealized Q adaptation (frame size = number of unresolved tags);
        otherwise returns the analytic expectation ``ceil(e * n)`` minus
        the deterministic first success (slotted ALOHA with per-round
        frame-size matching resolves ~1/e of contenders per frame).
        """
        if n_tags < 1:
            raise ConfigurationError("need at least one tag")
        if not simulate:
            return max(n_tags, int(math.ceil(math.e * n_tags)))
        remaining = n_tags
        slots = 0
        while remaining > 0:
            frame = max(remaining, 1)
            choices = self._rng.integers(0, frame, remaining)
            counts = np.bincount(choices, minlength=frame)
            slots += frame
            remaining -= int(np.count_nonzero(counts == 1))
        return slots

    def identification_time_s(self, n_tags: int,
                              simulate: bool = True) -> float:
        """Time to read every tag's 96-bit EPC identifier once."""
        cfg = self.config
        id_slot_bits = (constants.EPC_ID_BITS + cfg.crc_bits
                        + cfg.control_bits_per_slot)
        slot_time = id_slot_bits / cfg.bitrate_bps
        return self.identification_slots(n_tags, simulate) * slot_time


def identification_times(n_tags_list: List[int],
                         config: Optional[TdmaConfig] = None,
                         n_trials: int = 20,
                         rng: SeedLike = None) -> Dict[int, float]:
    """Mean identification time per tag count (for the Figure 12 sweep)."""
    gen = make_rng(rng)
    sim = TdmaSimulator(config, rng=gen)
    out: Dict[int, float] = {}
    for n in n_tags_list:
        trials = [sim.identification_time_s(n) for _ in range(n_trials)]
        out[n] = float(np.mean(trials))
    return out
