"""Shared physical and protocol constants for the LF-Backscatter reproduction.

Values mirror the experimental setup in the paper (Section 4 and 5):
a USRP N210 reader sampling at 25 Msps in the 900 MHz ISM band, UMass Moo
tags with a 150 ppm crystal, NRZ ASK modulation at bitrates that are
multiples of a 100 bps base rate, and EPC Gen 2 style 96-bit messages.
"""

from __future__ import annotations

# --- Reader (Section 4.1, "USRP Reader") -------------------------------

#: Default reader sampling rate in samples per second.  The paper's USRP
#: N210 with an SBX daughterboard samples at 25 MHz.
READER_SAMPLE_RATE_HZ: float = 25e6

#: Carrier frequency of the reader, centre of the 902-928 MHz ISM band.
CARRIER_FREQ_HZ: float = 915e6

#: Speed of light, used by the radar-equation link budget (Section 5.4).
SPEED_OF_LIGHT_M_S: float = 299_792_458.0

# --- Tag (Section 4.1, "Backscatter node") ------------------------------

#: Default tag bitrate used throughout the evaluation (Section 5.1).
DEFAULT_BITRATE_BPS: float = 100e3

#: Base rate: every valid tag bitrate is an integer multiple of this
#: (Section 3.2: "the base rate is 100 bps, and any multiple of that is a
#: valid data rate").
BASE_RATE_BPS: float = 100.0

#: Width of a signal edge in reader samples at the 25 Msps reference rate
#: (Section 2.4: "An edge is roughly 3 samples wide at the reader's
#: sampling rate").
EDGE_WIDTH_SAMPLES: int = 3

#: Typical clock drift of the Moo's replacement 8 MHz crystal oscillator
#: (Section 4.1): 150 parts per million.
DEFAULT_CLOCK_DRIFT_PPM: float = 150.0

#: Maximum clock drift the decoder is designed to tolerate (Section 4.1:
#: "Our decoding method can tolerate roughly 200 ppm of clock drift").
MAX_TOLERATED_DRIFT_PPM: float = 200.0

#: Capacitor tolerance used by the comparator-jitter model (Section 3.2:
#: "typical capacitors have about 20% tolerance").
CAPACITOR_TOLERANCE: float = 0.20

# --- Protocol framing ----------------------------------------------------

#: EPC Gen 2 identifier length in bits (Section 5.2).
EPC_ID_BITS: int = 96

#: CRC length appended to the identifier in the LF identification
#: protocol (Section 5.2: "96 bits + 5 bit CRC").
EPC_CRC_BITS: int = 5

#: TDMA slot length in bits (Section 4.2: "slots are 96 bits long").
TDMA_SLOT_BITS: int = 96

#: Alternating preamble transmitted at the start of every epoch so the
#: reader's eye-pattern folding locks onto the stream quickly.  The paper
#: only requires "a header from each tag" containing the anchor bit
#: (Section 3.4); we use an 8-bit 10101010 preamble followed by the
#: anchor.
PREAMBLE_BITS: int = 8

#: The anchor bit value embedded at a known location in the header
#: (Section 3.4, Table 1: "the first bit is an anchor with value one").
ANCHOR_BIT: int = 1

# --- Derived helpers ------------------------------------------------------


def samples_per_bit(bitrate_bps: float,
                    sample_rate_hz: float = READER_SAMPLE_RATE_HZ) -> float:
    """Number of reader samples spanned by one tag bit.

    At the paper's reference point (100 kbps tag, 25 Msps reader) this is
    250 samples per bit (Section 2.4).
    """
    if bitrate_bps <= 0:
        raise ValueError(f"bitrate must be positive, got {bitrate_bps}")
    if sample_rate_hz <= 0:
        raise ValueError(f"sample rate must be positive, got {sample_rate_hz}")
    return sample_rate_hz / bitrate_bps
