"""The paper's contribution: the LF-Backscatter reader-side decoder.

Pipeline stages (Section 3), each in its own module:

1. :mod:`edges` — reliable edge detection on the IQ differential (§3.1)
2. :mod:`folding` — eye-pattern stream separation (§3.2)
3. :mod:`streams` — drift-tracking refinement of stream timing
4. :mod:`clustering` — k-means with cluster-count model selection
5. :mod:`collision` — 3^k-cluster collision detection (§3.3)
6. :mod:`separation` — parallelogram separation of 2-way collisions (§3.4)
7. :mod:`viterbi` — 4-state edge-sequence error correction (§3.5)
8. :mod:`anchor` — anchor-bit cluster disambiguation (§3.4, Table 1)
9. :mod:`stages` — each pipeline step as a composable
   :class:`~repro.core.stages.context.Stage` over a shared
   :class:`~repro.core.stages.context.DecodeContext`
10. :mod:`pipeline` — :class:`LFDecoder` composing the stage graph

:mod:`fidelity` threads a confidence-gated escalation policy through
stages 4-8: each hot computation starts cheap and escalates to full
fidelity only when its confidence gate fails.
"""

from .edges import EdgeDetector, EdgeDetectorConfig
from .folding import FoldingConfig, find_stream_hypotheses
from .streams import StreamTrack, track_stream, read_grid_differentials
from .clustering import KMeansResult, kmeans, select_cluster_count
from .collision import CollisionReport, detect_collision
from .fidelity import (FIDELITY_STAT_KEYS, FidelityPolicy,
                       escalation_rate, merge_fidelity_stats)
from .separation import SeparationResult, separate_two_way
from .viterbi import ViterbiDecoder, edge_states_to_bits, bits_to_edge_states
from .anchor import resolve_polarity, assemble_bits
from .stages import (DecodeContext, Stage, StageObserver, StageRunner,
                     StatsAccumulator, default_epoch_stages,
                     default_stream_stages)
from .pipeline import LFDecoder, LFDecoderConfig
from .session import SessionConfig, SessionState, StreamTracker
from .session_decoder import SessionDecoder
from .engine import BatchDecoder, EpochOutcome, TrialSpec

__all__ = [
    "EdgeDetector",
    "EdgeDetectorConfig",
    "FoldingConfig",
    "find_stream_hypotheses",
    "StreamTrack",
    "track_stream",
    "read_grid_differentials",
    "KMeansResult",
    "kmeans",
    "select_cluster_count",
    "CollisionReport",
    "detect_collision",
    "FIDELITY_STAT_KEYS",
    "FidelityPolicy",
    "escalation_rate",
    "merge_fidelity_stats",
    "SeparationResult",
    "separate_two_way",
    "ViterbiDecoder",
    "edge_states_to_bits",
    "bits_to_edge_states",
    "resolve_polarity",
    "assemble_bits",
    "LFDecoder",
    "LFDecoderConfig",
    "SessionConfig",
    "SessionDecoder",
    "SessionState",
    "StreamTracker",
    "BatchDecoder",
    "EpochOutcome",
    "TrialSpec",
    "DecodeContext",
    "Stage",
    "StageObserver",
    "StageRunner",
    "StatsAccumulator",
    "default_epoch_stages",
    "default_stream_stages",
]
