"""Anchor-bit cluster disambiguation and frame assembly (Section 3.4).

K-means tells us *which* cluster a differential belongs to but not
whether that cluster is the rising or the falling edge — the sign of
the recovered edge vector is ambiguous.  Every frame therefore embeds a
single anchor bit at a known position in the header (Table 1); decoding
under both polarities and scoring the known header resolves the sign.

This module also locates the frame start within the stream's grid: the
track may begin before the tag's first edge, so slot 0 of the track is
not necessarily bit 0 of the frame.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .. import constants
from ..errors import ConfigurationError, DecodeError
from ..tags.base import build_frame
from .viterbi import RISE, ViterbiDecoder, hard_decode_bits


@dataclass
class AssembledBits:
    """Decoded frame bits plus the alignment metadata."""

    bits: np.ndarray
    start_slot: int
    flipped: bool
    header_score: float


def expected_header(preamble_bits: int = constants.PREAMBLE_BITS,
                    anchor_bit: int = constants.ANCHOR_BIT) -> np.ndarray:
    """The known header bits every frame starts with."""
    return build_frame(np.empty(0, dtype=np.int8),
                       preamble_bits=preamble_bits,
                       anchor_bit=anchor_bit)


def _header_match(bits: np.ndarray, header: np.ndarray) -> float:
    """Fraction of header bits matched at the start of ``bits``."""
    n = min(bits.size, header.size)
    if n == 0:
        return 0.0
    return float(np.count_nonzero(bits[:n] == header[:n])) / header.size


def _candidate_starts(observations: np.ndarray, threshold: float = 0.5,
                      max_candidates: int = 3) -> np.ndarray:
    """Earliest slots whose observation looks like a rising edge."""
    rises = np.flatnonzero(observations > threshold)
    return rises[:max_candidates]


def _pre_start_penalty(observations: np.ndarray, start: int,
                       lookback: int = 2, threshold: float = 0.5) -> float:
    """Penalty for edge activity just before a candidate frame start.

    A genuine frame is preceded by silence (the tag had not fired yet),
    while the classic false lock — the alternating preamble read
    sign-flipped and one slot late — always leaves a strong edge in the
    slot before its candidate start.  The penalty disambiguates the two
    even when both match the header bits perfectly.
    """
    lo = max(start - lookback, 0)
    if lo >= start:
        return 0.0
    if np.any(np.abs(observations[lo:start]) > threshold):
        return 0.5
    return 0.0


def resolve_polarity(observations: np.ndarray,
                     preamble_bits: int = constants.PREAMBLE_BITS,
                     anchor_bit: int = constants.ANCHOR_BIT,
                     decoder: Optional[ViterbiDecoder] = None,
                     use_viterbi: bool = True,
                     flipped_hint: Optional[bool] = None,
                     prescreen: bool = False) -> AssembledBits:
    """Decode a stream's projected observations into frame bits.

    Tries both polarities and up to three candidate frame-start slots
    per polarity; each candidate is decoded (Viterbi by default, hard
    threshold for the no-error-correction ablation) and scored against
    the known header.  The best-scoring assembly wins; ties prefer the
    earlier start and the first-tried polarity.

    ``flipped_hint`` reorders the polarity search (hinted sign first) —
    a correct hint hits the perfect-header early exit without ever
    decoding the mirror image, a wrong one merely restores the cold
    two-polarity cost.  The hint never changes which assembly wins.

    ``prescreen=True`` scores each candidate on a cheap hard-threshold
    decode of the header slots and runs the full-length Viterbi only on
    the winner.  The returned ``header_score`` always comes
    from the full decode, so the pipeline's header acceptance gate sees
    the same evidence either way — prescreening can only change *which*
    candidate gets the full decode, a choice that matters exactly for
    frames whose header is too corrupt to pass the gate.
    """
    obs = np.asarray(observations, dtype=np.float64).ravel()
    if obs.size == 0:
        raise ConfigurationError("need at least one observation")
    header = expected_header(preamble_bits, anchor_bit)
    dec = decoder or ViterbiDecoder()

    order = (False, True) if flipped_hint is None \
        else (bool(flipped_hint), not flipped_hint)
    if prescreen and use_viterbi:
        return _resolve_prescreened(obs, header, dec, order)
    best: Optional[AssembledBits] = None
    for flipped in order:
        signed = -obs if flipped else obs
        for start in _candidate_starts(signed):
            segment = signed[start:]
            if segment.size < header.size:
                continue
            if use_viterbi:
                bits = dec.decode_bits(segment, initial_state=RISE)
            else:
                bits = hard_decode_bits(segment)
            score = _header_match(bits, header) \
                - _pre_start_penalty(signed, int(start))
            candidate = AssembledBits(bits=bits, start_slot=int(start),
                                      flipped=flipped, header_score=score)
            # The tie-break is ordering-independent (unflipped, then
            # earlier start) so a polarity hint cannot change which
            # assembly wins, only how fast it is found.
            if best is None or score > best.header_score or (
                    score == best.header_score
                    and (candidate.flipped, candidate.start_slot)
                    < (best.flipped, best.start_slot)):
                best = candidate
            # A perfect header match cannot be beaten (score <= 1.0 and
            # later candidates only win strictly), so stop searching.
            if best.header_score >= 1.0:
                return best
    if best is None:
        raise DecodeError(
            "no rising edge found in the stream; cannot locate the frame")
    return best


def _resolve_prescreened(obs: np.ndarray, header: np.ndarray,
                         dec: ViterbiDecoder,
                         order) -> AssembledBits:
    """Hard-decode-score every candidate, full-decode only the winner.

    The ranking pass thresholds the header slots directly instead of
    running a prefix Viterbi: with symmetric bit priors the Viterbi
    per-slot decisions over a clean header agree with the hard
    threshold, and candidates that disagree are exactly the corrupt
    ones whose full decode would fail the acceptance gate anyway.
    """
    h = header.size
    best = None  # (score, flipped, start)
    for flipped in order:
        signed = -obs if flipped else obs
        starts = [int(s) for s in _candidate_starts(signed)
                  if signed.size - int(s) >= h]
        if not starts:
            continue
        # One struct-of-arrays hard decode over every candidate of
        # this polarity: the candidates' header windows stack into an
        # (S, h) matrix and threshold/forward-fill in one pass.
        # Within a polarity the tie-break prefers the earlier start
        # anyway, so scoring candidates past a perfect one cannot
        # change the winner.
        seg = np.stack([signed[s:s + h] for s in starts])
        m = np.minimum(np.maximum(np.rint(seg), -1),
                       1).astype(np.int8)
        idx = np.where(m != 0, np.arange(h)[None, :], -1)
        last = np.maximum.accumulate(idx, axis=1)
        bits = np.where(
            last >= 0,
            np.take_along_axis(m, np.maximum(last, 0), axis=1) == 1,
            False).astype(np.int8)
        matches = np.count_nonzero(bits == header[None, :],
                                   axis=1) / header.size
        for i, start in enumerate(starts):
            score = float(matches[i]) \
                - _pre_start_penalty(signed, start)
            if best is None or score > best[0] or (
                    score == best[0]
                    and (flipped, start) < best[1:]):
                best = (score, flipped, start)
        if best is not None and best[0] >= 1.0:
            break
    if best is None:
        raise DecodeError(
            "no rising edge found in the stream; cannot locate the frame")
    _, flipped, start = best
    signed = -obs if flipped else obs
    bits = dec.decode_bits(signed[start:], initial_state=RISE)
    score = _header_match(bits, header) \
        - _pre_start_penalty(signed, start)
    return AssembledBits(bits=bits, start_slot=start,
                         flipped=flipped, header_score=score)


def assemble_bits(observations: np.ndarray,
                  use_viterbi: bool = True,
                  decoder: Optional[ViterbiDecoder] = None,
                  preamble_bits: int = constants.PREAMBLE_BITS,
                  anchor_bit: int = constants.ANCHOR_BIT,
                  min_header_score: float = 0.0,
                  flipped_hint: Optional[bool] = None,
                  prescreen: bool = False) -> AssembledBits:
    """Polarity-resolve and decode, optionally rejecting weak frames.

    ``min_header_score`` lets the pipeline discard assemblies whose
    header match is too poor to be a genuine frame (spurious streams
    surviving the fold filter).
    """
    assembled = resolve_polarity(observations,
                                 preamble_bits=preamble_bits,
                                 anchor_bit=anchor_bit,
                                 decoder=decoder,
                                 use_viterbi=use_viterbi,
                                 flipped_hint=flipped_hint,
                                 prescreen=prescreen)
    if assembled.header_score < min_header_score:
        raise DecodeError(
            f"header score {assembled.header_score:.2f} below the "
            f"acceptance threshold {min_header_score:.2f}")
    return assembled
