"""K-means clustering in the IQ plane with cluster-count selection.

The collision detector (Section 3.3) needs to decide whether a stream's
edge differentials form 3 clusters (one tag: rise/fall/hold) or 3^k
clusters (k colliding tags).  This module provides a small, dependency-
free k-means (k-means++ seeding, multiple restarts) plus a BIC-style
model selection over candidate cluster counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..utils.rng import SeedLike, make_rng
from .fidelity import FidelityPolicy
from .kernels import KernelBackend, get_backend


@dataclass
class KMeansResult:
    """Outcome of one k-means fit on complex points."""

    centroids: np.ndarray      # complex (k,)
    labels: np.ndarray         # int (n,)
    inertia: float             # sum of squared distances to centroids

    @property
    def k(self) -> int:
        return int(self.centroids.size)

    def cluster_sizes(self) -> np.ndarray:
        """Number of points assigned to each centroid."""
        return np.bincount(self.labels, minlength=self.k)


def _kmeans_pp_init(points: np.ndarray, k: int, n_init: int,
                    rng: np.random.Generator) -> np.ndarray:
    """k-means++ seeding for ``n_init`` restarts at once.

    The RNG values are drawn restart-by-restart up front (the same
    stream a serial seeding loop would consume: one integer for the
    first centroid, then one uniform per greedy step), after which the
    k-1 greedy steps run batched across all restarts.  Each step is
    inverse-CDF sampling, mirroring ``Generator.choice(p=probs)`` (one
    uniform draw + a cumulative-sum threshold) without its O(n) input
    validation.
    """
    n = points.size
    pr, pi = points.real, points.imag
    first = np.empty(n_init, dtype=np.int64)
    us = np.empty((n_init, max(k - 1, 0)))
    for r in range(n_init):
        first[r] = rng.integers(0, n)
        # One vectorized draw consumes the identical generator stream
        # as k-1 scalar ``rng.random()`` calls (each double is one
        # 64-bit draw), without k-1 Python round-trips.
        us[r, :] = rng.random(k - 1)
    cents = np.empty((n_init, k), dtype=np.complex128)
    cents[:, 0] = points[first]
    dist2 = ((pr[None, :] - pr[first][:, None]) ** 2
             + (pi[None, :] - pi[first][:, None]) ** 2)
    for j in range(1, k):
        cdf = np.cumsum(dist2, axis=1)
        # Degenerate rows (every point already on a centroid) have an
        # all-zero cdf and pick the last point, which just duplicates
        # an existing centroid — same outcome as any other pick.
        targets = us[:, j - 1] * cdf[:, -1]
        picks = np.minimum((cdf <= targets[:, None]).sum(axis=1), n - 1)
        cents[:, j] = points[picks]
        np.minimum(dist2,
                   (pr[None, :] - pr[picks][:, None]) ** 2
                   + (pi[None, :] - pi[picks][:, None]) ** 2,
                   out=dist2)
    return cents


def kmeans(points: np.ndarray, k: int, rng: SeedLike = None,
           n_init: int = 4, max_iter: int = 100,
           tol: float = 1e-10,
           init_centroids: Optional[np.ndarray] = None,
           bounded_min_points: int = 1024,
           backend: Optional[KernelBackend] = None) -> KMeansResult:
    """Lloyd's algorithm on complex points with k-means++ restarts.

    ``init_centroids``, when given, is a length-``k`` complex array of
    prior centroids (e.g. a tracked stream's fit from the previous
    epoch).  It replaces the k-means++ restart fan-out with a *single*
    warm restart from those centroids — the cross-epoch fast path of
    :mod:`repro.core.session` — and leaves the RNG untouched.  Warm
    restarts on at least ``bounded_min_points`` points run the
    bound-based Lloyd iteration (:func:`kmeans_bounded`), which
    converges to the identical fit while skipping most distance
    computations.
    """
    pts = np.asarray(points, dtype=np.complex128).ravel()
    if pts.size == 0:
        raise ConfigurationError("cannot cluster zero points")
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    if k > pts.size:
        raise ConfigurationError(
            f"k={k} exceeds the number of points ({pts.size})")
    if n_init < 1:
        raise ConfigurationError("n_init must be >= 1")
    if init_centroids is not None:
        warm = np.asarray(init_centroids, dtype=np.complex128).ravel()
        if warm.size != k:
            raise ConfigurationError(
                f"init_centroids has {warm.size} centroids, need {k}")
        n_init = 1
        # A single warm restart on a large point set is the bound-based
        # sweet spot: Hamerly pruning converges identically to the
        # brute-force iteration (property-tested) while skipping most
        # distance computations once assignments settle.
        if pts.size >= bounded_min_points and k > 1:
            return kmeans_bounded(pts, k, warm, max_iter=max_iter,
                                  tol=tol, backend=backend)
    gen = make_rng(rng)
    if init_centroids is not None:
        cents = warm[None, :].copy()
    else:
        cents = _kmeans_pp_init(pts, k, n_init, gen)
    return _lloyd_batched(pts, cents, max_iter=max_iter, tol=tol,
                          backend=backend)


def _lloyd_batched(pts: np.ndarray, cents: np.ndarray,
                   max_iter: int = 100,
                   tol: float = 1e-10,
                   backend: Optional[KernelBackend] = None
                   ) -> KMeansResult:
    """Batched Lloyd iteration over a stack of restarts.

    All restarts run in one batched iteration (an (R, k) centroid
    stack); each restart follows exactly the trajectory it would
    follow alone, and the best restart by final inertia wins.  The
    arithmetic lives in the kernel backend's ``lloyd_batched``
    (:mod:`repro.core.kernels`).
    """
    kern = backend if backend is not None else get_backend()
    centroids, labels, inertia = kern.lloyd_batched(
        pts, cents, max_iter=max_iter, tol=tol)
    return KMeansResult(centroids=centroids, labels=labels,
                        inertia=inertia)


def kmeans_bounded(points: np.ndarray, k: int,
                   init_centroids: np.ndarray,
                   max_iter: int = 100, tol: float = 1e-10,
                   stats: Optional[Dict[str, int]] = None,
                   backend: Optional[KernelBackend] = None
                   ) -> KMeansResult:
    """Single-restart Lloyd iteration with Hamerly distance bounds.

    Follows the exact assignment trajectory of the brute-force
    iteration (:func:`_lloyd_batched` with one restart) but maintains
    per-point bounds — an upper bound on the distance to the assigned
    centroid and a lower bound on the distance to every other — so most
    points skip the full distance computation on most iterations.  A
    point's exact distances are recomputed only when the bounds cross
    (``upper >= lower``, inclusive so argmin first-index tie-breaking
    matches the reference), which restores the invariant that every
    point is labelled by true nearest centroid.  Centroid updates,
    empty-cluster reseeding, the convergence test and the final
    assignment reuse the reference formulas verbatim, so the returned
    fit is bit-identical to the brute-force warm restart.
    """
    pts = np.asarray(points, dtype=np.complex128).ravel()
    if pts.size == 0:
        raise ConfigurationError("cannot cluster zero points")
    cents = np.asarray(init_centroids, dtype=np.complex128).ravel().copy()
    if cents.size != k:
        raise ConfigurationError(
            f"init_centroids has {cents.size} centroids, need {k}")
    if k > pts.size:
        raise ConfigurationError(
            f"k={k} exceeds the number of points ({pts.size})")
    if stats is not None:
        stats["bounded_lloyd_runs"] = stats.get("bounded_lloyd_runs", 0) + 1
    kern = backend if backend is not None else get_backend()
    centroids, labels, inertia = kern.bounded_lloyd(
        pts, cents, max_iter=max_iter, tol=tol)
    return KMeansResult(centroids=centroids, labels=labels,
                        inertia=inertia)


def bic_score(result: KMeansResult, n_points: int) -> float:
    """BIC-style score of a k-means fit (lower is better).

    Treats the fit as a spherical Gaussian mixture: the data term is
    ``n * log(inertia / n)`` and the complexity term charges three
    parameters (2-D mean + shared variance share) per cluster.  Kept as
    a diagnostic; cluster-count selection uses the more robust inertia
    improvement ratio (k-means splits even pure Gaussian noise well
    enough to fool spherical BIC).
    """
    if n_points < 1:
        raise ConfigurationError("n_points must be >= 1")
    variance = max(result.inertia / n_points, 1e-300)
    data_term = n_points * math.log(variance)
    complexity = 3.0 * result.k * math.log(n_points)
    return data_term + complexity


def select_cluster_count(points: np.ndarray,
                         candidates: Sequence[int] = (3, 9),
                         rng: SeedLike = None,
                         n_init: int = 4,
                         improvement_factor: float = 4.0,
                         centroid_hints: Optional[
                             Dict[int, np.ndarray]] = None,
                         fits_out: Optional[
                             Dict[int, KMeansResult]] = None,
                         policy: Optional[FidelityPolicy] = None,
                         stats: Optional[Dict[str, int]] = None,
                         backend: Optional[KernelBackend] = None
                         ) -> KMeansResult:
    """Pick the cluster count by inertia-improvement ratio.

    Candidates are tried in increasing order; a larger k is accepted
    only when it shrinks the within-cluster inertia by at least
    ``improvement_factor`` over the current best.  Splitting an
    unstructured (noise-limited) fit only buys a factor ~k_ratio, so a
    threshold of 4 between k=3 and k=9 separates genuine collision
    lattices (typically >8x improvement) from over-fitting noise.

    ``centroid_hints`` maps a candidate ``k`` to prior centroids for it
    (a tracked stream's previous-epoch fit); any hinted candidate runs
    as a single warm Lloyd restart instead of the k-means++ fan-out.
    ``fits_out``, when given, is filled with every candidate's fit so a
    session cache can persist the centroids for the next epoch.

    With an *active* ``policy`` (see :class:`FidelityPolicy`) the sweep
    runs adaptively: k-means++ seeding is shared across the candidate
    ks (each smaller k seeds from a prefix of the largest candidate's
    seeds), model selection runs on a capped deterministic subsample,
    and the full point set is refitted only when the inertia-ratio
    verdict lands inside the policy's confidence gap.  ``stats``
    accumulates the escalation counters.  A ``force_full`` (or absent)
    policy runs the legacy sweep, consuming the identical RNG stream.
    """
    pts = np.asarray(points, dtype=np.complex128).ravel()
    if not candidates:
        raise ConfigurationError("need at least one candidate k")
    if improvement_factor <= 1.0:
        raise ConfigurationError("improvement_factor must be > 1")
    gen = make_rng(rng)
    feasible = sorted(k for k in set(candidates)
                      if 1 <= k <= pts.size)
    if not feasible:
        raise ConfigurationError(
            f"no feasible candidate in {list(candidates)} for "
            f"{pts.size} points")
    hints = centroid_hints or {}

    if policy is not None and policy.active and len(feasible) > 1:
        return _select_adaptive(pts, feasible, gen, n_init,
                                improvement_factor, hints, fits_out,
                                policy, stats, backend)

    def _fit(k: int) -> KMeansResult:
        result = kmeans(pts, k, rng=gen, n_init=n_init,
                        init_centroids=hints.get(k), backend=backend)
        if fits_out is not None:
            fits_out[k] = result
        return result

    best = _fit(feasible[0])
    for k in feasible[1:]:
        candidate = _fit(k)
        floor = max(candidate.inertia, 1e-300)
        if best.inertia / floor >= improvement_factor:
            best = candidate
    return best


def _select_adaptive(pts: np.ndarray, feasible: List[int],
                     gen: np.random.Generator, n_init: int,
                     improvement_factor: float,
                     hints: Dict[int, np.ndarray],
                     fits_out: Optional[Dict[int, KMeansResult]],
                     policy: FidelityPolicy,
                     stats: Optional[Dict[str, int]],
                     backend: Optional[KernelBackend] = None
                     ) -> KMeansResult:
    """Subsampled, shared-seeded candidate-k sweep with escalation.

    The largest candidate k is seeded once with k-means++; every
    smaller candidate reuses a prefix of those seeds (a k-means++
    prefix is itself a valid k-means++ draw, since seeding is greedy
    and incremental), so the sweep pays one seeding fan-out instead of
    one per candidate.  When the point set exceeds the policy's
    subsample cap, the sweep runs on a deterministic seeded subsample
    and the inertia-ratio verdict is trusted only when its log-margin
    from the acceptance threshold exceeds ``log(confidence_gap)``;
    otherwise the legacy full-set sweep runs.  A trusted subsample
    verdict still refits the chosen k on the full set (warm-started
    from the subsample centroids) so the returned labels cover every
    point.
    """
    cap = policy.subsample_cap
    subsampled = bool(cap) and pts.size > cap
    if subsampled:
        draw = np.random.default_rng(policy.subsample_seed)
        sub_idx = draw.choice(pts.size, size=cap, replace=False)
        sub_idx.sort()
        sub = pts[sub_idx]
        feasible = [k for k in feasible if k <= sub.size]
    else:
        sub = pts

    # One k-means++ fan-out at the largest candidate seeds the whole
    # sweep; smaller candidates take seed prefixes.  The restart count
    # is narrowed: the collision verdict reads the inertia *ratio*
    # between candidate ks (robust to a slightly sub-optimal fit on
    # both sides), not the absolute fit quality the legacy fan-out
    # polishes for.
    k_max = feasible[-1]
    restarts = min(n_init, 2)
    shared = _kmeans_pp_init(sub, k_max, restarts, gen)

    def _fit_sub(k: int) -> KMeansResult:
        hint = hints.get(k)
        if hint is not None and not subsampled:
            seeds = np.asarray(hint, dtype=np.complex128).ravel()
            if seeds.size == k:
                return _lloyd_batched(sub, seeds[None, :],
                                      backend=backend)
        return _lloyd_batched(sub, shared[:, :k], backend=backend)

    fits = {k: _fit_sub(k) for k in feasible}
    best_k = feasible[0]
    confident = True
    log_gap = math.log(policy.confidence_gap)
    for k in feasible[1:]:
        floor = max(fits[k].inertia, 1e-300)
        ratio = max(fits[best_k].inertia, 1e-300) / floor
        if subsampled:
            margin = abs(math.log(ratio) - math.log(improvement_factor))
            if margin < log_gap:
                confident = False
                break
        if ratio >= improvement_factor:
            best_k = k

    if not confident:
        # Low-confidence subsample verdict: escalate to the legacy
        # full-set sweep (cold k-means++ restarts on every point).
        if stats is not None:
            stats["subsample_escalations"] = (
                stats.get("subsample_escalations", 0) + 1)
        best = None
        for k in feasible:
            result = kmeans(pts, k, rng=gen, n_init=n_init,
                            init_centroids=hints.get(k),
                            backend=backend)
            if fits_out is not None:
                fits_out[k] = result
            if best is None:
                best = result
            else:
                floor = max(result.inertia, 1e-300)
                if best.inertia / floor >= improvement_factor:
                    best = result
        return best

    if subsampled:
        if stats is not None:
            stats["subsample_fast"] = stats.get("subsample_fast", 0) + 1
        # The verdict is trusted; the chosen k still needs full-set
        # labels, so refit warm from the subsample centroids.
        if pts.size >= policy.bounded_min_points and best_k > 1:
            best = kmeans_bounded(pts, best_k, fits[best_k].centroids,
                                  stats=stats, backend=backend)
        else:
            best = _lloyd_batched(pts, fits[best_k].centroids[None, :],
                                  backend=backend)
        fits[best_k] = best
    else:
        best = fits[best_k]
    if fits_out is not None:
        fits_out.update(fits)
    return best
