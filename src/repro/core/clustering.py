"""K-means clustering in the IQ plane with cluster-count selection.

The collision detector (Section 3.3) needs to decide whether a stream's
edge differentials form 3 clusters (one tag: rise/fall/hold) or 3^k
clusters (k colliding tags).  This module provides a small, dependency-
free k-means (k-means++ seeding, multiple restarts) plus a BIC-style
model selection over candidate cluster counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..utils.rng import SeedLike, make_rng


@dataclass
class KMeansResult:
    """Outcome of one k-means fit on complex points."""

    centroids: np.ndarray      # complex (k,)
    labels: np.ndarray         # int (n,)
    inertia: float             # sum of squared distances to centroids

    @property
    def k(self) -> int:
        return int(self.centroids.size)

    def cluster_sizes(self) -> np.ndarray:
        """Number of points assigned to each centroid."""
        return np.bincount(self.labels, minlength=self.k)


def _kmeans_pp_init(points: np.ndarray, k: int,
                    rng: np.random.Generator) -> np.ndarray:
    """k-means++ seeding over complex points."""
    n = points.size
    centroids = np.empty(k, dtype=np.complex128)
    centroids[0] = points[rng.integers(0, n)]
    dist2 = np.abs(points - centroids[0]) ** 2
    for j in range(1, k):
        total = dist2.sum()
        if total <= 0:
            centroids[j:] = points[rng.integers(0, n, k - j)]
            break
        probs = dist2 / total
        centroids[j] = points[rng.choice(n, p=probs)]
        dist2 = np.minimum(dist2, np.abs(points - centroids[j]) ** 2)
    return centroids


def kmeans(points: np.ndarray, k: int, rng: SeedLike = None,
           n_init: int = 4, max_iter: int = 100,
           tol: float = 1e-10) -> KMeansResult:
    """Lloyd's algorithm on complex points with k-means++ restarts."""
    pts = np.asarray(points, dtype=np.complex128).ravel()
    if pts.size == 0:
        raise ConfigurationError("cannot cluster zero points")
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    if k > pts.size:
        raise ConfigurationError(
            f"k={k} exceeds the number of points ({pts.size})")
    if n_init < 1:
        raise ConfigurationError("n_init must be >= 1")
    gen = make_rng(rng)

    best: Optional[KMeansResult] = None
    for _ in range(n_init):
        centroids = _kmeans_pp_init(pts, k, gen)
        labels = np.zeros(pts.size, dtype=np.int64)
        for _ in range(max_iter):
            dist2 = np.abs(pts[:, None] - centroids[None, :]) ** 2
            labels = np.argmin(dist2, axis=1)
            new_centroids = centroids.copy()
            for j in range(k):
                members = pts[labels == j]
                if members.size:
                    new_centroids[j] = members.mean()
                else:
                    # Re-seed an empty cluster at the worst-fit point.
                    worst = int(np.argmax(np.min(dist2, axis=1)))
                    new_centroids[j] = pts[worst]
            moved = float(np.max(np.abs(new_centroids - centroids)))
            centroids = new_centroids
            if moved <= tol:
                break
        dist2 = np.abs(pts[:, None] - centroids[None, :]) ** 2
        labels = np.argmin(dist2, axis=1)
        inertia = float(np.sum(np.min(dist2, axis=1)))
        if best is None or inertia < best.inertia:
            best = KMeansResult(centroids=centroids, labels=labels,
                                inertia=inertia)
    assert best is not None
    return best


def bic_score(result: KMeansResult, n_points: int) -> float:
    """BIC-style score of a k-means fit (lower is better).

    Treats the fit as a spherical Gaussian mixture: the data term is
    ``n * log(inertia / n)`` and the complexity term charges three
    parameters (2-D mean + shared variance share) per cluster.  Kept as
    a diagnostic; cluster-count selection uses the more robust inertia
    improvement ratio (k-means splits even pure Gaussian noise well
    enough to fool spherical BIC).
    """
    if n_points < 1:
        raise ConfigurationError("n_points must be >= 1")
    variance = max(result.inertia / n_points, 1e-300)
    data_term = n_points * math.log(variance)
    complexity = 3.0 * result.k * math.log(n_points)
    return data_term + complexity


def select_cluster_count(points: np.ndarray,
                         candidates: Sequence[int] = (3, 9),
                         rng: SeedLike = None,
                         n_init: int = 4,
                         improvement_factor: float = 4.0
                         ) -> KMeansResult:
    """Pick the cluster count by inertia-improvement ratio.

    Candidates are tried in increasing order; a larger k is accepted
    only when it shrinks the within-cluster inertia by at least
    ``improvement_factor`` over the current best.  Splitting an
    unstructured (noise-limited) fit only buys a factor ~k_ratio, so a
    threshold of 4 between k=3 and k=9 separates genuine collision
    lattices (typically >8x improvement) from over-fitting noise.
    """
    pts = np.asarray(points, dtype=np.complex128).ravel()
    if not candidates:
        raise ConfigurationError("need at least one candidate k")
    if improvement_factor <= 1.0:
        raise ConfigurationError("improvement_factor must be > 1")
    gen = make_rng(rng)
    feasible = sorted(k for k in set(candidates)
                      if 1 <= k <= pts.size)
    if not feasible:
        raise ConfigurationError(
            f"no feasible candidate in {list(candidates)} for "
            f"{pts.size} points")
    best = kmeans(pts, feasible[0], rng=gen, n_init=n_init)
    for k in feasible[1:]:
        candidate = kmeans(pts, k, rng=gen, n_init=n_init)
        floor = max(candidate.inertia, 1e-300)
        if best.inertia / floor >= improvement_factor:
            best = candidate
    return best
