"""K-means clustering in the IQ plane with cluster-count selection.

The collision detector (Section 3.3) needs to decide whether a stream's
edge differentials form 3 clusters (one tag: rise/fall/hold) or 3^k
clusters (k colliding tags).  This module provides a small, dependency-
free k-means (k-means++ seeding, multiple restarts) plus a BIC-style
model selection over candidate cluster counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..utils.rng import SeedLike, make_rng


@dataclass
class KMeansResult:
    """Outcome of one k-means fit on complex points."""

    centroids: np.ndarray      # complex (k,)
    labels: np.ndarray         # int (n,)
    inertia: float             # sum of squared distances to centroids

    @property
    def k(self) -> int:
        return int(self.centroids.size)

    def cluster_sizes(self) -> np.ndarray:
        """Number of points assigned to each centroid."""
        return np.bincount(self.labels, minlength=self.k)


def _kmeans_pp_init(points: np.ndarray, k: int, n_init: int,
                    rng: np.random.Generator) -> np.ndarray:
    """k-means++ seeding for ``n_init`` restarts at once.

    The RNG values are drawn restart-by-restart up front (the same
    stream a serial seeding loop would consume: one integer for the
    first centroid, then one uniform per greedy step), after which the
    k-1 greedy steps run batched across all restarts.  Each step is
    inverse-CDF sampling, mirroring ``Generator.choice(p=probs)`` (one
    uniform draw + a cumulative-sum threshold) without its O(n) input
    validation.
    """
    n = points.size
    pr, pi = points.real, points.imag
    first = np.empty(n_init, dtype=np.int64)
    us = np.empty((n_init, max(k - 1, 0)))
    for r in range(n_init):
        first[r] = rng.integers(0, n)
        for j in range(k - 1):
            us[r, j] = rng.random()
    cents = np.empty((n_init, k), dtype=np.complex128)
    cents[:, 0] = points[first]
    dist2 = ((pr[None, :] - pr[first][:, None]) ** 2
             + (pi[None, :] - pi[first][:, None]) ** 2)
    for j in range(1, k):
        cdf = np.cumsum(dist2, axis=1)
        # Degenerate rows (every point already on a centroid) have an
        # all-zero cdf and pick the last point, which just duplicates
        # an existing centroid — same outcome as any other pick.
        targets = us[:, j - 1] * cdf[:, -1]
        picks = np.minimum((cdf <= targets[:, None]).sum(axis=1), n - 1)
        cents[:, j] = points[picks]
        np.minimum(dist2,
                   (pr[None, :] - pr[picks][:, None]) ** 2
                   + (pi[None, :] - pi[picks][:, None]) ** 2,
                   out=dist2)
    return cents


def kmeans(points: np.ndarray, k: int, rng: SeedLike = None,
           n_init: int = 4, max_iter: int = 100,
           tol: float = 1e-10,
           init_centroids: Optional[np.ndarray] = None) -> KMeansResult:
    """Lloyd's algorithm on complex points with k-means++ restarts.

    ``init_centroids``, when given, is a length-``k`` complex array of
    prior centroids (e.g. a tracked stream's fit from the previous
    epoch).  It replaces the k-means++ restart fan-out with a *single*
    warm restart from those centroids — the cross-epoch fast path of
    :mod:`repro.core.session` — and leaves the RNG untouched.
    """
    pts = np.asarray(points, dtype=np.complex128).ravel()
    if pts.size == 0:
        raise ConfigurationError("cannot cluster zero points")
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    if k > pts.size:
        raise ConfigurationError(
            f"k={k} exceeds the number of points ({pts.size})")
    if n_init < 1:
        raise ConfigurationError("n_init must be >= 1")
    if init_centroids is not None:
        warm = np.asarray(init_centroids, dtype=np.complex128).ravel()
        if warm.size != k:
            raise ConfigurationError(
                f"init_centroids has {warm.size} centroids, need {k}")
        n_init = 1
    gen = make_rng(rng)

    # All restarts run as one batched Lloyd iteration: centroids are an
    # (R, k) stack, distances an (R, n, k) tensor, and the centroid
    # update a single offset-bincount over every restart's labels.
    # Seeding still draws from the generator restart-by-restart (the
    # same RNG stream as a serial loop), each restart follows exactly
    # the trajectory it would follow alone (converged restarts are
    # frozen, not re-averaged), and the wall clock is set by the
    # slowest restart instead of the sum of all of them.
    n = pts.size
    pr, pi = pts.real, pts.imag
    if init_centroids is not None:
        cents = warm[None, :].copy()
    else:
        cents = _kmeans_pp_init(pts, k, n_init, gen)
    offsets = (np.arange(n_init) * k)[:, None]
    pr_tiled = np.broadcast_to(pr, (n_init, n)).ravel()
    pi_tiled = np.broadcast_to(pi, (n_init, n)).ravel()

    def _dist2(c: np.ndarray) -> np.ndarray:
        return ((pr[None, :, None] - c.real[:, None, :]) ** 2
                + (pi[None, :, None] - c.imag[:, None, :]) ** 2)

    # Restarts drop out of the iteration as they converge, so late
    # iterations only pay for the rows still moving.
    act = np.arange(n_init)
    for _ in range(max_iter):
        c = cents[act]
        a = act.size
        dist2 = _dist2(c)
        flat = (np.argmin(dist2, axis=2) + offsets[:a]).ravel()
        total = a * k
        counts = np.bincount(flat, minlength=total).reshape(a, k)
        sums = (np.bincount(flat, weights=pr_tiled[:a * n],
                            minlength=total)
                + 1j * np.bincount(flat, weights=pi_tiled[:a * n],
                                   minlength=total)).reshape(a, k)
        new_c = np.where(counts > 0, sums / np.maximum(counts, 1), c)
        empty_rows = np.flatnonzero((counts == 0).any(axis=1))
        if empty_rows.size:
            # Re-seed empty clusters at the restart's worst-fit point.
            worst = np.argmax(np.min(dist2, axis=2), axis=1)
            for r in empty_rows:
                new_c[r, counts[r] == 0] = pts[worst[r]]
        moved = np.max(np.abs(new_c - c), axis=1)
        cents[act] = new_c
        act = act[moved > tol]
        if act.size == 0:
            break

    dist2 = _dist2(cents)
    per_restart = np.min(dist2, axis=2)
    inertias = per_restart.sum(axis=1)
    best_r = int(np.argmin(inertias))
    labels = np.argmin(dist2[best_r], axis=1)
    return KMeansResult(centroids=cents[best_r], labels=labels,
                        inertia=float(inertias[best_r]))


def bic_score(result: KMeansResult, n_points: int) -> float:
    """BIC-style score of a k-means fit (lower is better).

    Treats the fit as a spherical Gaussian mixture: the data term is
    ``n * log(inertia / n)`` and the complexity term charges three
    parameters (2-D mean + shared variance share) per cluster.  Kept as
    a diagnostic; cluster-count selection uses the more robust inertia
    improvement ratio (k-means splits even pure Gaussian noise well
    enough to fool spherical BIC).
    """
    if n_points < 1:
        raise ConfigurationError("n_points must be >= 1")
    variance = max(result.inertia / n_points, 1e-300)
    data_term = n_points * math.log(variance)
    complexity = 3.0 * result.k * math.log(n_points)
    return data_term + complexity


def select_cluster_count(points: np.ndarray,
                         candidates: Sequence[int] = (3, 9),
                         rng: SeedLike = None,
                         n_init: int = 4,
                         improvement_factor: float = 4.0,
                         centroid_hints: Optional[
                             Dict[int, np.ndarray]] = None,
                         fits_out: Optional[
                             Dict[int, KMeansResult]] = None
                         ) -> KMeansResult:
    """Pick the cluster count by inertia-improvement ratio.

    Candidates are tried in increasing order; a larger k is accepted
    only when it shrinks the within-cluster inertia by at least
    ``improvement_factor`` over the current best.  Splitting an
    unstructured (noise-limited) fit only buys a factor ~k_ratio, so a
    threshold of 4 between k=3 and k=9 separates genuine collision
    lattices (typically >8x improvement) from over-fitting noise.

    ``centroid_hints`` maps a candidate ``k`` to prior centroids for it
    (a tracked stream's previous-epoch fit); any hinted candidate runs
    as a single warm Lloyd restart instead of the k-means++ fan-out.
    ``fits_out``, when given, is filled with every candidate's fit so a
    session cache can persist the centroids for the next epoch.
    """
    pts = np.asarray(points, dtype=np.complex128).ravel()
    if not candidates:
        raise ConfigurationError("need at least one candidate k")
    if improvement_factor <= 1.0:
        raise ConfigurationError("improvement_factor must be > 1")
    gen = make_rng(rng)
    feasible = sorted(k for k in set(candidates)
                      if 1 <= k <= pts.size)
    if not feasible:
        raise ConfigurationError(
            f"no feasible candidate in {list(candidates)} for "
            f"{pts.size} points")
    hints = centroid_hints or {}

    def _fit(k: int) -> KMeansResult:
        result = kmeans(pts, k, rng=gen, n_init=n_init,
                        init_centroids=hints.get(k))
        if fits_out is not None:
            fits_out[k] = result
        return result

    best = _fit(feasible[0])
    for k in feasible[1:]:
        candidate = _fit(k)
        floor = max(candidate.inertia, 1e-300)
        if best.inertia / floor >= improvement_factor:
            best = candidate
    return best
