"""IQ cluster-based collision detection (Section 3.3).

For a single tag, grid differentials take one of three values
{0, +e, -e} — three clusters on a *line* through the origin.  When k
tags collide on the same grid, each slot's differential is a lattice
combination a1*e1 + ... + ak*ek with ai in {-1, 0, +1}, giving 3^k
clusters that span a k-dimensional arrangement in the IQ plane.

Detection therefore combines two signals:

* model selection over cluster counts (3 vs 9), and
* planarity: a single tag's differentials are collinear with the
  origin, a two-way collision is genuinely two-dimensional.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..utils.rng import SeedLike
from .clustering import KMeansResult, kmeans, select_cluster_count
from .fidelity import FidelityPolicy
from .kernels import KernelBackend


@dataclass
class CollisionReport:
    """Outcome of collision analysis for one stream's differentials.

    ``kmeans`` is ``None`` only on the adaptive pre-gate fast path of a
    cold (sessionless) decode, where the verdict is settled by
    planarity alone and no consumer needs the cluster fit.
    """

    is_collision: bool
    n_clusters: int
    planarity: float           # minor/major axis ratio of the scatter
    kmeans: Optional[KMeansResult]

    @property
    def estimated_colliders(self) -> int:
        """Number of tags believed to share the grid (1 = no collision)."""
        if not self.is_collision:
            return 1
        # 3^k clusters -> k colliders; n_clusters is 9 for 2-way.
        k = int(round(np.log(self.n_clusters) / np.log(3.0)))
        return max(k, 2)


def scatter_planarity(points: np.ndarray) -> float:
    """Minor/major axis ratio of complex points (0 = collinear, 1 = round).

    Eigenvalue ratio of the 2x2 second-moment matrix about the origin —
    about the origin, not the mean, because a single tag's three
    clusters {0, +e, -e} are symmetric around the origin and a
    mean-centred PCA would see the same geometry as a shifted lattice.
    """
    pts = np.asarray(points, dtype=np.complex128).ravel()
    if pts.size < 2:
        return 0.0
    x = np.stack([pts.real, pts.imag])
    moment = x @ x.T / pts.size
    eigvals = np.linalg.eigvalsh(moment)
    major = float(eigvals[-1])
    minor = float(max(eigvals[0], 0.0))
    if major <= 0:
        return 0.0
    return minor / major


def effective_planarity_threshold(
        points: np.ndarray,
        planarity_threshold: float = 0.02,
        noise_scale: Optional[float] = None) -> float:
    """Planarity above which a scatter counts as two-dimensional.

    The base threshold, raised to the noise-implied floor when the
    noise scale is known: for a single tag the minor scatter axis is
    pure noise, so its eigenvalue is the per-axis noise variance (half
    the complex noise power ``noise_scale**2``); a 3x margin keeps
    noise from masquerading as a weak second collider.
    """
    threshold = planarity_threshold
    pts = np.asarray(points, dtype=np.complex128).ravel()
    if noise_scale is not None and noise_scale > 0 and pts.size:
        x = np.stack([pts.real, pts.imag])
        major_eig = float(np.linalg.eigvalsh(x @ x.T / pts.size)[-1])
        if major_eig > 0:
            implied = 3.0 * (noise_scale ** 2 / 2.0) / major_eig
            threshold = max(threshold, implied)
    return threshold


def detect_collision(differentials: np.ndarray,
                     candidates: Sequence[int] = (3, 9),
                     planarity_threshold: float = 0.02,
                     noise_scale: Optional[float] = None,
                     rng: SeedLike = None,
                     centroid_hints: Optional[
                         Dict[int, np.ndarray]] = None,
                     fits_out: Optional[Dict[int, object]] = None,
                     policy: Optional[FidelityPolicy] = None,
                     stats: Optional[Dict[str, int]] = None,
                     warm: bool = False,
                     cache_fast_fit: bool = True,
                     backend: Optional[KernelBackend] = None
                     ) -> CollisionReport:
    """Decide whether a stream's grid differentials contain a collision.

    ``noise_scale``, when given, is the expected differential noise
    standard deviation; planarity below the threshold *or* below the
    noise-implied floor keeps the verdict at "single tag" even when the
    9-cluster fit wins BIC by over-fitting noise.

    ``centroid_hints`` / ``fits_out`` are the session warm-start hooks
    (see :func:`repro.core.clustering.select_cluster_count`): hinted
    cluster counts fit as a single warm Lloyd restart, and every
    candidate fit is exported for the next epoch's cache.

    With an *active* ``policy``, planarity is evaluated *before* the
    cluster-count sweep: the final verdict only depends on planarity
    versus the effective threshold (the sweep always returns k >= 3 for
    these candidate sets), so a scatter whose planarity sits below
    ``pregate_margin`` times the threshold is a guaranteed single tag
    and skips the sweep.  ``warm=True`` (a session tracker already
    vouches for the stream as a known single tag) widens the fast band
    to ``pregate_margin_warm``.  Planarity in the low-confidence band
    escalates to the full detector, so the fast path can never flip a
    verdict.  ``stats`` accumulates the gate counters.

    ``cache_fast_fit=False`` lets a caller with no session cache skip
    the 3-cluster fit on the fast path entirely (the verdict never
    reads it); escalated sweeps still export every fit via
    ``fits_out``.
    """
    pts = np.asarray(differentials, dtype=np.complex128).ravel()
    if pts.size < 3:
        raise ConfigurationError(
            f"need at least 3 differentials, got {pts.size}")
    if not 0 <= planarity_threshold < 1:
        raise ConfigurationError(
            "planarity threshold must be in [0, 1)")

    adaptive = policy is not None and policy.active
    if adaptive and policy.pregate:
        planarity = scatter_planarity(pts)
        threshold = effective_planarity_threshold(
            pts, planarity_threshold=planarity_threshold,
            noise_scale=noise_scale)
        margin = (policy.pregate_margin_warm if warm
                  else policy.pregate_margin)
        if planarity <= margin * threshold:
            if stats is not None:
                stats["pregate_fast"] = stats.get("pregate_fast", 0) + 1
            # Verdict is settled (single tag); the sweep is skipped.
            # Only a session cache still needs the 3-cluster fit —
            # its per-point inertia is next epoch's blowup baseline —
            # so a cold decode skips the fit too.
            fit = None
            if fits_out is not None and cache_fast_fit:
                k3 = min(3, pts.size)
                fit = kmeans(pts, k3, rng=rng, n_init=1,
                             init_centroids=(centroid_hints
                                             or {}).get(k3),
                             bounded_min_points=(
                                 policy.bounded_min_points),
                             backend=backend)
                fits_out[k3] = fit
            return CollisionReport(
                is_collision=False,
                n_clusters=min(fit.k, 3) if fit is not None else 3,
                planarity=planarity,
                kmeans=fit,
            )
        if stats is not None:
            stats["pregate_escalations"] = (
                stats.get("pregate_escalations", 0) + 1)
    else:
        planarity = None
        threshold = None

    fit = select_cluster_count(pts, candidates=candidates, rng=rng,
                               improvement_factor=1.5,
                               centroid_hints=centroid_hints,
                               fits_out=fits_out,
                               policy=policy, stats=stats,
                               backend=backend)
    if planarity is None:
        planarity = scatter_planarity(pts)
        threshold = effective_planarity_threshold(
            pts, planarity_threshold=planarity_threshold,
            noise_scale=noise_scale)

    # Planarity is the primary signal: a second collider makes the
    # differential scatter genuinely two-dimensional, whereas the
    # cluster-count fit is noisy for partially-overlapping streams
    # (e.g. a collider that started mid-epoch).
    is_collision = planarity > threshold and fit.k >= 3
    return CollisionReport(
        is_collision=is_collision,
        n_clusters=fit.k if is_collision else min(fit.k, 3),
        planarity=planarity,
        kmeans=fit,
    )
