"""IQ cluster-based collision detection (Section 3.3).

For a single tag, grid differentials take one of three values
{0, +e, -e} — three clusters on a *line* through the origin.  When k
tags collide on the same grid, each slot's differential is a lattice
combination a1*e1 + ... + ak*ek with ai in {-1, 0, +1}, giving 3^k
clusters that span a k-dimensional arrangement in the IQ plane.

Detection therefore combines two signals:

* model selection over cluster counts (3 vs 9), and
* planarity: a single tag's differentials are collinear with the
  origin, a two-way collision is genuinely two-dimensional.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..utils.rng import SeedLike
from .clustering import KMeansResult, select_cluster_count


@dataclass
class CollisionReport:
    """Outcome of collision analysis for one stream's differentials."""

    is_collision: bool
    n_clusters: int
    planarity: float           # minor/major axis ratio of the scatter
    kmeans: KMeansResult

    @property
    def estimated_colliders(self) -> int:
        """Number of tags believed to share the grid (1 = no collision)."""
        if not self.is_collision:
            return 1
        # 3^k clusters -> k colliders; n_clusters is 9 for 2-way.
        k = int(round(np.log(self.n_clusters) / np.log(3.0)))
        return max(k, 2)


def scatter_planarity(points: np.ndarray) -> float:
    """Minor/major axis ratio of complex points (0 = collinear, 1 = round).

    Eigenvalue ratio of the 2x2 second-moment matrix about the origin —
    about the origin, not the mean, because a single tag's three
    clusters {0, +e, -e} are symmetric around the origin and a
    mean-centred PCA would see the same geometry as a shifted lattice.
    """
    pts = np.asarray(points, dtype=np.complex128).ravel()
    if pts.size < 2:
        return 0.0
    x = np.stack([pts.real, pts.imag])
    moment = x @ x.T / pts.size
    eigvals = np.linalg.eigvalsh(moment)
    major = float(eigvals[-1])
    minor = float(max(eigvals[0], 0.0))
    if major <= 0:
        return 0.0
    return minor / major


def detect_collision(differentials: np.ndarray,
                     candidates: Sequence[int] = (3, 9),
                     planarity_threshold: float = 0.02,
                     noise_scale: Optional[float] = None,
                     rng: SeedLike = None) -> CollisionReport:
    """Decide whether a stream's grid differentials contain a collision.

    ``noise_scale``, when given, is the expected differential noise
    standard deviation; planarity below the threshold *or* below the
    noise-implied floor keeps the verdict at "single tag" even when the
    9-cluster fit wins BIC by over-fitting noise.
    """
    pts = np.asarray(differentials, dtype=np.complex128).ravel()
    if pts.size < 3:
        raise ConfigurationError(
            f"need at least 3 differentials, got {pts.size}")
    if not 0 <= planarity_threshold < 1:
        raise ConfigurationError(
            "planarity threshold must be in [0, 1)")
    fit = select_cluster_count(pts, candidates=candidates, rng=rng,
                               improvement_factor=1.5)
    planarity = scatter_planarity(pts)

    threshold = planarity_threshold
    if noise_scale is not None and noise_scale > 0:
        x = np.stack([pts.real, pts.imag])
        major_eig = float(np.linalg.eigvalsh(x @ x.T / pts.size)[-1])
        if major_eig > 0:
            # For a single tag the minor axis is pure noise: its
            # eigenvalue is the per-axis noise variance, half the total
            # complex noise power ``noise_scale**2``.  3x margin keeps
            # noise from masquerading as a weak second collider.
            implied = 3.0 * (noise_scale ** 2 / 2.0) / major_eig
            threshold = max(threshold, implied)

    # Planarity is the primary signal: a second collider makes the
    # differential scatter genuinely two-dimensional, whereas the
    # cluster-count fit is noisy for partially-overlapping streams
    # (e.g. a collider that started mid-epoch).
    is_collision = planarity > threshold and fit.k >= 3
    return CollisionReport(
        is_collision=is_collision,
        n_clusters=fit.k if is_collision else min(fit.k, 3),
        planarity=planarity,
        kmeans=fit,
    )
