"""Reliable edge detection on the combined IQ signal (Section 3.1).

Amplitude-only edge detection is brittle because the "background" — the
sum of every other tag's reflection — is large and constantly changing.
The paper's fix is to work with the complex IQ *differential*
``dS(t) = S(t+) - S(t-)``: averaging a window of samples after the
candidate edge and subtracting a window before it cancels everything
that did not change at the edge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .. import constants
from ..errors import ConfigurationError, SignalError
from ..types import DetectedEdge, IQTrace
from ..utils.dsp import find_peaks_above
from .kernels import KernelBackend, get_backend


@dataclass(frozen=True)
class EdgeDetectorConfig:
    """Tuning of the edge detector.

    ``diff_window`` is the number of samples averaged on each side of a
    candidate edge for the coarse detection sweep; ``guard`` excludes
    the transition itself (about one edge width).  ``threshold_factor``
    scales the median differential magnitude into a detection threshold
    — edges are sparse, so the median tracks the noise floor.
    ``max_refine_window`` caps the window used when re-estimating each
    edge's differential bounded by its neighbouring edges.
    """

    diff_window: int = 4
    guard: int = constants.EDGE_WIDTH_SAMPLES
    threshold_factor: float = 5.0
    min_threshold: float = 0.0
    relative_floor: float = 0.05
    min_separation: int = constants.EDGE_WIDTH_SAMPLES
    merge_radius: int = constants.EDGE_WIDTH_SAMPLES + 1
    max_refine_window: int = 40

    def __post_init__(self) -> None:
        if self.diff_window < 1:
            raise ConfigurationError("diff_window must be >= 1")
        if self.guard < 0:
            raise ConfigurationError("guard must be >= 0")
        if self.threshold_factor <= 0:
            raise ConfigurationError("threshold_factor must be positive")
        if self.min_separation < 1:
            raise ConfigurationError("min_separation must be >= 1")
        if not 0 <= self.relative_floor < 1:
            raise ConfigurationError("relative_floor must be in [0, 1)")
        if self.merge_radius < 0:
            raise ConfigurationError("merge_radius must be >= 0")
        if self.max_refine_window < 1:
            raise ConfigurationError("max_refine_window must be >= 1")


def refine_window_bounds(pos: np.ndarray, limits: np.ndarray, n: int,
                         guard: int, max_w: int):
    """Neighbour-bounded averaging windows for differential extraction.

    For each position, the before/after windows are clipped at the
    nearest bounding edge in ``limits`` (sorted) so averaging never
    straddles another tag's transition, capped at ``max_w`` samples
    and guarded by ``guard`` samples around the transition itself.
    Degenerate windows (no clean room before/after) fall back to a
    single sample next to the guard band, substituted in place so the
    whole extraction stays one prefix-sum gather over all positions.

    Returns ``(lo_b, hi_b, lo_a, hi_a)`` — every window non-empty.
    This planning step is shared by the per-stream
    :meth:`EdgeDetector.refine_differentials` path and the epoch
    driver's SoA-batched extraction, so both produce bit-identical
    windows.
    """
    # Nearest bounding edges strictly before / after each position.
    idx = np.searchsorted(limits, pos, side="left")
    prev_edge = np.where(idx > 0, limits[np.maximum(idx - 1, 0)], -1)
    same = limits[np.minimum(idx, limits.size - 1)] == pos
    nxt = idx + same.astype(np.int64)
    next_edge = np.where(nxt < limits.size,
                         limits[np.minimum(nxt, limits.size - 1)], n)
    # Guard against unsorted duplicate hits.
    prev_edge = np.where(prev_edge >= pos, -1, prev_edge)
    next_edge = np.where(next_edge <= pos, n, next_edge)

    # minimum/maximum chains in place of np.clip: same values, less
    # dispatch overhead on these small int arrays.
    lo_b = np.minimum(np.maximum(np.maximum(prev_edge + guard + 1,
                                            pos - guard - max_w), 0), n)
    hi_b = np.minimum(np.maximum(pos - guard, 0), n)
    lo_a = np.minimum(np.maximum(pos + guard + 1, 0), n)
    hi_a = np.minimum(np.maximum(np.minimum(next_edge - guard,
                                            pos + guard + 1 + max_w),
                                 0), n)

    bad_b = hi_b <= lo_b
    if np.any(bad_b):
        lo_b = np.where(bad_b, np.maximum(pos - guard - 1, 0), lo_b)
        hi_b = np.where(bad_b, np.maximum(pos - guard, lo_b + 1),
                        hi_b)
    bad_a = hi_a <= lo_a
    if np.any(bad_a):
        hi_a = np.where(bad_a, np.minimum(pos + guard + 2, n), hi_a)
        lo_a = np.where(bad_a, np.minimum(pos + guard + 1, hi_a - 1),
                        lo_a)
    return lo_b, hi_b, lo_a, hi_a


class EdgeDetector:
    """Extracts :class:`DetectedEdge` records from an IQ trace."""

    def __init__(self, config: Optional[EdgeDetectorConfig] = None,
                 backend: Optional[KernelBackend] = None):
        self.config = config or EdgeDetectorConfig()
        #: Kernel backend for the differential gather; ``None`` defers
        #: to the process default at call time.
        self.backend = backend

    @property
    def kernels(self) -> KernelBackend:
        return self.backend if self.backend is not None \
            else get_backend()

    def differential_magnitude(self, trace: IQTrace) -> np.ndarray:
        """|dS(t)| sweep used for coarse edge localization.

        For each sample t this is the magnitude of
        ``mean(s[t+g .. t+g+w]) - mean(s[t-g-w .. t-g])`` computed with
        prefix sums, so the whole sweep is O(n).
        """
        cfg = self.config
        s = trace.samples
        n = s.size
        w, g = cfg.diff_window, max(cfg.guard // 2, 1)
        if n < 2 * (w + g) + 1:
            raise SignalError(
                f"trace of {n} samples is too short for edge detection "
                f"with window {w} and guard {g}")
        return trace.cached(("diff_magnitude", w, g),
                            lambda: self._magnitude_sweep(trace, w, g))

    def _magnitude_sweep(self, trace: IQTrace, w: int,
                         g: int) -> np.ndarray:
        n = trace.samples.size
        csum = trace.prefix_sum()
        t = np.arange(n)
        lo_b = np.clip(t - g - w, 0, n)
        hi_b = np.clip(t - g, 0, n)
        lo_a = np.clip(t + g, 0, n)
        hi_a = np.clip(t + g + w, 0, n)
        len_b = np.maximum(hi_b - lo_b, 1)
        len_a = np.maximum(hi_a - lo_a, 1)
        before = (csum[hi_b] - csum[lo_b]) / len_b
        after = (csum[hi_a] - csum[lo_a]) / len_a
        return np.abs(after - before)

    def detect(self, trace: IQTrace) -> List[DetectedEdge]:
        """Find edges and estimate each one's IQ differential vector.

        The refinement stage recomputes every differential with
        averaging windows bounded by the *neighbouring* edges, per the
        paper: "we use a set of points between the previous edge to the
        current edge as candidates for t+ ... and take the average".
        """
        cfg = self.config
        # The sweep is memoised on the trace; copy before masking.
        magnitude = self.differential_magnitude(trace).copy()
        # The first/last few samples only have clipped averaging
        # windows; their differentials are artefacts, not edges.
        margin = cfg.diff_window + max(cfg.guard, 1)
        magnitude[:margin] = 0.0
        magnitude[-margin:] = 0.0
        threshold = max(float(np.median(magnitude)) * cfg.threshold_factor,
                        cfg.min_threshold,
                        cfg.relative_floor * float(np.max(magnitude)))
        positions = find_peaks_above(magnitude, threshold,
                                     cfg.min_separation)
        if positions.size == 0:
            return []
        differentials = self.refine_differentials(trace, positions)
        positions, differentials = _merge_similar(
            positions, differentials, magnitude, cfg.merge_radius)
        return [DetectedEdge(position=int(pos), differential=complex(diff))
                for pos, diff in zip(positions, differentials)]

    def refine_differentials(self, trace: IQTrace,
                             positions: np.ndarray,
                             bounds: Optional[np.ndarray] = None
                             ) -> np.ndarray:
        """Differential vectors at ``positions`` with neighbour-bounded
        windows.

        ``bounds`` optionally supplies the full set of edge positions to
        bound windows by (defaults to ``positions`` themselves) — the
        grid reader passes the global edge list here so a window never
        straddles another tag's transition.
        """
        cfg = self.config
        s = trace.samples
        n = s.size
        pos = np.asarray(positions, dtype=np.int64)
        if pos.size == 0:
            return np.empty(0, dtype=np.complex128)
        if np.any((pos < 0) | (pos >= n)):
            raise SignalError("edge positions out of trace bounds")
        limits = np.sort(np.asarray(
            positions if bounds is None else bounds, dtype=np.int64))
        csum = trace.prefix_sum()
        lo_b, hi_b, lo_a, hi_a = refine_window_bounds(
            pos, limits, n, cfg.guard, cfg.max_refine_window)
        return self.kernels.edge_differentials(csum, lo_b, hi_b,
                                               lo_a, hi_a)


def _merge_similar(positions: np.ndarray, differentials: np.ndarray,
                   magnitude: np.ndarray, merge_radius: int,
                   similarity: float = 0.95,
                   magnitude_ratio: float = 2.5):
    """Collapse duplicate detections of the *same* transition.

    The |dS| sweep has a plateau around every real transition, so the
    peak finder can fire two or three times per edge; such duplicates
    carry nearly identical differential vectors.  Nearby detections
    whose vectors agree (normalized inner product above ``similarity``)
    are replaced by their magnitude-weighted centroid.  Nearby
    detections with *different* vectors are distinct tags' edges in a
    dense pack and are kept apart.
    """
    if merge_radius <= 0 or positions.size <= 1:
        return positions, differentials
    order = np.argsort(positions)
    pos = np.asarray(positions, dtype=np.int64)[order]
    diffs = np.asarray(differentials, dtype=np.complex128)[order]
    n = pos.size
    # The scan only ever compares *adjacent* sorted detections, so the
    # whole grouping reduces to a chain mask over consecutive pairs: a
    # pair chains when it is close, coherent, and comparable in
    # magnitude; group boundaries are the broken links.
    mag = np.abs(diffs)
    denom = mag[:-1] * mag[1:]
    coherence = np.divide(
        np.abs((np.conj(diffs[:-1]) * diffs[1:]).real),
        denom, out=np.zeros(n - 1), where=denom > 0)
    ratio = np.maximum(mag[:-1], mag[1:]) \
        / np.maximum(np.minimum(mag[:-1], mag[1:]), 1e-30)
    chain = ((pos[1:] - pos[:-1] <= merge_radius)
             & (coherence >= similarity)
             & (ratio <= magnitude_ratio))
    starts = np.concatenate([[0], np.flatnonzero(~chain) + 1])
    ends = np.concatenate([starts[1:], [n]])
    weights_all = magnitude[pos].astype(np.float64)
    totals = np.add.reduceat(weights_all, starts)
    weighted = np.add.reduceat(pos * weights_all, starts)
    mids = pos[starts + (ends - starts) // 2]
    out_pos = np.where(
        totals > 0,
        np.round(weighted / np.maximum(totals, 1e-300)).astype(np.int64),
        mids)
    # Keep the strongest member's differential for the merged edge; the
    # caller re-reads grid differentials later anyway.  A stable sort on
    # (group, -weight) puts each group's first-strongest member at the
    # group's start, matching argmax's first-max tie-break.
    group_ids = np.concatenate([[0], np.cumsum(~chain)])
    strongest = np.lexsort((-weights_all, group_ids))[starts]
    return (out_pos, diffs[strongest])

