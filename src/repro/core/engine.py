"""Supervised parallel batch-decode engine: many epochs, one config.

Long experiments (waterfall sweeps, multi-epoch captures) decode
hundreds of independent epochs with the same :class:`LFDecoderConfig`.
:class:`BatchDecoder` fans those epochs out over a
``concurrent.futures`` process pool while keeping four guarantees:

* **Determinism** — every task draws its randomness from a
  :class:`numpy.random.SeedSequence` spawned from the root seed by task
  index (:func:`repro.utils.rng.iter_spawn_seed_sequences`), so results
  are identical for any worker count, including the serial fallback,
  for either trace transport, and across supervised resubmissions (a
  retried task reuses its original seed sequence).
* **Ordered streaming** — :meth:`BatchDecoder.iter_decode` yields epoch
  results in submission order as soon as each becomes available, so a
  consumer can post-process epoch *i* while epoch *i+1* is still
  decoding.  Submission itself runs a bounded look-ahead window (about
  two tasks per worker), so an unbounded input stream never piles up
  as pending futures or live shared-memory blocks.
* **One outcome per input** — the supervisor guarantees forward
  progress no matter what a task does to its worker.  A task that
  raises is retried with exponential backoff up to ``max_attempts``; a
  task that hangs past ``task_timeout_s`` has its pool killed and
  respawned (the head of the pending queue owns the deadline, so blame
  is precise); a task that *crashes* its worker (``os._exit``,
  segfault) breaks the whole pool — the supervisor respawns it and
  re-runs the in-flight suspects one at a time so the killer is
  identified by elimination.  Two strikes (crashes or hangs) quarantine
  the task as a ``failed`` :class:`EpochOutcome`; every other epoch
  still decodes and every input yields exactly one outcome.
* **Timing transparency** — each :class:`EpochResult` carries the
  pipeline's per-stage wall-clock breakdown (``stage_timings``), and
  :meth:`BatchDecoder.aggregate_timings` folds them into one profile
  for the whole batch.

The same supervision machinery also runs *generic trials*
(:meth:`BatchDecoder.iter_trials`): a :class:`TrialSpec` pairs an
optional trace with an arbitrary picklable payload and an optional
explicit integer seed, and a top-level ``trial_fn(trace, payload, rng,
config)`` replaces the stock epoch decode.  Experiment sweeps use this
to push their per-trial work (decode + score, reliability-link runs,
config-variant decodes) through one engine instead of bespoke serial
loops, with the same ordered streaming, retry/hang/crash supervision
and per-worker-count determinism.  An explicit ``seed`` reproduces a
legacy ``np.random.default_rng(seed)`` stream bit for bit, which is
how refit experiments keep row parity with their serial ancestors.

Workers receive the decoder config once (pool initializer), not once
per task.  Trace samples travel through ``multiprocessing.shared_memory``
when available: the parent writes each epoch's samples into a block
once and the worker decodes a zero-copy view, skipping the pickle
serialize/deserialize round-trip entirely.  Hosts without POSIX shared
memory (or with an exhausted ``/dev/shm``) fall back per task to the
pickle transport, for which :meth:`IQTrace.__getstate__` drops the
derived-array caches so the payload is just the raw samples.  Every
failure path — worker crash, hang, retry, abandoned iteration — unlinks
its shared-memory blocks before the supervisor moves on.
"""

from __future__ import annotations

import os
import time
from collections import deque
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from itertools import chain
from typing import (Any, Callable, Deque, Dict, Iterable, Iterator,
                    List, Optional, Sequence)

import numpy as np

from ..errors import ConfigurationError
from ..types import EpochResult, IQTrace, StreamFault
from ..utils.rng import iter_spawn_seed_sequences
from .pipeline import LFDecoder, LFDecoderConfig
from .stages.stats import StatsAccumulator

try:
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - always present on CPython 3.8+
    _shared_memory = None

#: Per-process decoder config, installed by the pool initializer.
_WORKER_CONFIG: Optional[LFDecoderConfig] = None

#: Worker kills (crash or hang) after which a task is quarantined.
_CRASH_STRIKES = 2


def _init_worker(config: LFDecoderConfig) -> None:
    global _WORKER_CONFIG
    _WORKER_CONFIG = config


def _decode_task(index: int, trace: IQTrace,
                 seed_seq: np.random.SeedSequence,
                 config: Optional[LFDecoderConfig] = None) -> EpochResult:
    """Decode one epoch with a task-local decoder and RNG.

    A fresh :class:`LFDecoder` per task is deliberate: decoder state
    (its RNG position) must depend only on this task's seed sequence,
    never on which other tasks the worker processed first.
    """
    cfg = config if config is not None else _WORKER_CONFIG
    decoder = LFDecoder(cfg, rng=np.random.default_rng(seed_seq))
    result = decoder.decode_epoch(trace)
    result.epoch_index = index
    return result


def _decode_task_shm(index: int, shm_name: str, n_samples: int,
                     sample_rate_hz: float, start_time_s: float,
                     seed_seq: np.random.SeedSequence) -> EpochResult:
    """Decode one epoch whose samples live in a shared-memory block.

    The worker attaches the parent's block and decodes a zero-copy view
    of it; the parent owns the block's lifetime (it unlinks after the
    result arrives).  POSIX attachment re-registers the block with a
    resource tracker, so under non-fork start methods (per-process
    trackers) the attachment must be unregistered or the worker's
    tracker tears the block down when the worker exits.  Under fork the
    tracker process is *shared* with the parent and registration is a
    set — unregistering here would strip the parent's own entry and
    break its unlink.

    The view must not outlive the block: every array an
    :class:`EpochResult` carries is derived (bits, centroids, timing
    fits), never a slice of the raw trace, so closing before return is
    safe — the executor pickles the result after this frame exits.
    """
    shm = _shared_memory.SharedMemory(name=shm_name)
    try:
        import multiprocessing
        if multiprocessing.get_start_method() != "fork":
            from multiprocessing import resource_tracker
            resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker layout varies
        pass
    try:
        samples = np.ndarray((n_samples,), dtype=np.complex128,
                             buffer=shm.buf)
        trace = IQTrace(samples=samples, sample_rate_hz=sample_rate_hz,
                        start_time_s=start_time_s)
        return _decode_task(index, trace, seed_seq)
    finally:
        shm.close()


def _trial_task(fn: Callable, index: int, trace: Optional[IQTrace],
                payload: Any, seed,
                config: Optional[LFDecoderConfig] = None) -> Any:
    """Run one generic trial with a task-local RNG.

    ``seed`` is either an explicit integer (legacy serial loops seeded
    ``default_rng(int)``; passing the raw int through reproduces that
    stream exactly) or an engine-spawned :class:`SeedSequence`.  The
    trial function must return *derived* data only — under the
    shared-memory transport the trace is a view of a block the parent
    unlinks once the result arrives.
    """
    cfg = config if config is not None else _WORKER_CONFIG
    rng = np.random.default_rng(seed)
    return fn(trace, payload, rng, cfg)


def _trial_task_shm(fn: Callable, index: int, shm_name: str,
                    n_samples: int, sample_rate_hz: float,
                    start_time_s: float, payload: Any, seed) -> Any:
    """Shared-memory transport for :func:`_trial_task` (same tracker
    discipline as :func:`_decode_task_shm`)."""
    shm = _shared_memory.SharedMemory(name=shm_name)
    try:
        import multiprocessing
        if multiprocessing.get_start_method() != "fork":
            from multiprocessing import resource_tracker
            resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker layout varies
        pass
    try:
        samples = np.ndarray((n_samples,), dtype=np.complex128,
                             buffer=shm.buf)
        trace = IQTrace(samples=samples, sample_rate_hz=sample_rate_hz,
                        start_time_s=start_time_s)
        return _trial_task(fn, index, trace, payload, seed)
    finally:
        shm.close()


@dataclass(frozen=True)
class TrialSpec:
    """One generic unit of supervised work for :meth:`iter_trials`.

    ``trace`` rides the engine's zero-copy transport when present;
    trials that synthesize their own data (or none) leave it ``None``.
    ``payload`` is any picklable context the trial function needs
    (scenario spec, config variant, trial index).  ``seed``, when set,
    is handed verbatim to ``np.random.default_rng`` — the exact-parity
    hook for refit serial loops; when ``None`` the engine assigns the
    task's spawned child :class:`SeedSequence`.
    """

    trace: Optional[IQTrace] = None
    payload: Any = None
    seed: Optional[int] = None


@dataclass
class EpochOutcome:
    """Supervision verdict for one batch input.

    ``status`` is ``"ok"`` (decoded cleanly), ``"degraded"`` (decoded,
    but the epoch reports degradation — rejected capture, unresolvable
    collision, isolated stream fault) or ``"failed"`` (the task itself
    could not be completed: exhausted retries, repeated worker crashes
    or hangs; ``result`` is ``None`` and ``error`` says why).
    ``attempts`` counts submissions, including resubmissions forced by
    *other* tasks crashing the shared pool.

    For :meth:`BatchDecoder.iter_trials` the same verdict applies to a
    generic trial: ``result`` holds whatever the trial function
    returned (``degraded`` only when that object exposes a truthy
    ``.degraded``), and ``epoch_index`` is the trial's position in the
    input sequence.
    """

    epoch_index: int
    status: str
    result: Optional[Any] = None
    attempts: int = 1
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass
class _Task:
    """One submitted epoch plus everything needed to re-run it.

    The trace is retained until the task settles so a pool respawn can
    resubmit it; ``suspect`` marks tasks that were in flight when the
    pool broke and must be re-run solo for crash blame.
    """

    index: int
    trace: Optional[IQTrace]
    #: Explicit int seed (trial parity) or engine-spawned SeedSequence.
    seed_seq: Any
    #: Opaque trial context (``None`` for stock epoch decodes).
    payload: Any = None
    attempts: int = 0
    #: Attempts that ended in an in-worker exception (retry budget).
    errors: int = 0
    #: Worker kills blamed on this task (crashes and hangs).
    crashes: int = 0
    future: Optional[Future] = None
    shm: Optional["_shared_memory.SharedMemory"] = None
    result: Optional[Any] = None
    error: Optional[str] = None
    #: A harvested result settles the task even when it is ``None`` —
    #: trial functions may legitimately return ``None``.
    done: bool = False
    failed: bool = False
    suspect: bool = False

    @property
    def settled(self) -> bool:
        return self.failed or self.done

    def release_shm(self) -> None:
        if self.shm is not None:
            self.shm.close()
            try:
                self.shm.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
            self.shm = None


class BatchDecoder:
    """Decode a batch of epoch traces with a shared configuration.

    Parameters
    ----------
    config:
        Decoder configuration shared by every epoch (defaults to
        :class:`LFDecoderConfig`'s defaults).
    seed:
        Root seed for the batch.  Each epoch's decoder gets an
        independent child seed sequence; the same root seed always
        reproduces the same results, for any ``max_workers``.
    max_workers:
        Process count.  ``None`` uses the machine's CPU count; values
        ``<= 1`` decode serially in-process (no pickling, no pool),
        which is also the automatic fallback on single-CPU hosts.
    use_shared_memory:
        Transport for trace samples.  ``True`` (the default when the
        platform provides ``multiprocessing.shared_memory``) writes
        each epoch's samples into a shared block that the worker maps
        zero-copy; ``False`` forces the pickle transport.  Decode
        results are bit-identical either way — the knob only moves
        bytes differently.
    task_timeout_s:
        Wall-clock budget one task may hold the head of the result
        queue before the supervisor declares it hung, kills the pool
        and resubmits the in-flight work.  ``None`` (default) disables
        the watchdog.
    max_attempts:
        Decode attempts per epoch that may end in an in-worker
        exception before the epoch is reported ``failed``.  Retries
        back off exponentially from ``retry_backoff_s``.
    retry_backoff_s:
        Base delay before the first retry; doubles per retry.
    """

    def __init__(self, config: Optional[LFDecoderConfig] = None,
                 seed: int = 0,
                 max_workers: Optional[int] = None,
                 use_shared_memory: Optional[bool] = None,
                 task_timeout_s: Optional[float] = None,
                 max_attempts: int = 2,
                 retry_backoff_s: float = 0.05):
        self.config = config or LFDecoderConfig()
        self.seed = seed
        if max_workers is None:
            max_workers = os.cpu_count() or 1
        if max_workers < 1:
            raise ConfigurationError(
                f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers
        if use_shared_memory is None:
            use_shared_memory = _shared_memory is not None
        if use_shared_memory and _shared_memory is None:
            raise ConfigurationError(
                "shared-memory transport requested but "
                "multiprocessing.shared_memory is unavailable")
        self.use_shared_memory = use_shared_memory
        if task_timeout_s is not None and task_timeout_s <= 0:
            raise ConfigurationError(
                f"task_timeout_s must be positive, got {task_timeout_s}")
        self.task_timeout_s = task_timeout_s
        if max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {max_attempts}")
        self.max_attempts = max_attempts
        if retry_backoff_s < 0:
            raise ConfigurationError(
                f"retry_backoff_s must be >= 0, got {retry_backoff_s}")
        self.retry_backoff_s = retry_backoff_s

    # -- public API --------------------------------------------------------

    def decode_epochs(self, traces: Sequence[IQTrace]
                      ) -> List[EpochResult]:
        """Decode every trace; results in input order."""
        return list(self.iter_decode(traces))

    def decode_outcomes(self, traces: Sequence[IQTrace]
                        ) -> List[EpochOutcome]:
        """Decode every trace; one :class:`EpochOutcome` per input."""
        return list(self.iter_outcomes(traces))

    def iter_decode(self, traces: Iterable[IQTrace]
                    ) -> Iterator[EpochResult]:
        """Yield one :class:`EpochResult` per trace, in input order.

        Results stream out as soon as they are ready *and* every
        earlier epoch has been yielded, so downstream consumers see a
        deterministic sequence regardless of completion order.  The
        input may be an arbitrary (even unbounded) iterable: tasks are
        submitted through a sliding window of about two per worker, so
        memory stays proportional to the worker count, not the batch.

        An epoch whose task ultimately *failed* (exhausted retries,
        quarantined after repeated worker kills) still yields: an empty
        result whose ``degraded_streams`` carries a single
        ``stage="engine"`` fault naming the failure.  Use
        :meth:`iter_outcomes` for the explicit per-task verdict.
        """
        for outcome in self.iter_outcomes(traces):
            if outcome.result is not None:
                yield outcome.result
                continue
            result = EpochResult()
            result.epoch_index = outcome.epoch_index
            message = outcome.error or "task failed"
            result.degraded_streams.append(StreamFault(
                offset_samples=0.0, period_samples=0.0, stage="engine",
                error_type=message.split(":", 1)[0],
                message=message, expected=False))
            yield result

    def iter_outcomes(self, traces: Iterable[IQTrace]
                      ) -> Iterator[EpochOutcome]:
        """Yield one :class:`EpochOutcome` per trace, in input order.

        This is :meth:`iter_decode` plus the supervision verdict: the
        engine guarantees exactly one outcome per input even when tasks
        raise, hang, or kill their worker process.
        """
        seed_iter = iter_spawn_seed_sequences(self.seed)
        tasks = (_Task(index=index, trace=trace,
                       seed_seq=next(seed_iter))
                 for index, trace in enumerate(traces))
        yield from self._iter_task_outcomes(tasks, None)

    def run_trials(self, trial_fn: Callable,
                   trials: Sequence[TrialSpec]) -> List[EpochOutcome]:
        """Run every trial; one :class:`EpochOutcome` per input."""
        return list(self.iter_trials(trial_fn, trials))

    def iter_trials(self, trial_fn: Callable,
                    trials: Iterable[TrialSpec]
                    ) -> Iterator[EpochOutcome]:
        """Yield one :class:`EpochOutcome` per trial, in input order.

        ``trial_fn`` must be a top-level (picklable) callable with
        signature ``(trace, payload, rng, config) -> Any``; it runs
        under the full supervision contract of :meth:`iter_outcomes`.
        Each trial's ``rng`` derives from its explicit ``seed`` when
        set, else from the engine's spawned child sequence for that
        input position — either way identical for any worker count.
        One child sequence is consumed per trial regardless, so mixing
        explicit and engine seeds never shifts later trials' streams.
        """
        seed_iter = iter_spawn_seed_sequences(self.seed)

        def _tasks() -> Iterator[_Task]:
            for index, spec in enumerate(trials):
                child = next(seed_iter)
                seed = spec.seed if spec.seed is not None else child
                yield _Task(index=index, trace=spec.trace,
                            seed_seq=seed, payload=spec.payload)

        yield from self._iter_task_outcomes(_tasks(), trial_fn)

    def _iter_task_outcomes(self, task_iter: Iterator[_Task],
                            trial_fn: Optional[Callable]
                            ) -> Iterator[EpochOutcome]:
        if self.max_workers <= 1:
            yield from self._iter_serial(task_iter, trial_fn)
            return
        # A lone task is not worth a process pool.
        first = list(_take(task_iter, 2))
        if len(first) <= 1:
            yield from self._iter_serial(iter(first), trial_fn)
            return
        yield from self._iter_supervised(chain(first, task_iter),
                                         trial_fn)

    # -- serial path -------------------------------------------------------

    def _run_local(self, task: _Task,
                   trial_fn: Optional[Callable]) -> Any:
        if trial_fn is None:
            return _decode_task(task.index, task.trace, task.seed_seq,
                                config=self.config)
        return _trial_task(trial_fn, task.index, task.trace,
                           task.payload, task.seed_seq,
                           config=self.config)

    def _iter_serial(self, task_iter: Iterator[_Task],
                     trial_fn: Optional[Callable]
                     ) -> Iterator[EpochOutcome]:
        """In-process execution with the same retry policy (no
        watchdog: a hang in the caller's own process cannot be
        preempted)."""
        for task in task_iter:
            attempts = 0
            while True:
                attempts += 1
                try:
                    result = self._run_local(task, trial_fn)
                except Exception as exc:  # noqa: BLE001 — supervision
                    if attempts >= self.max_attempts:
                        yield EpochOutcome(
                            epoch_index=task.index, status="failed",
                            attempts=attempts,
                            error=f"{type(exc).__name__}: {exc}")
                        break
                    time.sleep(self.retry_backoff_s
                               * (2 ** (attempts - 1)))
                else:
                    yield _settled(task.index, result, attempts)
                    break

    # -- supervised pool path ----------------------------------------------

    def _iter_supervised(self, task_iter: Iterator[_Task],
                         trial_fn: Optional[Callable]
                         ) -> Iterator[EpochOutcome]:
        window = 2 * self.max_workers
        pending: Deque[_Task] = deque()
        pool = self._new_pool()
        exhausted = False

        def _fail(task: _Task, message: str) -> None:
            task.failed = True
            task.error = message
            task.suspect = False
            task.release_shm()

        def _worker_error(task: _Task, exc: BaseException) -> None:
            """An attempt raised inside the worker: retry or fail."""
            task.errors += 1
            task.suspect = False  # it ran to completion; worker lives
            task.future = None
            task.release_shm()
            if task.errors >= self.max_attempts:
                _fail(task, f"{type(exc).__name__}: {exc}")
            else:
                time.sleep(self.retry_backoff_s
                           * (2 ** (task.errors - 1)))

        def _harvest(task: _Task) -> bool:
            """Collect a done future's verdict; True if it resolved
            (result or in-worker error), False if the pool break ate
            it and the task must be resubmitted."""
            exc = task.future.exception()
            if exc is None:
                task.result = task.future.result()
                task.done = True
                task.suspect = False
                task.future = None
                task.release_shm()
                return True
            if isinstance(exc, BrokenProcessPool):
                return False
            _worker_error(task, exc)
            return True

        def _restart_pool() -> List[_Task]:
            """Kill the pool, respawn it, and reset in-flight tasks.

            Returns the unsettled tasks that were genuinely in flight
            (their futures died with the pool) — the crash suspects.
            Futures that completed before the break keep their results.
            """
            nonlocal pool
            in_flight: List[_Task] = []
            for task in pending:
                if task.settled or task.future is None:
                    continue
                if task.future.done() and _harvest(task):
                    continue
                in_flight.append(task)
            _kill_pool(pool)
            for task in in_flight:
                task.future = None
                task.release_shm()
            pool = self._new_pool()
            return in_flight

        def _pool_broke() -> None:
            """Blame a worker crash: solo culprit gets a strike, a
            crowd becomes suspects probed one at a time."""
            in_flight = _restart_pool()
            if len(in_flight) == 1:
                task = in_flight[0]
                task.crashes += 1
                if task.crashes >= _CRASH_STRIKES:
                    _fail(task, "WorkerCrashError: task killed its "
                          f"worker process {task.crashes} times; "
                          "quarantined")
                else:
                    task.suspect = True
            else:
                for task in in_flight:
                    task.suspect = True

        try:
            while True:
                while pending and pending[0].settled:
                    task = pending.popleft()
                    yield self._outcome_of(task)
                # Top up: resubmissions first (head-most), then fresh
                # input.  While any crash suspect is unsettled the
                # window narrows to one so the next pool break blames
                # exactly one task.
                probing = any(t.suspect and not t.settled
                              for t in pending)
                cap = 1 if probing else window
                in_flight = sum(1 for t in pending
                                if t.future is not None
                                and not t.settled)
                try:
                    for task in pending:
                        if in_flight >= cap:
                            break
                        if task.future is None and not task.settled:
                            self._submit(pool, task, trial_fn)
                            in_flight += 1
                    while in_flight < cap and not exhausted:
                        task = next(task_iter, None)
                        if task is None:
                            exhausted = True
                            break
                        # Enqueue before submitting: a submit that dies
                        # with the pool must not lose the epoch.
                        pending.append(task)
                        self._submit(pool, task, trial_fn)
                        in_flight += 1
                except BrokenProcessPool:
                    _pool_broke()
                    continue
                if not pending:
                    break
                head = pending[0]
                if head.settled:
                    continue
                try:
                    result = head.future.result(
                        timeout=self.task_timeout_s)
                except _FuturesTimeout:
                    if head.future.done():
                        # An in-worker TimeoutError, not tenure expiry.
                        _worker_error(head, head.future.exception())
                        continue
                    head.crashes += 1
                    _restart_pool()
                    if head.crashes >= _CRASH_STRIKES:
                        _fail(head, "TaskHangError: task exceeded the "
                              f"{self.task_timeout_s:g}s watchdog "
                              f"{head.crashes} times; quarantined")
                except BrokenProcessPool:
                    _pool_broke()
                except Exception as exc:  # noqa: BLE001 — supervision
                    _worker_error(head, exc)
                else:
                    head.result = result
                    head.done = True
                    head.suspect = False
                    head.future = None
                    head.release_shm()
        finally:
            # Consumer abandoned the iterator, or we are done: cancel
            # what never started, join the workers, then unlink every
            # leftover block (safe once no worker can be attached).
            for task in pending:
                if task.future is not None:
                    task.future.cancel()
            try:
                pool.shutdown(wait=True, cancel_futures=True)
            except TypeError:  # pragma: no cover - Python < 3.9
                pool.shutdown(wait=True)
            for task in pending:
                task.release_shm()

    def _new_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=self.max_workers,
                                   initializer=_init_worker,
                                   initargs=(self.config,))

    def _outcome_of(self, task: _Task) -> EpochOutcome:
        if task.done:
            return _settled(task.index, task.result,
                            max(task.attempts, 1))
        return EpochOutcome(epoch_index=task.index, status="failed",
                            attempts=max(task.attempts, 1),
                            error=task.error or "task failed")

    def _submit(self, pool: ProcessPoolExecutor, task: _Task,
                trial_fn: Optional[Callable] = None) -> None:
        """Submit one task, preferring the shared-memory transport.

        Falls back to the pickle transport per task when the block
        cannot be created (exhausted ``/dev/shm``, zero-size trace) —
        the work itself is transport-agnostic.  Trace-less trials
        always pickle (there are no samples to move).
        """
        task.attempts += 1
        trace = task.trace
        if self.use_shared_memory and trace is not None:
            samples = np.ascontiguousarray(trace.samples,
                                           dtype=np.complex128)
            shm = None
            try:
                shm = _shared_memory.SharedMemory(create=True,
                                                  size=samples.nbytes)
                view = np.ndarray(samples.shape, dtype=np.complex128,
                                  buffer=shm.buf)
                view[:] = samples
                task.shm = shm
                if trial_fn is None:
                    task.future = pool.submit(
                        _decode_task_shm, task.index, shm.name,
                        samples.size, trace.sample_rate_hz,
                        trace.start_time_s, task.seed_seq)
                else:
                    task.future = pool.submit(
                        _trial_task_shm, trial_fn, task.index,
                        shm.name, samples.size, trace.sample_rate_hz,
                        trace.start_time_s, task.payload,
                        task.seed_seq)
                return
            except BrokenProcessPool:
                task.shm = None
                if shm is not None:
                    shm.close()
                    try:
                        shm.unlink()
                    except FileNotFoundError:  # pragma: no cover
                        pass
                raise
            except (OSError, ValueError):
                task.shm = None
                if shm is not None:
                    shm.close()
                    try:
                        shm.unlink()
                    except FileNotFoundError:  # pragma: no cover
                        pass
        if trial_fn is None:
            task.future = pool.submit(_decode_task, task.index, trace,
                                      task.seed_seq)
        else:
            task.future = pool.submit(_trial_task, trial_fn,
                                      task.index, trace, task.payload,
                                      task.seed_seq)

    def aggregate_timings(self, results: Iterable[EpochResult]
                          ) -> Dict[str, float]:
        """Sum per-stage wall-clock seconds across epoch results."""
        total: Dict[str, float] = {}
        for result in results:
            StatsAccumulator.merge_timing(total, result.stage_timings)
        return total

    def aggregate_fidelity_stats(self, results: Iterable[EpochResult]
                                 ) -> Dict[str, int]:
        """Sum fidelity-gate counters across epoch results."""
        total: Dict[str, int] = {}
        for result in results:
            StatsAccumulator.merge_counts(total, result.fidelity_stats)
        return total


def _settled(index: int, result: Any,
             attempts: int) -> EpochOutcome:
    degraded = bool(getattr(result, "degraded", False))
    status = "degraded" if degraded else "ok"
    return EpochOutcome(epoch_index=index, status=status, result=result,
                        attempts=attempts)


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a (possibly hung or broken) pool down without waiting on
    its tasks: terminate the workers first, then reap them."""
    processes = list((getattr(pool, "_processes", None) or {}).values())
    for proc in processes:
        proc.terminate()
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except TypeError:  # pragma: no cover - Python < 3.9
        pool.shutdown(wait=False)
    for proc in processes:
        proc.join(timeout=5.0)
        if proc.is_alive():  # pragma: no cover - terminate sufficed
            proc.kill()
            proc.join(timeout=5.0)


def _take(iterator: Iterator, n: int) -> Iterator:
    """First ``n`` items of ``iterator`` (fewer if it runs dry)."""
    for _ in range(n):
        try:
            yield next(iterator)
        except StopIteration:
            return
