"""Parallel batch-decode engine: many epochs, one decoder config.

Long experiments (waterfall sweeps, multi-epoch captures) decode
hundreds of independent epochs with the same :class:`LFDecoderConfig`.
:class:`BatchDecoder` fans those epochs out over a
``concurrent.futures`` process pool while keeping three guarantees:

* **Determinism** — every task draws its randomness from a
  :class:`numpy.random.SeedSequence` spawned from the root seed by task
  index (:func:`repro.utils.rng.iter_spawn_seed_sequences`), so results
  are identical for any worker count, including the serial fallback,
  and for either trace transport.
* **Ordered streaming** — :meth:`BatchDecoder.iter_decode` yields epoch
  results in submission order as soon as each becomes available, so a
  consumer can post-process epoch *i* while epoch *i+1* is still
  decoding.  Submission itself runs a bounded look-ahead window (about
  two tasks per worker), so an unbounded input stream never piles up
  as pending futures or live shared-memory blocks.
* **Timing transparency** — each :class:`EpochResult` carries the
  pipeline's per-stage wall-clock breakdown (``stage_timings``), and
  :meth:`BatchDecoder.aggregate_timings` folds them into one profile
  for the whole batch.

Workers receive the decoder config once (pool initializer), not once
per task.  Trace samples travel through ``multiprocessing.shared_memory``
when available: the parent writes each epoch's samples into a block
once and the worker decodes a zero-copy view, skipping the pickle
serialize/deserialize round-trip entirely.  Hosts without POSIX shared
memory (or with an exhausted ``/dev/shm``) fall back per task to the
pickle transport, for which :meth:`IQTrace.__getstate__` drops the
derived-array caches so the payload is just the raw samples.
"""

from __future__ import annotations

import os
from collections import deque
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass
from itertools import chain
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..types import EpochResult, IQTrace
from ..utils.rng import iter_spawn_seed_sequences
from ..utils.timing import merge_timings
from .pipeline import LFDecoder, LFDecoderConfig

try:
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - always present on CPython 3.8+
    _shared_memory = None

#: Per-process decoder config, installed by the pool initializer.
_WORKER_CONFIG: Optional[LFDecoderConfig] = None


def _init_worker(config: LFDecoderConfig) -> None:
    global _WORKER_CONFIG
    _WORKER_CONFIG = config


def _decode_task(index: int, trace: IQTrace,
                 seed_seq: np.random.SeedSequence,
                 config: Optional[LFDecoderConfig] = None) -> EpochResult:
    """Decode one epoch with a task-local decoder and RNG.

    A fresh :class:`LFDecoder` per task is deliberate: decoder state
    (its RNG position) must depend only on this task's seed sequence,
    never on which other tasks the worker processed first.
    """
    cfg = config if config is not None else _WORKER_CONFIG
    decoder = LFDecoder(cfg, rng=np.random.default_rng(seed_seq))
    result = decoder.decode_epoch(trace)
    result.epoch_index = index
    return result


def _decode_task_shm(index: int, shm_name: str, n_samples: int,
                     sample_rate_hz: float, start_time_s: float,
                     seed_seq: np.random.SeedSequence) -> EpochResult:
    """Decode one epoch whose samples live in a shared-memory block.

    The worker attaches the parent's block and decodes a zero-copy view
    of it; the parent owns the block's lifetime (it unlinks after the
    result arrives).  POSIX attachment re-registers the block with a
    resource tracker, so under non-fork start methods (per-process
    trackers) the attachment must be unregistered or the worker's
    tracker tears the block down when the worker exits.  Under fork the
    tracker process is *shared* with the parent and registration is a
    set — unregistering here would strip the parent's own entry and
    break its unlink.

    The view must not outlive the block: every array an
    :class:`EpochResult` carries is derived (bits, centroids, timing
    fits), never a slice of the raw trace, so closing before return is
    safe — the executor pickles the result after this frame exits.
    """
    shm = _shared_memory.SharedMemory(name=shm_name)
    try:
        import multiprocessing
        if multiprocessing.get_start_method() != "fork":
            from multiprocessing import resource_tracker
            resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker layout varies
        pass
    try:
        samples = np.ndarray((n_samples,), dtype=np.complex128,
                             buffer=shm.buf)
        trace = IQTrace(samples=samples, sample_rate_hz=sample_rate_hz,
                        start_time_s=start_time_s)
        return _decode_task(index, trace, seed_seq)
    finally:
        shm.close()


@dataclass
class _Pending:
    """A submitted task plus the shared-memory block backing it."""

    future: Future
    shm: Optional["_shared_memory.SharedMemory"] = None

    def release(self) -> None:
        if self.shm is not None:
            self.shm.close()
            try:
                self.shm.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
            self.shm = None


class BatchDecoder:
    """Decode a batch of epoch traces with a shared configuration.

    Parameters
    ----------
    config:
        Decoder configuration shared by every epoch (defaults to
        :class:`LFDecoderConfig`'s defaults).
    seed:
        Root seed for the batch.  Each epoch's decoder gets an
        independent child seed sequence; the same root seed always
        reproduces the same results, for any ``max_workers``.
    max_workers:
        Process count.  ``None`` uses the machine's CPU count; values
        ``<= 1`` decode serially in-process (no pickling, no pool),
        which is also the automatic fallback on single-CPU hosts.
    use_shared_memory:
        Transport for trace samples.  ``True`` (the default when the
        platform provides ``multiprocessing.shared_memory``) writes
        each epoch's samples into a shared block that the worker maps
        zero-copy; ``False`` forces the pickle transport.  Decode
        results are bit-identical either way — the knob only moves
        bytes differently.
    """

    def __init__(self, config: Optional[LFDecoderConfig] = None,
                 seed: int = 0,
                 max_workers: Optional[int] = None,
                 use_shared_memory: Optional[bool] = None):
        self.config = config or LFDecoderConfig()
        self.seed = seed
        if max_workers is None:
            max_workers = os.cpu_count() or 1
        if max_workers < 1:
            raise ConfigurationError(
                f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers
        if use_shared_memory is None:
            use_shared_memory = _shared_memory is not None
        if use_shared_memory and _shared_memory is None:
            raise ConfigurationError(
                "shared-memory transport requested but "
                "multiprocessing.shared_memory is unavailable")
        self.use_shared_memory = use_shared_memory

    def decode_epochs(self, traces: Sequence[IQTrace]
                      ) -> List[EpochResult]:
        """Decode every trace; results in input order."""
        return list(self.iter_decode(traces))

    def iter_decode(self, traces: Iterable[IQTrace]
                    ) -> Iterator[EpochResult]:
        """Yield one :class:`EpochResult` per trace, in input order.

        Results stream out as soon as they are ready *and* every
        earlier epoch has been yielded, so downstream consumers see a
        deterministic sequence regardless of completion order.  The
        input may be an arbitrary (even unbounded) iterable: tasks are
        submitted through a sliding window of about two per worker, so
        memory stays proportional to the worker count, not the batch.
        """
        trace_iter = iter(traces)
        seed_iter = iter_spawn_seed_sequences(self.seed)
        if self.max_workers <= 1:
            for index, trace in enumerate(trace_iter):
                yield _decode_task(index, trace, next(seed_iter),
                                   config=self.config)
            return
        # A lone epoch is not worth a process pool.
        first = list(_take(trace_iter, 2))
        if len(first) <= 1:
            for index, trace in enumerate(first):
                yield _decode_task(index, trace, next(seed_iter),
                                   config=self.config)
            return
        trace_iter = chain(first, trace_iter)

        window = 2 * self.max_workers
        with ProcessPoolExecutor(
                max_workers=self.max_workers,
                initializer=_init_worker,
                initargs=(self.config,)) as pool:
            pending: deque = deque()
            index = 0

            def _submit_next() -> bool:
                nonlocal index
                trace = next(trace_iter, None)
                if trace is None:
                    return False
                pending.append(
                    self._submit(pool, index, trace, next(seed_iter)))
                index += 1
                return True

            try:
                while len(pending) < window and _submit_next():
                    pass
                while pending:
                    task = pending.popleft()
                    try:
                        result = task.future.result()
                    finally:
                        task.release()
                    _submit_next()
                    yield result
            finally:
                # Consumer abandoned the iterator or a task raised:
                # the pool's shutdown joins the workers, after which
                # the leftover blocks can be unlinked safely.
                for task in pending:
                    task.future.cancel()
                pool.shutdown(wait=True)
                for task in pending:
                    task.release()

    def _submit(self, pool: ProcessPoolExecutor, index: int,
                trace: IQTrace,
                seed_seq: np.random.SeedSequence) -> _Pending:
        """Submit one decode, preferring the shared-memory transport.

        Falls back to the pickle transport per task when the block
        cannot be created (exhausted ``/dev/shm``, zero-size trace) —
        the decode itself is transport-agnostic.
        """
        if self.use_shared_memory:
            samples = np.ascontiguousarray(trace.samples,
                                           dtype=np.complex128)
            shm = None
            try:
                shm = _shared_memory.SharedMemory(create=True,
                                                  size=samples.nbytes)
                view = np.ndarray(samples.shape, dtype=np.complex128,
                                  buffer=shm.buf)
                view[:] = samples
                future = pool.submit(
                    _decode_task_shm, index, shm.name, samples.size,
                    trace.sample_rate_hz, trace.start_time_s, seed_seq)
                return _Pending(future=future, shm=shm)
            except (OSError, ValueError):
                if shm is not None:
                    shm.close()
                    try:
                        shm.unlink()
                    except FileNotFoundError:  # pragma: no cover
                        pass
        return _Pending(future=pool.submit(_decode_task, index, trace,
                                           seed_seq))

    def aggregate_timings(self, results: Iterable[EpochResult]
                          ) -> Dict[str, float]:
        """Sum per-stage wall-clock seconds across epoch results."""
        total: Dict[str, float] = {}
        for result in results:
            merge_timings(total, result.stage_timings)
        return total


def _take(iterator: Iterator, n: int) -> Iterator:
    """First ``n`` items of ``iterator`` (fewer if it runs dry)."""
    for _ in range(n):
        try:
            yield next(iterator)
        except StopIteration:
            return
