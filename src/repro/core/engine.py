"""Parallel batch-decode engine: many epochs, one decoder config.

Long experiments (waterfall sweeps, multi-epoch captures) decode
hundreds of independent epochs with the same :class:`LFDecoderConfig`.
:class:`BatchDecoder` fans those epochs out over a
``concurrent.futures`` process pool while keeping three guarantees:

* **Determinism** — every task draws its randomness from a
  :class:`numpy.random.SeedSequence` spawned from the root seed by task
  index (:func:`repro.utils.rng.spawn_seed_sequences`), so results are
  identical for any worker count, including the serial fallback.
* **Ordered streaming** — :meth:`BatchDecoder.iter_decode` yields epoch
  results in submission order as soon as each becomes available, so a
  consumer can post-process epoch *i* while epoch *i+1* is still
  decoding.
* **Timing transparency** — each :class:`EpochResult` carries the
  pipeline's per-stage wall-clock breakdown (``stage_timings``), and
  :meth:`BatchDecoder.aggregate_timings` folds them into one profile
  for the whole batch.

Workers receive the decoder config once (pool initializer), not once
per task; traces are pickled without their derived-array caches
(:meth:`IQTrace.__getstate__`), so the per-task payload is just the raw
samples.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..types import EpochResult, IQTrace
from ..utils.rng import spawn_seed_sequences
from ..utils.timing import merge_timings
from .pipeline import LFDecoder, LFDecoderConfig

#: Per-process decoder config, installed by the pool initializer.
_WORKER_CONFIG: Optional[LFDecoderConfig] = None


def _init_worker(config: LFDecoderConfig) -> None:
    global _WORKER_CONFIG
    _WORKER_CONFIG = config


def _decode_task(index: int, trace: IQTrace,
                 seed_seq: np.random.SeedSequence,
                 config: Optional[LFDecoderConfig] = None) -> EpochResult:
    """Decode one epoch with a task-local decoder and RNG.

    A fresh :class:`LFDecoder` per task is deliberate: decoder state
    (its RNG position) must depend only on this task's seed sequence,
    never on which other tasks the worker processed first.
    """
    cfg = config if config is not None else _WORKER_CONFIG
    decoder = LFDecoder(cfg, rng=np.random.default_rng(seed_seq))
    result = decoder.decode_epoch(trace)
    result.epoch_index = index
    return result


class BatchDecoder:
    """Decode a batch of epoch traces with a shared configuration.

    Parameters
    ----------
    config:
        Decoder configuration shared by every epoch (defaults to
        :class:`LFDecoderConfig`'s defaults).
    seed:
        Root seed for the batch.  Each epoch's decoder gets an
        independent child seed sequence; the same root seed always
        reproduces the same results, for any ``max_workers``.
    max_workers:
        Process count.  ``None`` uses the machine's CPU count; values
        ``<= 1`` decode serially in-process (no pickling, no pool),
        which is also the automatic fallback on single-CPU hosts.
    """

    def __init__(self, config: Optional[LFDecoderConfig] = None,
                 seed: int = 0,
                 max_workers: Optional[int] = None):
        self.config = config or LFDecoderConfig()
        self.seed = seed
        if max_workers is None:
            max_workers = os.cpu_count() or 1
        if max_workers < 1:
            raise ConfigurationError(
                f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers

    def decode_epochs(self, traces: Sequence[IQTrace]
                      ) -> List[EpochResult]:
        """Decode every trace; results in input order."""
        return list(self.iter_decode(traces))

    def iter_decode(self, traces: Iterable[IQTrace]
                    ) -> Iterator[EpochResult]:
        """Yield one :class:`EpochResult` per trace, in input order.

        Results stream out as soon as they are ready *and* every
        earlier epoch has been yielded, so downstream consumers see a
        deterministic sequence regardless of completion order.
        """
        trace_list = list(traces)
        seed_seqs = spawn_seed_sequences(self.seed, len(trace_list))
        if self.max_workers <= 1 or len(trace_list) <= 1:
            for i, trace in enumerate(trace_list):
                yield _decode_task(i, trace, seed_seqs[i],
                                   config=self.config)
            return
        workers = min(self.max_workers, len(trace_list))
        with ProcessPoolExecutor(
                max_workers=workers,
                initializer=_init_worker,
                initargs=(self.config,)) as pool:
            futures = [pool.submit(_decode_task, i, trace, seed_seqs[i])
                       for i, trace in enumerate(trace_list)]
            for future in futures:
                yield future.result()

    def aggregate_timings(self, results: Iterable[EpochResult]
                          ) -> Dict[str, float]:
        """Sum per-stage wall-clock seconds across epoch results."""
        total: Dict[str, float] = {}
        for result in results:
            merge_timings(total, result.stage_timings)
        return total
