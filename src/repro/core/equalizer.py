"""Blind FIR channel estimation and inverse-filter equalization.

The edge-differential front end (Section 3.1) assumes each antenna
transition produces one sharp step in the combined IQ signal.  A
frequency-selective channel (:mod:`repro.phy.multipath`) convolves the
tag waveform with a sparse FIR response ``h``, turning every step into
a staircase of echoes — the fold search then sees several "edges" per
transition and the bit decisions collapse.  This module recovers the
flat-channel waveform without any training sequence:

1. **Initialize** ``ĥ`` from the capture itself.  The successive
   difference of a piecewise-constant signal through an FIR channel is
   a sparse train of *scaled copies of h* (one per true edge):
   ``d[n] = sum_e a_e · h[n - n_e]``.  Normalizing the window behind
   each strong differential peak by its lag-0 value and taking a
   per-lag median across many anchors keeps the common structure (the
   channel) and rejects contamination from neighbouring edges (which
   lands at lags that vary anchor to anchor).
2. **Refine** by alternating least squares: deconvolve the capture
   with the current estimate, re-detect the edge train in the cleaned
   signal, then re-fit the taps on the *original* differential by
   solving the normal equations restricted to the initial estimate's
   support (±1 lag).  The support restriction keeps the solve small
   and prevents the spurious-tap blow-up of unconstrained
   deconvolution; one or two rounds correct the magnitude bias the
   median introduces under heavy edge overlap.
3. **Invert** with a regularized frequency-domain (Wiener)
   deconvolution, ``X · conj(H) / (|H|² + λ)``.  Unlike a direct-form
   IIR inverse this is unconditionally stable — it handles the
   non-minimum-phase channels (echo energy above the direct path)
   that real reflective geometries produce.

The whole procedure is deterministic in the input samples (no RNG)
and conservative by construction: a flat-channel capture estimates
taps only at lags 1–2 (the intrinsic edge transition shape, present
with or without multipath), which the ``min_echo_lag`` guard
classifies as flat — the samples pass through untouched.  The stage
that wraps this module is additionally off by default.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError

__all__ = ["EqualizerConfig", "EqualizerReport", "estimate_channel",
           "equalize"]


@dataclass(frozen=True)
class EqualizerConfig:
    """Tuning of the blind estimate / inverse-filter pre-stage."""

    #: Longest channel impulse response the estimator models, in
    #: samples.  Longer delay spreads alias into the next edge window
    #: and go uncorrected.
    max_taps: int = 192
    #: Fewest differential peaks needed before an estimate is trusted;
    #: below this the stage passes the capture through.
    min_peaks: int = 10
    #: Most peaks averaged (strongest first).  The per-lag median gets
    #: more robust with every extra anchor, so this is set high and
    #: effectively bounded by the capture's edge count.
    max_peaks: int = 256
    #: A candidate peak must exceed this multiple of the median
    #: |differential| (the noise floor) to count as an edge.  Edge
    #: steps at the weakest modelled coefficients (~0.05) sit only a
    #: few multiples above the differential noise floor, so this stays
    #: low and the per-lag median absorbs the false anchors it admits.
    peak_threshold: float = 3.0
    #: A candidate must also exceed this fraction of the strongest
    #: differentials (the 99.9th percentile) — keeps anchors meaningful
    #: on captures whose noise floor is far below the edges.
    strong_fraction: float = 0.25
    #: An anchor must be the local |differential| maximum over this
    #: many samples either side (rejects an echo masquerading as the
    #: direct tap of its own edge).
    peak_guard: int = 8
    #: Taps of the initial median estimate below this fraction of the
    #: direct tap are zeroed before refinement.
    min_tap_ratio: float = 0.1
    #: Alternating least-squares refinement rounds (0 disables
    #: refinement and uses the raw median estimate).
    refine_iterations: int = 2
    #: Taps of the refined estimate below this fraction of the direct
    #: tap are zeroed.
    refine_trim: float = 0.08
    #: Ridge regularization of the restricted normal equations,
    #: relative to the largest diagonal entry.
    ridge: float = 1e-3
    #: Wiener regularization λ in ``conj(H) / (|H|² + λ)`` — trades
    #: residual echo against noise amplification.
    noise_regularization: float = 0.02
    #: Estimated taps below this lag are the intrinsic edge transition
    #: shape, not echoes; an estimate with no tap at or beyond this
    #: lag reads as a flat channel and is not applied.
    min_echo_lag: int = 4

    def __post_init__(self) -> None:
        if self.max_taps < 2:
            raise ConfigurationError("max_taps must be >= 2")
        if self.min_peaks < 1:
            raise ConfigurationError("min_peaks must be >= 1")
        if self.max_peaks < self.min_peaks:
            raise ConfigurationError(
                "max_peaks must be >= min_peaks")
        if self.peak_threshold <= 1.0:
            raise ConfigurationError(
                "peak_threshold must exceed 1.0")
        if not 0.0 <= self.strong_fraction < 1.0:
            raise ConfigurationError(
                "strong_fraction must be in [0, 1)")
        if not 0.0 < self.min_tap_ratio < 1.0:
            raise ConfigurationError(
                "min_tap_ratio must be in (0, 1)")
        if self.refine_iterations < 0:
            raise ConfigurationError(
                "refine_iterations must be >= 0")
        if self.noise_regularization <= 0:
            raise ConfigurationError(
                "noise_regularization must be positive")
        if self.min_echo_lag < 1:
            raise ConfigurationError("min_echo_lag must be >= 1")


@dataclass
class EqualizerReport:
    """What the pre-stage estimated (and whether it acted)."""

    #: True when the samples were rewritten through the inverse filter.
    applied: bool = False
    #: Why the stage passed through (``"flat"``, ``"too_few_peaks"``,
    #: ``"nonfinite"``) — empty when applied.
    reason: str = ""
    #: Differential peaks anchoring the initial estimate.
    n_peaks_used: int = 0
    #: Non-zero taps of the estimated response (1 = flat).
    n_taps: int = 0
    #: Last non-zero echo lag of the estimate, in samples.
    delay_spread_samples: int = 0
    #: Estimated echo power relative to the direct path.
    echo_energy: float = 0.0
    #: The estimated impulse response (``None`` when no estimate was
    #: formed); diagnostic only — nothing downstream reads it.
    impulse_response: Optional[np.ndarray] = field(
        default=None, repr=False)


def _edge_peaks(magnitude: np.ndarray, window: int, guard: int,
                threshold: float, max_peaks: int) -> List[int]:
    """Strong differential peaks usable as estimation anchors.

    A usable anchor is a local maximum over ``±guard`` samples above
    ``threshold`` whose trailing ``window`` fits inside the capture.
    Anchors need *not* be isolated from other edges: every anchor's
    window contains the true response at the same lags, while
    contamination from neighbouring edges lands at lags that vary
    anchor to anchor — the per-lag median across anchors keeps the
    former and rejects the latter.  Strongest anchors first (their
    lag-0 normalizer has the best SNR).
    """
    candidates = np.flatnonzero(magnitude >= threshold)
    taken: List[int] = []
    for idx in candidates[np.argsort(magnitude[candidates])[::-1]]:
        if len(taken) >= max_peaks:
            break
        lo = max(int(idx) - guard, 0)
        hi = min(int(idx) + guard + 1, magnitude.size)
        if magnitude[idx] < magnitude[lo:hi].max():
            continue
        if idx + window > magnitude.size:
            continue
        if any(abs(int(idx) - t) <= guard for t in taken):
            continue
        taken.append(int(idx))
    return taken


def _differential_threshold(magnitude: np.ndarray,
                            cfg: EqualizerConfig) -> float:
    floor = float(np.median(magnitude))
    strong = float(np.quantile(magnitude, 0.999))
    return max(cfg.peak_threshold * floor,
               cfg.strong_fraction * strong, 1e-30)


def _trim(h: np.ndarray, ratio: float) -> np.ndarray:
    """Zero taps below ``ratio`` of the direct tap, drop the tail."""
    out = h.copy()
    weak = np.abs(out) < ratio * np.abs(out[0])
    weak[0] = False
    out[weak] = 0.0
    nonzero = np.flatnonzero(np.abs(out) > 0)
    return out[:int(nonzero[-1]) + 1]


def _wiener_deconvolve(x: np.ndarray, h: np.ndarray,
                       lam: float) -> np.ndarray:
    """Regularized frequency-domain inverse, constant-padded.

    The capture starts and ends mid-carrier, so both ends are extended
    with a constant run of the boundary sample before the circular
    FFT — no synthetic edge enters the deconvolution and wrap-around
    leakage lands in the discarded padding.
    """
    pad = 4 * h.size
    left = np.full(pad, x[0], dtype=np.complex128)
    right = np.full(pad, x[-1], dtype=np.complex128)
    padded = np.concatenate([left, x, right])
    n = 1 << int(np.ceil(np.log2(padded.size + h.size)))
    spectrum = np.fft.fft(padded, n)
    response = np.fft.fft(h, n)
    gain = np.conj(response) / (np.abs(response) ** 2 + lam)
    out = np.fft.ifft(spectrum * gain)[pad:pad + x.size]
    return np.ascontiguousarray(out)


def _edge_train(samples: np.ndarray, guard: int = 4) -> np.ndarray:
    """Sparse complex edge impulses detected in a (cleaned) capture."""
    d = np.diff(samples)
    magnitude = np.abs(d)
    floor = float(np.median(magnitude))
    strong = float(np.quantile(magnitude, 0.999))
    threshold = max(3.0 * floor, 0.25 * strong, 1e-30)
    train = np.zeros_like(d)
    for idx in np.flatnonzero(magnitude >= threshold):
        lo = max(int(idx) - guard, 0)
        hi = min(int(idx) + guard + 1, magnitude.size)
        if magnitude[idx] >= magnitude[lo:hi].max():
            train[idx] = d[idx]
    return train


def _refine_taps(d: np.ndarray, initial: np.ndarray, x: np.ndarray,
                 cfg: EqualizerConfig) -> np.ndarray:
    """Alternating LS refinement of ``initial`` on support ±1 lag.

    Each round deconvolves the capture with the current estimate,
    re-detects the edge train ``a`` in the cleaned signal, and
    re-fits ``h`` by solving the normal equations of
    ``d ≈ a ⊛ h`` restricted to the initial support — the Gram
    matrix is the edge train's autocorrelation at the support lag
    differences, computed once per round via FFT.
    """
    support = sorted({int(s + o)
                      for s in np.flatnonzero(np.abs(initial) > 0)
                      for o in (-1, 0, 1) if s + o >= 0})
    h = initial
    n = 1 << int(np.ceil(np.log2(2 * d.size)))
    spectrum_d = np.fft.fft(d, n)
    for _ in range(cfg.refine_iterations):
        cleaned = _wiener_deconvolve(x, h, cfg.noise_regularization)
        train = _edge_train(cleaned)
        if np.count_nonzero(train) < cfg.min_peaks:
            break
        spectrum_a = np.fft.fft(train, n)
        autocorr = np.fft.ifft(np.conj(spectrum_a) * spectrum_a)
        crosscorr = np.fft.ifft(np.conj(spectrum_a) * spectrum_d)
        k = len(support)
        gram = np.empty((k, k), dtype=np.complex128)
        for i, si in enumerate(support):
            for j, sj in enumerate(support):
                gram[i, j] = autocorr[(sj - si) % n]
        rhs = np.array([crosscorr[s % n] for s in support])
        gram += cfg.ridge * float(np.abs(np.diag(gram)).max()) \
            * np.eye(k)
        try:
            taps = np.linalg.solve(gram, rhs)
        except np.linalg.LinAlgError:
            break
        refined = np.zeros(support[-1] + 1, dtype=np.complex128)
        for lag, value in zip(support, taps):
            refined[lag] = value
        if abs(refined[0]) < 1e-12:
            break
        h = refined / refined[0]
    return _trim(h, cfg.refine_trim)


def estimate_channel(samples: np.ndarray,
                     config: Optional[EqualizerConfig] = None
                     ) -> EqualizerReport:
    """Blind-estimate the FIR channel behind ``samples``.

    Returns a report whose ``impulse_response`` is the normalized
    estimate (direct tap == 1) when one could be formed; ``applied``
    is left False — :func:`equalize` decides whether to act on it.
    """
    cfg = config or EqualizerConfig()
    report = EqualizerReport()
    x = np.asarray(samples, dtype=np.complex128)
    if x.size < 4 * cfg.max_taps:
        report.reason = "too_few_peaks"
        return report
    if not np.all(np.isfinite(x.real)) or \
            not np.all(np.isfinite(x.imag)):
        report.reason = "nonfinite"
        return report
    d = np.diff(x)
    magnitude = np.abs(d)
    threshold = _differential_threshold(magnitude, cfg)
    peaks = _edge_peaks(magnitude, cfg.max_taps, cfg.peak_guard,
                        threshold, cfg.max_peaks)
    report.n_peaks_used = len(peaks)
    if len(peaks) < cfg.min_peaks:
        report.reason = "too_few_peaks"
        return report
    # Each peak's trailing window is a scaled copy of h; normalizing
    # by the lag-0 value and taking a per-lag median keeps the
    # estimate robust to windows contaminated by a nearby edge.
    windows = np.stack([d[p:p + cfg.max_taps] / d[p] for p in peaks])
    initial = np.median(windows.real, axis=0) \
        + 1j * np.median(windows.imag, axis=0)
    initial[0] = 1.0
    initial = _trim(initial, cfg.min_tap_ratio)
    if initial.size > 1 and cfg.refine_iterations > 0:
        estimate = _refine_taps(d, initial, x, cfg)
    else:
        estimate = initial
    nonzero = np.flatnonzero(np.abs(estimate) > 0)
    report.n_taps = int(nonzero.size)
    report.delay_spread_samples = int(nonzero[-1])
    report.echo_energy = float(np.sum(np.abs(estimate[1:]) ** 2))
    report.impulse_response = estimate
    if not np.any(nonzero >= cfg.min_echo_lag):
        # Taps below min_echo_lag are the intrinsic edge transition
        # shape — present on a flat channel too.  Nothing to undo.
        report.reason = "flat"
    return report


def equalize(samples: np.ndarray,
             config: Optional[EqualizerConfig] = None
             ) -> "Tuple[np.ndarray, EqualizerReport]":
    """Estimate the channel and, when selective, return the
    deconvolved samples.

    Always returns ``(samples_out, report)``; when ``report.applied``
    is False, ``samples_out`` **is** the input array, untouched — the
    caller can rely on object identity for the pass-through case.
    """
    cfg = config or EqualizerConfig()
    report = estimate_channel(samples, cfg)
    if report.reason or report.impulse_response is None:
        return samples, report
    x = np.asarray(samples, dtype=np.complex128)
    out = _wiener_deconvolve(x, report.impulse_response,
                             cfg.noise_regularization)
    report.applied = True
    return out, report
