"""Multi-fidelity decode policy: confidence-gated escalation.

The decoder's hot stages — collision detection (the 3-vs-9 k-means
model selection), the multilevel projection check, and Viterbi error
correction — all pay full fidelity on every stream, yet most streams
most of the time are unambiguous: a lone tag's differentials are
collinear to the eye, its projection is cleanly trimodal, and its
observations sit far from every decision boundary.  The
:class:`FidelityPolicy` lets each stage start cheap and *escalate to
the full-fidelity computation only when its confidence gate fails*:

* **pre-gate** (collision detection): planarity of the differential
  scatter is computed first (one 2x2 eigendecomposition); a scatter
  whose planarity sits clearly below the collision threshold skips the
  cluster-count sweep entirely.  The gate only fires *strictly inside*
  the single-tag region, so the fast path can never flip a verdict the
  full detector would have reached.
* **subsample front door** (cluster-count selection): model selection
  runs on a capped, deterministically-seeded subsample of the edge
  differentials with k-means++ seeding shared across the candidate-k
  sweep; when the inertia-improvement margin between candidates falls
  inside the confidence gap, the full set is refitted cold.
* **dispersion gate** (multilevel projection check): the fraction of
  projected observations that sit off the {-1, 0, +1} lattice is
  computed vectorized; a cleanly trimodal projection skips the paired
  k-means fits (and the expensive collinear-split attempts their false
  positives trigger).
* **banded Viterbi**: observations that all clear the emission decision
  band make the thresholded state path *provably* the Viterbi optimum,
  so the trellis recursion is skipped; any observation inside the band
  (or an invalid thresholded path) falls back to the exact decoder.

Every gate decision is counted in a ``fidelity_stats`` dict (one
counter pair per gate) that lands on
:attr:`repro.types.EpochResult.fidelity_stats`, so the speed/quality
trade stays observable: a fast path that silently stopped firing shows
up as an escalation-rate regression, not as an unexplained slowdown.

``FidelityPolicy(force_full=True)`` (or ``enabled=False``) disables
every fast path and reproduces the full-fidelity decoder bit-for-bit —
the same code paths run, consuming the same RNG stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from ..errors import ConfigurationError

#: Counter keys every fidelity-policy epoch reports.  Keys come in
#: (fast, escalation) pairs per gate; ``viterbi_exact`` counts both
#: genuine band fallbacks and decodes run with the band disabled.
FIDELITY_STAT_KEYS: Tuple[str, ...] = (
    "pregate_fast", "pregate_escalations",
    "subsample_fast", "subsample_escalations",
    "multilevel_fast", "multilevel_escalations",
    "viterbi_banded", "viterbi_exact",
    "bounded_lloyd_runs",
)

#: (fast, escalation) counter pairs used for the escalation rate.
_GATE_PAIRS: Tuple[Tuple[str, str], ...] = (
    ("pregate_fast", "pregate_escalations"),
    ("subsample_fast", "subsample_escalations"),
    ("multilevel_fast", "multilevel_escalations"),
    ("viterbi_banded", "viterbi_exact"),
)


@dataclass(frozen=True)
class FidelityPolicy:
    """Per-stage budgets and escalation thresholds for adaptive decoding.

    The default policy is the adaptive fast path; ``force_full=True``
    turns every gate off and reproduces the full-fidelity decoder
    bit-identically (``enabled=False`` is equivalent — ``force_full``
    reads as intent when overriding a config that has a policy).
    """

    enabled: bool = True
    #: Hard off-switch: run every stage at full fidelity, consuming the
    #: exact RNG stream of the pre-policy decoder.
    force_full: bool = False

    # -- collision-detection pre-gate -------------------------------------
    pregate: bool = True
    #: The fast path fires only when planarity is below this fraction
    #: of the effective collision threshold; the [margin, 1.0) band is
    #: low-confidence and escalates to the full detector.
    pregate_margin: float = 0.5
    #: Relaxed margin used when session warm state already vouches for
    #: the stream (a matched single-tag tracker): warm evidence buys a
    #: wider fast-path band.
    pregate_margin_warm: float = 0.75

    # -- subsampled cluster-count selection -------------------------------
    #: Model selection runs on at most this many differentials; 0
    #: disables subsampling (but keeps the shared seeding).
    subsample_cap: int = 384
    #: Seed of the deterministic subsample draw (independent of the
    #: decoder RNG so the drawn subset is reproducible run to run).
    subsample_seed: int = 24601
    #: Escalate to a full-set refit when the inertia-improvement ratio
    #: lands within this factor of the acceptance threshold (compared
    #: in log space); must be > 1.
    confidence_gap: float = 2.0

    # -- multilevel projection dispersion gate ----------------------------
    dispersion_gate: bool = True
    #: A projected observation farther than this from every ideal level
    #: in {-1, 0, +1} counts as off-lattice.
    dispersion_eps: float = 0.2
    #: Skip the multilevel k-means check when the off-lattice fraction
    #: is at or below this; anything above escalates.
    dispersion_fraction: float = 0.02

    # -- banded Viterbi ---------------------------------------------------
    banded_viterbi: bool = True
    #: Extra width (observation units) added to the provably-safe
    #: emission decision band; observations inside the widened band
    #: force the exact trellis recursion.
    viterbi_band_margin: float = 1e-9

    # -- bound-based Lloyd ------------------------------------------------
    #: Warm (single-restart) k-means switches to the Hamerly
    #: bound-based Lloyd iteration at or above this point count; below
    #: it the batched brute-force iteration is faster.
    bounded_min_points: int = 1024

    def __post_init__(self) -> None:
        if not 0.0 < self.pregate_margin < 1.0:
            raise ConfigurationError(
                "pregate_margin must be in (0, 1)")
        if not 0.0 < self.pregate_margin_warm < 1.0:
            raise ConfigurationError(
                "pregate_margin_warm must be in (0, 1)")
        if self.subsample_cap < 0:
            raise ConfigurationError("subsample_cap must be >= 0")
        if 0 < self.subsample_cap < 32:
            raise ConfigurationError(
                "subsample_cap below 32 cannot support the 9-cluster "
                "candidate")
        if self.confidence_gap <= 1.0:
            raise ConfigurationError("confidence_gap must be > 1")
        if self.dispersion_eps <= 0:
            raise ConfigurationError("dispersion_eps must be positive")
        if not 0.0 <= self.dispersion_fraction < 1.0:
            raise ConfigurationError(
                "dispersion_fraction must be in [0, 1)")
        if self.viterbi_band_margin < 0:
            raise ConfigurationError(
                "viterbi_band_margin must be >= 0")
        if self.bounded_min_points < 2:
            raise ConfigurationError(
                "bounded_min_points must be >= 2")

    @property
    def active(self) -> bool:
        """True when any fast path may fire."""
        return self.enabled and not self.force_full

    @staticmethod
    def full() -> "FidelityPolicy":
        """The full-fidelity policy (every gate off, legacy decoding)."""
        return FidelityPolicy(force_full=True)

    def new_stats(self) -> Dict[str, int]:
        """A zeroed per-epoch counter dict (one entry per stat key)."""
        return {key: 0 for key in FIDELITY_STAT_KEYS}


def merge_fidelity_stats(into: Dict[str, int],
                         update: Mapping[str, int]) -> Dict[str, int]:
    """Accumulate one fidelity counter dict into another.

    Thin compatibility alias over the one counter-merge implementation
    in :mod:`repro.core.stages.stats` (imported lazily: the stage
    package sits above this module in the import graph).
    """
    from .stages.stats import StatsAccumulator
    return StatsAccumulator.merge_counts(into, update)


def escalation_rate(stats: Mapping[str, int]) -> float:
    """Fraction of gate decisions that escalated to full fidelity.

    Sums every (fast, escalation) counter pair; returns 1.0 when no
    gate ever fired (an all-zero stats dict means the fast paths are
    dead, which the benchmark sanity ceiling should flag, not excuse).
    """
    fast = sum(int(stats.get(f, 0)) for f, _ in _GATE_PAIRS)
    escalated = sum(int(stats.get(e, 0)) for _, e in _GATE_PAIRS)
    decisions = fast + escalated
    if decisions == 0:
        return 1.0
    return escalated / decisions
