"""Eye-pattern folding: separating edges into streams (Section 3.2).

Tags transmit periodically at a multiple of the base rate starting at a
random offset, so all edges of one stream satisfy
``position = offset + k * period`` (within clock drift).  Folding the
detected edge positions modulo each candidate period produces sharp
peaks at stream offsets — the paper's "eye pattern" — while spurious
edges spread uniformly and are rejected.

Rate ambiguity is resolved by processing candidate rates fastest-first
and letting accepted streams *claim* their edges: a slow tag's edges
would fold into a single bin at a faster period too, but claiming
removes genuine fast streams before slow folds run, and the
consecutive-edge test (the alternating preamble guarantees back-to-back
edges at the true rate) rejects the slow-tag-as-fast-stream alias.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import constants
from ..errors import ConfigurationError
from ..types import DetectedEdge, StreamHypothesis


@dataclass(frozen=True)
class FoldingConfig:
    """Tuning of the stream search.

    ``bin_width_samples`` is the fold-histogram resolution (about one
    edge width); ``min_edges`` the minimum number of folded edges to
    accept a stream; ``match_tolerance_samples`` how far an edge may sit
    from the stream grid and still be claimed (covers residual drift
    between consecutive edges plus edge-position quantization).
    """

    bin_width_samples: float = float(constants.EDGE_WIDTH_SAMPLES)
    min_edges: int = 5
    match_tolerance_samples: float = constants.EDGE_WIDTH_SAMPLES + 1.0
    require_consecutive: bool = True
    peak_span_bins: int = 1
    #: Fold only edges from the first N bit periods when seeding a
    #: stream's phase: over long traces a tag's ppm clock drift walks
    #: its phase across many samples, smearing a whole-trace fold into
    #: uselessness, while the progressive tracker has no trouble
    #: following the drift once seeded near the stream's start.
    fold_window_periods: float = 80.0
    #: Drift corrections tried per candidate period.  The phase walk of
    #: a tag's constant ppm error is period * ppm per bit — several
    #: samples per bit at slow rates — so the fold searches a small
    #: grid of corrected periods and keeps the sharpest peak.
    max_drift_ppm: float = 250.0
    n_drift_steps: int = 11

    def __post_init__(self) -> None:
        if self.bin_width_samples <= 0:
            raise ConfigurationError("bin width must be positive")
        if self.min_edges < 2:
            raise ConfigurationError("min_edges must be >= 2")
        if self.match_tolerance_samples <= 0:
            raise ConfigurationError("match tolerance must be positive")


def fold_histogram(positions: np.ndarray, period: float,
                   bin_width: float) -> Tuple[np.ndarray, float]:
    """Fold ``positions`` modulo ``period``; returns (counts, bin_width).

    The actual bin width is adjusted so an integral number of bins tiles
    the period.
    """
    if period <= 0:
        raise ConfigurationError("period must be positive")
    n_bins = max(int(round(period / bin_width)), 1)
    actual_width = period / n_bins
    phases = np.mod(np.asarray(positions, dtype=np.float64), period)
    idx = np.minimum((phases / actual_width).astype(np.int64), n_bins - 1)
    return np.bincount(idx, minlength=n_bins), actual_width


def _circular_peak_offsets(counts: np.ndarray, bin_width: float,
                           min_count: int, span_bins: int = 1
                           ) -> List[float]:
    """Offsets (sample units) of local count clusters in a fold histogram.

    Sums counts over a short circular window so one stream whose edges
    straddle two bins (drift smear) still registers as a single peak,
    then greedily extracts maxima with non-overlap suppression.
    """
    n_bins = counts.size
    if n_bins == 0:
        return []
    # Circular windowed sum via one gather: window[i] =
    # sum(counts[(i+s) % n] for s in -span..span), identical to the
    # np.roll accumulation it replaces without the per-shift copies.
    shifts = np.arange(-span_bins, span_bins + 1)
    idx = (np.arange(n_bins)[None, :] + shifts[:, None]) % n_bins
    window = counts[idx].sum(axis=0, dtype=np.int64)
    offsets: List[float] = []
    remaining = window.astype(np.int64).copy()
    suppress = 2 * span_bins + 1
    while True:
        best = int(np.argmax(remaining))
        if remaining[best] < min_count:
            break
        # Centroid of counts around the peak for sub-bin offset accuracy.
        idx = np.arange(best - span_bins, best + span_bins + 1)
        local = counts[np.mod(idx, n_bins)]
        if local.sum() == 0:
            remaining[best] = 0
            continue
        centroid = float(np.sum(idx * local) / local.sum())
        # The +0.5 bin-centre shift can push a boundary-straddling
        # peak's centroid to exactly n_bins; keep offsets in [0, period)
        # by wrapping after the shift.
        offsets.append(((centroid + 0.5) % n_bins) * bin_width)
        lo = best - suppress
        hi = best + suppress + 1
        wrap = np.mod(np.arange(lo, hi), n_bins)
        remaining[wrap] = 0
    return offsets


def find_stream_hypotheses(
        edges: Sequence[DetectedEdge],
        candidate_periods: Sequence[float],
        config: Optional[FoldingConfig] = None) -> List[StreamHypothesis]:
    """Search for streams across candidate bit periods (samples).

    ``candidate_periods`` should be sorted by the caller in the order
    the search should claim edges (shortest period = fastest rate
    first); this function enforces that ordering itself for safety.
    Returns hypotheses with coarse offsets; each accepted hypothesis has
    claimed its edges so later (slower) folds do not see them.
    """
    cfg = config or FoldingConfig()
    if not candidate_periods:
        raise ConfigurationError("need at least one candidate period")
    positions = np.array([e.position for e in edges], dtype=np.float64)
    available = np.ones(positions.size, dtype=bool)
    return _search_streams(positions, available, candidate_periods, cfg)


def _search_streams(positions: np.ndarray, available: np.ndarray,
                    candidate_periods: Sequence[float],
                    cfg: FoldingConfig) -> List[StreamHypothesis]:
    """The cold fold sweep over ``candidate_periods``.

    Mutates ``available`` in place (claimed edges go False), so a
    caller that pre-claimed edges via the warm path hands the remainder
    straight to this search.
    """
    hypotheses: List[StreamHypothesis] = []

    # A non-positive period sorts first, so validating inside the single
    # pass still raises before any edge claiming happens.
    for period in sorted(set(candidate_periods)):
        if period <= 0:
            raise ConfigurationError("candidate periods must be positive")
        # Extras (collision partners sharing a grid slot) are claimed
        # only while this rate is being searched; a slower tag whose
        # edges happen to coincide with a fast stream's grid must stay
        # visible to the slower folds.
        rate_extras: List[int] = []
        _sweep_rate(positions, available, period, cfg, rate_extras,
                    hypotheses)
        if rate_extras:
            available[np.asarray(rate_extras, dtype=np.int64)] = True
    return hypotheses


def _sweep_rate(positions: np.ndarray, available: np.ndarray,
                period: float, cfg: FoldingConfig,
                rate_extras: List[int],
                hypotheses: List[StreamHypothesis]) -> None:
    """Cold fold loop at one candidate rate: claim streams until dry.

    Appends accepted hypotheses and the indices of their extra
    (slot-sharing) edges; the caller releases ``rate_extras`` once the
    whole rate — warm and cold passes alike — is done with them.
    """
    # Re-fold after every accepted stream: two tags whose offsets
    # differ by only a few samples merge into a single fold peak,
    # and the second tag only becomes visible once the first has
    # claimed its edges.
    window_end = cfg.fold_window_periods * period
    # The drift search only pays off when a tag's ppm clock error
    # walks its phase across more than one fold bin within the
    # seed window (slow rates / long windows); for short fast-rate
    # windows it would just add noise to the period estimate.
    visible_bits = min(cfg.fold_window_periods,
                       (positions.max() / period + 1.0)
                       if positions.size else 1.0)
    walk = period * cfg.max_drift_ppm * 1e-6 * visible_bits
    if walk > 3.0 * cfg.bin_width_samples:
        drifts = np.linspace(-cfg.max_drift_ppm,
                             cfg.max_drift_ppm,
                             cfg.n_drift_steps) * 1e-6
        drifts = drifts[np.argsort(np.abs(drifts),
                                   kind="stable")]
    else:
        drifts = np.array([0.0])
    while True:
        live = np.flatnonzero(available
                              & (positions < window_end))
        if live.size < cfg.min_edges:
            break
        # Search a drift grid: the corrected period whose fold
        # peaks sharpest seeds both the phase and the initial
        # period estimate handed to the tracker.
        best_fold = None
        for drift in drifts:
            p_corr = period * (1.0 + drift)
            counts, bin_width = fold_histogram(
                positions[live], p_corr, cfg.bin_width_samples)
            peak = int(counts.max())
            if best_fold is None or peak > best_fold[0]:
                best_fold = (peak, counts, bin_width, p_corr)
        _, counts, bin_width, p_corr = best_fold
        accepted_any = False
        for offset in _circular_peak_offsets(counts, bin_width,
                                             cfg.min_edges,
                                             cfg.peak_span_bins):
            core, extras = _match_edges(
                positions, available, offset, p_corr,
                cfg.match_tolerance_samples)
            if core.size < cfg.min_edges:
                continue
            if cfg.require_consecutive and not _has_consecutive(
                    positions[core], offset, p_corr):
                continue
            available[core] = False
            available[extras] = False
            rate_extras.extend(int(i) for i in extras)
            matched = np.concatenate([core, extras])
            # Anchor the grid phase at the earliest matched edge so
            # the tracker starts where drift has accumulated least.
            first_pos = float(np.min(positions[core]))
            hypotheses.append(StreamHypothesis(
                offset_samples=first_pos % p_corr,
                period_samples=float(p_corr),
                score=float(core.size),
                edge_indices=[int(i) for i in matched]))
            accepted_any = True
            break  # re-fold the remaining edges before continuing
        if not accepted_any:
            break


def find_stream_hypotheses_warm(
        edges: Sequence[DetectedEdge],
        candidate_periods: Sequence[float],
        warm_hints: Sequence[Tuple[float, float]],
        config: Optional[FoldingConfig] = None
        ) -> Tuple[List[StreamHypothesis], List[Optional[int]], int, int]:
    """Stream search with cached (rate, offset) hypotheses tried first.

    ``warm_hints`` holds one ``(period_samples, offset_phase)`` pair per
    tracked stream from the previous epoch.  The warm phase replays the
    cold per-rate loop — fold the live edges, try the peak offsets in
    strength order, accept the first that passes the gates, re-fold —
    but each iteration folds exactly once at a cached *fitted* period
    (already drift-corrected by last epoch's least-squares track)
    instead of sweeping the drift grid, and the iteration budget is the
    hint count.  Because the structure matches the cold loop, the edge
    partition converges to the cold one on stable streams; the hint
    phase itself is *not* trusted (the comparator re-randomizes it
    every carrier-on).  After the hints at a rate run dry, the cold
    sweep continues *at that same rate* before the rate's collision
    extras are released — exactly the cold ordering — so tags that
    appeared mid-session are still acquired without re-searching edges
    the warm pass already attributed to collisions.

    Returns ``(hypotheses, sources, n_hits, n_misses)`` where
    ``sources[i]`` is the index of the hint whose period seeded
    hypothesis ``i`` (``None`` for cold finds) — an association *hint*
    for the tracker matcher, not a verified identity.
    """
    cfg = config or FoldingConfig()
    if not candidate_periods:
        raise ConfigurationError("need at least one candidate period")
    positions = np.array([e.position for e in edges], dtype=np.float64)
    available = np.ones(positions.size, dtype=bool)
    hypotheses: List[StreamHypothesis] = []
    sources: List[Optional[int]] = []
    n_hits = 0
    n_misses = 0

    # Group hints by the nearest candidate rate so edge claiming runs
    # fastest-rate-first and extras release per rate, like the cold
    # sweep.
    rates = sorted(set(p for p in candidate_periods if p > 0))
    if len(rates) != len(set(candidate_periods)):
        raise ConfigurationError("candidate periods must be positive")
    # A cached period can only deviate from its candidate rate by the
    # clock-drift budget plus track-fit noise (collision mixture fits
    # skew the most); anything farther is a stale tracker of a junk
    # stream, and folding at its period would mis-claim real streams'
    # edges into fresh junk.
    period_slack = max(3e-6 * cfg.max_drift_ppm, 5e-4)
    by_rate: Dict[float, List[int]] = {rate: [] for rate in rates}
    for hint_idx, (period, _phase) in enumerate(warm_hints):
        if period <= 0:
            n_misses += 1
            continue
        nearest = min(rates, key=lambda r: abs(r - period))
        if abs(nearest - period) / nearest > period_slack:
            n_misses += 1  # tracker period no longer near any rate
            continue
        by_rate[nearest].append(hint_idx)

    for rate in rates:
        rate_extras: List[int] = []
        for hint_idx in by_rate[rate]:
            period = warm_hints[hint_idx][0]
            window_end = cfg.fold_window_periods * period
            live = np.flatnonzero(available & (positions < window_end))
            if live.size < cfg.min_edges:
                # Claiming only shrinks the live set; no later hint at
                # this rate can see more edges.
                n_misses += 1
                break
            counts, bin_width = fold_histogram(positions[live], period,
                                               cfg.bin_width_samples)
            hit = False
            for offset in _circular_peak_offsets(counts, bin_width,
                                                 cfg.min_edges,
                                                 cfg.peak_span_bins):
                core, extras = _match_edges(
                    positions, available, offset, period,
                    cfg.match_tolerance_samples)
                if core.size < cfg.min_edges:
                    continue
                if cfg.require_consecutive and not _has_consecutive(
                        positions[core], offset, period):
                    continue
                available[core] = False
                available[extras] = False
                rate_extras.extend(int(i) for i in extras)
                matched = np.concatenate([core, extras])
                first_pos = float(np.min(positions[core]))
                hypotheses.append(StreamHypothesis(
                    offset_samples=first_pos % period,
                    period_samples=float(period),
                    score=float(core.size),
                    edge_indices=[int(i) for i in matched]))
                sources.append(hint_idx)
                hit = True
                break
            if hit:
                n_hits += 1
            else:
                # The peak list only depends on the remaining edges, so
                # once no peak passes the gates, later hint folds at
                # (near-identical) periods cannot succeed either; hand
                # the remainder to the cold sweep.
                n_misses += 1
                break
        # Cold sweep at this same rate while the warm pass's collision
        # extras are still claimed: releasing them first would let the
        # sweep re-fold edges already attributed to a collision and
        # hallucinate duplicate streams the cold path never produces.
        n_before = len(hypotheses)
        _sweep_rate(positions, available, rate, cfg, rate_extras,
                    hypotheses)
        sources.extend([None] * (len(hypotheses) - n_before))
        # Mirror the cold per-rate extras release: collision partners
        # at this rate stay visible to the slower folds that follow.
        if rate_extras:
            available[np.asarray(sorted(set(rate_extras)),
                                 dtype=np.int64)] = True

    return hypotheses, sources, n_hits, n_misses


def _match_edges(positions: np.ndarray, available: np.ndarray,
                 offset: float, period: float,
                 tolerance: float):
    """Available edges on the stream grid: (core, extras) index arrays.

    ``core`` holds the best-aligned edge per grid slot (these drive the
    timing fit and are permanently claimed); ``extras`` are additional
    edges sharing a slot — collision partners at this rate, or a slower
    tag's coincident edges, which the caller releases again before
    folding slower rates.

    The stream grid is tracked progressively: the running offset
    estimate follows matched edges so slow clock drift does not
    accumulate past the tolerance (Section 4.1's 200 ppm budget).
    """
    order = np.argsort(positions)
    # Availability is read-only here, so restricting the scan to the
    # available edges up front is exact (the loop would skip the rest
    # anyway) and trims the scalar loop to the live population.
    live = order[available[order]]
    est_offset = float(offset)
    period_est = float(period)
    matched: List[int] = []
    ks: List[float] = []
    ps: List[float] = []
    extra: List[int] = []
    residuals: dict = {}  # grid slot -> (index into ks/ps, |residual|)
    # Running moments for the periodic least-squares refresh, updated
    # incrementally on every append/swap instead of re-scanning the
    # matched set (which made the refresh quadratic in stream length).
    s_k = s_p = s_kk = s_kp = 0.0
    for i, pos in zip(live.tolist(), positions[live].tolist()):
        k = round((pos - est_offset) / period_est)
        predicted = est_offset + k * period_est
        residual = abs(pos - predicted)
        if residual > tolerance:
            continue
        slot = int(k)
        track_updated = False
        if slot in residuals:
            # All edges within tolerance of the slot are claimed (a
            # colliding tag's edge must not be left to seed a junk
            # stream), but only the best-aligned edge per slot drives
            # the timing fit.
            prev_idx, prev_res = residuals[slot]
            if residual < prev_res:
                # Index-based swap: the demoted previous slot holder
                # becomes the extra, in O(1) — no list removal.
                extra.append(matched[prev_idx])
                matched[prev_idx] = i
                delta = pos - ps[prev_idx]
                s_p += delta
                s_kp += ks[prev_idx] * delta
                ps[prev_idx] = pos
                residuals[slot] = (prev_idx, residual)
                track_updated = True
            else:
                extra.append(i)
        else:
            residuals[slot] = (len(matched), residual)
            matched.append(i)
            kf = float(k)
            ks.append(kf)
            ps.append(pos)
            s_k += kf
            s_p += pos
            s_kk += kf * kf
            s_kp += kf * pos
            track_updated = True
        if not track_updated:
            continue
        if len(matched) >= 3 and len(matched) % 4 == 0:
            # Periodic least-squares refresh of (offset, period),
            # closed-form: slot indices are distinct so the normal
            # equations never degenerate, and this avoids a full
            # lstsq per refresh.
            n_fit = len(ks)
            mean_k = s_k / n_fit
            mean_p = s_p / n_fit
            skk = s_kk - n_fit * mean_k * mean_k
            skp = s_kp - n_fit * mean_k * mean_p
            new_period = skp / skk
            new_offset = mean_p - new_period * mean_k
            # Only accept a sane refit (guards against collinear noise).
            if abs(new_period - period) < 0.05 * period:
                period_est, est_offset = new_period, new_offset
        else:
            # Exponentially track the offset to absorb drift.
            est_offset += 0.25 * (pos - predicted)
    return (np.asarray(sorted(set(matched)), dtype=np.int64),
            np.asarray(sorted(set(extra) - set(matched)),
                       dtype=np.int64))


def _has_consecutive(matched_positions: np.ndarray, offset: float,
                     period: float) -> bool:
    """True when at least two matched edges sit on adjacent grid slots.

    Every genuine stream starts with an alternating preamble, so
    consecutive-slot edges always exist at the true rate; an aliased
    slower tag can only produce edges >= 2 slots apart.
    """
    if matched_positions.size < 2:
        return False
    k = np.round((np.sort(matched_positions) - offset) / period)
    return bool(np.any(np.diff(k) == 1))


def analog_fold_search(diff_energy: np.ndarray,
                       candidate_periods: Sequence[float],
                       max_drift_ppm: float = 250.0,
                       n_drift_steps: int = 9,
                       min_peak_ratio: float = 2.0) -> List[StreamHypothesis]:
    """Low-SNR stream search by folding the analog differential energy.

    Section 3.2's eye pattern in its original analog form: the
    squared differential sweep ``|dS(t)|^2`` is summed at every offset
    modulo each candidate period, so a stream whose individual edges
    are below the detection threshold still accumulates a visible fold
    peak.  A small grid of period corrections absorbs tag clock drift
    (which would otherwise smear the peak over many bins).

    Returns hypotheses with empty ``edge_indices``; the caller builds
    the stream track directly from (offset, period).
    """
    energy = np.asarray(diff_energy, dtype=np.float64)
    if energy.ndim != 1 or energy.size == 0:
        raise ConfigurationError("diff_energy must be a non-empty 1-D "
                                 "array")
    if n_drift_steps < 1:
        raise ConfigurationError("need at least one drift step")
    hypotheses: List[StreamHypothesis] = []
    t = np.arange(energy.size, dtype=np.float64)
    drifts = np.linspace(-max_drift_ppm, max_drift_ppm, n_drift_steps) \
        * 1e-6
    # Smooth over an edge width so the peak is stable.  The kernel is
    # the same for every (period, drift); build it exactly once.
    kernel = np.ones(constants.EDGE_WIDTH_SAMPLES) \
        / constants.EDGE_WIDTH_SAMPLES
    for period in sorted(set(candidate_periods)):
        if period <= 0:
            raise ConfigurationError("candidate periods must be positive")
        if energy.size < 4 * period:
            continue  # need a few folds for any averaging gain
        p_all = period * (1.0 + drifts)
        n_bins_all = np.round(p_all).astype(np.int64)
        # Scores for every drift, computed as one batched refold per
        # unique bin count (the ±ppm corrections nearly always share a
        # single bin count, so this is one refold per period in
        # practice instead of one per drift).
        ratios = np.empty(p_all.size, dtype=np.float64)
        peaks = np.empty(p_all.size, dtype=np.int64)
        for n_bins in np.unique(n_bins_all):
            rows = np.flatnonzero(n_bins_all == n_bins)
            smooth = _batched_fold_rows(energy, t, p_all[rows],
                                        int(n_bins), kernel)
            peaks[rows] = np.argmax(smooth, axis=1)
            peak_vals = smooth[np.arange(rows.size), peaks[rows]]
            medians = np.maximum(np.median(smooth, axis=1), 1e-30)
            ratios[rows] = peak_vals / medians
        best_row = int(np.argmax(ratios))
        if ratios[best_row] < min_peak_ratio:
            continue
        hypotheses.append(StreamHypothesis(
            offset_samples=float(peaks[best_row]),
            period_samples=float(p_all[best_row]),
            score=float(ratios[best_row]),
            edge_indices=[]))
    return hypotheses


def _batched_fold_rows(energy: np.ndarray, t: np.ndarray,
                       periods: np.ndarray, n_bins: int,
                       kernel: np.ndarray) -> np.ndarray:
    """Fold ``energy`` modulo each period at once; smoothed (D, n_bins).

    Each row is the per-bin mean of the analog differential energy
    folded at one drift-corrected period, smoothed circularly over an
    edge width — the inner loop body of :func:`analog_fold_search`,
    batched across the whole drift grid with a single ``bincount``.
    """
    n_rows = periods.size
    bins = np.mod(t[None, :], periods[:, None]).astype(np.int64)
    np.minimum(bins, n_bins - 1, out=bins)
    bins += (np.arange(n_rows) * n_bins)[:, None]
    flat = bins.ravel()
    weights = np.broadcast_to(energy, (n_rows, energy.size)).ravel()
    total = n_rows * n_bins
    folded = np.bincount(flat, weights=weights, minlength=total)
    counts = np.maximum(np.bincount(flat, minlength=total), 1)
    folded = (folded / counts).reshape(n_rows, n_bins)
    # Two-sample circular pad + "same" convolution, trimmed back —
    # identical alignment to the serial np.convolve formulation.
    padded = np.concatenate([folded[:, -2:], folded, folded[:, :2]],
                            axis=1)
    return _convolve_same_rows(padded, kernel)[:, 2:-2]


def _convolve_same_rows(x: np.ndarray, kernel: np.ndarray) -> np.ndarray:
    """Row-wise ``np.convolve(row, kernel, mode="same")`` for 2-D ``x``."""
    k = kernel.size
    if k == 1:
        return x * kernel[0]
    padded = np.pad(x, ((0, 0), (k - 1, k - 1)))
    windows = np.lib.stride_tricks.sliding_window_view(padded, k, axis=1)
    full = windows @ kernel[::-1]
    start = (k - 1) // 2
    return full[:, start:start + x.shape[1]]
