"""Pluggable numeric kernel backends for the decode pipeline.

The pipeline's arithmetic hot spots (Lloyd iterations, lattice
matching, edge-differential extraction, Viterbi) dispatch through a
:class:`~repro.core.kernels.base.KernelBackend`.  Two implementations
ship:

* ``"reference"`` — pure numpy, bit-identical to the decoder's
  original code paths (pinned by the golden digests);
* ``"numba"`` — the same kernels JIT-compiled, requiring the optional
  ``[jit]`` extra; numerically equivalent (property-tested).

Selection precedence, first match wins:

1. an explicit name passed by the caller (``LFDecoderConfig.
   kernel_backend``, or directly to :func:`resolve_backend`);
2. the ``REPRO_KERNEL_BACKEND`` environment variable;
3. the default, ``"reference"``.

``"auto"`` picks numba when importable, else reference, silently.
Requesting ``"numba"`` explicitly when numba is missing warns once per
process and degrades to the reference backend — never an import error.
"""

from __future__ import annotations

import os
import warnings
from typing import Dict, Optional, Tuple

from ...errors import ConfigurationError
from .base import KernelBackend
from .reference import ReferenceBackend

__all__ = [
    "KernelBackend",
    "ReferenceBackend",
    "ENV_VAR",
    "DEFAULT_BACKEND",
    "available_backends",
    "resolve_backend",
    "get_backend",
]

#: Environment variable consulted when no explicit backend is given.
ENV_VAR = "REPRO_KERNEL_BACKEND"

#: Backend used when neither the caller nor the environment chooses.
DEFAULT_BACKEND = "reference"

#: Constructed backends, one per name — warm-up (JIT compilation) runs
#: once per process, not once per decoder.
_instances: Dict[str, KernelBackend] = {}

_warned_numba_missing = False


def _numba_importable() -> bool:
    import importlib.util

    return importlib.util.find_spec("numba") is not None


def available_backends() -> Tuple[str, ...]:
    """Backend names constructible in this environment."""
    names = ["reference"]
    if _numba_importable():
        names.append("numba")
    return tuple(names)


def _build_numba() -> Optional[KernelBackend]:
    """Construct the numba backend, or None (warning once) without it."""
    global _warned_numba_missing
    try:
        from .numba_backend import NumbaBackend

        return NumbaBackend()
    except ImportError:
        if not _warned_numba_missing:
            _warned_numba_missing = True
            warnings.warn(
                "REPRO kernel backend 'numba' requested but numba is "
                "not installed; falling back to the pure-numpy "
                "reference backend (pip install 'repro-lf[jit]' to "
                "enable it)", RuntimeWarning, stacklevel=3)
        return None


def resolve_backend(name: Optional[str] = None) -> KernelBackend:
    """Resolve a backend by the documented precedence.

    ``name`` overrides everything; ``None`` falls back to the
    ``REPRO_KERNEL_BACKEND`` environment variable, then the default.
    Unknown names raise :class:`~repro.errors.ConfigurationError`; a
    missing numba degrades to the reference backend with one warning.
    """
    requested = name if name is not None else os.environ.get(ENV_VAR)
    requested = (requested or DEFAULT_BACKEND).strip().lower()
    if requested == "auto":
        requested = "numba" if _numba_importable() else "reference"
    if requested not in ("reference", "numba"):
        raise ConfigurationError(
            f"unknown kernel backend {requested!r}; expected "
            "'reference', 'numba' or 'auto'")
    cached = _instances.get(requested)
    if cached is not None:
        return cached
    if requested == "numba":
        backend = _build_numba()
        if backend is None:
            return resolve_backend("reference")
    else:
        backend = ReferenceBackend()
    _instances[requested] = backend
    return backend


def get_backend() -> KernelBackend:
    """The process-default backend (environment-driven precedence)."""
    return resolve_backend(None)
