"""Loop-form kernel bodies for the numba backend.

Each function here is the scalar-loop formulation of one reference
kernel, written in the numba-``njit``-supported subset of Python — but
the module itself imports *nothing* beyond numpy and math, so the
bodies run (slowly) as plain Python too.  That keeps the logic
property-testable against the reference backend even on machines
without numba; the CI numba matrix job additionally exercises the
compiled forms.

Equivalence contract (see ``tests/property/test_kernel_equivalence``):
labels, states, picks and differentials are exactly equal to the
reference kernels; accumulated floats (inertias, match errors) may
differ by summation order only (numpy reduces pairwise, a scalar loop
reduces left-to-right).
"""

from __future__ import annotations

import math

import numpy as np

_NEG_INF = -1e30


def lloyd_batched(pts, cents, max_iter, tol):
    """Loop form of :func:`repro.core.kernels.reference.lloyd_batched`.

    Returns ``(best_centroids, labels, inertia)``; ``cents`` is not
    mutated.  Per-restart trajectories mirror the reference exactly:
    first-minimum label ties, empty clusters reseeded at the restart's
    worst-fit point (first maximum on ties), converged restarts frozen.
    """
    n = pts.shape[0]
    n_init = cents.shape[0]
    k = cents.shape[1]
    work = cents.copy()
    active = np.ones(n_init, dtype=np.bool_)
    counts = np.empty(k, dtype=np.int64)
    sums = np.empty(k, dtype=np.complex128)

    for _ in range(max_iter):
        any_active = False
        for r in range(n_init):
            if not active[r]:
                continue
            any_active = True
            for j in range(k):
                counts[j] = 0
                sums[j] = 0.0 + 0.0j
            worst_i = 0
            worst_d = -1.0
            for i in range(n):
                best_j = 0
                best_d = np.inf
                for j in range(k):
                    dr = pts[i].real - work[r, j].real
                    di = pts[i].imag - work[r, j].imag
                    d = dr * dr + di * di
                    if d < best_d:
                        best_d = d
                        best_j = j
                counts[best_j] += 1
                sums[best_j] += pts[i]
                if best_d > worst_d:
                    worst_d = best_d
                    worst_i = i
            moved = 0.0
            for j in range(k):
                if counts[j] > 0:
                    new = sums[j] / counts[j]
                else:
                    new = pts[worst_i]
                delta = abs(new - work[r, j])
                if delta > moved:
                    moved = delta
                work[r, j] = new
            if moved <= tol:
                active[r] = False
        if not any_active:
            break

    best_r = 0
    best_inertia = np.inf
    for r in range(n_init):
        inertia = 0.0
        for i in range(n):
            best_d = np.inf
            for j in range(k):
                dr = pts[i].real - work[r, j].real
                di = pts[i].imag - work[r, j].imag
                d = dr * dr + di * di
                if d < best_d:
                    best_d = d
            inertia += best_d
        if inertia < best_inertia:
            best_inertia = inertia
            best_r = r
    labels = np.empty(n, dtype=np.int64)
    for i in range(n):
        best_j = 0
        best_d = np.inf
        for j in range(k):
            dr = pts[i].real - work[best_r, j].real
            di = pts[i].imag - work[best_r, j].imag
            d = dr * dr + di * di
            if d < best_d:
                best_d = d
                best_j = j
        labels[i] = best_j
    return work[best_r].copy(), labels, best_inertia


def bounded_lloyd(pts, cents, max_iter, tol):
    """Single-restart Lloyd — the bounded kernel's JIT counterpart.

    The Hamerly bounds in the reference backend only prune numpy
    distance work; a compiled plain iteration follows the identical
    assignment trajectory (the bounded form is property-tested
    bit-identical to it), so the JIT backend just runs
    :func:`lloyd_batched` with one restart.
    """
    work = cents.reshape(1, cents.shape[0])
    return lloyd_batched(pts, work, max_iter, tol)


def lattice_match_errors(cents, lattices):
    """Loop form of the greedy centroid<->lattice matching error.

    For each lattice point in column order, takes the nearest
    unassigned centroid (first minimum in index order on ties) and
    accumulates the distance; returns per-lattice means.
    """
    n = cents.shape[0]
    n_lat = lattices.shape[0]
    m = lattices.shape[1]
    out = np.empty(n_lat, dtype=np.float64)
    used = np.empty(n, dtype=np.bool_)
    for p in range(n_lat):
        for i in range(n):
            used[i] = False
        total = 0.0
        for j in range(m):
            best_i = -1
            best_d = np.inf
            for i in range(n):
                if used[i]:
                    continue
                dr = cents[i].real - lattices[p, j].real
                di = cents[i].imag - lattices[p, j].imag
                d = math.hypot(dr, di)
                if d < best_d:
                    best_d = d
                    best_i = i
            if best_i >= 0:
                used[best_i] = True
                total += best_d
            else:
                # More lattice points than centroids: the reference's
                # masked argmin accumulates inf for the overflow.
                total += np.inf
        out[p] = total / m
    return out


def edge_differentials(csum, lo_b, hi_b, lo_a, hi_a):
    """Loop form of the prefix-sum windowed differential gather."""
    n = lo_b.shape[0]
    out = np.empty(n, dtype=np.complex128)
    for i in range(n):
        before = (csum[hi_b[i]] - csum[lo_b[i]]) / (hi_b[i] - lo_b[i])
        after = (csum[hi_a[i]] - csum[lo_a[i]]) / (hi_a[i] - lo_a[i])
        out[i] = after - before
    return out


def viterbi_exact(obs, sigma, log_flip, log_hold, initial_state):
    """Loop form of the exact four-state Viterbi recursion.

    Emissions are computed per step with the same scalar expression
    the reference evaluates vectorized (``z*z`` products, not
    ``pow``), so scores — and therefore the argmax path — are
    bit-identical.
    """
    n = obs.shape[0]
    const = -math.log(sigma) - 0.5 * math.log(2.0 * math.pi)
    inv = 1.0 / sigma

    if initial_state < 0:
        log_half = math.log(0.5)
        i0, i1, i2, i3 = log_half, _NEG_INF, _NEG_INF, log_half
    else:
        i0 = i1 = i2 = i3 = _NEG_INF
        if initial_state == 0:
            i0 = 0.0
        elif initial_state == 1:
            i1 = 0.0
        elif initial_state == 2:
            i2 = 0.0
        else:
            i3 = 0.0
    z = (obs[0] - 1.0) * inv
    s0 = i0 + (-0.5 * (z * z) + const)
    z = (obs[0] + 1.0) * inv
    s1 = i1 + (-0.5 * (z * z) + const)
    z = obs[0] * inv
    e0 = -0.5 * (z * z) + const
    s2 = i2 + e0
    s3 = i3 + e0

    backptr = np.empty((n, 4), dtype=np.int8)
    for j in range(4):
        backptr[0, j] = 0
    for t in range(1, n):
        if s1 >= s3:          # -> RISE: from FALL or HOLD_LOW
            n0 = s1 + log_flip
            backptr[t, 0] = 1
        else:
            n0 = s3 + log_flip
            backptr[t, 0] = 3
        if s0 >= s2:          # -> FALL: from RISE or HOLD_HIGH
            n1 = s0 + log_flip
            backptr[t, 1] = 0
            n2 = s0 + log_hold
            backptr[t, 2] = 0
        else:
            n1 = s2 + log_flip
            backptr[t, 1] = 2
            n2 = s2 + log_hold
            backptr[t, 2] = 2
        if s1 >= s3:          # -> HOLD_LOW: from FALL or HOLD_LOW
            n3 = s1 + log_hold
            backptr[t, 3] = 1
        else:
            n3 = s3 + log_hold
            backptr[t, 3] = 3
        z = (obs[t] - 1.0) * inv
        s0 = n0 + (-0.5 * (z * z) + const)
        z = (obs[t] + 1.0) * inv
        s1 = n1 + (-0.5 * (z * z) + const)
        z = obs[t] * inv
        e0 = -0.5 * (z * z) + const
        s2 = n2 + e0
        s3 = n3 + e0

    state = 0
    best = s0
    if s1 > best:
        state = 1
        best = s1
    if s2 > best:
        state = 2
        best = s2
    if s3 > best:
        state = 3
        best = s3
    states = np.empty(n, dtype=np.int8)
    states[n - 1] = state
    for t in range(n - 1, 0, -1):
        state = backptr[t, state]
        states[t - 1] = state
    return states


def viterbi_banded(obs, band, start_high, required_first):
    """Loop form of the banded-Viterbi certificate check.

    Returns ``(ok, states)``; ``states`` is meaningful only when
    ``ok``.  The band check excludes observations at exactly 0.5 from
    zero, so the simple comparisons below reproduce ``rint``'s
    round-half-even thresholding.
    """
    n = obs.shape[0]
    states = np.empty(n, dtype=np.int8)
    high = start_high
    for t in range(n):
        a = abs(obs[t])
        if abs(a - 0.5) <= band:
            return False, states
        if obs[t] > 0.5:
            if high:          # a rise needs a low entering level
                return False, states
            states[t] = 0     # RISE
            high = True
        elif obs[t] < -0.5:
            if not high:      # a fall needs a high entering level
                return False, states
            states[t] = 1     # FALL
            high = False
        else:
            states[t] = 2 if high else 3   # HOLD_HIGH / HOLD_LOW
    if required_first >= 0 and states[0] != required_first:
        return False, states
    return True, states
