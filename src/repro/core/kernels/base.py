"""The :class:`KernelBackend` protocol — the decoder's compute seam.

The decode pipeline's arithmetic hot spots are a handful of tight
numeric kernels: the batched/bounded Lloyd iterations behind every
k-means fit, the greedy centroid<->lattice matching of the collision
separator, the prefix-sum gather that extracts edge differentials, and
the four-state Viterbi recursion.  Everything else in the pipeline is
orchestration.  This module names those kernels as a protocol so the
orchestration code can stay backend-agnostic: the pure-numpy
:class:`~repro.core.kernels.reference.ReferenceBackend` is the
bit-exact reference (pinned by the golden digests), and the optional
:class:`~repro.core.kernels.numba_backend.NumbaBackend` JIT-compiles
the same kernel bodies for throughput.

Kernels take and return plain ``numpy`` arrays — no dataclasses, no
pipeline types — so a backend implementation never needs anything
above this package in the import graph (``tools/check_import_cycles``
enforces that).
"""

from __future__ import annotations

from typing import Optional, Protocol, Tuple, runtime_checkable

import numpy as np


@runtime_checkable
class KernelBackend(Protocol):
    """Numeric kernels the decode pipeline dispatches to.

    Implementations must be *numerically equivalent* to the reference
    backend: identical labels, states and differentials, with floating
    sums (inertias, match errors) allowed to differ only by summation
    order (a few ulp).  The reference backend itself is the bit-exact
    definition of the decoder's output.
    """

    #: Short identifier (``"reference"``, ``"numba"``) recorded in
    #: benchmark JSON and selectable via ``REPRO_KERNEL_BACKEND``.
    name: str

    def warm_up(self) -> None:
        """Pay one-time costs (JIT compilation) up front.

        Called at backend construction so stage timings never include
        compilation.  The reference backend's warm-up is a no-op.
        """

    def lloyd_batched(self, pts: np.ndarray, cents: np.ndarray,
                      max_iter: int = 100, tol: float = 1e-10
                      ) -> Tuple[np.ndarray, np.ndarray, float]:
        """Lloyd iteration over a stack of restarts; best restart wins.

        ``pts`` is complex (n,), ``cents`` a complex (R, k) stack of
        initial centroids (one row per restart).  Returns the winning
        restart's ``(centroids (k,), labels (n,), inertia)``.  The
        input ``cents`` is not mutated.
        """
        ...

    def bounded_lloyd(self, pts: np.ndarray, cents: np.ndarray,
                      max_iter: int = 100, tol: float = 1e-10
                      ) -> Tuple[np.ndarray, np.ndarray, float]:
        """Single-restart Lloyd from ``cents`` (complex (k,)).

        Follows the exact assignment trajectory of ``lloyd_batched``
        with one restart; backends may prune distance computations
        (Hamerly bounds) but must return the identical fit.
        """
        ...

    def lattice_match_errors(self, cents: np.ndarray,
                             lattices: np.ndarray) -> np.ndarray:
        """Greedy matching error of ``cents`` against many lattices.

        ``cents`` is complex (n,), ``lattices`` complex (P, m); returns
        (P,) mean matching distances.  The greedy assignment takes, for
        each lattice point in column order, the nearest *unassigned*
        centroid (first minimum in index order on ties).
        """
        ...

    def edge_differentials(self, csum: np.ndarray,
                           lo_b: np.ndarray, hi_b: np.ndarray,
                           lo_a: np.ndarray, hi_a: np.ndarray
                           ) -> np.ndarray:
        """Windowed IQ differentials from a complex prefix sum.

        For each position ``i``:
        ``mean(csum[lo_a[i]:hi_a[i]]) - mean(csum[lo_b[i]:hi_b[i]])``
        where the mean of a prefix-sum window ``[lo, hi)`` is
        ``(csum[hi] - csum[lo]) / (hi - lo)``.  All windows must be
        non-empty (``hi > lo``); the caller's bounds-planning handles
        degenerate windows.  This is the kernel the SoA-batched
        extraction funnels *every* stream's grid slots through.
        """
        ...

    def viterbi_exact(self, obs: np.ndarray, sigma: float,
                      log_flip: float, log_hold: float,
                      initial_state: int = -1) -> np.ndarray:
        """Exact four-state Viterbi over projected observations.

        ``obs`` is float (T,); ``initial_state`` pins the first state
        (0..3) or is -1 to share the prior between RISE and HOLD_LOW.
        Returns the int8 state path.  Ties prefer the lower-numbered
        predecessor.
        """
        ...

    def viterbi_banded(self, obs: np.ndarray, band: float,
                       start_high: bool, required_first: int = -1
                       ) -> Optional[np.ndarray]:
        """Thresholded state path when provably Viterbi-optimal.

        Certifies the banded fast path: every observation must clear
        the decision band (``| |obs| - 0.5 | > band``) and the
        thresholded path must be trellis-valid from the entering level
        ``start_high``; ``required_first`` (0..3, or -1 for no pin)
        additionally requires that exact first state.  Returns the
        int8 state path, or None when optimality cannot be certified
        (the caller falls back to :meth:`viterbi_exact`).
        """
        ...
