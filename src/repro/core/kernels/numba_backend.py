"""Optional numba-JIT kernel backend.

Compiles the loop-form kernel bodies of
:mod:`repro.core.kernels._jit_impl` with ``numba.njit``.  numba is
imported lazily inside :class:`NumbaBackend` — importing *this module*
never requires it, and backend selection
(:func:`repro.core.kernels.resolve_backend`) catches the
``ImportError`` to fall back to the reference backend with a warning.

Compilation happens once, at backend construction (:meth:`warm_up`
runs every kernel on tiny representative inputs), so stage timings
never include JIT compile time.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from . import _jit_impl


class NumbaBackend:
    """JIT-compiled :class:`~repro.core.kernels.base.KernelBackend`.

    Raises ``ImportError`` at construction when numba is missing; the
    selection layer turns that into a warn-once reference fallback.
    """

    name = "numba"

    def __init__(self, warm: bool = True):
        import numba

        self.numba_version: str = numba.__version__
        jit = numba.njit(cache=True, fastmath=False, nogil=True)
        self._lloyd_batched = jit(_jit_impl.lloyd_batched)
        self._bounded_lloyd = jit(_jit_impl.bounded_lloyd)
        self._lattice_match_errors = jit(_jit_impl.lattice_match_errors)
        self._edge_differentials = jit(_jit_impl.edge_differentials)
        self._viterbi_exact = jit(_jit_impl.viterbi_exact)
        self._viterbi_banded = jit(_jit_impl.viterbi_banded)
        if warm:
            self.warm_up()

    def warm_up(self) -> None:
        """Compile every kernel now, on tiny representative inputs."""
        pts = np.array([0j, 1 + 0j, 0 + 1j, 1 + 1j], dtype=np.complex128)
        cents = np.array([[0j, 1 + 1j]], dtype=np.complex128)
        self._lloyd_batched(pts, cents, 2, 1e-10)
        self._bounded_lloyd(pts, cents[0], 2, 1e-10)
        self._lattice_match_errors(pts, pts.reshape(2, 2))
        csum = np.cumsum(np.concatenate(([0j], pts)))
        idx = np.array([0, 1], dtype=np.int64)
        self._edge_differentials(csum, idx, idx + 1, idx + 2, idx + 3)
        obs = np.array([1.0, -1.0, 0.0])
        self._viterbi_exact(obs, 0.3, -0.7, -0.7, -1)
        self._viterbi_banded(obs, 0.01, False, -1)

    def lloyd_batched(self, pts: np.ndarray, cents: np.ndarray,
                      max_iter: int = 100, tol: float = 1e-10
                      ) -> Tuple[np.ndarray, np.ndarray, float]:
        c, labels, inertia = self._lloyd_batched(
            np.ascontiguousarray(pts, dtype=np.complex128),
            np.ascontiguousarray(cents, dtype=np.complex128),
            max_iter, tol)
        return c, labels, float(inertia)

    def bounded_lloyd(self, pts: np.ndarray, cents: np.ndarray,
                      max_iter: int = 100, tol: float = 1e-10
                      ) -> Tuple[np.ndarray, np.ndarray, float]:
        c, labels, inertia = self._bounded_lloyd(
            np.ascontiguousarray(pts, dtype=np.complex128),
            np.ascontiguousarray(cents, dtype=np.complex128),
            max_iter, tol)
        return c, labels, float(inertia)

    def lattice_match_errors(self, cents: np.ndarray,
                             lattices: np.ndarray) -> np.ndarray:
        return self._lattice_match_errors(
            np.ascontiguousarray(cents, dtype=np.complex128),
            np.ascontiguousarray(lattices, dtype=np.complex128))

    def edge_differentials(self, csum: np.ndarray,
                           lo_b: np.ndarray, hi_b: np.ndarray,
                           lo_a: np.ndarray, hi_a: np.ndarray
                           ) -> np.ndarray:
        return self._edge_differentials(
            np.ascontiguousarray(csum, dtype=np.complex128),
            np.ascontiguousarray(lo_b, dtype=np.int64),
            np.ascontiguousarray(hi_b, dtype=np.int64),
            np.ascontiguousarray(lo_a, dtype=np.int64),
            np.ascontiguousarray(hi_a, dtype=np.int64))

    def viterbi_exact(self, obs: np.ndarray, sigma: float,
                      log_flip: float, log_hold: float,
                      initial_state: int = -1) -> np.ndarray:
        return self._viterbi_exact(
            np.ascontiguousarray(obs, dtype=np.float64),
            float(sigma), float(log_flip), float(log_hold),
            int(initial_state))

    def viterbi_banded(self, obs: np.ndarray, band: float,
                       start_high: bool, required_first: int = -1
                       ) -> Optional[np.ndarray]:
        ok, states = self._viterbi_banded(
            np.ascontiguousarray(obs, dtype=np.float64),
            float(band), bool(start_high), int(required_first))
        return states if ok else None
