"""Pure-numpy reference implementations of the decode kernels.

These are the decoder's original hot-path code, moved verbatim out of
``clustering.py`` / ``separation.py`` / ``edges.py`` / ``viterbi.py``
so they sit behind the :class:`~repro.core.kernels.base.KernelBackend`
seam.  Every operation and its order is preserved, so a decode through
this backend is bit-identical to the pre-kernel pipeline — the golden
SHA-256 digests in ``tests/golden/`` pin exactly that.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

RISE, FALL, HOLD_HIGH, HOLD_LOW = 0, 1, 2, 3

_NEG_INF = -1e30


def lloyd_batched(pts: np.ndarray, cents: np.ndarray,
                  max_iter: int = 100,
                  tol: float = 1e-10
                  ) -> Tuple[np.ndarray, np.ndarray, float]:
    """Batched Lloyd iteration over a stack of restarts.

    All restarts run as one batched Lloyd iteration: centroids are an
    (R, k) stack, distances an (R, n, k) tensor, and the centroid
    update a single offset-bincount over every restart's labels.
    Each restart follows exactly the trajectory it would follow alone
    (converged restarts are frozen, not re-averaged), and the wall
    clock is set by the slowest restart instead of the sum of all of
    them.  The best restart by final inertia wins.
    """
    n = pts.size
    n_init, k = cents.shape
    cents = cents.copy()
    pr, pi = pts.real, pts.imag
    offsets = (np.arange(n_init) * k)[:, None]
    pr_tiled = np.broadcast_to(pr, (n_init, n)).ravel()
    pi_tiled = np.broadcast_to(pi, (n_init, n)).ravel()

    def _dist2(c: np.ndarray) -> np.ndarray:
        # In-place squares/add: same values as the textbook
        # ``(dr ** 2 + di ** 2)`` with two fewer temporaries.
        dr = pr[None, :, None] - c.real[:, None, :]
        di = pi[None, :, None] - c.imag[:, None, :]
        dr *= dr
        di *= di
        dr += di
        return dr

    # Restarts drop out of the iteration as they converge, so late
    # iterations only pay for the rows still moving.
    act = np.arange(n_init)
    for _ in range(max_iter):
        # Avoid the gather copy while every restart is still active.
        c = cents if act.size == n_init else cents[act]
        a = act.size
        dist2 = _dist2(c)
        flat = (np.argmin(dist2, axis=2) + offsets[:a]).ravel()
        total = a * k
        counts = np.bincount(flat, minlength=total).reshape(a, k)
        sums = (np.bincount(flat, weights=pr_tiled[:a * n],
                            minlength=total)
                + 1j * np.bincount(flat, weights=pi_tiled[:a * n],
                                   minlength=total)).reshape(a, k)
        # Empty clusters are re-seeded below at the restart's
        # worst-fit point, overwriting every zero-count entry — the
        # 0/1 placeholder the plain division leaves there never
        # survives, so no masked fallback is needed.
        new_c = sums / np.maximum(counts, 1)
        empty_rows = np.flatnonzero((counts == 0).any(axis=1))
        if empty_rows.size:
            worst = np.argmax(np.min(dist2, axis=2), axis=1)
            for r in empty_rows:
                new_c[r, counts[r] == 0] = pts[worst[r]]
        moved = np.max(np.abs(new_c - c), axis=1)
        cents[act] = new_c
        act = act[moved > tol]
        if act.size == 0:
            break

    dist2 = _dist2(cents)
    per_restart = np.min(dist2, axis=2)
    inertias = per_restart.sum(axis=1)
    best_r = int(np.argmin(inertias))
    labels = np.argmin(dist2[best_r], axis=1)
    return cents[best_r], labels, float(inertias[best_r])


def bounded_lloyd(pts: np.ndarray, cents: np.ndarray,
                  max_iter: int = 100, tol: float = 1e-10
                  ) -> Tuple[np.ndarray, np.ndarray, float]:
    """Single-restart Lloyd iteration with Hamerly distance bounds.

    Follows the exact assignment trajectory of the brute-force
    iteration (:func:`lloyd_batched` with one restart) but maintains
    per-point bounds — an upper bound on the distance to the assigned
    centroid and a lower bound on the distance to every other — so most
    points skip the full distance computation on most iterations.  A
    point's exact distances are recomputed only when the bounds cross
    (``upper >= lower``, inclusive so argmin first-index tie-breaking
    matches the reference), which restores the invariant that every
    point is labelled by true nearest centroid.  Centroid updates,
    empty-cluster reseeding, the convergence test and the final
    assignment reuse the brute-force formulas verbatim, so the returned
    fit is bit-identical to the brute-force warm restart.
    """
    k = cents.size
    cents = cents.copy()
    pr, pi = pts.real, pts.imag

    def _full_dist2(c: np.ndarray) -> np.ndarray:
        return ((pr[:, None] - c.real[None, :]) ** 2
                + (pi[:, None] - c.imag[None, :]) ** 2)

    dist2 = _full_dist2(cents)
    labels = np.argmin(dist2, axis=1)
    if k == 1:
        part = np.sqrt(dist2[:, 0])
        upper = part
        lower = np.full(pts.size, np.inf)
    else:
        part = np.sqrt(np.partition(dist2, 1, axis=1))
        upper = part[:, 0].copy()
        lower = part[:, 1].copy()

    for _ in range(max_iter):
        counts = np.bincount(labels, minlength=k)
        sums = (np.bincount(labels, weights=pr, minlength=k)
                + 1j * np.bincount(labels, weights=pi, minlength=k))
        new_c = np.where(counts > 0, sums / np.maximum(counts, 1), cents)
        if (counts == 0).any():
            # Mirror the reference reseed: empty clusters jump to the
            # worst-fit point, measured against the pre-update
            # centroids.  Bounds are rebuilt from scratch afterwards.
            d2 = _full_dist2(cents)
            worst = int(np.argmax(np.min(d2, axis=1)))
            new_c[counts == 0] = pts[worst]
            shift = np.abs(new_c - cents)
            cents = new_c
            if shift.max() <= tol:
                break
            d2 = _full_dist2(cents)
            labels = np.argmin(d2, axis=1)
            part = np.sqrt(np.partition(d2, 1, axis=1))
            upper = part[:, 0].copy()
            lower = part[:, 1].copy()
            continue
        shift = np.abs(new_c - cents)
        cents = new_c
        if shift.max() <= tol:
            break
        # Bound maintenance: the assigned centroid moved by
        # shift[label] (upper grows by at most that), every other
        # centroid by at most shift.max() (lower shrinks by at most
        # that).
        upper += shift[labels]
        lower -= shift.max()
        loose = np.flatnonzero(upper >= lower)
        if loose.size:
            # First tighten the upper bound to the exact distance to
            # the assigned centroid — often enough to prune.
            lab = labels[loose]
            d_lab = np.abs(pts[loose] - cents[lab])
            upper[loose] = d_lab
            stale = loose[d_lab >= lower[loose]]
            if stale.size:
                d2s = ((pr[stale, None] - cents.real[None, :]) ** 2
                       + (pi[stale, None] - cents.imag[None, :]) ** 2)
                labels[stale] = np.argmin(d2s, axis=1)
                parts = np.sqrt(np.partition(d2s, 1, axis=1))
                upper[stale] = parts[:, 0]
                lower[stale] = parts[:, 1]

    dist2 = _full_dist2(cents)
    labels = np.argmin(dist2, axis=1)
    inertia = float(np.min(dist2, axis=1).sum())
    return cents, labels, inertia


def lattice_match_errors(cents: np.ndarray,
                         lattices: np.ndarray) -> np.ndarray:
    """Greedy matching error of ``cents`` against many lattices at once.

    ``lattices`` is (P, m); the return is (P,) mean matching distances.
    The greedy pass runs its m assignment steps *across every lattice
    simultaneously* — the per-step argmin over centroids is a single
    (P, n) reduction — and keeps the serial tie-break (first remaining
    centroid in index order wins, because ``argmin`` returns the first
    minimum).
    """
    n_lat, m = lattices.shape
    dist = np.abs(cents[None, :, None] - lattices[:, None, :])
    rows = np.arange(n_lat)
    total = np.zeros(n_lat, dtype=np.float64)
    for j in range(m):
        picks = np.argmin(dist[:, :, j], axis=1)
        total += dist[rows, picks, j]
        dist[rows, picks, :] = np.inf
    return total / m


def edge_differentials(csum: np.ndarray,
                       lo_b: np.ndarray, hi_b: np.ndarray,
                       lo_a: np.ndarray, hi_a: np.ndarray
                       ) -> np.ndarray:
    """Prefix-sum gather of windowed before/after means."""
    before = (csum[hi_b] - csum[lo_b]) / (hi_b - lo_b)
    after = (csum[hi_a] - csum[lo_a]) / (hi_a - lo_a)
    return np.asarray(after - before, dtype=np.complex128)


def viterbi_exact(obs: np.ndarray, sigma: float,
                  log_flip: float, log_hold: float,
                  initial_state: int = -1) -> np.ndarray:
    """Exact four-state Viterbi recursion (scalar trellis).

    The trellis is tiny (4 states, each with exactly two valid
    predecessors), so a scalar Python recursion beats building a
    (4, 4) candidate matrix per step by an order of magnitude.
    Emissions are still computed vectorized; HOLD_HIGH/HOLD_LOW
    share the zero-mean emission.
    """
    const = -math.log(sigma) - 0.5 * math.log(2.0 * math.pi)
    inv = 1.0 / sigma
    e_plus = (-0.5 * ((obs - 1.0) * inv) ** 2 + const).tolist()
    e_minus = (-0.5 * ((obs + 1.0) * inv) ** 2 + const).tolist()
    e_zero = (-0.5 * (obs * inv) ** 2 + const).tolist()

    if initial_state < 0:
        log_half = math.log(0.5)
        init = [log_half, _NEG_INF, _NEG_INF, log_half]
    else:
        init = [_NEG_INF] * 4
        init[initial_state] = 0.0
    s0 = init[RISE] + e_plus[0]
    s1 = init[FALL] + e_minus[0]
    s2 = init[HOLD_HIGH] + e_zero[0]
    s3 = init[HOLD_LOW] + e_zero[0]

    lf = log_flip
    lh = log_hold
    backptr = [(0, 0, 0, 0)]
    for t in range(1, obs.size):
        # Ties prefer the lower-numbered predecessor, matching the
        # dense argmax of the reference formulation.
        if s1 >= s3:          # -> RISE: from FALL or HOLD_LOW
            n0, b0 = s1 + lf, FALL
        else:
            n0, b0 = s3 + lf, HOLD_LOW
        if s0 >= s2:          # -> FALL: from RISE or HOLD_HIGH
            n1, b1 = s0 + lf, RISE
        else:
            n1, b1 = s2 + lf, HOLD_HIGH
        if s0 >= s2:          # -> HOLD_HIGH: from RISE or HOLD_HIGH
            n2, b2 = s0 + lh, RISE
        else:
            n2, b2 = s2 + lh, HOLD_HIGH
        if s1 >= s3:          # -> HOLD_LOW: from FALL or HOLD_LOW
            n3, b3 = s1 + lh, FALL
        else:
            n3, b3 = s3 + lh, HOLD_LOW
        backptr.append((b0, b1, b2, b3))
        s0 = n0 + e_plus[t]
        s1 = n1 + e_minus[t]
        s2 = n2 + e_zero[t]
        s3 = n3 + e_zero[t]

    finals = (s0, s1, s2, s3)
    state = finals.index(max(finals))
    states = np.empty(obs.size, dtype=np.int8)
    states[-1] = state
    for t in range(obs.size - 1, 0, -1):
        state = backptr[t][state]
        states[t - 1] = state
    return states


def viterbi_banded(obs: np.ndarray, band: float,
                   start_high: bool, required_first: int = -1
                   ) -> Optional[np.ndarray]:
    """Thresholded state path when it is provably Viterbi-optimal.

    Returns None when optimality cannot be certified (the exact
    recursion must run).  See
    :meth:`repro.core.viterbi.ViterbiDecoder._decode_states_banded`
    for the certificate's derivation; ``band`` already includes the
    caller's safety margin.
    """
    if np.any(np.abs(np.abs(obs) - 0.5) <= band):
        return None

    m = np.clip(np.rint(obs), -1, 1).astype(np.int8)
    n = obs.size
    # Level after each slot: forward-fill from the latest edge.
    edge_pos = np.where(m != 0, np.arange(n), -1)
    last_edge = np.maximum.accumulate(edge_pos)
    level_after = np.where(last_edge >= 0,
                           m[np.maximum(last_edge, 0)] == 1,
                           start_high)
    entering = np.empty(n, dtype=bool)
    entering[0] = start_high
    entering[1:] = level_after[:-1]
    # Trellis validity: a rise needs a low entering level, a fall a
    # high one (holds match any level by construction).
    if np.any((m == 1) & entering) or np.any((m == -1) & ~entering):
        return None
    states = np.where(
        m == 1, RISE,
        np.where(m == -1, FALL,
                 np.where(entering, HOLD_HIGH,
                          HOLD_LOW))).astype(np.int8)
    if required_first >= 0 and states[0] != required_first:
        return None
    return states


class ReferenceBackend:
    """The pure-numpy :class:`KernelBackend` — bit-exact by definition."""

    name = "reference"

    def warm_up(self) -> None:
        """Nothing to compile."""

    lloyd_batched = staticmethod(lloyd_batched)
    bounded_lloyd = staticmethod(bounded_lloyd)
    lattice_match_errors = staticmethod(lattice_match_errors)
    edge_differentials = staticmethod(edge_differentials)
    viterbi_exact = staticmethod(viterbi_exact)
    viterbi_banded = staticmethod(viterbi_banded)
