"""Struct-of-arrays batching of ragged per-stream data.

The per-stream stages naturally produce *ragged* work: each stream
hypothesis has its own number of grid slots.  Calling a kernel once
per stream leaves most of the time in call overhead, so the epoch
driver packs every stream's arrays into padded struct-of-arrays
matrices — grouped by **length class** (the next power of two at or
above the row length, so padding waste is bounded by 2x and the
number of distinct matrix shapes stays logarithmic) — and services
all rows of a class with one kernel call over the raveled matrix.

Pad lanes are filled with caller-supplied safe values (e.g. a trivial
``[0, 1)`` prefix-sum window) so the kernel can process them blindly;
``SoABatch.mask`` marks the live lanes and :meth:`SoABatch.unpack`
slices each row's true-length result back out.  The property suite
checks that pad lanes never perturb live-lane results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np


def length_class(n: int) -> int:
    """The padded width bucket for a row of ``n`` elements (pow2)."""
    width = 1
    while width < n:
        width *= 2
    return width


@dataclass
class SoABatch:
    """One length class of packed rows.

    ``columns[c][r]`` is row ``rows[r]``'s c-th array padded to
    ``width``; ``mask[r, i]`` is True on live lanes.
    """

    width: int
    rows: List[int]
    lengths: np.ndarray            # (R,) true row lengths
    mask: np.ndarray               # (R, width) bool
    columns: Tuple[np.ndarray, ...]  # each (R, width)

    def unpack(self, flat: np.ndarray) -> Iterator[Tuple[int, np.ndarray]]:
        """Yield ``(row_index, row_result)`` from a raveled kernel result.

        ``flat`` is the kernel's output over ``columns[c].ravel()``
        inputs — shape (R * width,); each yielded row is the first
        ``lengths[r]`` lanes of its padded stripe.
        """
        per_row = flat.reshape(len(self.rows), self.width)
        for r, row_index in enumerate(self.rows):
            yield row_index, per_row[r, :int(self.lengths[r])]


def pack_ragged(rows: Sequence[Tuple[np.ndarray, ...]],
                pad_values: Sequence) -> List[SoABatch]:
    """Pack ragged rows of parallel arrays into length-class batches.

    ``rows[r]`` is a tuple of equal-length 1-D arrays (one per column);
    ``pad_values[c]`` fills column ``c``'s pad lanes.  Empty rows are
    dropped (there is nothing to compute for them).  Returns batches
    in ascending width order; row order within a batch follows the
    input order, so packing is deterministic.
    """
    by_class: Dict[int, List[int]] = {}
    for r, cols in enumerate(rows):
        n = int(cols[0].size)
        if n == 0:
            continue
        by_class.setdefault(length_class(n), []).append(r)

    batches: List[SoABatch] = []
    for width in sorted(by_class):
        members = by_class[width]
        n_rows = len(members)
        lengths = np.array([rows[r][0].size for r in members],
                           dtype=np.int64)
        mask = np.arange(width)[None, :] < lengths[:, None]
        columns = []
        for c, pad in enumerate(pad_values):
            col = np.full((n_rows, width), pad,
                          dtype=np.asarray(rows[members[0]][c]).dtype)
            for i, r in enumerate(members):
                col[i, :lengths[i]] = rows[r][c]
            columns.append(col)
        batches.append(SoABatch(width=width, rows=members,
                                lengths=lengths, mask=mask,
                                columns=tuple(columns)))
    return batches
