"""The end-to-end LF-Backscatter decoder (Section 3, Figure 3).

:class:`LFDecoder` turns one epoch's IQ trace into decoded per-tag bit
streams by chaining every stage of the paper's pipeline:

    edge detection -> eye-pattern stream separation -> grid differential
    extraction -> collision detection -> parallelogram separation ->
    Viterbi error correction -> anchor disambiguation.

The IQ-separation and error-correction stages can be disabled
independently to reproduce the ablation of Figure 9.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import constants
from ..errors import (CollisionUnresolvableError, ConfigurationError,
                      DecodeError, SignalQualityError)
from ..robustness.guard import GuardConfig, sanitize_trace
from ..types import (DecodedStream, DetectedEdge, EpochResult, IQTrace,
                     SimulationProfile, StreamFault)
from ..utils.rng import SeedLike, make_rng
from ..utils.timing import StageTimer
from .anchor import assemble_bits
from .clustering import KMeansResult, kmeans
from .collision import CollisionReport, detect_collision, \
    effective_planarity_threshold, scatter_planarity
from .edges import EdgeDetector, EdgeDetectorConfig
from .fidelity import FidelityPolicy
from .folding import (FoldingConfig, analog_fold_search,
                      find_stream_hypotheses,
                      find_stream_hypotheses_warm)
from .separation import (_lattice_points, separate_collinear,
                         separate_two_way)
from .session import CACHE_STAT_KEYS, SessionState, StreamTracker
from .streams import (StreamTrack, read_grid_differentials,
                      track_from_analog, track_stream)
from .viterbi import ViterbiDecoder


@dataclass
class LFDecoderConfig:
    """Configuration of the full decoding pipeline.

    ``candidate_bitrates_bps`` is the set of rates tags may use (all
    multiples of the base rate, Section 3.2); the reader knows this set
    by protocol, not by per-tag signalling.
    """

    candidate_bitrates_bps: Sequence[float] = (
        constants.DEFAULT_BITRATE_BPS,)
    profile: SimulationProfile = field(
        default_factory=SimulationProfile.paper)
    edge_config: Optional[EdgeDetectorConfig] = None
    folding_config: Optional[FoldingConfig] = None
    enable_iq_separation: bool = True
    enable_error_correction: bool = True
    min_header_score: float = 0.75
    p_flip: float = 0.5
    collision_guard_extra: int = constants.EDGE_WIDTH_SAMPLES
    #: Differential averaging windows grow with the bit period (longer
    #: bits leave more clean samples either side of an edge, Section
    #: 5.1 / Table 2), capped to keep dense traces tractable.
    refine_window_fraction: float = 0.8
    refine_window_cap: int = 2000
    #: Fold the analog differential energy when the edge-based search
    #: comes up empty (low-SNR operation, Figure 14's waterfall).
    enable_analog_fallback: bool = True
    preamble_bits: int = constants.PREAMBLE_BITS
    anchor_bit: int = constants.ANCHOR_BIT
    #: Run the trace guard (:func:`repro.robustness.guard.sanitize_trace`)
    #: in front of the pipeline: repair impaired captures, reject
    #: unusable ones into an empty-but-honest result instead of letting
    #: NaNs crash k-means.  Clean captures pass through untouched (the
    #: decode is bit-identical with the guard on or off).
    enable_trace_guard: bool = True
    guard_config: Optional[GuardConfig] = None
    #: Multi-fidelity decode policy (see
    #: :class:`repro.core.fidelity.FidelityPolicy`).  ``None`` uses the
    #: default adaptive policy; ``FidelityPolicy.full()`` forces full
    #: fidelity everywhere and reproduces the pre-adaptive decoder
    #: bit-identically.
    fidelity: Optional[FidelityPolicy] = None

    def __post_init__(self) -> None:
        if not self.candidate_bitrates_bps:
            raise ConfigurationError("need at least one candidate bitrate")
        for rate in self.candidate_bitrates_bps:
            self.profile.validate_bitrate(rate)
        if not 0.0 <= self.min_header_score <= 1.0:
            raise ConfigurationError(
                "min_header_score must be in [0, 1]")


class LFDecoder:
    """Decodes concurrent laissez-faire streams from raw IQ captures."""

    def __init__(self, config: Optional[LFDecoderConfig] = None,
                 rng: SeedLike = None):
        self.config = config or LFDecoderConfig()
        self._rng = make_rng(rng)
        self.edge_detector = EdgeDetector(self.config.edge_config)
        self.fidelity = self.config.fidelity or FidelityPolicy()
        self.viterbi = ViterbiDecoder(
            p_flip=self.config.p_flip,
            banded=(self.fidelity.active
                    and self.fidelity.banded_viterbi),
            band_margin=self.fidelity.viterbi_band_margin)
        self._timer = StageTimer()
        self._cache: Optional[Dict[str, int]] = None
        self._fid: Dict[str, int] = self.fidelity.new_stats()

    def candidate_periods(self) -> List[float]:
        """Candidate bit periods in samples, shortest (fastest) first."""
        fs = self.config.profile.sample_rate_hz
        return sorted(fs / rate
                      for rate in set(self.config.candidate_bitrates_bps))

    def _period_cacheable(self, period_samples: float) -> bool:
        """Whether a fitted period is plausible enough to track.

        A real stream's fitted period sits within the clock-drift
        budget of a candidate rate (plus margin for collision mixture
        fits, which skew the most).  Junk hypotheses assembled from
        claim residue fit exotic periods — caching those would seed
        next epoch's warm fold with self-perpetuating garbage.
        """
        folding = self.config.folding_config or FoldingConfig()
        slack = max(3e-6 * folding.max_drift_ppm, 5e-4)
        return any(abs(period_samples - cand) / cand <= slack
                   for cand in self.candidate_periods())

    def decode_epoch(self, trace: IQTrace,
                     session: Optional[SessionState] = None,
                     sample_offset: float = 0.0) -> EpochResult:
        """Run the full pipeline over one epoch's capture.

        The returned :class:`EpochResult` carries a wall-clock breakdown
        in ``stage_timings`` (keys ``edge``, ``fold``, ``extract``,
        ``separate``, ``viterbi``, ``total``); each stage accumulates
        across every stream hypothesis of the epoch.

        ``session``, when given, is cross-epoch warm-start state (see
        :mod:`repro.core.session`): the fold search verifies cached
        (rate, offset) pairs before sweeping, k-means stages restart
        from cached centroids, and two-way separation tries the cached
        lattice basis first.  Cache hit/miss counters land in the
        result's ``cache_stats``.  Most callers should go through
        :class:`repro.core.session.SessionDecoder` instead of passing
        the state by hand.

        ``sample_offset`` is this trace's global sample position inside
        a longer capture being decoded chunk-by-chunk: tags keep
        toggling straight through chunk boundaries, so tracker phases
        are kept in global coordinates and stay matchable from one
        chunk to the next.  Leave it zero for independent epochs.
        """
        self._timer = timer = StageTimer()
        self._cache = ({key: 0 for key in CACHE_STAT_KEYS}
                       if session is not None else None)
        self._fid = self.fidelity.new_stats()
        self.viterbi.stats = self._fid
        if session is not None:
            session.begin_epoch(sample_offset)
        t0 = time.perf_counter()
        health = None
        rejected: Optional[SignalQualityError] = None
        if self.config.enable_trace_guard:
            try:
                with timer.stage("guard"):
                    trace, health = sanitize_trace(
                        trace, self.config.guard_config)
            except SignalQualityError as exc:
                rejected = exc
        if rejected is not None:
            # The capture is beyond repair: report an empty epoch with
            # the structured health verdict instead of raising out of
            # the decode path.
            result = EpochResult(duration_s=trace.duration_s)
            result.trace_health = getattr(rejected, "health", None)
            result.degraded_streams.append(StreamFault(
                offset_samples=0.0, period_samples=0.0, stage="guard",
                error_type=type(rejected).__name__,
                message=str(rejected), expected=False))
            timer.add("total", time.perf_counter() - t0)
            result.stage_timings = timer.timings
            return self._finish(result, session)
        result = EpochResult(duration_s=trace.duration_s)
        result.trace_health = health
        with timer.stage("edge"):
            edges = self.edge_detector.detect(trace)
        result.n_edges_detected = len(edges)
        if not edges:
            timer.add("total", time.perf_counter() - t0)
            result.stage_timings = timer.timings
            return self._finish(result, session)

        with timer.stage("fold"):
            if session is not None:
                hypotheses, sources, hits, misses = \
                    find_stream_hypotheses_warm(
                        edges, self.candidate_periods(),
                        session.warm_hints(),
                        config=self.config.folding_config)
                self._cache["fold_hits"] += hits
                self._cache["fold_misses"] += misses
            else:
                hypotheses = find_stream_hypotheses(
                    edges, self.candidate_periods(),
                    config=self.config.folding_config)
                sources = [None] * len(hypotheses)
        claimed = set()
        for hyp in hypotheses:
            claimed.update(hyp.edge_indices)
        result.n_spurious_edges = len(edges) - len(claimed)

        for hyp, source in zip(hypotheses, sources):
            preferred = (session.hint_tracker(source)
                         if session is not None else None)
            try:
                streams = self._decode_stream(trace, hyp, edges, result,
                                              session=session,
                                              preferred=preferred)
            except (DecodeError, ConfigurationError) as exc:
                # Routine abandonment: a junk hypothesis that failed a
                # gate.  Recorded for observability, not degradation.
                result.degraded_streams.append(
                    _stream_fault(hyp, "decode", exc, expected=True))
                continue
            except Exception as exc:  # noqa: BLE001 — fault isolation
                # One mis-modeled stream must not abort the epoch: the
                # other hypotheses still decode, and the failure is
                # reported instead of raised.
                result.degraded_streams.append(
                    _stream_fault(hyp, "decode", exc, expected=False))
                continue
            result.streams.extend(streams)
        if not result.streams and self.config.enable_analog_fallback:
            result.streams.extend(self._decode_analog(trace, edges))
        result.streams = _dedup_streams(result.streams)
        timer.add("total", time.perf_counter() - t0)
        result.stage_timings = timer.timings
        return self._finish(result, session)

    def _finish(self, result: EpochResult,
                session: Optional[SessionState]) -> EpochResult:
        """Publish cache + fidelity counters and close the session epoch."""
        result.fidelity_stats = dict(self._fid)
        if session is not None and self._cache is not None:
            result.cache_stats = dict(self._cache)
            session.end_epoch(self._cache, fidelity_stats=self._fid)
        return result

    def _bump(self, key: str) -> None:
        if self._cache is not None:
            self._cache[key] = self._cache.get(key, 0) + 1

    def _decode_analog(self, trace: IQTrace,
                       edges: Sequence[DetectedEdge]
                       ) -> List[DecodedStream]:
        """Low-SNR fallback: fold the analog differential energy.

        When individual edges are buried in noise the edge-based search
        finds nothing, but the eye-pattern fold of the *analog*
        differential energy (Section 3.2's original formulation) still
        accumulates a stream's periodic energy.  Only single streams
        are recovered this way — at SNRs where this path is needed,
        collision separation has no margin anyway.
        """
        energy = self.edge_detector.differential_magnitude(trace) ** 2
        with self._timer.stage("fold"):
            hypotheses = analog_fold_search(energy,
                                            self.candidate_periods())
        streams: List[DecodedStream] = []
        for hyp in hypotheses:
            try:
                track = track_from_analog(hyp, energy)
                with self._timer.stage("extract"):
                    diffs = read_grid_differentials(
                        trace, track, edges,
                        detector=self.edge_detector,
                        window_override=self._refine_window(track))
                observations = _project_single(diffs)
                stream = self._assemble(observations, track,
                                        collided=False)
            except (DecodeError, ConfigurationError):
                continue
            if stream is not None:
                streams.append(stream)
        return streams

    # -- internals -------------------------------------------------------

    def _diagnose_colliders(self, diffs: np.ndarray,
                            report: CollisionReport) -> int:
        """Best-effort collider count for an unresolved collision.

        Re-runs collision detection with the cluster-count sweep
        extended to 27 (= 3 colliders), which the decode path never
        tries because nothing past 2-way is separable anyway.  The
        sweep uses its own fixed-seed RNG so this diagnostic never
        perturbs the decoder's random stream — clean decodes stay
        bit-identical whether or not a failure path ran.
        """
        try:
            diag = detect_collision(diffs, candidates=(3, 9, 27),
                                    rng=np.random.default_rng(0))
        except Exception:  # noqa: BLE001 — diagnostics must not raise
            return report.estimated_colliders
        return max(diag.estimated_colliders, report.estimated_colliders)

    def _refine_window(self, track: StreamTrack) -> int:
        """Averaging window for this stream's differentials."""
        cfg = self.config
        base = self.edge_detector.config.max_refine_window
        scaled = int(track.period_samples * cfg.refine_window_fraction)
        return max(base, min(scaled, cfg.refine_window_cap))

    def _decode_stream(self, trace: IQTrace, hypothesis, edges, result,
                       session: Optional[SessionState] = None,
                       preferred: Optional[StreamTracker] = None
                       ) -> List[DecodedStream]:
        cfg = self.config
        track = track_stream(hypothesis, edges, len(trace))
        with self._timer.stage("extract"):
            diffs = read_grid_differentials(
                trace, track, edges, detector=self.edge_detector,
                window_override=self._refine_window(track))
        tracker: Optional[StreamTracker] = None
        if session is not None:
            tracker = session.match(track.period_samples,
                                    track.offset_samples, diffs,
                                    preferred=preferred)
        # Trust is per-stream and revocable: the first warm fit that
        # stops explaining the data drops every later stage of this
        # stream back onto the cold path.
        trusted = tracker is not None
        collided = False
        fast_single = False
        fits: Dict[int, KMeansResult] = {}
        if cfg.enable_iq_separation and diffs.size >= 9:
            noise_scale = _hold_cluster_noise(diffs)
            report: Optional[CollisionReport] = None
            if trusted and tracker.arity == 1 \
                    and 3 in tracker.centroids \
                    and 3 in tracker.inertia_pp:
                # Fast path: the tracker saw a single tag here last
                # epoch.  Planarity (the same statistic the full
                # detector gates on) must still look one-dimensional —
                # a weak new collider can fatten the scatter without
                # blowing the k-means inertia — and then one warm Lloyd
                # restart of the 3-cluster model verifies the cluster
                # structure, skipping the 9-cluster fan-out entirely.
                with self._timer.stage("detect"):
                    planarity = scatter_planarity(diffs)
                    if planarity > effective_planarity_threshold(
                            diffs, noise_scale=noise_scale):
                        # The tracked tag is likely inside a fresh
                        # collision now: release the tracker so pair
                        # synthesis may claim it as a constituent.
                        tracker.matched = False
                        tracker = None
                        trusted = False
                        self._bump("kmeans_misses")
                    else:
                        three = kmeans(diffs.ravel(), 3, rng=self._rng,
                                       init_centroids=tracker.centroids[3])
                        if session.warm_fit_blown(tracker.inertia_pp,
                                                  {3: three}, keys=(3,)):
                            trusted = False
                            self._bump("kmeans_misses")
                            session.note_invalidation(tracker)
                        else:
                            self._bump("kmeans_hits")
                            session.note_warm_success(tracker)
                            fits[3] = three
                            fast_single = True
                            report = CollisionReport(
                                is_collision=False, n_clusters=3,
                                planarity=planarity,
                                kmeans=three)
            if report is None and session is not None \
                    and (tracker is None or not trusted):
                # The stream matches no cached state directly — but a
                # *new* collision between two known tags is still warm:
                # its lattice basis is the constituents' cached edge
                # vectors (collision pairings re-randomize each epoch,
                # the channel geometry does not).
                with self._timer.stage("detect"):
                    synth = session.synthesize_pair(diffs)
                if synth is not None:
                    pair_a, pair_b = synth
                    try:
                        streams = self._decode_collided(
                            trace, track, edges, session=session,
                            basis_override=(pair_a.edge_vector,
                                            pair_b.edge_vector))
                    except (DecodeError, ConfigurationError):
                        streams = []
                    if streams:
                        session.consume_pair(pair_a, pair_b)
                        result.n_collisions_detected += 1
                        result.n_collisions_resolved += 1
                        return streams
            if report is None:
                hints = (tracker.centroid_hints()
                         if trusted and tracker.arity >= 2 else None)
                # A matched single-tag tracker that lacks cached
                # centroids (fresh tracker, invalidated cache) still
                # vouches for the stream's geometry: the planarity
                # pre-gate runs with its relaxed warm margin.
                warm_vouched = (trusted and tracker is not None
                                and tracker.arity == 1)
                with self._timer.stage("detect"):
                    report = detect_collision(
                        diffs, noise_scale=noise_scale,
                        rng=self._rng, centroid_hints=hints,
                        fits_out=fits, policy=self.fidelity,
                        stats=self._fid, warm=warm_vouched,
                        cache_fast_fit=session is not None)
                    if hints is not None:
                        if session.warm_fit_blown(tracker.inertia_pp,
                                                  fits, keys=(9,)):
                            # The cached centroids no longer explain
                            # this stream (moved tag or wrong tracker):
                            # rerun the cold fan-out.
                            trusted = False
                            self._bump("kmeans_misses")
                            session.note_invalidation(tracker)
                            fits = {}
                            report = detect_collision(
                                diffs, noise_scale=noise_scale,
                                rng=self._rng, fits_out=fits,
                                policy=self.fidelity,
                                stats=self._fid)
                        else:
                            self._bump("kmeans_hits")
                            session.note_warm_success(tracker)
            if report.is_collision:
                result.n_collisions_detected += 1
                if report.estimated_colliders <= 2:
                    try:
                        streams = self._decode_collided(
                            trace, track, edges, session=session,
                            tracker=tracker if trusted else None,
                            fits=fits)
                    except (DecodeError, ConfigurationError):
                        streams = []
                    if streams:
                        result.n_collisions_resolved += 1
                        return streams
                # Separation failed or was never attempted (>2-way):
                # report the unresolved collision with a diagnostic
                # collider estimate before attempting single-stream
                # salvage below.
                n_colliders = self._diagnose_colliders(diffs, report)
                error = CollisionUnresolvableError(n_colliders)
                result.degraded_streams.append(StreamFault(
                    offset_samples=track.offset_samples,
                    period_samples=track.period_samples,
                    stage="separate",
                    error_type=type(error).__name__,
                    message=str(error),
                    n_colliders=n_colliders,
                    expected=False))
                # A >2-way collision (or a failed 2-way separation)
                # falls through: attempt to salvage the strongest
                # collider as a single stream — the header gate drops
                # it again if the contamination is too heavy.
                # Separation failed (degenerate basis or no frame
                # survived the header check): fall back to decoding the
                # strongest collider as a single stream rather than
                # dropping both.
        observations, proj_scale = _project_single_scaled(diffs)
        proj_fits: Dict[int, KMeansResult] = {}
        multilevel: Optional[bool] = None
        can_check = cfg.enable_iq_separation and diffs.size >= 20
        if can_check and fast_single:
            # The IQ-plane verify just re-confirmed last epoch's
            # single-tag geometry (planarity *and* 3-cluster inertia).
            # A collinear collision onset would have blown that inertia
            # check — its 9 scalar levels move points far from the
            # cached {0, +e, -e} — so the projection re-verify is
            # redundant; the tracker's cached projection state persists
            # untouched for the epoch this skip stops holding.
            multilevel = False
        elif can_check and trusted and tracker.arity == 1 \
                and 3 in tracker.proj_centroids \
                and 3 in tracker.proj_inertia_pp:
            # Fast path mirroring the collision check: the projection
            # was three-level last epoch; re-verify with one warm Lloyd
            # and skip the 9-cluster comparison (and with it the
            # expensive collinear-split attempts its false positives
            # trigger).
            with self._timer.stage("detect"):
                three = kmeans(observations.astype(np.complex128), 3,
                               rng=self._rng,
                               init_centroids=tracker.proj_centroids[3])
                if session.warm_fit_blown(tracker.proj_inertia_pp,
                                          {3: three}, keys=(3,)):
                    trusted = False
                    self._bump("kmeans_misses")
                    session.note_invalidation(tracker)
                else:
                    self._bump("kmeans_hits")
                    session.note_warm_success(tracker)
                    proj_fits[3] = three
                    multilevel = False
        pol = self.fidelity
        if multilevel is None and can_check and pol.active \
                and pol.dispersion_gate and not trusted:
            # Dispersion pre-gate: a lone tag's projection sits on the
            # {-1, 0, +1} lattice up to noise, while a collinear
            # collision puts substantial mass at intermediate levels.
            # A cleanly trimodal projection skips the paired k-means
            # fits (and the collinear-split attempts their false
            # positives trigger); any real collinear collision has
            # off-lattice mass far above the gate and escalates.
            with self._timer.stage("detect"):
                off = np.abs(observations
                             - np.clip(np.round(observations), -1, 1))
                frac = float(np.mean(off > pol.dispersion_eps))
                if frac <= pol.dispersion_fraction:
                    multilevel = False
                    self._fid["multilevel_fast"] += 1
                else:
                    self._fid["multilevel_escalations"] += 1
        if multilevel is None:
            proj_hints = (tracker.proj_hints() if trusted else None)
            dec_rng = (self._track_rng(track) if pol.active
                       else self._rng)
            ml_init = 2 if pol.active else 3
            with self._timer.stage("detect"):
                multilevel = (can_check and _looks_multilevel(
                    observations, dec_rng,
                    centroid_hints=proj_hints,
                    fits_out=proj_fits, n_init=ml_init))
                if proj_hints is not None and proj_fits:
                    if session.warm_fit_blown(tracker.proj_inertia_pp,
                                              proj_fits, keys=(3,)):
                        trusted = False
                        self._bump("kmeans_misses")
                        session.note_invalidation(tracker)
                        proj_fits = {}
                        multilevel = _looks_multilevel(
                            observations, dec_rng,
                            fits_out=proj_fits, n_init=ml_init)
                    else:
                        self._bump("kmeans_hits")
                        session.note_warm_success(tracker)
        if multilevel:
            # A collision whose edge vectors are (anti)parallel never
            # registers as two-dimensional, but its projection carries
            # more than three levels; the scalar-lattice separator
            # handles this degenerate case (an extension beyond the
            # paper's parallelogram method).
            level_hint = None
            if pol.active and 9 in proj_fits:
                # The multilevel check just fitted nine levels on this
                # same projection (in normalized units); rescaled, they
                # warm-seed the separator's level fit in place of its
                # cold k-means++ fan-out.
                level_hint = (proj_fits[9].centroids.real
                              * proj_scale)
            streams = self._decode_collinear(diffs, track, result,
                                             level_hint=level_hint)
            if streams:
                if session is not None \
                        and self._period_cacheable(track.period_samples):
                    session.observe(tracker if trusted else None,
                                    track.period_samples,
                                    track.offset_samples, diffs,
                                    fits=fits, proj_fits=proj_fits,
                                    arity=2)
                return streams
        hint = tracker.flipped if trusted and tracker.arity == 1 else None
        stream = self._assemble(observations, track, collided=collided,
                                flipped_hint=hint)
        if stream is not None and session is not None \
                and self._period_cacheable(track.period_samples):
            session.observe(tracker if trusted else None,
                            track.period_samples,
                            track.offset_samples, diffs,
                            fits=fits, proj_fits=proj_fits,
                            flipped=self._last_flipped)
        return [stream] if stream is not None else []

    def _track_rng(self, track: StreamTrack) -> np.random.Generator:
        """Deterministic per-track generator for adaptive decision fits.

        The multilevel check and the collinear split sit on marginal
        k-means fits whose outcome can depend on the initialization
        draw.  Under the shared decoder RNG that draw depends on the
        entire path history — a warm (session) decode and a cold decode
        of the *same physical stream* reach it with different generator
        states and can resolve a borderline split differently, breaking
        the warm-bits == cold-bits invariant.  Seeding from the track's
        quantized timing makes those fits a function of the stream
        alone.  The offset quantum (16 samples) absorbs the sub-sample
        jitter between warm and cold track estimates.
        """
        return np.random.default_rng(
            (self.fidelity.subsample_seed,
             int(round(track.period_samples)),
             int(round(track.offset_samples / 16.0))))

    def _decode_collinear(self, diffs: np.ndarray, track: StreamTrack,
                          result: EpochResult,
                          level_hint: Optional[np.ndarray] = None
                          ) -> List[DecodedStream]:
        """Attempt the 1-D scalar-lattice split of a collinear
        collision; both recovered frames must pass the header gate."""
        adaptive = self.fidelity.active
        rng = self._track_rng(track) if adaptive else self._rng
        try:
            with self._timer.stage("separate"):
                separation = separate_collinear(
                    diffs, rng=rng, n_init=3 if adaptive else 6,
                    init_levels=level_hint if adaptive else None)
        except (DecodeError, ConfigurationError):
            return []
        streams: List[DecodedStream] = []
        for column, edge_vector in ((0, separation.e1),
                                    (1, separation.e2)):
            stream = self._assemble(
                separation.coords[:, column].astype(np.float64),
                track, collided=True, edge_vector=edge_vector)
            if stream is not None:
                streams.append(stream)
        if len(streams) == 2:
            result.n_collisions_detected += 1
            result.n_collisions_resolved += 1
            return streams
        return []

    def _decode_collided(self, trace: IQTrace, track: StreamTrack,
                         edges: Sequence[DetectedEdge],
                         session: Optional[SessionState] = None,
                         tracker: Optional[StreamTracker] = None,
                         fits: Optional[Dict[int, KMeansResult]] = None,
                         basis_override: Optional[
                             Tuple[complex, complex]] = None
                         ) -> List[DecodedStream]:
        """Split a two-way collision and decode both tags."""
        cfg = self.config
        # Wider guard: the two colliders' edges sit a few samples apart
        # once drift separates them, so exclude a larger transition zone.
        guard = (self.edge_detector.config.guard
                 + cfg.collision_guard_extra)
        with self._timer.stage("extract"):
            diffs = read_grid_differentials(
                trace, track, edges, detector=self.edge_detector,
                guard_override=guard,
                window_override=self._refine_window(track))
        centroid_hint = basis_hint = None
        seeded = False
        if basis_override is not None:
            # Synthesized from two known tags' cached edge vectors:
            # both the k-means seed and the basis come for free.
            basis_hint = basis_override
            centroid_hint = _lattice_points(*basis_override)
        elif tracker is not None and tracker.arity >= 2:
            centroid_hint = tracker.collision_centroids
            basis_hint = tracker.basis
        elif (session is not None or self.fidelity.active) \
                and fits and 9 in fits:
            # Separation fast path: the collision-detection stage
            # already fitted nine clusters on the narrow-guard
            # differentials.  The wide-guard re-extraction shifts the
            # points only slightly, so that fit seeds a single Lloyd
            # restart instead of the full n_init fan-out.  Any seed
            # that traps Lloyd in a bad optimum falls through to the
            # cold retry below, so cold adaptive decodes use it too.
            centroid_hint = fits[9].centroids
            seeded = True
        with self._timer.stage("separate"):
            separation = separate_two_way(
                diffs, rng=self._rng,
                centroid_hint=centroid_hint,
                basis_hint=basis_hint,
                basis_tolerance=(session.config.basis_tolerance
                                 if session is not None else 0.25))
            if centroid_hint is not None and not seeded:
                self._bump("kmeans_hits")
            if basis_hint is not None:
                self._bump("basis_hits" if separation.basis_cached
                           else "basis_misses")
        scale = max(abs(separation.e1), abs(separation.e2))
        if scale <= 0 or separation.lattice_error > 0.35 * scale:
            if seeded:
                # The within-epoch seed may have trapped Lloyd in a bad
                # optimum; retry cold before declaring a false positive.
                with self._timer.stage("separate"):
                    separation = separate_two_way(diffs, rng=self._rng)
                scale = max(abs(separation.e1), abs(separation.e2))
        if scale <= 0 or separation.lattice_error > 0.35 * scale:
            raise DecodeError(
                f"collision lattice fit too poor "
                f"(error {separation.lattice_error:.3g} vs scale "
                f"{scale:.3g}); likely a false-positive collision")
        streams: List[DecodedStream] = []
        for column, edge_vector in ((0, separation.e1),
                                    (1, separation.e2)):
            stream = self._assemble(separation.coords[:, column], track,
                                    collided=True,
                                    edge_vector=edge_vector)
            if stream is not None:
                streams.append(stream)
        if streams and session is not None \
                and self._period_cacheable(track.period_samples):
            session.observe(tracker, track.period_samples,
                            track.offset_samples, diffs,
                            fits=fits, arity=2,
                            basis=(separation.e1, separation.e2),
                            collision_centroids=separation.centroids)
        return streams

    def _assemble(self, observations: np.ndarray, track: StreamTrack,
                  collided: bool,
                  edge_vector: complex = 0j,
                  flipped_hint: Optional[bool] = None
                  ) -> Optional[DecodedStream]:
        cfg = self.config
        self._last_flipped: Optional[bool] = None
        try:
            with self._timer.stage("viterbi"):
                assembled = assemble_bits(
                    observations,
                    use_viterbi=cfg.enable_error_correction,
                    decoder=self.viterbi,
                    preamble_bits=cfg.preamble_bits,
                    anchor_bit=cfg.anchor_bit,
                    min_header_score=cfg.min_header_score,
                    flipped_hint=flipped_hint,
                    prescreen=self.fidelity.active)
        except DecodeError:
            return None
        # Exposed for the session cache: the resolved polarity of the
        # projection axis is channel geometry, stable across epochs.
        self._last_flipped = assembled.flipped
        offset = (track.offset_samples
                  + assembled.start_slot * track.period_samples)
        fs = cfg.profile.sample_rate_hz
        measured_rate = fs / track.period_samples
        nominal = min(cfg.candidate_bitrates_bps,
                      key=lambda r: abs(r - measured_rate))
        return DecodedStream(
            bits=assembled.bits,
            offset_samples=offset,
            period_samples=track.period_samples,
            bitrate_bps=nominal,
            collided=collided,
            edge_vector=edge_vector,
            confidence=assembled.header_score,
        )


def _stream_fault(hypothesis, stage: str, exc: BaseException,
                  expected: bool) -> StreamFault:
    """A :class:`StreamFault` record for an abandoned hypothesis."""
    return StreamFault(
        offset_samples=float(getattr(hypothesis, "offset_samples", 0.0)),
        period_samples=float(getattr(hypothesis, "period_samples", 0.0)),
        stage=stage,
        error_type=type(exc).__name__,
        message=str(exc),
        expected=expected)


def _project_single(differentials: np.ndarray) -> np.ndarray:
    """Project a single tag's differentials onto its edge direction.

    The principal axis of the scatter (about the origin) is the tag's
    edge line {-e, 0, +e}; projecting and normalizing by the edge
    cluster magnitude yields observations near {-1, 0, +1}.  Sign
    remains ambiguous; the anchor stage resolves it.
    """
    return _project_single_scaled(differentials)[0]


def _project_single_scaled(
        differentials: np.ndarray) -> Tuple[np.ndarray, float]:
    """:func:`_project_single` plus the normalization scale.

    The scale maps normalized observation levels back into raw
    projection units — the adaptive pipeline uses it to convert the
    multilevel check's 9-level fit into warm seeds for the collinear
    separator, which clusters the *unnormalized* projection.
    """
    d = np.asarray(differentials, dtype=np.complex128).ravel()
    if d.size == 0:
        raise DecodeError("no differentials to project")
    x = np.stack([d.real, d.imag])
    moment = x @ x.T / d.size
    eigvals, eigvecs = np.linalg.eigh(moment)
    u = eigvecs[:, -1]  # principal direction (unit)
    # LAPACK's eigenvector sign is arbitrary; pin it to a fixed
    # half-plane so the projection polarity of a stable channel is
    # reproducible across epochs (the session caches the resolved
    # frame polarity and tries it first).
    if u[0] < 0 or (u[0] == 0 and u[1] < 0):
        u = -u
    proj = d.real * u[0] + d.imag * u[1]
    peak = float(np.max(np.abs(proj)))
    if peak <= 0:
        raise DecodeError("stream has no measurable edges")
    strong = np.abs(proj) > 0.5 * peak
    scale = float(np.median(np.abs(proj[strong])))
    if scale <= 0:
        raise DecodeError("degenerate projection scale")
    return proj / scale, scale


def _hold_cluster_noise(differentials: np.ndarray) -> float:
    """Noise scale estimated from the hold (near-zero) cluster."""
    d = np.asarray(differentials, dtype=np.complex128).ravel()
    mags = np.abs(d)
    peak = float(np.max(mags)) if mags.size else 0.0
    if peak <= 0:
        return 0.0
    hold = d[mags < 0.3 * peak]
    if hold.size < 2:
        return 0.0
    return float(np.sqrt(np.mean(np.abs(hold) ** 2)))


def _dedup_streams(streams: List[DecodedStream],
                   offset_tolerance: float = 8.0,
                   max_disagreement: float = 0.15
                   ) -> List[DecodedStream]:
    """Drop ghost duplicates: same rate, same phase, same bits.

    Residual detections of a decoded stream occasionally assemble into
    a second copy shifted by a few samples.  A ghost decodes (nearly)
    the same bit sequence as the original, which distinguishes it from
    a genuinely distinct tag that happens to share the phase — the
    latter carries different data and must be kept.
    """
    kept: List[DecodedStream] = []
    for stream in sorted(streams,
                         key=lambda s: (-s.confidence, -s.n_bits)):
        duplicate = False
        for existing in kept:
            if existing.bitrate_bps != stream.bitrate_bps:
                continue
            period = existing.period_samples
            gap = abs(stream.offset_samples - existing.offset_samples)
            gap_mod = min(gap % period, period - gap % period)
            if gap_mod > offset_tolerance:
                continue
            n = min(existing.n_bits, stream.n_bits)
            if n == 0:
                continue
            disagreement = float(np.count_nonzero(
                existing.bits[:n] != stream.bits[:n])) / n
            if disagreement <= max_disagreement:
                duplicate = True
                break
        if not duplicate:
            kept.append(stream)
    return kept


def _looks_multilevel(observations: np.ndarray,
                      rng, improvement: float = 5.0,
                      centroid_hints: Optional[
                          Dict[int, np.ndarray]] = None,
                      fits_out: Optional[
                          Dict[int, KMeansResult]] = None,
                      n_init: int = 3) -> bool:
    """True when a stream's 1-D projection has more than three levels.

    A lone tag's projection clusters at {-1, 0, +1}; a collinear
    collision adds intermediate levels.  Nine clusters must beat three
    by a large inertia factor (noise-splitting alone buys ~3x).

    ``centroid_hints`` / ``fits_out`` are the session warm-start hooks:
    hinted cluster counts run as a single warm Lloyd restart and the
    fresh fits are exported for the next epoch's cache.
    """
    obs = np.asarray(observations, dtype=np.float64).ravel()
    if obs.size < 20:
        return False
    from .clustering import kmeans as _kmeans
    hints = centroid_hints or {}
    pts = obs.astype(np.complex128)
    three = _kmeans(pts, 3, rng=rng, n_init=n_init,
                    init_centroids=hints.get(3))
    nine = _kmeans(pts, 9, rng=rng, n_init=n_init,
                   init_centroids=hints.get(9))
    if fits_out is not None:
        fits_out[3] = three
        fits_out[9] = nine
    floor = max(nine.inertia, 1e-300)
    return three.inertia / floor >= improvement
