"""The end-to-end LF-Backscatter decoder (Section 3, Figure 3).

:class:`LFDecoder` turns one epoch's IQ trace into decoded per-tag bit
streams by composing the stage graph of :mod:`repro.core.stages`:

    guard -> edge detection -> eye-pattern folding -> per-stream chain
    (tracking -> collision detection -> parallelogram separation ->
    Viterbi -> anchor) -> analog fallback -> dedup.

Each stage is a module implementing the
:class:`~repro.core.stages.context.Stage` protocol over one shared
:class:`~repro.core.stages.context.DecodeContext`; this module only
assembles the graph, owns the long-lived helpers (edge detector,
Viterbi decoder, RNG) and publishes the epoch's statistics.  The
IQ-separation and error-correction stages can be disabled
independently to reproduce the ablation of Figure 9.

Observability: :meth:`LFDecoder.add_observer` attaches a
:class:`~repro.core.stages.context.StageObserver` whose callbacks fire
around every stage invocation.  Observers are read-only taps —
attaching one never changes decode output (pinned by the golden-digest
equivalence tests).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Sequence

from .. import constants
from ..errors import ConfigurationError
from ..robustness.guard import GuardConfig
from ..types import EpochResult, IQTrace, SimulationProfile
from ..utils.rng import SeedLike, make_rng
from .edges import EdgeDetector, EdgeDetectorConfig
from .equalizer import EqualizerConfig
from .fidelity import FidelityPolicy
from .folding import FoldingConfig
from .kernels import KernelBackend, resolve_backend
from .stages import (DecodeContext, StageObserver, StageRunner,
                     StatsAccumulator, default_epoch_stages,
                     default_stream_stages)
from .stages.anchor import dedup_streams
from .stages.context import Stage, stream_fault
from .stages.projection import (hold_cluster_noise, looks_multilevel,
                                project_single, project_single_scaled)
from .viterbi import ViterbiDecoder

if TYPE_CHECKING:  # typing only — session imports stay lazy
    from .session import SessionState

# Former private homes of the projection / dedup helpers, kept as
# aliases for callers that imported them before the stage extraction.
_project_single = project_single
_project_single_scaled = project_single_scaled
_hold_cluster_noise = hold_cluster_noise
_looks_multilevel = looks_multilevel
_dedup_streams = dedup_streams
_stream_fault = stream_fault


@dataclass
class LFDecoderConfig:
    """Configuration of the full decoding pipeline.

    ``candidate_bitrates_bps`` is the set of rates tags may use (all
    multiples of the base rate, Section 3.2); the reader knows this set
    by protocol, not by per-tag signalling.
    """

    candidate_bitrates_bps: Sequence[float] = (
        constants.DEFAULT_BITRATE_BPS,)
    profile: SimulationProfile = field(
        default_factory=SimulationProfile.paper)
    edge_config: Optional[EdgeDetectorConfig] = None
    folding_config: Optional[FoldingConfig] = None
    enable_iq_separation: bool = True
    enable_error_correction: bool = True
    min_header_score: float = 0.75
    p_flip: float = 0.5
    collision_guard_extra: int = constants.EDGE_WIDTH_SAMPLES
    #: Differential averaging windows grow with the bit period (longer
    #: bits leave more clean samples either side of an edge, Section
    #: 5.1 / Table 2), capped to keep dense traces tractable.
    refine_window_fraction: float = 0.8
    refine_window_cap: int = 2000
    #: Fold the analog differential energy when the edge-based search
    #: comes up empty (low-SNR operation, Figure 14's waterfall).
    enable_analog_fallback: bool = True
    preamble_bits: int = constants.PREAMBLE_BITS
    anchor_bit: int = constants.ANCHOR_BIT
    #: Run the trace guard (:func:`repro.robustness.guard.sanitize_trace`)
    #: in front of the pipeline: repair impaired captures, reject
    #: unusable ones into an empty-but-honest result instead of letting
    #: NaNs crash k-means.  Clean captures pass through untouched (the
    #: decode is bit-identical with the guard on or off).
    enable_trace_guard: bool = True
    guard_config: Optional[GuardConfig] = None
    #: Run the blind equalizer (:func:`repro.core.equalizer.equalize`)
    #: between the guard and edge detection: estimate the FIR channel
    #: from the capture itself and invert it when frequency-selective.
    #: Off by default — decodes with the stage disabled are
    #: bit-identical to a build without it (pinned by golden digests).
    enable_equalizer: bool = False
    equalizer_config: Optional[EqualizerConfig] = None
    #: Multi-fidelity decode policy (see
    #: :class:`repro.core.fidelity.FidelityPolicy`).  ``None`` uses the
    #: default adaptive policy; ``FidelityPolicy.full()`` forces full
    #: fidelity everywhere and reproduces the pre-adaptive decoder
    #: bit-identically.
    fidelity: Optional[FidelityPolicy] = None
    #: Compute-kernel backend name (see :mod:`repro.core.kernels`):
    #: ``"reference"`` (pure numpy), ``"numba"`` (JIT-compiled, falls
    #: back with a warning when numba is not installed) or ``"auto"``
    #: (numba when available, silently reference otherwise).  ``None``
    #: defers to the ``REPRO_KERNEL_BACKEND`` environment variable,
    #: then to ``"reference"``.
    kernel_backend: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.candidate_bitrates_bps:
            raise ConfigurationError("need at least one candidate bitrate")
        for rate in self.candidate_bitrates_bps:
            self.profile.validate_bitrate(rate)
        if not 0.0 <= self.min_header_score <= 1.0:
            raise ConfigurationError(
                "min_header_score must be in [0, 1]")


class LFDecoder:
    """Decodes concurrent laissez-faire streams from raw IQ captures."""

    def __init__(self, config: Optional[LFDecoderConfig] = None,
                 rng: SeedLike = None,
                 observers: Sequence[StageObserver] = ()):
        self.config = config or LFDecoderConfig()
        self._rng = make_rng(rng)
        #: Resolved compute-kernel backend (warm-up/JIT compilation
        #: happens here, at construction — never inside a timed decode).
        self.kernels: KernelBackend = resolve_backend(
            self.config.kernel_backend)
        self.edge_detector = EdgeDetector(self.config.edge_config,
                                          backend=self.kernels)
        self.fidelity = self.config.fidelity or FidelityPolicy()
        self.viterbi = ViterbiDecoder(
            p_flip=self.config.p_flip,
            banded=(self.fidelity.active
                    and self.fidelity.banded_viterbi),
            band_margin=self.fidelity.viterbi_band_margin,
            backend=self.kernels)
        self._runner = StageRunner(default_epoch_stages(),
                                   default_stream_stages(),
                                   observers=observers)

    # -- stage-graph surface ----------------------------------------------

    @property
    def epoch_stages(self) -> Sequence[Stage]:
        """The epoch-level stage list this decoder composes."""
        return self._runner.epoch_stages

    @property
    def stream_stages(self) -> Sequence[Stage]:
        """The per-stream stage chain this decoder composes."""
        return self._runner.stream_stages

    @property
    def observers(self) -> List[StageObserver]:
        return list(self._runner.observers)

    def add_observer(self, observer: StageObserver) -> None:
        """Attach a read-only :class:`StageObserver` to every decode."""
        self._runner.observers.append(observer)

    def remove_observer(self, observer: StageObserver) -> None:
        self._runner.observers.remove(observer)

    # -- decoding ----------------------------------------------------------

    def candidate_periods(self) -> List[float]:
        """Candidate bit periods in samples, shortest (fastest) first."""
        fs = self.config.profile.sample_rate_hz
        return sorted(fs / rate
                      for rate in set(self.config.candidate_bitrates_bps))

    def decode_epoch(self, trace: IQTrace,
                     session: Optional["SessionState"] = None,
                     sample_offset: float = 0.0) -> EpochResult:
        """Run the full stage graph over one epoch's capture.

        The returned :class:`EpochResult` carries a wall-clock breakdown
        in ``stage_timings`` (keys ``edge``, ``fold``, ``extract``,
        ``separate``, ``viterbi``, ``total``); each stage accumulates
        across every stream hypothesis of the epoch.

        ``session``, when given, is cross-epoch warm-start state (see
        :mod:`repro.core.session`): the fold search verifies cached
        (rate, offset) pairs before sweeping, k-means stages restart
        from cached centroids, and two-way separation tries the cached
        lattice basis first.  Cache hit/miss counters land in the
        result's ``cache_stats``.  Most callers should go through
        :class:`repro.core.session_decoder.SessionDecoder` instead of
        passing the state by hand.

        ``sample_offset`` is this trace's global sample position inside
        a longer capture being decoded chunk-by-chunk: tags keep
        toggling straight through chunk boundaries, so tracker phases
        are kept in global coordinates and stay matchable from one
        chunk to the next.  Leave it zero for independent epochs.
        """
        stats = StatsAccumulator(cache_enabled=session is not None,
                                 fidelity=self.fidelity.new_stats())
        # The banded-Viterbi escalation counters write into the same
        # dict the accumulator publishes.
        self.viterbi.stats = stats.fidelity
        if session is not None:
            session.begin_epoch(sample_offset)
        t0 = time.perf_counter()
        ctx = DecodeContext(trace, self.config, self._rng,
                            self.edge_detector, self.viterbi,
                            self.fidelity, stats, session=session,
                            sample_offset=sample_offset,
                            kernels=self.kernels)
        ctx.runner = self._runner
        self._runner.run_epoch(ctx)
        stats.add_time("total", time.perf_counter() - t0)
        result = stats.publish(ctx.result)
        if session is not None and stats.cache is not None:
            session.end_epoch(stats.cache,
                              fidelity_stats=stats.fidelity)
        return result
