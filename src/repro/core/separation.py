"""Parallelogram separation of two-way edge collisions (Section 3.4).

A two-way collision's nine cluster centroids are the lattice
``a*e1 + b*e2`` for a, b in {-1, 0, +1}: a 3x3 parallelogram grid whose
centre is the origin (both tags holding).  Recovering e1 and e2 from
the centroids — the paper does it by finding co-linear centroid triples
and taking their mid-points — splits the collided stream into two
per-tag edge-state sequences *without ever estimating the tag-reader
channel* (the decisive advantage over Buzz, Section 2.2).

Two recovery strategies are implemented and cross-validated in tests:

* :func:`basis_from_lattice_fit` — try centroid pairs as basis vectors
  and keep the pair whose lattice reproduces all nine centroids best;
* :func:`basis_from_collinear_midpoints` — the paper's geometric
  construction.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import CollisionUnresolvableError, ConfigurationError, \
    DecodeError
from ..utils.rng import SeedLike, make_rng
from .clustering import _kmeans_pp_init, _lloyd_batched, kmeans
from .kernels import KernelBackend, get_backend

#: The nine (a, b) lattice coordinates in a fixed order.
LATTICE_COORDS: Tuple[Tuple[int, int], ...] = tuple(
    (a, b) for a in (-1, 0, 1) for b in (-1, 0, 1))

#: Same coordinates as float columns, for vectorized lattice builds.
_LATTICE_A = np.array([a for a, _ in LATTICE_COORDS], dtype=np.float64)
_LATTICE_B = np.array([b for _, b in LATTICE_COORDS], dtype=np.float64)


@dataclass
class SeparationResult:
    """Two-way collision split into per-tag edge observations.

    ``coords`` holds the continuous lattice coordinates (a, b) of each
    grid differential: column 0 observes tag A's edge state, column 1
    tag B's.  Values near -1/0/+1 map to fall/hold/rise.
    """

    e1: complex
    e2: complex
    coords: np.ndarray          # float (n, 2)
    lattice_error: float        # mean centroid-to-lattice distance
    #: Nine cluster centroids the basis was fitted against (None for
    #: the collinear path); cached by session decoding as next epoch's
    #: warm k-means start.
    centroids: Optional[np.ndarray] = None
    #: True when a cached basis hint explained the fresh centroids and
    #: the exhaustive pair search was skipped (warm fast path).
    basis_cached: bool = False

    def hard_states(self) -> np.ndarray:
        """Round coordinates to the nearest edge state in {-1, 0, +1}."""
        return np.clip(np.round(self.coords), -1, 1).astype(np.int8)


def _lattice_points(e1: complex, e2: complex) -> np.ndarray:
    """The nine lattice points a*e1 + b*e2 in LATTICE_COORDS order."""
    return _LATTICE_A * e1 + _LATTICE_B * e2


def _match_error(centroids: np.ndarray, lattice: np.ndarray,
                 backend: Optional[KernelBackend] = None) -> float:
    """Mean distance of a one-to-one greedy matching centroids<->lattice.

    The greedy pass preserves the reference tie-break (first remaining
    centroid in index order wins).
    """
    cents = np.asarray(centroids, dtype=np.complex128).ravel()
    lat = np.asarray(lattice, dtype=np.complex128).ravel()
    return float(_match_errors_batch(cents, lat[None, :],
                                     backend=backend)[0])


def _match_errors_batch(cents: np.ndarray,
                        lattices: np.ndarray,
                        backend: Optional[KernelBackend] = None
                        ) -> np.ndarray:
    """Greedy matching error of ``cents`` against many lattices at once.

    ``lattices`` is (P, m); the return is (P,) mean matching
    distances.  The arithmetic lives in the kernel backend's
    ``lattice_match_errors`` (:mod:`repro.core.kernels`), which runs
    the greedy assignment batched across every lattice while keeping
    the serial tie-break (first remaining centroid in index order
    wins).
    """
    kern = backend if backend is not None else get_backend()
    return kern.lattice_match_errors(
        np.asarray(cents, dtype=np.complex128),
        np.asarray(lattices, dtype=np.complex128))


def basis_from_lattice_fit(centroids: np.ndarray,
                           min_parallelism: float = 0.15,
                           backend: Optional[KernelBackend] = None
                           ) -> Tuple[complex, complex, float]:
    """Recover (e1, e2) by exhaustive basis search over centroid pairs.

    The origin centroid is removed; every ordered-independent pair of
    the remaining eight is tried as a basis and scored by how well its
    lattice reproduces all nine centroids.  ``min_parallelism`` rejects
    nearly-parallel pairs (normalized cross product below it), which
    could only arise from tags whose IQ vectors are degenerate.
    """
    cents = np.asarray(centroids, dtype=np.complex128).ravel()
    if cents.size != 9:
        raise ConfigurationError(
            f"need exactly 9 centroids, got {cents.size}")
    origin_idx = int(np.argmin(np.abs(cents)))
    outer = np.delete(cents, origin_idx)
    scale = float(np.max(np.abs(outer)))
    if scale <= 0:
        raise DecodeError("all centroids at the origin")

    # All C(8, 2) = 28 candidate pairs scored in one shot: build every
    # pair's nine-point lattice as a (P, 9) tensor and run the greedy
    # centroid<->lattice matching batched across pairs (the former
    # itertools loop re-built a 9x9 distance matrix per pair).  Pair
    # enumeration via triu_indices matches itertools.combinations
    # order, so the first-minimal-error tie-break is unchanged.
    ii, jj = np.triu_indices(outer.size, k=1)
    u, v = outer[ii], outer[jj]
    cross = np.abs(u.real * v.imag - u.imag * v.real)
    valid = cross >= min_parallelism * np.abs(u) * np.abs(v)
    if not np.any(valid):
        raise CollisionUnresolvableError(
            2, "no independent basis pair among collision centroids "
               "(tag IQ vectors are parallel)")
    lattices = (u[valid, None] * _LATTICE_A[None, :]
                + v[valid, None] * _LATTICE_B[None, :])
    errors = _match_errors_batch(cents, lattices, backend=backend)
    best = int(np.argmin(errors))
    return (complex(u[valid][best]), complex(v[valid][best]),
            float(errors[best]))


def basis_from_collinear_midpoints(centroids: np.ndarray,
                                   collinear_tol: float = 0.08
                                   ) -> Tuple[complex, complex]:
    """The paper's construction: co-linear triples -> mid-points -> basis.

    The eight outer centroids form a parallelogram; each of its four
    edges is a co-linear triple of centroids whose middle element is one
    of +/-e1, +/-e2.  We enumerate triples among the outer centroids,
    keep those that are co-linear and do *not* pass through the origin,
    and read the two independent basis vectors off their mid-points.
    """
    cents = np.asarray(centroids, dtype=np.complex128).ravel()
    if cents.size != 9:
        raise ConfigurationError(
            f"need exactly 9 centroids, got {cents.size}")
    origin_idx = int(np.argmin(np.abs(cents)))
    origin = cents[origin_idx]
    outer = np.delete(cents, origin_idx) - origin
    scale = float(np.max(np.abs(outer)))
    if scale <= 0:
        raise DecodeError("all centroids at the origin")

    midpoints: List[complex] = []
    for i, j, k in itertools.combinations(range(outer.size), 3):
        triple = outer[[i, j, k]]
        # Order along the line; the middle one is the midpoint candidate.
        direction = triple[np.argmax(np.abs(triple - triple.mean()))] \
            - triple.mean()
        if abs(direction) == 0:
            continue
        proj = [(z.real * direction.real + z.imag * direction.imag)
                for z in triple]
        order = np.argsort(proj)
        a, m, b = triple[order[0]], triple[order[1]], triple[order[2]]
        # Co-linear and evenly spaced: m is the mid-point of a and b.
        if abs((a + b) / 2 - m) > collinear_tol * scale:
            continue
        # Reject the line through the origin (the {-e, 0, +e} diagonal).
        if abs(m) < collinear_tol * scale:
            continue
        midpoints.append(complex(m))

    # Deduplicate: midpoints come in +/- pairs per basis vector, and each
    # parallelogram edge is found once per side (two sides per vector).
    unique: List[complex] = []
    for m in midpoints:
        if not any(abs(m - u) < collinear_tol * scale
                   or abs(m + u) < collinear_tol * scale for u in unique):
            unique.append(m)
    independent = [m for m in unique]
    if len(independent) < 2:
        raise CollisionUnresolvableError(
            2, f"found {len(independent)} independent mid-points, need 2")
    # Keep the two most frequent/shortest independent ones.
    independent.sort(key=abs)
    e1 = independent[0]
    e2 = next((m for m in independent[1:]
               if abs(e1.real * m.imag - e1.imag * m.real)
               > 0.05 * abs(e1) * abs(m)), None)
    if e2 is None:
        raise CollisionUnresolvableError(
            2, "mid-points are collinear; basis is degenerate")
    return e1, e2


def continuous_coords(differentials: np.ndarray, e1: complex,
                      e2: complex) -> np.ndarray:
    """Solve d = a*e1 + b*e2 for real (a, b) per differential.

    Inverts the 2x2 real system formed by the I/Q components; the
    result feeds per-tag Viterbi decoding as continuous observations.
    """
    basis = np.array([[e1.real, e2.real],
                      [e1.imag, e2.imag]], dtype=np.float64)
    det = float(np.linalg.det(basis))
    if abs(det) < 1e-12 * max(abs(e1), abs(e2)) ** 2:
        raise CollisionUnresolvableError(2, "edge vectors are parallel")
    inv = np.linalg.inv(basis)
    d = np.asarray(differentials, dtype=np.complex128).ravel()
    stacked = np.stack([d.real, d.imag])
    return (inv @ stacked).T


def separate_two_way(differentials: np.ndarray,
                     rng: SeedLike = None,
                     method: str = "lattice_fit",
                     centroid_hint: Optional[np.ndarray] = None,
                     basis_hint: Optional[Tuple[complex, complex]] = None,
                     basis_tolerance: float = 0.25,
                     backend: Optional[KernelBackend] = None
                     ) -> SeparationResult:
    """Split a two-way collided stream into per-tag edge observations.

    Clusters the differentials into nine groups, recovers the basis
    (e1, e2) with the requested method, and returns the continuous
    lattice coordinates of every grid slot.

    Session decoding passes two warm-start hints from the previous
    epoch: ``centroid_hint`` (nine prior centroids) turns the k-means
    restart fan-out into a single warm Lloyd run, and ``basis_hint`` a
    prior (e1, e2) that is accepted outright — skipping the exhaustive
    pair search — whenever its lattice still explains the fresh
    centroids to within ``basis_tolerance`` of their scale.  A hint
    that no longer fits falls back to the cold recovery path, so a
    stale cache degrades to the exact cold behaviour.
    """
    pts = np.asarray(differentials, dtype=np.complex128).ravel()
    if pts.size < 9:
        raise CollisionUnresolvableError(
            2, f"only {pts.size} differentials; need >= 9 to fit the "
               "collision lattice")
    fit = kmeans(pts, 9, rng=rng, n_init=6,
                 init_centroids=centroid_hint, backend=backend)
    basis_cached = False
    e1 = e2 = None
    err = 0.0
    if basis_hint is not None:
        h1, h2 = complex(basis_hint[0]), complex(basis_hint[1])
        hint_err = _match_error(fit.centroids, _lattice_points(h1, h2),
                                backend=backend)
        scale = float(np.max(np.abs(fit.centroids)))
        if scale > 0 and hint_err <= basis_tolerance * scale:
            e1, e2, err = h1, h2, hint_err
            basis_cached = True
    if e1 is None:
        if basis_hint is not None and centroid_hint is not None:
            # The warm single-restart fit was seeded from the same
            # cache the basis came from; with the basis rejected the
            # seed is suspect too, so the cold recovery must run on a
            # cold fan-out fit — a stale cache degrades to the exact
            # cold behaviour, never to a poisoned one.
            fit = kmeans(pts, 9, rng=rng, n_init=6, backend=backend)
        if method == "lattice_fit":
            e1, e2, err = basis_from_lattice_fit(fit.centroids,
                                                 backend=backend)
        elif method == "collinear_midpoints":
            e1, e2 = basis_from_collinear_midpoints(fit.centroids)
            err = _match_error(fit.centroids, _lattice_points(e1, e2),
                               backend=backend)
        else:
            raise ConfigurationError(
                f"unknown separation method {method!r}; expected "
                "'lattice_fit' or 'collinear_midpoints'")
    coords = continuous_coords(pts, e1, e2)
    return SeparationResult(e1=e1, e2=e2, coords=coords,
                            lattice_error=float(err),
                            centroids=fit.centroids,
                            basis_cached=basis_cached)


def separate_collinear(differentials: np.ndarray,
                       rng: SeedLike = None,
                       min_scale_ratio: float = 1.35,
                       n_init: int = 6,
                       init_levels: Optional[np.ndarray] = None,
                       backend: Optional[KernelBackend] = None
                       ) -> SeparationResult:
    """Separate a two-way collision whose edge vectors are (anti)parallel.

    When h1 and h2 are collinear the 3x3 lattice collapses onto a line
    and the parallelogram construction fails — but the *scalar* lattice
    ``a*s1 + b*s2`` still has up to nine distinct values along that
    line, separable by 1-D clustering whenever the two magnitudes
    differ enough (``min_scale_ratio`` between |s1| and |s2|).  This
    extends the paper's method to its documented degenerate case.

    ``n_init`` is the k-means restart fan-out for the 1-D level fit;
    the adaptive pipeline narrows it (a 1-D fit converges from far
    fewer starts than the planar 9-cluster problem needs).

    ``init_levels`` (nine raw projection levels from an earlier fit of
    the same stream) replaces the cold fan-out with two warm restarts,
    one per axis orientation — the caller's projection axis and this
    function's eigenvector can disagree in sign, so both are tried and
    the better fit wins.  The RNG is left untouched in that case.
    """
    pts = np.asarray(differentials, dtype=np.complex128).ravel()
    if pts.size < 9:
        raise CollisionUnresolvableError(
            2, f"only {pts.size} differentials; need >= 9")
    # Principal axis of the scatter about the origin.
    x = np.stack([pts.real, pts.imag])
    eigvals, eigvecs = np.linalg.eigh(x @ x.T / pts.size)
    axis = eigvecs[:, -1]
    direction = complex(axis[0], axis[1])
    proj = pts.real * axis[0] + pts.imag * axis[1]

    pr = proj.astype(np.complex128)
    if init_levels is not None and np.asarray(init_levels).size == 9:
        # Two warm restarts (one per axis orientation) plus one cold
        # k-means++ draw: the warm seeds carry the multilevel check's
        # level structure, the cold draw keeps a bad warm fit from
        # deciding the split on its own.
        seeds = np.asarray(init_levels,
                           dtype=np.complex128).ravel()
        cold = _kmeans_pp_init(pr, 9, 1, make_rng(rng))
        fit = _lloyd_batched(pr, np.vstack([seeds[None, :],
                                            -seeds[None, :], cold]),
                             backend=backend)
    else:
        fit = kmeans(pr, 9, rng=rng, n_init=n_init, backend=backend)
    centroids = np.sort(fit.centroids.real)
    scale = float(np.max(np.abs(centroids)))
    if scale <= 0:
        raise CollisionUnresolvableError(2, "no signal on the axis")

    # Search scalar basis pairs exactly like the 2-D lattice fit: all
    # C(8, 2) = 28 candidate pairs are gate-filtered vectorized, the
    # survivors scored by one batched greedy matching.  triu_indices
    # enumerates pairs in itertools.combinations order and argmin
    # returns the first minimum, so the winner matches the former
    # serial loop's strict-less tie-break exactly.
    origin_idx = int(np.argmin(np.abs(centroids)))
    outer = np.delete(centroids, origin_idx)
    ii, jj = np.triu_indices(outer.size, k=1)
    s1s, s2s = outer[ii], outer[jj]
    small = np.minimum(np.abs(s1s), np.abs(s2s))
    big = np.maximum(np.abs(s1s), np.abs(s2s))
    ok = small > 0
    # Magnitudes too similar make the labels ambiguous.
    ok &= np.divide(big, small, out=np.full_like(big, np.inf),
                    where=small > 0) >= min_scale_ratio
    # The basis must explain the scatter's full extent: the largest
    # lattice value is |s1|+|s2|, which has to match the outermost
    # centroid (rejects aliases built from the small
    # near-cancellation value).
    ok &= np.abs((big + small) - scale) <= 0.2 * scale
    if np.any(ok):
        lattices = (s1s[ok, None] * _LATTICE_A[None, :]
                    + s2s[ok, None] * _LATTICE_B[None, :])
        # Reject coincidental value collisions (e.g. s1 = -2*s2 makes
        # two lattice points coincide and the labels ambiguous).
        gaps = np.abs(lattices[:, :, None] - lattices[:, None, :])
        gaps[:, np.arange(9), np.arange(9)] = np.inf
        clean = gaps.min(axis=(1, 2)) >= 0.2 * small[ok]
    if not np.any(ok) or not np.any(clean):
        raise CollisionUnresolvableError(
            2, "collinear magnitudes too similar to label")
    errs = _match_errors_batch(
        centroids.astype(np.complex128),
        lattices[clean].astype(np.complex128), backend=backend)
    win = int(np.argmin(errs))
    s1 = float(s1s[ok][clean][win])
    s2 = float(s2s[ok][clean][win])
    err = float(errs[win])
    if err > 0.15 * scale:
        raise CollisionUnresolvableError(
            2, f"scalar lattice fit too poor (err {err:.3g} vs scale "
               f"{scale:.3g})")

    # Hard-assign each projection to the nearest lattice point.
    lattice = _LATTICE_A * s1 + _LATTICE_B * s2
    coords_idx = np.argmin(np.abs(proj[:, None] - lattice[None, :]),
                           axis=1)
    ab = np.asarray(LATTICE_COORDS, dtype=np.float64)[coords_idx]
    return SeparationResult(e1=s1 * direction, e2=s2 * direction,
                            coords=ab, lattice_error=float(err))
