"""Stateful session decoding: warm-start caches across epochs.

The paper's premise (Section 3.2, Figure 4) is that tags transmit
*continuously and blindly* at a stable (rate, offset) pair set by
slow-drifting comparator/capacitor physics, and that a tag's IQ-plane
geometry — its channel coefficient, hence its differential clusters and
collision lattice basis — changes on the timescale of physical motion,
not of epochs.  A cold decoder re-derives all of that every epoch; a
*session* decoder carries it forward:

* :class:`StreamTracker` persists one stream's (rate, offset)
  hypothesis, k-means centroids, collision arity, and recovered lattice
  basis (e1, e2);
* :class:`SessionState` matches trackers to fresh streams with
  drift-tolerant period/phase/geometry tests, invalidates cached state
  whenever it stops explaining the data (fit-error blowup, repeated
  misses), and evicts trackers for streams that left the session;
* :class:`~repro.core.session_decoder.SessionDecoder` (in its own
  module, lazily re-exported here) is the user-facing wrapper: an
  :class:`~repro.core.pipeline.LFDecoder` plus a session state threaded
  through every ``decode_epoch`` call.

Warm state is advisory only: every consumer verifies it against the
fresh capture (single-fold check, warm-Lloyd inertia guard, lattice
error threshold) and falls back to the cold path on mismatch, so a
stale cache costs one extra check — never a wrong decode.

This module sits *below* :mod:`repro.core.pipeline` in the import
graph (the stage modules' typing refers to the tracker/state classes
here); it must not import the pipeline at module scope —
``tools/check_import_cycles.py`` enforces this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from .clustering import KMeansResult
from .collision import scatter_planarity
from .separation import _LATTICE_A, _LATTICE_B
# Canonical home of the counter keys and the merge semantics is the
# stats layer; re-exported here for compatibility.
from .stages.stats import CACHE_STAT_KEYS, StatsAccumulator


@dataclass(frozen=True)
class SessionConfig:
    """Tuning of cross-epoch stream tracking.

    ``period_tolerance`` is the relative period mismatch under which a
    tracker may claim a fresh stream (covers per-epoch estimation noise
    on top of the tag's fixed ppm drift); ``phase_tolerance_samples``
    the offset-phase proximity that identifies a stream whose phase is
    stable (consecutive chunks of one capture); and
    ``geometry_tolerance`` the relative IQ edge-vector distance used
    when the phase re-randomized between epochs (the comparator re-fires
    per carrier-on, Section 3.2) and only the channel geometry remains
    as identity.
    """

    period_tolerance: float = 1.5e-3
    phase_tolerance_samples: float = 8.0
    geometry_tolerance: float = 0.35
    #: Accept a cached lattice basis when its match error stays below
    #: this fraction of the centroid scale (else re-derive cold).
    basis_tolerance: float = 0.25
    #: A warm k-means fit whose per-point inertia exceeds the cached
    #: fit's by this factor no longer explains the data: redo cold.
    inertia_blowup: float = 4.0
    #: Consecutive unmatched epochs before a tracker is evicted.
    max_misses: int = 2
    #: Hard cap on live trackers (stalest evicted first).
    max_trackers: int = 256
    #: Warm-fit invalidations (without an intervening warm success)
    #: before a tracker is quarantined back to the cold path.  A cache
    #: entry that keeps failing its own verification is worse than no
    #: cache: every epoch pays the warm attempt *and* the cold redo.
    max_invalidations: int = 3

    def __post_init__(self) -> None:
        if self.period_tolerance <= 0:
            raise ConfigurationError("period_tolerance must be positive")
        if self.phase_tolerance_samples <= 0:
            raise ConfigurationError(
                "phase_tolerance_samples must be positive")
        if not 0 < self.geometry_tolerance < 2:
            raise ConfigurationError(
                "geometry_tolerance must be in (0, 2)")
        if self.inertia_blowup <= 1:
            raise ConfigurationError("inertia_blowup must be > 1")
        if self.max_misses < 1:
            raise ConfigurationError("max_misses must be >= 1")
        if self.max_trackers < 1:
            raise ConfigurationError("max_trackers must be >= 1")
        if self.max_invalidations < 1:
            raise ConfigurationError("max_invalidations must be >= 1")


@dataclass
class StreamTracker:
    """Persistent decoder state for one tracked stream.

    A "stream" is one fold-grid hypothesis: a single tag, or a pair of
    tags whose grids collided this epoch (``arity == 2``, in which case
    ``basis`` carries the recovered parallelogram).
    """

    period_samples: float
    offset_phase: float
    edge_vector: complex = 0j
    arity: int = 1
    #: IQ-plane k-means centroids of the collision detector's fits,
    #: keyed by cluster count (3 and 9).
    centroids: Dict[int, np.ndarray] = field(default_factory=dict)
    inertia_pp: Dict[int, float] = field(default_factory=dict)
    #: 1-D projection centroids of the multilevel check, keyed by k.
    proj_centroids: Dict[int, np.ndarray] = field(default_factory=dict)
    proj_inertia_pp: Dict[int, float] = field(default_factory=dict)
    #: Nine wide-guard centroids the separation basis was fitted on.
    collision_centroids: Optional[np.ndarray] = None
    basis: Optional[Tuple[complex, complex]] = None
    #: Resolved frame polarity of the (sign-pinned) projection axis —
    #: channel geometry, so it survives the per-epoch offset
    #: re-randomization and seeds the anchor stage's polarity search.
    flipped: Optional[bool] = None
    epochs_seen: int = 0
    misses: int = 0
    last_epoch: int = -1
    #: Transient per-epoch flag, reset by ``SessionState.begin_epoch``.
    matched: bool = False
    #: Consecutive warm-fit invalidations without a warm success.
    invalidations: int = 0
    #: Quarantined trackers are invisible to matching, fold hints and
    #: pair synthesis — the stream decodes cold and re-seeds a fresh
    #: tracker; the quarantined entry is dropped at epoch end.
    quarantined: bool = False

    def centroid_hints(self) -> Optional[Dict[int, np.ndarray]]:
        return dict(self.centroids) if self.centroids else None

    def proj_hints(self) -> Optional[Dict[int, np.ndarray]]:
        return dict(self.proj_centroids) if self.proj_centroids else None


def edge_signature(differentials: np.ndarray) -> complex:
    """Sign-ambiguous identity vector of a stream's differentials.

    The principal direction of the strong (edge) differentials scaled
    by their median magnitude — for a single tag this is (+/-) its edge
    vector ``e``, a function of the tag-reader channel alone and hence
    stable across epochs even though the comparator re-randomizes the
    stream's phase each carrier-on.
    """
    d = np.asarray(differentials, dtype=np.complex128).ravel()
    if d.size == 0:
        return 0j
    mags = np.abs(d)
    peak = float(mags.max())
    if peak <= 0:
        return 0j
    strong = d[mags > 0.5 * peak]
    if strong.size == 0:
        return 0j
    x = np.stack([strong.real, strong.imag])
    _, eigvecs = np.linalg.eigh(x @ x.T / strong.size)
    u = eigvecs[:, -1]
    proj = strong.real * u[0] + strong.imag * u[1]
    scale = float(np.median(np.abs(proj)))
    return complex(scale * u[0], scale * u[1])


def _signature_distance(a: complex, b: complex) -> float:
    """Relative distance between sign-ambiguous signatures."""
    ref = max(abs(a), abs(b))
    if ref <= 0:
        return float("inf")
    return min(abs(a - b), abs(a + b)) / ref


class SessionState:
    """Tracker collection plus per-epoch cache accounting."""

    def __init__(self, config: Optional[SessionConfig] = None):
        self.config = config or SessionConfig()
        self.trackers: List[StreamTracker] = []
        self.epoch_count = 0
        #: Session-lifetime totals of the per-epoch cache counters.
        self.totals: Dict[str, int] = {key: 0 for key in CACHE_STAT_KEYS}
        #: Session-lifetime totals of the per-epoch fidelity-gate
        #: counters (see :mod:`repro.core.fidelity`).
        self.fidelity_totals: Dict[str, int] = {}
        #: Trackers quarantined back to the cold path so far.
        self.n_quarantined = 0
        #: Trackers behind this epoch's ``warm_hints`` (index-aligned).
        self._hint_trackers: List[StreamTracker] = []
        #: Global sample position of the current epoch's first sample.
        #: Zero for independent epochs; chunked decoding of one long
        #: capture sets it per chunk so offset phases stay comparable
        #: across chunk boundaries (the tag keeps toggling through
        #: them, so its global phase is the stable identity there).
        self.sample_offset = 0.0
        self._phase_identity = False

    @property
    def n_trackers(self) -> int:
        return len(self.trackers)

    # -- epoch lifecycle --------------------------------------------------

    def begin_epoch(self, sample_offset: float = 0.0) -> None:
        self.sample_offset = float(sample_offset)
        # Offset phase identifies a stream only while the capture is
        # continuous: every independent epoch re-randomizes offsets
        # (comparator re-fire, Section 3.2), so a cross-epoch phase
        # coincidence is spurious — and acting on one hands the wrong
        # tracker's cache to a stream.  A non-zero sample offset is
        # exactly the "later chunk of one capture" case.
        self._phase_identity = self.sample_offset != 0.0
        for tracker in self.trackers:
            tracker.matched = False
        self._hint_trackers = [t for t in self.trackers
                               if t.misses == 0 and not t.quarantined]

    def end_epoch(self, cache_stats: Dict[str, int],
                  fidelity_stats: Optional[Dict[str, int]] = None
                  ) -> None:
        """Miss accounting + eviction, then fold counters into totals."""
        survivors: List[StreamTracker] = []
        for tracker in self.trackers:
            if tracker.quarantined:
                # Back to the cold path: the stream (if still present)
                # re-seeded a fresh tracker via ``observe`` this epoch.
                continue
            if tracker.matched:
                tracker.misses = 0
                survivors.append(tracker)
            else:
                tracker.misses += 1
                if tracker.misses < self.config.max_misses:
                    survivors.append(tracker)
        if len(survivors) > self.config.max_trackers:
            survivors.sort(key=lambda t: (t.misses, -t.last_epoch))
            survivors = survivors[:self.config.max_trackers]
        self.trackers = survivors
        self.epoch_count += 1
        StatsAccumulator.merge_counts(self.totals, cache_stats)
        if fidelity_stats:
            StatsAccumulator.merge_counts(self.fidelity_totals,
                                          fidelity_stats)

    # -- warm hints for the fold search -----------------------------------

    def warm_hints(self) -> List[Tuple[float, float]]:
        """(period, offset_phase) pairs for the warm fold check.

        Only trackers seen last epoch contribute: the warm fold claims
        the strongest remaining peak per iteration regardless of hint
        identity, so the hint count is a fold *budget* and should track
        the number of streams actually present, not the eviction
        backlog.
        """
        return [(t.period_samples, t.offset_phase)
                for t in self._hint_trackers]

    def hint_tracker(self, hint_index: Optional[int]
                     ) -> Optional[StreamTracker]:
        if hint_index is None or not \
                0 <= hint_index < len(self._hint_trackers):
            return None
        return self._hint_trackers[hint_index]

    # -- tracker matching -------------------------------------------------

    def match(self, period_samples: float, offset_samples: float,
              differentials: np.ndarray,
              preferred: Optional[StreamTracker] = None
              ) -> Optional[StreamTracker]:
        """Find the tracker that explains a fresh stream, if any.

        The period must agree to within ``period_tolerance``
        (drift-tolerant: the tag's ppm error is already folded into the
        cached period); identity is then confirmed by either a stable
        offset phase (chunked captures) or — since the comparator
        re-randomizes the phase every carrier-on — by the IQ edge
        signature, which only depends on the channel.
        """
        cfg = self.config
        phase = (offset_samples + self.sample_offset) % period_samples
        sig = edge_signature(differentials)

        def _score(tracker: StreamTracker) -> Optional[float]:
            if tracker.matched or tracker.quarantined:
                return None
            rel = abs(tracker.period_samples - period_samples) \
                / period_samples
            if rel > cfg.period_tolerance:
                return None
            if self._phase_identity:
                gap = abs(phase - tracker.offset_phase)
                gap = min(gap, period_samples - gap)
                if gap <= cfg.phase_tolerance_samples:
                    return gap / cfg.phase_tolerance_samples * 1e-3
            if tracker.arity >= 2:
                # A collision tracker's identity is its *pairing*, and
                # pairings re-randomize with the offsets each epoch:
                # only a stable phase (same capture, chunked decode)
                # can re-identify it.  Its combined-lattice geometry
                # matching a fresh stream across epochs is always
                # spurious.
                return None
            dist = _signature_distance(sig, tracker.edge_vector)
            if dist <= cfg.geometry_tolerance:
                return dist
            return None

        if preferred is not None:
            score = _score(preferred)
            if score is not None:
                preferred.matched = True
                return preferred
        best: Optional[StreamTracker] = None
        best_score = float("inf")
        for tracker in self.trackers:
            score = _score(tracker)
            if score is not None and score < best_score:
                best, best_score = tracker, score
        if best is not None:
            best.matched = True
        return best

    # -- cross-stream collision synthesis ---------------------------------

    def synthesize_pair(self, differentials: np.ndarray
                        ) -> Optional[Tuple[StreamTracker,
                                            StreamTracker]]:
        """Explain a two-dimensional stream as a collision of two
        *known* tags.

        Collision pairings re-randomize every epoch (offsets re-draw),
        so a fresh collision never matches a cached collision tracker —
        but its lattice basis is just the two constituents' edge
        vectors, and those are cached in the singles' trackers.  Scores
        every unmatched single-tag pair's 9-point lattice against the
        differentials; a pair that explains them within
        ``basis_tolerance`` of the edge scale is returned for a fully
        warm two-way separation.  Collinear scatters (plain singles)
        are rejected up front.
        """
        d = np.asarray(differentials, dtype=np.complex128).ravel()
        if d.size < 9 or scatter_planarity(d) < 0.02:
            return None
        cands = [t for t in self.trackers
                 if not t.matched and not t.quarantined
                 and t.arity == 1 and abs(t.edge_vector) > 0]
        if len(cands) < 2:
            return None
        vectors = np.array([t.edge_vector for t in cands])
        ii, jj = np.triu_indices(vectors.size, k=1)
        lattices = (_LATTICE_A[None, :] * vectors[ii, None]
                    + _LATTICE_B[None, :] * vectors[jj, None])
        sample = d if d.size <= 64 else d[:: d.size // 64][:64]
        dist = np.abs(sample[None, None, :] - lattices[:, :, None])
        # Symmetric chamfer error: every differential must sit near a
        # lattice point AND every lattice point must have support in
        # the data — the reverse direction is what rejects a wrong
        # pair whose mixed corners nothing ever visits (the greedy
        # one-to-one check inside the separator would reject it later,
        # after the expensive extraction already ran).
        forward = dist.min(axis=1).mean(axis=1)
        reverse = dist.min(axis=2).mean(axis=1)
        errors = np.maximum(forward, reverse)
        best = int(np.argmin(errors))
        a, b = cands[ii[best]], cands[jj[best]]
        scale = max(abs(a.edge_vector), abs(b.edge_vector))
        if scale <= 0 or errors[best] > self.config.basis_tolerance \
                * scale:
            return None
        return a, b

    def consume_pair(self, a: StreamTracker, b: StreamTracker) -> None:
        """Mark both constituents of a synthesized collision as seen.

        They produced no single streams this epoch (their edges are in
        the collision), but the tags are present and their channel
        identity must survive the collision for later epochs.
        """
        for tracker in (a, b):
            tracker.matched = True
            tracker.misses = 0
            tracker.last_epoch = self.epoch_count

    # -- state updates ----------------------------------------------------

    def observe(self, tracker: Optional[StreamTracker],
                period_samples: float, offset_samples: float,
                differentials: np.ndarray,
                fits: Optional[Dict[int, KMeansResult]] = None,
                proj_fits: Optional[Dict[int, KMeansResult]] = None,
                arity: int = 1,
                basis: Optional[Tuple[complex, complex]] = None,
                collision_centroids: Optional[np.ndarray] = None,
                flipped: Optional[bool] = None
                ) -> StreamTracker:
        """Refresh (or create) a tracker from this epoch's decode.

        Called only for streams that decoded successfully — a stream
        that failed the header gate leaves no cache entry, so nothing
        warm-starts from garbage.
        """
        phase = (offset_samples + self.sample_offset) % period_samples
        sig = edge_signature(differentials)
        if tracker is None:
            # A stream no unmatched tracker claimed is either genuinely
            # new or a ghost copy of a stream already tracked this
            # epoch (the residual re-detections _dedup_streams drops).
            # Ghosts must not spawn trackers: their hints would bloat
            # the next epoch's warm fold and steal the real stream's
            # edges.
            dup = self._find_matched_duplicate(period_samples, phase,
                                               sig)
            if dup is not None:
                return dup
            tracker = StreamTracker(period_samples=period_samples,
                                    offset_phase=phase)
            self.trackers.append(tracker)
        tracker.period_samples = period_samples
        tracker.offset_phase = phase
        tracker.edge_vector = sig
        tracker.arity = arity
        if fits:
            for k, fit in fits.items():
                tracker.centroids[k] = np.array(fit.centroids)
                tracker.inertia_pp[k] = fit.inertia \
                    / max(fit.labels.size, 1)
        if proj_fits:
            for k, fit in proj_fits.items():
                tracker.proj_centroids[k] = np.array(fit.centroids)
                tracker.proj_inertia_pp[k] = fit.inertia \
                    / max(fit.labels.size, 1)
        if arity >= 2:
            tracker.basis = basis
            if collision_centroids is not None:
                tracker.collision_centroids = \
                    np.array(collision_centroids)
        else:
            tracker.basis = None
            tracker.collision_centroids = None
            if flipped is not None:
                tracker.flipped = flipped
        tracker.matched = True
        tracker.misses = 0
        tracker.epochs_seen += 1
        tracker.last_epoch = self.epoch_count
        return tracker

    def _find_matched_duplicate(self, period_samples: float,
                                phase: float, sig: complex
                                ) -> Optional[StreamTracker]:
        """Tracker already matched this epoch that this stream copies.

        Duplicate means same period, *and* same phase *and* geometry —
        a residual re-detection of an already-decoded stream, not a
        distinct tag that merely shares timing.
        """
        cfg = self.config
        for tracker in self.trackers:
            if not tracker.matched or tracker.quarantined:
                continue
            rel = abs(tracker.period_samples - period_samples) \
                / period_samples
            if rel > cfg.period_tolerance:
                continue
            gap = abs(phase - tracker.offset_phase)
            gap = min(gap, period_samples - gap)
            if gap > cfg.phase_tolerance_samples:
                continue
            if _signature_distance(sig, tracker.edge_vector) \
                    <= cfg.geometry_tolerance:
                return tracker
        return None

    def note_invalidation(self, tracker: StreamTracker) -> None:
        """Record a warm-fit blowup against ``tracker``.

        After ``max_invalidations`` consecutive blowups the tracker is
        quarantined: it stops feeding hints, matching or pair synthesis,
        the stream decodes cold (re-seeding a fresh tracker), and the
        stale entry is dropped at epoch end.
        """
        tracker.invalidations += 1
        if not tracker.quarantined and \
                tracker.invalidations >= self.config.max_invalidations:
            tracker.quarantined = True
            self.n_quarantined += 1

    def note_warm_success(self, tracker: StreamTracker) -> None:
        """A warm fit passed verification: the cache explains the data."""
        tracker.invalidations = 0

    def warm_fit_blown(self, cached_inertia_pp: Dict[int, float],
                       fits: Dict[int, KMeansResult],
                       keys: Optional[Sequence[int]] = None) -> bool:
        """True when a warm fit stopped explaining the data.

        Compares a warm fit's per-point inertia against the cached fit
        it was seeded from; a blowup means the stream moved (or the
        tracker matched the wrong stream) and the cold path must rerun.
        Only the structurally meaningful cluster counts in ``keys`` are
        guarded (default: all cached ones) — an overfit count's inertia
        is noise-dominated and its ratio meaninglessly unstable.
        """
        for k, fit in fits.items():
            if keys is not None and k not in keys:
                continue
            cached = cached_inertia_pp.get(k)
            if cached is None:
                continue
            per_point = fit.inertia / max(fit.labels.size, 1)
            floor = max(cached, 1e-18)
            if per_point > self.config.inertia_blowup * floor:
                return True
        return False


def __getattr__(name: str):
    # Lazy re-export: SessionDecoder moved to session_decoder.py (it
    # sits above the pipeline in the import graph, this module below).
    # PEP 562 keeps ``from repro.core.session import SessionDecoder``
    # working without a module-scope import cycle.
    if name == "SessionDecoder":
        from .session_decoder import SessionDecoder
        return SessionDecoder
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")
