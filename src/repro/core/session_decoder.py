"""The user-facing stateful decoder: an LFDecoder plus session state.

Split out of :mod:`repro.core.session` so the import graph stays
layered: ``session.py`` holds the warm-start *state* (trackers,
matching, eviction) and is imported by the stage modules' typing; this
module composes that state with the stage-graph decoder and therefore
sits *above* :mod:`repro.core.pipeline`.  ``repro.core.session``
re-exports :class:`SessionDecoder` lazily for compatibility.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..types import EpochResult, IQTrace
from ..utils.rng import SeedLike
from .pipeline import LFDecoder
from .session import SessionConfig, SessionState


class SessionDecoder:
    """A decoder that stays warm across consecutive epochs.

    Drop-in upgrade over :class:`~repro.core.pipeline.LFDecoder` for
    sustained multi-epoch traffic: the first epoch decodes cold and
    seeds the session state; later epochs warm-start the fold search,
    the collision-detection k-means, and the separation basis recovery
    from the tracked per-stream state.  Every
    :class:`~repro.types.EpochResult` carries the per-stage cache
    hit/miss counters in ``cache_stats``.
    """

    def __init__(self, config=None, rng: SeedLike = None,
                 session_config: Optional[SessionConfig] = None):
        self.decoder = LFDecoder(config, rng=rng)
        self.state = SessionState(session_config)

    @property
    def config(self):
        return self.decoder.config

    @property
    def cache_stats(self) -> Dict[str, int]:
        """Session-lifetime cache hit/miss totals."""
        return dict(self.state.totals)

    @property
    def fidelity_stats(self) -> Dict[str, int]:
        """Session-lifetime fidelity-gate totals."""
        return dict(self.state.fidelity_totals)

    @property
    def n_trackers(self) -> int:
        return self.state.n_trackers

    def add_observer(self, observer) -> None:
        """Attach a :class:`~repro.core.stages.context.StageObserver`
        to the underlying decoder (read-only, decode-invariant)."""
        self.decoder.add_observer(observer)

    def decode_epoch(self, trace: IQTrace,
                     sample_offset: float = 0.0) -> EpochResult:
        """Decode one epoch, warm-started from the session state.

        ``sample_offset`` positions the trace inside a longer capture
        (see :meth:`repro.core.pipeline.LFDecoder.decode_epoch`).
        """
        return self.decoder.decode_epoch(trace, session=self.state,
                                         sample_offset=sample_offset)

    def decode_epochs(self, traces: Iterable[IQTrace]
                      ) -> List[EpochResult]:
        """Decode consecutive epochs of one capture session, in order."""
        results = []
        for index, trace in enumerate(traces):
            result = self.decode_epoch(trace)
            result.epoch_index = index
            results.append(result)
        return results

    def reset(self) -> None:
        """Drop all session state (next epoch decodes cold)."""
        self.state = SessionState(self.state.config)
