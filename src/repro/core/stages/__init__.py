"""Composable decode stages over a shared :class:`DecodeContext`.

Each module in this package implements one stage of the paper's
pipeline (Fig. 3) behind the small :class:`Stage` protocol; the
:class:`StageRunner` executes them with uniform timing, per-stream
fault confinement and :class:`StageObserver` dispatch.  The default
stage lists below are what :class:`repro.core.pipeline.LFDecoder`,
:class:`repro.core.session_decoder.SessionDecoder`,
:class:`repro.core.engine.BatchDecoder` and
:func:`repro.reader.batch.decode_chunked` all compose.
"""

from __future__ import annotations

from typing import List

from .anchor import AnchorStage, DedupStage, assemble_stream, \
    dedup_streams
from .collision import CollisionStage
from .context import (DecodeContext, Stage, StageObserver, StageRunner,
                      StreamScope, stream_fault)
from .edges import EdgeStage
from .equalizer import EqualizerStage
from .folding import AnalogFallbackStage, FoldStage
from .guard import GuardStage
from .projection import (hold_cluster_noise, looks_multilevel,
                         project_single, project_single_scaled)
from .separation import (SeparationStage, decode_collided,
                         decode_collinear)
from .stats import CACHE_STAT_KEYS, StatsAccumulator, worse_health
from .tracking import StreamsStage, TrackStage


def default_epoch_stages() -> List[Stage]:
    """The epoch-level stage list of the paper's pipeline, in order."""
    return [GuardStage(), EqualizerStage(), EdgeStage(), FoldStage(),
            StreamsStage(), AnalogFallbackStage(), DedupStage()]


def default_stream_stages() -> List[Stage]:
    """The per-stream-hypothesis stage chain, in order."""
    return [TrackStage(), CollisionStage(), SeparationStage(),
            AnchorStage()]


__all__ = [
    "AnalogFallbackStage", "AnchorStage", "CACHE_STAT_KEYS",
    "CollisionStage", "DecodeContext", "DedupStage", "EdgeStage",
    "EqualizerStage", "FoldStage", "GuardStage", "SeparationStage",
    "Stage",
    "StageObserver", "StageRunner", "StatsAccumulator", "StreamScope",
    "StreamsStage", "TrackStage", "assemble_stream", "decode_collided",
    "decode_collinear", "dedup_streams", "default_epoch_stages",
    "default_stream_stages", "hold_cluster_noise", "looks_multilevel",
    "project_single", "project_single_scaled", "stream_fault",
    "worse_health",
]
