"""Anchor / frame-assembly stages (Section 3.4, Table 1, Section 3.5).

:func:`assemble_stream` turns one stream's scalar observations into a
:class:`~repro.types.DecodedStream` — Viterbi error correction, header
gate, anchor-bit polarity resolution — and is shared by the anchor
stage, the separation paths (each separated collider assembles here
too) and the analog fallback.  :class:`AnchorStage` is the stream
chain's terminal stage for non-collided streams; :class:`DedupStage`
is the epoch-level finisher that drops ghost duplicates.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ...errors import DecodeError
from ...types import DecodedStream
from ..anchor import assemble_bits
from ..streams import StreamTrack
from .context import DecodeContext


def assemble_stream(ctx: DecodeContext, observations: np.ndarray,
                    track: StreamTrack, collided: bool,
                    edge_vector: complex = 0j,
                    flipped_hint: Optional[bool] = None
                    ) -> Optional[DecodedStream]:
    """Error-correct, gate and frame one stream's observations.

    Returns ``None`` (after recording nothing) when the header gate
    rejects the stream.  The resolved projection polarity is exposed on
    ``ctx.last_flipped`` for the session cache: it is channel geometry,
    stable across epochs.
    """
    cfg = ctx.config
    ctx.last_flipped = None
    try:
        with ctx.stats.stage("viterbi"):
            assembled = assemble_bits(
                observations,
                use_viterbi=cfg.enable_error_correction,
                decoder=ctx.viterbi,
                preamble_bits=cfg.preamble_bits,
                anchor_bit=cfg.anchor_bit,
                min_header_score=cfg.min_header_score,
                flipped_hint=flipped_hint,
                prescreen=ctx.fidelity.active)
    except DecodeError:
        return None
    ctx.last_flipped = assembled.flipped
    offset = (track.offset_samples
              + assembled.start_slot * track.period_samples)
    fs = cfg.profile.sample_rate_hz
    measured_rate = fs / track.period_samples
    nominal = min(cfg.candidate_bitrates_bps,
                  key=lambda r: abs(r - measured_rate))
    return DecodedStream(
        bits=assembled.bits,
        offset_samples=offset,
        period_samples=track.period_samples,
        bitrate_bps=nominal,
        collided=collided,
        edge_vector=edge_vector,
        confidence=assembled.header_score,
    )


class AnchorStage:
    """Assemble the (non-collided) stream and refresh its tracker."""

    name = "anchor"
    timing_key = None  # times its Viterbi core into ``viterbi``

    def run(self, ctx: DecodeContext) -> None:
        scope = ctx.stream
        hint = (scope.tracker.flipped
                if scope.trusted and scope.tracker.arity == 1 else None)
        stream = assemble_stream(ctx, scope.observations, scope.track,
                                 collided=False, flipped_hint=hint)
        if stream is not None and ctx.session is not None \
                and ctx.period_cacheable(scope.track.period_samples):
            ctx.session.observe(scope.tracker if scope.trusted else None,
                                scope.track.period_samples,
                                scope.track.offset_samples, scope.diffs,
                                fits=scope.fits,
                                proj_fits=scope.proj_fits,
                                flipped=ctx.last_flipped)
        scope.finish([stream] if stream is not None else [])


def dedup_streams(streams: List[DecodedStream],
                  offset_tolerance: float = 8.0,
                  max_disagreement: float = 0.15
                  ) -> List[DecodedStream]:
    """Drop ghost duplicates: same rate, same phase, same bits.

    Residual detections of a decoded stream occasionally assemble into
    a second copy shifted by a few samples.  A ghost decodes (nearly)
    the same bit sequence as the original, which distinguishes it from
    a genuinely distinct tag that happens to share the phase — the
    latter carries different data and must be kept.
    """
    kept: List[DecodedStream] = []
    for stream in sorted(streams,
                         key=lambda s: (-s.confidence, -s.n_bits)):
        duplicate = False
        for existing in kept:
            if existing.bitrate_bps != stream.bitrate_bps:
                continue
            period = existing.period_samples
            gap = abs(stream.offset_samples - existing.offset_samples)
            gap_mod = min(gap % period, period - gap % period)
            if gap_mod > offset_tolerance:
                continue
            n = min(existing.n_bits, stream.n_bits)
            if n == 0:
                continue
            disagreement = float(np.count_nonzero(
                existing.bits[:n] != stream.bits[:n])) / n
            if disagreement <= max_disagreement:
                duplicate = True
                break
        if not duplicate:
            kept.append(stream)
    return kept


class DedupStage:
    """Collapse ghost re-detections across the epoch's streams."""

    name = "dedup"
    timing_key = None  # negligible glue; lands in the total only

    def run(self, ctx: DecodeContext) -> None:
        ctx.result.streams = dedup_streams(ctx.result.streams)
