"""Collision-detection stage (Section 3.3).

Decides whether a stream's IQ differential scatter is one tag or a
collision, using every warm shortcut the session offers before paying
for the cold 3-vs-9 k-means fan-out:

1. a matched single-tag tracker re-verifies with one planarity check
   plus one warm Lloyd restart (skipping the fan-out entirely);
2. an unmatched two-dimensional scatter is tested against *pairs* of
   known tags' cached edge vectors (a fresh collision between known
   tags is warm even though the pairing re-randomizes every epoch);
3. otherwise the full detector runs (fidelity-gated, see
   :mod:`repro.core.fidelity`), with warm centroid hints verified by
   the inertia-blowup guard and invalidated on mismatch.

A detected two-way collision is handed to the separation module; an
unresolvable one records a :class:`~repro.types.StreamFault` with a
diagnostic collider count and falls through so the strongest collider
may still be salvaged as a single stream by the later stages.
"""

from __future__ import annotations

import numpy as np

from ...errors import (CollisionUnresolvableError, ConfigurationError,
                       DecodeError)
from ...types import StreamFault
from ..clustering import kmeans
from ..collision import (CollisionReport, detect_collision,
                         effective_planarity_threshold,
                         scatter_planarity)
from .context import DecodeContext
from .projection import hold_cluster_noise
from .separation import decode_collided


def _diagnose_colliders(diffs: np.ndarray,
                        report: CollisionReport) -> int:
    """Best-effort collider count for an unresolved collision.

    Re-runs collision detection with the cluster-count sweep extended
    to 27 (= 3 colliders), which the decode path never tries because
    nothing past 2-way is separable anyway.  The sweep uses its own
    fixed-seed RNG so this diagnostic never perturbs the decoder's
    random stream — clean decodes stay bit-identical whether or not a
    failure path ran.
    """
    try:
        diag = detect_collision(diffs, candidates=(3, 9, 27),
                                rng=np.random.default_rng(0))
    except Exception:  # noqa: BLE001 — diagnostics must not raise
        return report.estimated_colliders
    return max(diag.estimated_colliders, report.estimated_colliders)


class CollisionStage:
    """Classify the stream's scatter; resolve two-way collisions."""

    name = "collision"
    timing_key = None  # times its k-means core into ``detect``

    def run(self, ctx: DecodeContext) -> None:
        scope = ctx.stream
        session = ctx.session
        diffs = scope.diffs
        tracker = scope.tracker
        if not (ctx.config.enable_iq_separation and diffs.size >= 9):
            return
        noise_scale = hold_cluster_noise(diffs)
        report = None
        if scope.trusted and tracker.arity == 1 \
                and 3 in tracker.centroids \
                and 3 in tracker.inertia_pp:
            # Fast path: the tracker saw a single tag here last
            # epoch.  Planarity (the same statistic the full
            # detector gates on) must still look one-dimensional —
            # a weak new collider can fatten the scatter without
            # blowing the k-means inertia — and then one warm Lloyd
            # restart of the 3-cluster model verifies the cluster
            # structure, skipping the 9-cluster fan-out entirely.
            with ctx.stats.stage("detect"):
                planarity = scatter_planarity(diffs)
                if planarity > effective_planarity_threshold(
                        diffs, noise_scale=noise_scale):
                    # The tracked tag is likely inside a fresh
                    # collision now: release the tracker so pair
                    # synthesis may claim it as a constituent.
                    tracker.matched = False
                    scope.tracker = tracker = None
                    scope.trusted = False
                    ctx.bump("kmeans_misses")
                else:
                    three = kmeans(diffs.ravel(), 3, rng=ctx.rng,
                                   init_centroids=tracker.centroids[3],
                                   backend=ctx.kernels)
                    if session.warm_fit_blown(tracker.inertia_pp,
                                              {3: three}, keys=(3,)):
                        scope.trusted = False
                        ctx.bump("kmeans_misses")
                        session.note_invalidation(tracker)
                    else:
                        ctx.bump("kmeans_hits")
                        session.note_warm_success(tracker)
                        scope.fits[3] = three
                        scope.fast_single = True
                        report = CollisionReport(
                            is_collision=False, n_clusters=3,
                            planarity=planarity,
                            kmeans=three)
        if report is None and session is not None \
                and (tracker is None or not scope.trusted):
            # The stream matches no cached state directly — but a
            # *new* collision between two known tags is still warm:
            # its lattice basis is the constituents' cached edge
            # vectors (collision pairings re-randomize each epoch,
            # the channel geometry does not).
            with ctx.stats.stage("detect"):
                synth = session.synthesize_pair(diffs)
            if synth is not None:
                pair_a, pair_b = synth
                try:
                    streams = decode_collided(
                        ctx, scope.track,
                        basis_override=(pair_a.edge_vector,
                                        pair_b.edge_vector))
                except (DecodeError, ConfigurationError):
                    streams = []
                if streams:
                    session.consume_pair(pair_a, pair_b)
                    ctx.result.n_collisions_detected += 1
                    ctx.result.n_collisions_resolved += 1
                    scope.finish(streams)
                    return
        if report is None:
            hints = (tracker.centroid_hints()
                     if scope.trusted and tracker.arity >= 2 else None)
            # A matched single-tag tracker that lacks cached
            # centroids (fresh tracker, invalidated cache) still
            # vouches for the stream's geometry: the planarity
            # pre-gate runs with its relaxed warm margin.
            warm_vouched = (scope.trusted and tracker is not None
                            and tracker.arity == 1)
            with ctx.stats.stage("detect"):
                report = detect_collision(
                    diffs, noise_scale=noise_scale,
                    rng=ctx.rng, centroid_hints=hints,
                    fits_out=scope.fits, policy=ctx.fidelity,
                    stats=ctx.stats.fidelity, warm=warm_vouched,
                    cache_fast_fit=session is not None,
                    backend=ctx.kernels)
                if hints is not None:
                    if session.warm_fit_blown(tracker.inertia_pp,
                                              scope.fits, keys=(9,)):
                        # The cached centroids no longer explain
                        # this stream (moved tag or wrong tracker):
                        # rerun the cold fan-out.
                        scope.trusted = False
                        ctx.bump("kmeans_misses")
                        session.note_invalidation(tracker)
                        scope.fits = {}
                        report = detect_collision(
                            diffs, noise_scale=noise_scale,
                            rng=ctx.rng, fits_out=scope.fits,
                            policy=ctx.fidelity,
                            stats=ctx.stats.fidelity,
                            backend=ctx.kernels)
                    else:
                        ctx.bump("kmeans_hits")
                        session.note_warm_success(tracker)
        scope.report = report
        if report.is_collision:
            ctx.result.n_collisions_detected += 1
            if report.estimated_colliders <= 2:
                try:
                    streams = decode_collided(
                        ctx, scope.track,
                        tracker=tracker if scope.trusted else None,
                        fits=scope.fits)
                except (DecodeError, ConfigurationError):
                    streams = []
                if streams:
                    ctx.result.n_collisions_resolved += 1
                    scope.finish(streams)
                    return
            # Separation failed or was never attempted (>2-way):
            # report the unresolved collision with a diagnostic
            # collider estimate, then fall through to the remaining
            # stages to salvage the strongest collider as a single
            # stream — the header gate drops it again if the
            # contamination is too heavy.
            n_colliders = _diagnose_colliders(diffs, report)
            error = CollisionUnresolvableError(n_colliders)
            ctx.stats.note_fault(StreamFault(
                offset_samples=scope.track.offset_samples,
                period_samples=scope.track.period_samples,
                stage="separate",
                error_type=type(error).__name__,
                message=str(error),
                n_colliders=n_colliders,
                expected=False))
