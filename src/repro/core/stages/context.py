"""The shared decode context, the Stage protocol, and the stage runner.

The paper's decoder is a chain of stages (Fig. 3): edge detection →
eye-pattern folding → collision detection → parallelogram separation →
Viterbi → anchor.  Each stage is a module in this package implementing
the small :class:`Stage` protocol — a ``name`` plus ``run(ctx)`` over
one shared :class:`DecodeContext` that carries the trace, the decoder
configuration, the fidelity policy, the (optional) session warm-start
state and a single :class:`~repro.core.stages.stats.StatsAccumulator`.

:class:`StageRunner` applies the cross-cutting concerns uniformly so
stage modules contain only paper logic:

* **timing** — epoch-level stages with a ``timing_key`` are timed into
  that stage bucket by the runner; per-stream stages time their hot
  sub-blocks themselves (the ``extract`` / ``detect`` / ``separate`` /
  ``viterbi`` buckets accumulate across every stream hypothesis, which
  a whole-stage timer could not reproduce);
* **fault confinement** — a per-stream stage that raises degrades only
  its own stream hypothesis into a :class:`~repro.types.StreamFault`;
  the remaining hypotheses still decode;
* **observability** — :class:`StageObserver` callbacks fire around
  every stage invocation and on every confined fault.  Observers are
  read-only taps: attaching one must not change decode output (pinned
  by the golden-digest equivalence tests).

This module sits below ``session.py`` and ``pipeline.py`` in the
import graph and must not import either at runtime (typing-only
imports are fine); ``tools/check_import_cycles.py`` enforces this.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, Dict, List, Optional, Protocol,
                    Sequence, Tuple, runtime_checkable)

import numpy as np

from ...errors import ConfigurationError, DecodeError
from ...types import (DecodedStream, DetectedEdge, EpochResult,
                      IQTrace, StreamFault, StreamHypothesis)
from ..clustering import KMeansResult
from ..collision import CollisionReport
from ..folding import FoldingConfig
from ..kernels import KernelBackend, get_backend
from ..streams import StreamTrack
from .stats import StatsAccumulator

if TYPE_CHECKING:  # typing only — no runtime import cycle
    from ..edges import EdgeDetector
    from ..fidelity import FidelityPolicy
    from ..session import SessionState, StreamTracker
    from ..viterbi import ViterbiDecoder


@dataclass
class StreamScope:
    """Mutable per-stream state threaded through the stream stages.

    One scope lives for the decode of one fold-grid hypothesis; the
    stream-level stages (tracking → collision → separation → anchor)
    read and refine it in order.  ``done`` short-circuits the rest of
    the chain once a stage fully resolved the stream (e.g. a two-way
    separation that produced both colliders).
    """

    hypothesis: StreamHypothesis
    #: Warm-fold hint index that produced the hypothesis (None = cold).
    source: Optional[int] = None
    #: Tracker suggested by the fold hint, tried first when matching.
    preferred: Optional["StreamTracker"] = None
    track: Optional[StreamTrack] = None
    diffs: Optional[np.ndarray] = None
    tracker: Optional["StreamTracker"] = None
    #: Warm trust is per-stream and revocable: the first warm fit that
    #: stops explaining the data drops the stream onto the cold path.
    trusted: bool = False
    fast_single: bool = False
    fits: Dict[int, KMeansResult] = field(default_factory=dict)
    report: Optional[CollisionReport] = None
    observations: Optional[np.ndarray] = None
    proj_scale: float = 0.0
    proj_fits: Dict[int, KMeansResult] = field(default_factory=dict)
    multilevel: Optional[bool] = None
    #: Decoded output of this hypothesis (0, 1 or 2 streams).
    streams: List[DecodedStream] = field(default_factory=list)
    done: bool = False

    def finish(self, streams: Sequence[DecodedStream]) -> None:
        """Resolve the stream with ``streams`` and stop the chain."""
        self.streams = list(streams)
        self.done = True


class DecodeContext:
    """Everything one epoch's decode reads and writes, in one object.

    The context replaces the N keyword arguments that used to be
    re-threaded through ``pipeline.py`` / ``session.py`` /
    ``engine.py``: stages receive the capture (``trace``), the decoder
    configuration, shared helpers (edge detector, Viterbi decoder,
    RNGs), the optional session warm-start state, the unified
    :class:`StatsAccumulator`, and the :class:`EpochResult` being
    assembled.
    """

    def __init__(self, trace: IQTrace, config,
                 rng: np.random.Generator,
                 edge_detector: "EdgeDetector",
                 viterbi: "ViterbiDecoder",
                 fidelity: "FidelityPolicy",
                 stats: StatsAccumulator,
                 session: Optional["SessionState"] = None,
                 sample_offset: float = 0.0,
                 kernels: Optional[KernelBackend] = None):
        self.trace = trace
        self.config = config
        self.rng = rng
        self.edge_detector = edge_detector
        self.viterbi = viterbi
        self.fidelity = fidelity
        self.stats = stats
        self.session = session
        self.sample_offset = sample_offset
        #: Kernel backend shared by every stage of this decode.
        self.kernels: KernelBackend = (kernels if kernels is not None
                                       else get_backend())
        self.result = EpochResult(duration_s=trace.duration_s)
        #: The runner executing this context's decode — set by the
        #: decoder before the epoch starts.  Epoch-level driver stages
        #: use it to push stream hypotheses through the stream chain.
        self.runner: Optional["StageRunner"] = None
        #: Epoch-level short-circuit (guard rejection, zero edges).
        self.done = False
        #: Sorted unique edge positions of the epoch, filled by the
        #: stream driver's batched extraction pre-pass and reused by
        #: every later re-extraction (the edge list is immutable once
        #: detection ran).
        self.edge_positions: Optional[np.ndarray] = None
        # -- inter-stage working state --------------------------------
        self.edges: List[DetectedEdge] = []
        self.hypotheses: List[StreamHypothesis] = []
        self.sources: List[Optional[int]] = []
        #: Scope of the stream hypothesis currently being decoded.
        self.stream: Optional[StreamScope] = None
        #: Resolved projection polarity of the last assembled stream
        #: (exposed for the session cache; channel geometry).
        self.last_flipped: Optional[bool] = None

    # -- derived helpers ---------------------------------------------------

    def candidate_periods(self) -> List[float]:
        """Candidate bit periods in samples, shortest (fastest) first."""
        fs = self.config.profile.sample_rate_hz
        return sorted(fs / rate
                      for rate in set(self.config.candidate_bitrates_bps))

    def period_cacheable(self, period_samples: float) -> bool:
        """Whether a fitted period is plausible enough to track.

        A real stream's fitted period sits within the clock-drift
        budget of a candidate rate (plus margin for collision mixture
        fits, which skew the most).  Junk hypotheses assembled from
        claim residue fit exotic periods — caching those would seed
        next epoch's warm fold with self-perpetuating garbage.
        """
        folding = self.config.folding_config or FoldingConfig()
        slack = max(3e-6 * folding.max_drift_ppm, 5e-4)
        return any(abs(period_samples - cand) / cand <= slack
                   for cand in self.candidate_periods())

    def refine_window(self, track: StreamTrack) -> int:
        """Averaging window for this stream's differentials."""
        cfg = self.config
        base = self.edge_detector.config.max_refine_window
        scaled = int(track.period_samples * cfg.refine_window_fraction)
        return max(base, min(scaled, cfg.refine_window_cap))

    def track_rng(self, track: StreamTrack) -> np.random.Generator:
        """Deterministic per-track generator for adaptive decision fits.

        The multilevel check and the collinear split sit on marginal
        k-means fits whose outcome can depend on the initialization
        draw.  Under the shared decoder RNG that draw depends on the
        entire path history — a warm (session) decode and a cold decode
        of the *same physical stream* reach it with different generator
        states and can resolve a borderline split differently, breaking
        the warm-bits == cold-bits invariant.  Seeding from the track's
        quantized timing makes those fits a function of the stream
        alone.  The offset quantum (16 samples) absorbs the sub-sample
        jitter between warm and cold track estimates.
        """
        return np.random.default_rng(
            (self.fidelity.subsample_seed,
             int(round(track.period_samples)),
             int(round(track.offset_samples / 16.0))))

    def bump(self, key: str) -> None:
        """Increment a warm-cache counter (no-op for cold decodes)."""
        self.stats.bump(key)


@runtime_checkable
class Stage(Protocol):
    """One composable unit of the decode pipeline.

    ``run`` mutates the shared :class:`DecodeContext` (and, for
    stream-level stages, ``ctx.stream``); it returns nothing.
    ``timing_key`` names the ``stage_timings`` bucket the runner times
    the whole invocation into — ``None`` for stages that time their
    own hot sub-blocks at finer grain.
    """

    name: str
    timing_key: Optional[str]

    def run(self, ctx: DecodeContext) -> None: ...


class StageObserver:
    """Read-only callback interface around stage execution.

    Subclass and override what you need; the default implementation
    ignores everything, so observers stay forward-compatible when new
    hooks are added.  Observers must not mutate the context — they are
    the seam tracing/metrics (and tests pinning observation as
    zero-cost) plug into.
    """

    def on_stage_start(self, stage: "Stage",
                       ctx: DecodeContext) -> None:
        """Called before ``stage.run`` (epoch- and stream-level)."""

    def on_stage_end(self, stage: "Stage", ctx: DecodeContext,
                     elapsed_s: float) -> None:
        """Called after ``stage.run`` returned (not on exceptions)."""

    def on_stream_fault(self, fault: StreamFault,
                        ctx: DecodeContext) -> None:
        """Called when a stream hypothesis is confined to a fault."""


def stream_fault(hypothesis, stage: str, exc: BaseException,
                 expected: bool) -> StreamFault:
    """A :class:`StreamFault` record for an abandoned hypothesis."""
    return StreamFault(
        offset_samples=float(getattr(hypothesis, "offset_samples", 0.0)),
        period_samples=float(getattr(hypothesis, "period_samples", 0.0)),
        stage=stage,
        error_type=type(exc).__name__,
        message=str(exc),
        expected=expected)


class StageRunner:
    """Executes stage lists over a context, uniformly.

    The runner owns the three cross-cutting behaviours every stage
    would otherwise re-implement: per-stage timing (for stages that
    declare a ``timing_key``), observer dispatch, and — for the
    stream-level chain — fault confinement, so one mis-modeled stream
    degrades into a :class:`StreamFault` instead of aborting the epoch.
    """

    def __init__(self, epoch_stages: Sequence[Stage],
                 stream_stages: Sequence[Stage],
                 observers: Sequence[StageObserver] = ()):
        self.epoch_stages: Tuple[Stage, ...] = tuple(epoch_stages)
        self.stream_stages: Tuple[Stage, ...] = tuple(stream_stages)
        self.observers: List[StageObserver] = list(observers)

    def _run_stage(self, stage: Stage, ctx: DecodeContext) -> None:
        observers = self.observers
        if not observers:
            if stage.timing_key is not None:
                with ctx.stats.stage(stage.timing_key):
                    stage.run(ctx)
            else:
                stage.run(ctx)
            return
        for observer in observers:
            observer.on_stage_start(stage, ctx)
        start = time.perf_counter()
        if stage.timing_key is not None:
            with ctx.stats.stage(stage.timing_key):
                stage.run(ctx)
        else:
            stage.run(ctx)
        elapsed = time.perf_counter() - start
        for observer in observers:
            observer.on_stage_end(stage, ctx, elapsed)

    def run_epoch(self, ctx: DecodeContext) -> DecodeContext:
        """Run the epoch-level stage list (stops when ``ctx.done``)."""
        for stage in self.epoch_stages:
            if ctx.done:
                break
            self._run_stage(stage, ctx)
        return ctx

    def run_stream(self, ctx: DecodeContext,
                   scope: StreamScope) -> List[DecodedStream]:
        """Decode one stream hypothesis through the stream stages.

        Exceptions are confined to the hypothesis: routine gate
        failures (``DecodeError`` / ``ConfigurationError``) record an
        *expected* fault, anything else an unexpected one — either
        way the epoch's remaining hypotheses still decode.
        """
        ctx.stream = scope
        try:
            for stage in self.stream_stages:
                if scope.done:
                    break
                self._run_stage(stage, ctx)
        except (DecodeError, ConfigurationError) as exc:
            # Routine abandonment: a junk hypothesis that failed a
            # gate.  Recorded for observability, not degradation.
            self._fault(ctx, stream_fault(scope.hypothesis, "decode",
                                          exc, expected=True))
            return []
        except Exception as exc:  # noqa: BLE001 — fault isolation
            # One mis-modeled stream must not abort the epoch: the
            # other hypotheses still decode, and the failure is
            # reported instead of raised.
            self._fault(ctx, stream_fault(scope.hypothesis, "decode",
                                          exc, expected=False))
            return []
        finally:
            ctx.stream = None
        return scope.streams

    def _fault(self, ctx: DecodeContext, fault: StreamFault) -> None:
        ctx.stats.note_fault(fault)
        for observer in self.observers:
            observer.on_stream_fault(fault, ctx)
