"""Edge-detection stage (Section 3.1).

A thin stage wrapper over :class:`repro.core.edges.EdgeDetector`: the
detector itself (differential sweep, refinement, thresholds) lives in
:mod:`repro.core.edges`; this stage binds it into the stage graph and
short-circuits the epoch when the capture contains no edges at all.
"""

from __future__ import annotations

from .context import DecodeContext


class EdgeStage:
    """Detect antenna-transition edges on the combined IQ signal."""

    name = "edge"
    timing_key = "edge"

    def run(self, ctx: DecodeContext) -> None:
        ctx.edges = ctx.edge_detector.detect(ctx.trace)
        ctx.result.n_edges_detected = len(ctx.edges)
        if not ctx.edges:
            ctx.done = True
