"""Equalizer stage: blind channel inversion in front of edge detection.

Runs :func:`repro.core.equalizer.equalize` over the (guarded) capture
before :class:`EdgeStage` sees it.  Under a frequency-selective
channel (:mod:`repro.phy.multipath`) each tag transition arrives as a
staircase of echoes; the blind estimate/Wiener-inverse recovers the
flat-channel waveform and with it the decodes the edge-differential
front end loses to long delay spread.

The stage is **off by default** (``enable_equalizer=False``) and when
disabled it never runs — decodes are bit-identical to a build without
the stage, which the golden-digest suite pins.  When enabled on a
flat-channel capture the estimator classifies the channel as flat and
passes the samples through untouched (object identity, no copy).
"""

from __future__ import annotations

from ...types import IQTrace
from ..equalizer import equalize
from .context import DecodeContext


class EqualizerStage:
    """Blind-equalize a frequency-selective capture (opt-in)."""

    name = "equalize"
    #: Self-timed: a decode with the equalizer disabled must not
    #: report an ``equalize`` timing bucket at all (the stage never
    #: ran).
    timing_key = None

    def run(self, ctx: DecodeContext) -> None:
        if not ctx.config.enable_equalizer:
            return
        with ctx.stats.stage("equalize"):
            samples, report = equalize(ctx.trace.samples,
                                       ctx.config.equalizer_config)
            ctx.result.equalizer = report
            if report.applied:
                ctx.trace = IQTrace(
                    samples=samples,
                    sample_rate_hz=ctx.trace.sample_rate_hz)
