"""Fold stages: eye-pattern stream search (Section 3.2).

Two epoch-level stages live here:

* :class:`FoldStage` — the primary (rate, offset) hypothesis search
  over the detected edges, warm-started from the session's tracked
  streams when one is attached;
* :class:`AnalogFallbackStage` — the low-SNR fallback that folds the
  *analog* differential energy when the edge-based search produced no
  decodable stream at all (Figure 14's waterfall region).
"""

from __future__ import annotations

from typing import List

from ...errors import ConfigurationError, DecodeError
from ...types import DecodedStream
from ..folding import (analog_fold_search, find_stream_hypotheses,
                       find_stream_hypotheses_warm)
from ..streams import read_grid_differentials, track_from_analog
from .anchor import assemble_stream
from .context import DecodeContext
from .projection import project_single


class FoldStage:
    """Fold edge timestamps into per-stream (rate, offset) hypotheses."""

    name = "fold"
    timing_key = "fold"

    def run(self, ctx: DecodeContext) -> None:
        if ctx.session is not None:
            hypotheses, sources, hits, misses = \
                find_stream_hypotheses_warm(
                    ctx.edges, ctx.candidate_periods(),
                    ctx.session.warm_hints(),
                    config=ctx.config.folding_config)
            ctx.stats.bump("fold_hits", hits)
            ctx.stats.bump("fold_misses", misses)
        else:
            hypotheses = find_stream_hypotheses(
                ctx.edges, ctx.candidate_periods(),
                config=ctx.config.folding_config)
            sources = [None] * len(hypotheses)
        ctx.hypotheses = hypotheses
        ctx.sources = sources
        claimed = set()
        for hyp in hypotheses:
            claimed.update(hyp.edge_indices)
        ctx.result.n_spurious_edges = len(ctx.edges) - len(claimed)


class AnalogFallbackStage:
    """Low-SNR fallback: fold the analog differential energy.

    When individual edges are buried in noise the edge-based search
    finds nothing, but the eye-pattern fold of the *analog*
    differential energy (Section 3.2's original formulation) still
    accumulates a stream's periodic energy.  Only single streams
    are recovered this way — at SNRs where this path is needed,
    collision separation has no margin anyway.
    """

    name = "fallback"
    #: Self-timed: its work lands in the existing ``fold`` /
    #: ``extract`` / ``viterbi`` buckets, like the main path's.
    timing_key = None

    def run(self, ctx: DecodeContext) -> None:
        if ctx.result.streams or not ctx.config.enable_analog_fallback:
            return
        energy = ctx.edge_detector.differential_magnitude(ctx.trace) ** 2
        with ctx.stats.stage("fold"):
            hypotheses = analog_fold_search(energy,
                                            ctx.candidate_periods())
        streams: List[DecodedStream] = []
        for hyp in hypotheses:
            try:
                track = track_from_analog(hyp, energy)
                with ctx.stats.stage("extract"):
                    diffs = read_grid_differentials(
                        ctx.trace, track, ctx.edges,
                        detector=ctx.edge_detector,
                        window_override=ctx.refine_window(track))
                observations = project_single(diffs)
                stream = assemble_stream(ctx, observations, track,
                                         collided=False)
            except (DecodeError, ConfigurationError):
                continue
            if stream is not None:
                streams.append(stream)
        ctx.result.streams.extend(streams)
