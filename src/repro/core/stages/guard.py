"""Guard stage: trace sanitization in front of the decode path.

Runs :func:`repro.robustness.guard.sanitize_trace` over the raw
capture — repairing short NaN gaps, excising long bad runs, rejecting
unusable captures — before any decoder maths sees it.  A clean capture
passes through untouched (the decode is bit-identical with the guard
on or off); a rejected one short-circuits the epoch into an
empty-but-honest result carrying the structured health verdict.
"""

from __future__ import annotations

from ...errors import SignalQualityError
from ...types import StreamFault
from ..stages.context import DecodeContext
from ...robustness.guard import sanitize_trace


class GuardStage:
    """Sanitize (or reject) the epoch's capture."""

    name = "guard"
    #: Self-timed: a decode with the guard disabled must not report a
    #: ``guard`` timing bucket at all (the stage never ran).
    timing_key = None

    def run(self, ctx: DecodeContext) -> None:
        if not ctx.config.enable_trace_guard:
            return
        try:
            with ctx.stats.stage("guard"):
                trace, health = sanitize_trace(ctx.trace,
                                               ctx.config.guard_config)
        except SignalQualityError as exc:
            # The capture is beyond repair: report an empty epoch with
            # the structured health verdict instead of raising out of
            # the decode path.
            ctx.result.trace_health = getattr(exc, "health", None)
            ctx.stats.note_fault(StreamFault(
                offset_samples=0.0, period_samples=0.0, stage="guard",
                error_type=type(exc).__name__,
                message=str(exc), expected=False))
            ctx.done = True
            return
        ctx.trace = trace
        ctx.result.duration_s = trace.duration_s
        ctx.result.trace_health = health
