"""Projection helpers shared by the separation and anchor stages.

A single tag's IQ differentials live on one line through the origin
({-e, 0, +e}); projecting onto the scatter's principal axis and
normalizing by the edge-cluster magnitude turns them into scalar
observations near {-1, 0, +1}.  The helpers here implement that
projection plus the 3-vs-9-level test that distinguishes a lone tag
from a *collinear* collision (whose projection carries intermediate
levels the parallelogram method cannot see).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ...errors import DecodeError
from ..clustering import KMeansResult, kmeans
from ..kernels import KernelBackend


def project_single(differentials: np.ndarray) -> np.ndarray:
    """Project a single tag's differentials onto its edge direction.

    The principal axis of the scatter (about the origin) is the tag's
    edge line {-e, 0, +e}; projecting and normalizing by the edge
    cluster magnitude yields observations near {-1, 0, +1}.  Sign
    remains ambiguous; the anchor stage resolves it.
    """
    return project_single_scaled(differentials)[0]


def project_single_scaled(
        differentials: np.ndarray) -> Tuple[np.ndarray, float]:
    """:func:`project_single` plus the normalization scale.

    The scale maps normalized observation levels back into raw
    projection units — the adaptive pipeline uses it to convert the
    multilevel check's 9-level fit into warm seeds for the collinear
    separator, which clusters the *unnormalized* projection.
    """
    d = np.asarray(differentials, dtype=np.complex128).ravel()
    if d.size == 0:
        raise DecodeError("no differentials to project")
    x = np.stack([d.real, d.imag])
    moment = x @ x.T / d.size
    eigvals, eigvecs = np.linalg.eigh(moment)
    u = eigvecs[:, -1]  # principal direction (unit)
    # LAPACK's eigenvector sign is arbitrary; pin it to a fixed
    # half-plane so the projection polarity of a stable channel is
    # reproducible across epochs (the session caches the resolved
    # frame polarity and tries it first).
    if u[0] < 0 or (u[0] == 0 and u[1] < 0):
        u = -u
    proj = d.real * u[0] + d.imag * u[1]
    peak = float(np.max(np.abs(proj)))
    if peak <= 0:
        raise DecodeError("stream has no measurable edges")
    strong = np.abs(proj) > 0.5 * peak
    scale = float(np.median(np.abs(proj[strong])))
    if scale <= 0:
        raise DecodeError("degenerate projection scale")
    return proj / scale, scale


def hold_cluster_noise(differentials: np.ndarray) -> float:
    """Noise scale estimated from the hold (near-zero) cluster."""
    d = np.asarray(differentials, dtype=np.complex128).ravel()
    mags = np.abs(d)
    peak = float(np.max(mags)) if mags.size else 0.0
    if peak <= 0:
        return 0.0
    hold = d[mags < 0.3 * peak]
    if hold.size < 2:
        return 0.0
    return float(np.sqrt(np.mean(np.abs(hold) ** 2)))


def looks_multilevel(observations: np.ndarray,
                     rng, improvement: float = 5.0,
                     centroid_hints: Optional[
                         Dict[int, np.ndarray]] = None,
                     fits_out: Optional[
                         Dict[int, KMeansResult]] = None,
                     n_init: int = 3,
                     backend: Optional[KernelBackend] = None) -> bool:
    """True when a stream's 1-D projection has more than three levels.

    A lone tag's projection clusters at {-1, 0, +1}; a collinear
    collision adds intermediate levels.  Nine clusters must beat three
    by a large inertia factor (noise-splitting alone buys ~3x).

    ``centroid_hints`` / ``fits_out`` are the session warm-start hooks:
    hinted cluster counts run as a single warm Lloyd restart and the
    fresh fits are exported for the next epoch's cache.
    """
    obs = np.asarray(observations, dtype=np.float64).ravel()
    if obs.size < 20:
        return False
    hints = centroid_hints or {}
    pts = obs.astype(np.complex128)
    three = kmeans(pts, 3, rng=rng, n_init=n_init,
                   init_centroids=hints.get(3), backend=backend)
    nine = kmeans(pts, 9, rng=rng, n_init=n_init,
                  init_centroids=hints.get(9), backend=backend)
    if fits_out is not None:
        fits_out[3] = three
        fits_out[9] = nine
    floor = max(nine.inertia, 1e-300)
    return three.inertia / floor >= improvement
