"""Separation stages (Sections 3.3–3.4 and the collinear extension).

:func:`decode_collided` is the parallelogram split of a detected
two-way collision (wide-guard re-extraction, lattice fit with every
warm hint the session offers, per-collider assembly);
:func:`decode_collinear` the 1-D scalar-lattice split for the
degenerate (anti)parallel case the parallelogram cannot see; and
:class:`SeparationStage` the stream-chain stage that projects the
scatter to scalar observations and runs the multilevel ladder
(fast-single skip → warm projection verify → dispersion pre-gate →
paired k-means) deciding whether the collinear split is needed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ...errors import ConfigurationError, DecodeError
from ..clustering import KMeansResult, kmeans
from ..separation import (_lattice_points, separate_collinear,
                          separate_two_way)
from ..streams import StreamTrack, read_grid_differentials
from .anchor import assemble_stream
from .context import DecodeContext
from .projection import looks_multilevel, project_single_scaled


def decode_collided(ctx: DecodeContext, track: StreamTrack,
                    tracker=None,
                    fits: Optional[Dict[int, KMeansResult]] = None,
                    basis_override: Optional[
                        Tuple[complex, complex]] = None):
    """Split a two-way collision and decode both tags."""
    cfg = ctx.config
    session = ctx.session
    # Wider guard: the two colliders' edges sit a few samples apart
    # once drift separates them, so exclude a larger transition zone.
    guard = (ctx.edge_detector.config.guard
             + cfg.collision_guard_extra)
    with ctx.stats.stage("extract"):
        diffs = read_grid_differentials(
            ctx.trace, track, ctx.edges, detector=ctx.edge_detector,
            guard_override=guard,
            window_override=ctx.refine_window(track),
            edge_positions=ctx.edge_positions)
    centroid_hint = basis_hint = None
    seeded = False
    if basis_override is not None:
        # Synthesized from two known tags' cached edge vectors:
        # both the k-means seed and the basis come for free.
        basis_hint = basis_override
        centroid_hint = _lattice_points(*basis_override)
    elif tracker is not None and tracker.arity >= 2:
        centroid_hint = tracker.collision_centroids
        basis_hint = tracker.basis
    elif (session is not None or ctx.fidelity.active) \
            and fits and 9 in fits:
        # The collision stage already fitted nine clusters on the
        # narrow-guard differentials; the wide-guard re-extraction
        # shifts points only slightly, so that fit seeds one Lloyd
        # restart.  A trapping seed falls through to the cold retry.
        centroid_hint = fits[9].centroids
        seeded = True
    with ctx.stats.stage("separate"):
        separation = separate_two_way(
            diffs, rng=ctx.rng,
            centroid_hint=centroid_hint,
            basis_hint=basis_hint,
            basis_tolerance=(session.config.basis_tolerance
                             if session is not None else 0.25),
            backend=ctx.kernels)
        if centroid_hint is not None and not seeded:
            ctx.bump("kmeans_hits")
        if basis_hint is not None:
            ctx.bump("basis_hits" if separation.basis_cached
                     else "basis_misses")
    scale = max(abs(separation.e1), abs(separation.e2))
    if scale <= 0 or separation.lattice_error > 0.35 * scale:
        if seeded:
            # The within-epoch seed may have trapped Lloyd in a bad
            # optimum; retry cold before declaring a false positive.
            with ctx.stats.stage("separate"):
                separation = separate_two_way(diffs, rng=ctx.rng,
                                              backend=ctx.kernels)
            scale = max(abs(separation.e1), abs(separation.e2))
    if scale <= 0 or separation.lattice_error > 0.35 * scale:
        raise DecodeError(
            f"collision lattice fit too poor "
            f"(error {separation.lattice_error:.3g} vs scale "
            f"{scale:.3g}); likely a false-positive collision")
    streams = []
    for column, edge_vector in ((0, separation.e1),
                                (1, separation.e2)):
        stream = assemble_stream(ctx, separation.coords[:, column],
                                 track, collided=True,
                                 edge_vector=edge_vector)
        if stream is not None:
            streams.append(stream)
    if streams and session is not None \
            and ctx.period_cacheable(track.period_samples):
        session.observe(tracker, track.period_samples,
                        track.offset_samples, diffs,
                        fits=fits, arity=2,
                        basis=(separation.e1, separation.e2),
                        collision_centroids=separation.centroids)
    return streams


def decode_collinear(ctx: DecodeContext, diffs: np.ndarray,
                     track: StreamTrack,
                     level_hint: Optional[np.ndarray] = None):
    """Attempt the 1-D scalar-lattice split of a collinear collision;
    both recovered frames must pass the header gate."""
    adaptive = ctx.fidelity.active
    rng = ctx.track_rng(track) if adaptive else ctx.rng
    try:
        with ctx.stats.stage("separate"):
            separation = separate_collinear(
                diffs, rng=rng, n_init=3 if adaptive else 6,
                init_levels=level_hint if adaptive else None,
                backend=ctx.kernels)
    except (DecodeError, ConfigurationError):
        return []
    streams = []
    for column, edge_vector in ((0, separation.e1),
                                (1, separation.e2)):
        stream = assemble_stream(
            ctx, separation.coords[:, column].astype(np.float64),
            track, collided=True, edge_vector=edge_vector)
        if stream is not None:
            streams.append(stream)
    if len(streams) == 2:
        ctx.result.n_collisions_detected += 1
        ctx.result.n_collisions_resolved += 1
        return streams
    return []


class SeparationStage:
    """Project to scalar observations; split collinear collisions."""

    name = "separation"
    #: Self-timed into ``detect`` (multilevel ladder) and ``separate``
    #: (the collinear split), like the monolith it was extracted from.
    timing_key = None

    def run(self, ctx: DecodeContext) -> None:
        scope = ctx.stream
        session = ctx.session
        tracker = scope.tracker
        diffs = scope.diffs
        observations, proj_scale = project_single_scaled(diffs)
        scope.observations = observations
        scope.proj_scale = proj_scale
        proj_fits: Dict[int, KMeansResult] = scope.proj_fits
        multilevel: Optional[bool] = None
        can_check = (ctx.config.enable_iq_separation
                     and diffs.size >= 20)
        if can_check and scope.fast_single:
            # The IQ-plane verify just re-confirmed last epoch's
            # single-tag geometry; a collinear collision onset would
            # have blown that inertia check, so the projection
            # re-verify is redundant.
            multilevel = False
        elif can_check and scope.trusted and tracker.arity == 1 \
                and 3 in tracker.proj_centroids \
                and 3 in tracker.proj_inertia_pp:
            # Fast path mirroring the collision check: the projection
            # was three-level last epoch; re-verify with one warm
            # Lloyd and skip the 9-cluster comparison.
            with ctx.stats.stage("detect"):
                three = kmeans(observations.astype(np.complex128), 3,
                               rng=ctx.rng,
                               init_centroids=tracker.proj_centroids[3],
                               backend=ctx.kernels)
                if session.warm_fit_blown(tracker.proj_inertia_pp,
                                          {3: three}, keys=(3,)):
                    scope.trusted = False
                    ctx.bump("kmeans_misses")
                    session.note_invalidation(tracker)
                else:
                    ctx.bump("kmeans_hits")
                    session.note_warm_success(tracker)
                    proj_fits[3] = three
                    multilevel = False
        pol = ctx.fidelity
        if multilevel is None and can_check and pol.active \
                and pol.dispersion_gate and not scope.trusted:
            # Dispersion pre-gate: a lone tag's projection sits on the
            # {-1, 0, +1} lattice up to noise; a cleanly trimodal
            # projection skips the paired k-means fits, while any real
            # collinear collision has off-lattice mass far above the
            # gate and escalates.
            with ctx.stats.stage("detect"):
                off = np.abs(observations
                             - np.clip(np.round(observations), -1, 1))
                frac = float(np.mean(off > pol.dispersion_eps))
                if frac <= pol.dispersion_fraction:
                    multilevel = False
                    ctx.stats.bump_fidelity("multilevel_fast")
                else:
                    ctx.stats.bump_fidelity("multilevel_escalations")
        if multilevel is None:
            proj_hints = (tracker.proj_hints() if scope.trusted
                          else None)
            dec_rng = (ctx.track_rng(scope.track) if pol.active
                       else ctx.rng)
            ml_init = 2 if pol.active else 3
            with ctx.stats.stage("detect"):
                multilevel = (can_check and looks_multilevel(
                    observations, dec_rng,
                    centroid_hints=proj_hints,
                    fits_out=proj_fits, n_init=ml_init,
                    backend=ctx.kernels))
                if proj_hints is not None and proj_fits:
                    if session.warm_fit_blown(tracker.proj_inertia_pp,
                                              proj_fits, keys=(3,)):
                        scope.trusted = False
                        ctx.bump("kmeans_misses")
                        session.note_invalidation(tracker)
                        scope.proj_fits = proj_fits = {}
                        multilevel = looks_multilevel(
                            observations, dec_rng,
                            fits_out=proj_fits, n_init=ml_init,
                            backend=ctx.kernels)
                    else:
                        ctx.bump("kmeans_hits")
                        session.note_warm_success(tracker)
        scope.multilevel = multilevel
        if multilevel:
            # A collision whose edge vectors are (anti)parallel never
            # registers as two-dimensional, but its projection carries
            # more than three levels; the scalar-lattice separator
            # handles this degenerate case (an extension beyond the
            # paper's parallelogram method).
            level_hint = None
            if pol.active and 9 in proj_fits:
                # The multilevel check just fitted nine levels on this
                # same projection (in normalized units); rescaled, they
                # warm-seed the separator's level fit in place of its
                # cold k-means++ fan-out.
                level_hint = (proj_fits[9].centroids.real
                              * proj_scale)
            streams = decode_collinear(ctx, diffs, scope.track,
                                       level_hint=level_hint)
            if streams:
                if session is not None \
                        and ctx.period_cacheable(
                            scope.track.period_samples):
                    session.observe(tracker if scope.trusted else None,
                                    scope.track.period_samples,
                                    scope.track.offset_samples, diffs,
                                    fits=scope.fits,
                                    proj_fits=proj_fits,
                                    arity=2)
                scope.finish(streams)
