"""Unified decode-statistics accounting for the stage graph.

Every cross-cutting counter the decode path produces — per-stage
wall-clock timings, warm-cache hit/miss counters, fidelity-gate
escalation counters, per-stream faults, and the trace-health verdict —
flows through one :class:`StatsAccumulator`.  The accumulator is the
single implementation of the merge semantics that used to be
re-implemented by hand in ``session.py``, ``engine.py`` and
``reader/batch.py``:

* int counter dicts add per key (:meth:`StatsAccumulator.merge_counts`);
* timing dicts add per stage (:func:`repro.utils.timing.merge_timings`);
* stream faults concatenate, *copied* (never aliased) with their
  offsets shifted into the merged coordinate frame;
* trace-health verdicts keep the most severe report, so a merged
  result's ``degraded`` property stays true whenever any part needed
  repair.

This module sits at the bottom of the decode-path import graph: it
must not import ``pipeline``, ``session`` or any stage module.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Mapping, Optional, Tuple

from ...types import EpochResult, StreamFault
from ...utils.timing import StageTimer, merge_timings

#: Counter keys every session epoch reports (hit/miss per warm stage).
#: Canonical home of the constant formerly defined in
#: :mod:`repro.core.session` (which re-exports it for compatibility).
CACHE_STAT_KEYS: Tuple[str, ...] = (
    "fold_hits", "fold_misses",
    "kmeans_hits", "kmeans_misses",
    "basis_hits", "basis_misses",
)

#: Severity order of trace-guard verdicts, for merging chunk health.
_HEALTH_SEVERITY = {"clean": 0, "degraded": 1, "rejected": 2}


def worse_health(current, candidate):
    """The more severe of two trace-health reports (``None`` loses)."""
    if candidate is None:
        return current
    if current is None:
        return candidate
    rank = _HEALTH_SEVERITY.get
    if rank(getattr(candidate, "verdict", "clean"), 0) > \
            rank(getattr(current, "verdict", "clean"), 0):
        return candidate
    return current


class StatsAccumulator:
    """Timings + cache counters + fidelity counters + faults, in one place.

    One accumulator lives on the :class:`~repro.core.stages.context.
    DecodeContext` for the duration of an epoch: stages time themselves
    through :meth:`stage`, bump warm-cache counters through
    :meth:`bump`, mutate :attr:`fidelity` directly (the same dict the
    Viterbi decoder's banded-path counters write into), and report
    abandoned streams through :meth:`note_fault`.  :meth:`publish`
    copies everything onto the epoch's :class:`EpochResult` exactly
    once, at the end.

    The same class also implements result *merging*:
    :meth:`absorb_result` folds a finished :class:`EpochResult` into
    the accumulator (used by chunked decoding), and the
    :meth:`merge_counts` / :meth:`merge_timing` utilities are the one
    implementation of counter-dict addition shared by the session
    lifetime totals and the engine aggregates.
    """

    def __init__(self, cache_enabled: bool = False,
                 fidelity: Optional[Dict[str, int]] = None):
        self._timer = StageTimer()
        self.cache: Optional[Dict[str, int]] = (
            {key: 0 for key in CACHE_STAT_KEYS} if cache_enabled
            else None)
        #: Fidelity-gate counters.  Deliberately a plain dict shared by
        #: reference with whoever mutates it (e.g. the Viterbi
        #: decoder's ``stats`` hook).
        self.fidelity: Dict[str, int] = (
            fidelity if fidelity is not None else {})
        self.faults: List[StreamFault] = []
        self.trace_health = None

    # -- in-epoch recording ------------------------------------------------

    def stage(self, name: str):
        """Context manager timing a block into stage ``name``."""
        return self._timer.stage(name)

    def add_time(self, name: str, seconds: float) -> None:
        """Fold an externally measured duration into a stage."""
        self._timer.add(name, seconds)

    @property
    def timings(self) -> Dict[str, float]:
        """Snapshot of accumulated wall-clock seconds per stage."""
        return self._timer.timings

    def bump(self, key: str, count: int = 1) -> None:
        """Increment a warm-cache counter (no-op for cold decodes)."""
        if self.cache is not None:
            self.cache[key] = self.cache.get(key, 0) + count

    def bump_fidelity(self, key: str, count: int = 1) -> None:
        """Increment a fidelity-gate counter."""
        self.fidelity[key] = self.fidelity.get(key, 0) + count

    def note_fault(self, fault: StreamFault) -> None:
        """Record one abandoned / degraded stream."""
        self.faults.append(fault)

    def note_health(self, health) -> None:
        """Record a trace-health report (most severe one wins)."""
        self.trace_health = worse_health(self.trace_health, health)

    # -- publishing --------------------------------------------------------

    def publish(self, result: EpochResult) -> EpochResult:
        """Copy the accumulated statistics onto ``result``."""
        result.stage_timings = self.timings
        result.fidelity_stats = dict(self.fidelity)
        if self.cache is not None:
            result.cache_stats = dict(self.cache)
        result.degraded_streams.extend(self.faults)
        if self.trace_health is not None:
            result.trace_health = worse_health(result.trace_health,
                                               self.trace_health)
        return result

    # -- merging -----------------------------------------------------------

    def absorb_result(self, result: EpochResult,
                      offset_shift: float = 0.0) -> None:
        """Fold a finished epoch's statistics into this accumulator.

        ``offset_shift`` translates the result's stream-fault offsets
        into the merged coordinate frame (chunk-local -> global sample
        positions).  Faults are *copied*, never aliased: absorbing a
        result leaves it untouched, so the same chunk result can be
        inspected (or re-merged) afterwards without double-shifting.
        """
        self.merge_timing(self._timer._elapsed, result.stage_timings)
        if result.cache_stats:
            if self.cache is None:
                self.cache = {key: 0 for key in CACHE_STAT_KEYS}
            self.merge_counts(self.cache, result.cache_stats)
        self.merge_counts(self.fidelity, result.fidelity_stats)
        for fault in result.degraded_streams:
            self.faults.append(dataclasses.replace(
                fault,
                offset_samples=fault.offset_samples + offset_shift))
        self.note_health(result.trace_health)

    @staticmethod
    def merge_counts(into: Dict[str, int],
                     update: Mapping[str, int]) -> Dict[str, int]:
        """Add one int counter dict into another (returns ``into``)."""
        for key, count in update.items():
            into[key] = into.get(key, 0) + int(count)
        return into

    @staticmethod
    def merge_timing(into: Dict[str, float],
                     update: Mapping[str, float]) -> Dict[str, float]:
        """Add one timing dict into another (returns ``into``)."""
        return merge_timings(into, dict(update))
