"""Tracking stages: grid refinement, readout, and the stream driver.

:class:`StreamsStage` is the epoch-level driver that walks the fold
stage's hypotheses and runs each one through the stream-level chain
(tracking → collision → separation → anchor) with per-stream fault
confinement applied by the :class:`~repro.core.stages.context.
StageRunner`.  :class:`TrackStage` is the chain's first link: it
refines the hypothesis into a drift-tracking grid, reads the grid
differentials, and matches the stream against the session's trackers.

Rather than extracting each hypothesis's grid differentials inside its
own stream decode, :class:`StreamsStage` runs a struct-of-arrays
pre-pass over the whole epoch: every hypothesis's averaging windows
are planned up front (:func:`~repro.core.edges.refine_window_bounds`,
the same planner the per-stream path uses), packed into padded
length-class batches (:mod:`repro.core.kernels.soa`), and serviced
with **one** differential-gather kernel call per length class.  The
gather is purely elementwise, so the batched result is bit-identical
to the per-stream calls it replaces; a hypothesis whose grid
refinement fails is simply left out and :class:`TrackStage` recomputes
it, reproducing the exact per-stream fault.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..edges import refine_window_bounds
from ..kernels.soa import pack_ragged
from ..streams import (StreamTrack, edge_position_array,
                       read_grid_differentials, sorted_union,
                       track_stream)
from .context import DecodeContext, StreamScope


def _batch_extract(ctx: DecodeContext
                   ) -> Dict[int, Tuple[StreamTrack, np.ndarray]]:
    """Grid differentials for every hypothesis, batched per length class.

    Returns ``{hypothesis_index: (track, diffs)}`` for every hypothesis
    whose grid refinement succeeded.  Failed refinements are omitted —
    the per-stream :class:`TrackStage` retries them under the runner's
    fault confinement so their faults surface exactly as before.
    """
    out: Dict[int, Tuple[StreamTrack, np.ndarray]] = {}
    if not ctx.hypotheses:
        return out
    n = len(ctx.trace)
    guard = ctx.edge_detector.config.guard
    epos = edge_position_array(ctx.edges)
    ctx.edge_positions = epos
    tracks: Dict[int, StreamTrack] = {}
    rows = []
    row_of = []  # rows[i] extracts hypothesis row_of[i]
    for i, hyp in enumerate(ctx.hypotheses):
        try:
            track = track_stream(hyp, ctx.edges, n)
        except Exception:  # noqa: BLE001 — TrackStage re-raises it
            continue
        tracks[i] = track
        grid = np.minimum(np.maximum(
            np.rint(track.grid_positions()).astype(np.int64), 0), n - 1)
        if grid.size == 0:
            out[i] = (track, np.empty(0, dtype=np.complex128))
            continue
        limits = sorted_union(epos, grid)
        lo_b, hi_b, lo_a, hi_a = refine_window_bounds(
            grid, limits, n, guard, ctx.refine_window(track))
        rows.append((lo_b, hi_b, lo_a, hi_a))
        row_of.append(i)
    if rows:
        csum = ctx.trace.prefix_sum()
        # Pad lanes get the trivial [0, 1) window: always non-empty,
        # never divides by zero, and sliced away on unpack.
        for batch in pack_ragged(rows, pad_values=(0, 1, 0, 1)):
            flat = ctx.kernels.edge_differentials(
                csum, *(col.ravel() for col in batch.columns))
            for r, diffs in batch.unpack(flat):
                idx = row_of[r]
                out[idx] = (tracks[idx], diffs)
    return out


class StreamsStage:
    """Decode every fold hypothesis through the stream stage chain."""

    name = "streams"
    #: Self-timed by the chain's stages (``extract`` / ``detect`` /
    #: ``separate`` / ``viterbi`` accumulate across hypotheses).
    timing_key = None

    def run(self, ctx: DecodeContext) -> None:
        with ctx.stats.stage("extract"):
            extracted = _batch_extract(ctx)
        for i, (hyp, source) in enumerate(zip(ctx.hypotheses,
                                              ctx.sources)):
            preferred = (ctx.session.hint_tracker(source)
                         if ctx.session is not None else None)
            scope = StreamScope(hypothesis=hyp, source=source,
                                preferred=preferred)
            if i in extracted:
                scope.track, scope.diffs = extracted[i]
            streams = ctx.runner.run_stream(ctx, scope)
            ctx.result.streams.extend(streams)


class TrackStage:
    """Refine the grid, read its differentials, match the session."""

    name = "track"
    timing_key = None  # times the grid readout into ``extract``

    def run(self, ctx: DecodeContext) -> None:
        scope = ctx.stream
        if scope.track is None or scope.diffs is None:
            # Not pre-extracted (grid refinement failed in the batch
            # pre-pass, or the driver was bypassed): the per-stream
            # path recomputes — and re-raises — exactly as before.
            scope.track = track_stream(scope.hypothesis, ctx.edges,
                                       len(ctx.trace))
            with ctx.stats.stage("extract"):
                scope.diffs = read_grid_differentials(
                    ctx.trace, scope.track, ctx.edges,
                    detector=ctx.edge_detector,
                    window_override=ctx.refine_window(scope.track))
        if ctx.session is not None:
            scope.tracker = ctx.session.match(
                scope.track.period_samples, scope.track.offset_samples,
                scope.diffs, preferred=scope.preferred)
        # Trust is per-stream and revocable: the first warm fit that
        # stops explaining the data drops every later stage of this
        # stream back onto the cold path.
        scope.trusted = scope.tracker is not None
