"""Tracking stages: grid refinement, readout, and the stream driver.

:class:`StreamsStage` is the epoch-level driver that walks the fold
stage's hypotheses and runs each one through the stream-level chain
(tracking → collision → separation → anchor) with per-stream fault
confinement applied by the :class:`~repro.core.stages.context.
StageRunner`.  :class:`TrackStage` is the chain's first link: it
refines the hypothesis into a drift-tracking grid, reads the grid
differentials, and matches the stream against the session's trackers.
"""

from __future__ import annotations

from ..streams import read_grid_differentials, track_stream
from .context import DecodeContext, StreamScope


class StreamsStage:
    """Decode every fold hypothesis through the stream stage chain."""

    name = "streams"
    #: Self-timed by the chain's stages (``extract`` / ``detect`` /
    #: ``separate`` / ``viterbi`` accumulate across hypotheses).
    timing_key = None

    def run(self, ctx: DecodeContext) -> None:
        for hyp, source in zip(ctx.hypotheses, ctx.sources):
            preferred = (ctx.session.hint_tracker(source)
                         if ctx.session is not None else None)
            scope = StreamScope(hypothesis=hyp, source=source,
                                preferred=preferred)
            streams = ctx.runner.run_stream(ctx, scope)
            ctx.result.streams.extend(streams)


class TrackStage:
    """Refine the grid, read its differentials, match the session."""

    name = "track"
    timing_key = None  # times the grid readout into ``extract``

    def run(self, ctx: DecodeContext) -> None:
        scope = ctx.stream
        scope.track = track_stream(scope.hypothesis, ctx.edges,
                                   len(ctx.trace))
        with ctx.stats.stage("extract"):
            scope.diffs = read_grid_differentials(
                ctx.trace, scope.track, ctx.edges,
                detector=ctx.edge_detector,
                window_override=ctx.refine_window(scope.track))
        if ctx.session is not None:
            scope.tracker = ctx.session.match(
                scope.track.period_samples, scope.track.offset_samples,
                scope.diffs, preferred=scope.preferred)
        # Trust is per-stream and revocable: the first warm fit that
        # stops explaining the data drops every later stage of this
        # stream back onto the cold path.
        scope.trusted = scope.tracker is not None
