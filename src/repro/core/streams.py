"""Stream timing refinement and grid differential extraction.

A :class:`~repro.types.StreamHypothesis` from the fold search carries a
coarse (offset, period).  :func:`track_stream` fits the stream's true
timing — including the tag's ppm clock drift — by least squares over its
matched edges, and :func:`read_grid_differentials` then measures the IQ
differential at *every* bit boundary of the refined grid, bounded by
neighbouring edges so other tags' transitions never leak into the
averaging windows (Section 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError, DecodeError
from ..types import DetectedEdge, IQTrace, StreamHypothesis
from .edges import EdgeDetector, EdgeDetectorConfig


@dataclass
class StreamTrack:
    """Refined timing of one stream: ``position(k) = offset + k*period``.

    ``offset_samples`` refers to grid slot 0, the first bit boundary of
    the stream (the edge where the tag's first preamble bit begins).
    """

    offset_samples: float
    period_samples: float
    n_slots: int
    edge_slots: List[int] = field(default_factory=list)
    edge_indices: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.period_samples <= 0:
            raise ConfigurationError("period must be positive")
        if self.n_slots < 1:
            raise ConfigurationError("track needs at least one slot")

    def grid_positions(self) -> np.ndarray:
        """Sample positions of every bit boundary in the track."""
        return (self.offset_samples
                + np.arange(self.n_slots) * self.period_samples)


def track_stream(hypothesis: StreamHypothesis,
                 edges: Sequence[DetectedEdge],
                 n_samples: int,
                 min_edges_for_fit: int = 3) -> StreamTrack:
    """Fit the stream's exact timing from its matched edges.

    Least-squares fit of edge positions against integer grid indices
    recovers both the true offset and the drifted period (a 150 ppm
    crystal shifts late edges by several samples over an epoch — enough
    to matter, little enough that the fold already matched the edges).
    The grid is extended backwards to slot 0 nearest the trace start and
    forwards to the end of the trace so trailing constant bits are still
    read.
    """
    if n_samples < 1:
        raise ConfigurationError("n_samples must be >= 1")
    if not hypothesis.edge_indices:
        raise DecodeError("hypothesis has no matched edges to fit")
    positions = np.array([edges[i].position
                          for i in hypothesis.edge_indices],
                         dtype=np.float64)
    order = np.argsort(positions)
    positions = positions[order]
    sorted_indices = [hypothesis.edge_indices[int(i)] for i in order]

    period = hypothesis.period_samples
    base = positions[0]
    k = np.round((positions - base) / period)
    if positions.size >= min_edges_for_fit and np.ptp(k) > 0:
        slope, intercept = np.polyfit(k, positions, 1)
        if not 0.9 * period <= slope <= 1.1 * period:
            # Degenerate fit (e.g. all edges in two adjacent slots with
            # noise): keep the nominal period.
            slope, intercept = period, base
        period_fit, offset_fit = float(slope), float(intercept)
    else:
        period_fit, offset_fit = float(period), float(base)

    # Extend the grid back toward the trace start: the first matched
    # edge might not be the stream's very first boundary (a missed or
    # claimed edge), but a laissez-faire stream cannot begin before
    # sample 0.
    k_back = int(np.floor(offset_fit / period_fit))
    offset0 = offset_fit - k_back * period_fit
    n_slots = int(np.floor((n_samples - 1 - offset0) / period_fit)) + 1
    if n_slots < 1:
        raise DecodeError("refined grid has no slots inside the trace")
    # np.rint rounds half-to-even exactly like builtin round(), so the
    # vectorized form consumes no per-edge Python round-trips.
    edge_slots = np.rint((positions - offset0)
                         / period_fit).astype(np.int64).tolist()
    return StreamTrack(
        offset_samples=offset0,
        period_samples=period_fit,
        n_slots=n_slots,
        edge_slots=edge_slots,
        edge_indices=sorted_indices,
    )


def edge_position_array(
        all_edges: Sequence[DetectedEdge]) -> np.ndarray:
    """Sorted unique edge positions, ready for window bounding.

    Computed once per epoch and shared across every stream
    hypothesis's differential extraction (the edge list never changes
    after detection), instead of being rebuilt from a Python set per
    call.
    """
    return np.unique(np.fromiter(
        (e.position for e in all_edges), dtype=np.int64,
        count=len(all_edges)))


def sorted_union(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``np.union1d`` of two int arrays without the hash-unique pass.

    Concatenate-sort-dedup produces the identical sorted unique array;
    on the small position arrays of the extraction hot path it is
    measurably cheaper than :func:`np.union1d`.
    """
    merged = np.concatenate([a, b])
    merged.sort()
    if merged.size <= 1:
        return merged
    keep = np.empty(merged.size, dtype=bool)
    keep[0] = True
    np.not_equal(merged[1:], merged[:-1], out=keep[1:])
    return merged[keep]


def read_grid_differentials(trace: IQTrace, track: StreamTrack,
                            all_edges: Sequence[DetectedEdge],
                            detector: Optional[EdgeDetector] = None,
                            guard_override: Optional[int] = None,
                            window_override: Optional[int] = None,
                            edge_positions: Optional[np.ndarray] = None
                            ) -> np.ndarray:
    """IQ differential vector at every bit boundary of the track.

    Slots where the tag held its state produce near-zero differentials;
    rise/fall slots produce +/- the tag's edge vector; collided slots
    produce lattice combinations.  Windows are bounded by *all* detected
    edges (any tag), so the background cancellation of Section 3.1
    holds even under heavy concurrency.

    ``edge_positions`` is an optional pre-sorted unique position array
    (see :func:`edge_position_array`) replacing the per-call rebuild
    from ``all_edges``.
    """
    det = detector or EdgeDetector()
    if guard_override is not None or window_override is not None:
        cfg = det.config
        det = EdgeDetector(EdgeDetectorConfig(
            diff_window=cfg.diff_window,
            guard=cfg.guard if guard_override is None
            else guard_override,
            threshold_factor=cfg.threshold_factor,
            min_threshold=cfg.min_threshold,
            min_separation=cfg.min_separation,
            merge_radius=cfg.merge_radius,
            max_refine_window=cfg.max_refine_window
            if window_override is None else window_override,
        ), backend=det.backend)
    grid = np.minimum(np.maximum(
        np.rint(track.grid_positions()).astype(np.int64), 0),
        len(trace) - 1)
    if edge_positions is None:
        edge_positions = edge_position_array(all_edges)
    bounds = sorted_union(edge_positions, grid)
    return det.refine_differentials(trace, grid, bounds=bounds)


def track_from_analog(hypothesis: StreamHypothesis,
                      diff_energy: np.ndarray,
                      search_radius: int = 4,
                      strength_factor: float = 3.0) -> StreamTrack:
    """Build a stream track from an analog fold hypothesis.

    The fold gives a coarse (offset, period).  Each predicted boundary
    is snapped to the local maximum of the differential-energy sweep
    within ``search_radius``; boundaries whose energy clearly exceeds
    the noise floor become anchor points for a least-squares refit of
    the grid, which absorbs residual drift the fold's period grid did
    not capture.
    """
    energy = np.asarray(diff_energy, dtype=np.float64)
    n = energy.size
    if n == 0:
        raise ConfigurationError("diff_energy must not be empty")
    offset = hypothesis.offset_samples % hypothesis.period_samples
    period = hypothesis.period_samples
    n_slots = int(np.floor((n - 1 - offset) / period)) + 1
    if n_slots < 2:
        raise DecodeError("analog hypothesis grid has too few slots")
    floor = float(np.median(energy))
    ks: List[float] = []
    ps: List[float] = []
    for k in range(n_slots):
        predicted = offset + k * period
        lo = max(int(predicted) - search_radius, 0)
        hi = min(int(predicted) + search_radius + 1, n)
        if hi <= lo:
            continue
        local = energy[lo:hi]
        peak = int(np.argmax(local))
        if local[peak] > strength_factor * floor:
            ks.append(float(k))
            ps.append(float(lo + peak))
    if len(ks) >= 3 and np.ptp(ks) > 0:
        slope, intercept = np.polyfit(ks, ps, 1)
        if 0.9 * period <= slope <= 1.1 * period:
            period, offset = float(slope), float(intercept)
    k_back = int(np.floor(offset / period))
    offset0 = offset - k_back * period
    n_slots = int(np.floor((n - 1 - offset0) / period)) + 1
    if n_slots < 1:
        raise DecodeError("refined analog grid has no slots")
    return StreamTrack(offset_samples=offset0, period_samples=period,
                       n_slots=n_slots)
