"""Four-state Viterbi error correction over edge sequences (Section 3.5).

Certain edge sequences are physically impossible — a rising edge cannot
follow a rising edge without a fall in between.  The decoder encodes
this as a 4-state trellis: rise, fall, hold-after-rise ("-+"), and
hold-after-fall ("--"), with Gaussian emission likelihoods over the
observed (projected) edge differentials.  Running Viterbi over a
stream's grid observations corrects isolated missed or spurious edges
without any tag-side redundancy.

States are indexed: 0 = RISE, 1 = FALL, 2 = HOLD_HIGH, 3 = HOLD_LOW.
Emission means in projected-coordinate space: +1, -1, 0, 0.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..types import EdgePolarity
from .kernels import KernelBackend, get_backend

RISE, FALL, HOLD_HIGH, HOLD_LOW = 0, 1, 2, 3

STATE_NAMES = (EdgePolarity.RISING, EdgePolarity.FALLING,
               EdgePolarity.HOLD_HIGH, EdgePolarity.HOLD_LOW)

#: Emission mean of each state in projected edge-coordinate space.
STATE_MEANS = np.array([1.0, -1.0, 0.0, 0.0])

#: states[i] emits bit BIT_OF_STATE[i] (the level *after* the boundary).
BIT_OF_STATE = np.array([1, 0, 1, 0], dtype=np.int8)

_NEG_INF = -1e30


def _transition_matrix(p_flip: float) -> np.ndarray:
    """Log transition matrix enforcing edge-sequence validity.

    From a high level (after RISE or HOLD_HIGH) the only moves are FALL
    (the bit flips) or HOLD_HIGH; symmetrically for low levels.  All
    other transitions get -inf.
    """
    if not 0.0 < p_flip < 1.0:
        raise ConfigurationError(f"p_flip must be in (0, 1), got {p_flip}")
    log_flip = math.log(p_flip)
    log_hold = math.log(1.0 - p_flip)
    t = np.full((4, 4), _NEG_INF)
    for high_state in (RISE, HOLD_HIGH):
        t[high_state, FALL] = log_flip
        t[high_state, HOLD_HIGH] = log_hold
    for low_state in (FALL, HOLD_LOW):
        t[low_state, RISE] = log_flip
        t[low_state, HOLD_LOW] = log_hold
    return t


def estimate_sigma(observations: np.ndarray,
                   floor: float = 0.05) -> float:
    """Noise scale of projected observations.

    Residual spread to the nearest ideal emission mean {-1, 0, +1},
    floored so a noiseless trace does not produce a degenerate model.
    """
    obs = np.asarray(observations, dtype=np.float64).ravel()
    if obs.size == 0:
        raise ConfigurationError("need at least one observation")
    nearest = np.clip(np.round(obs), -1, 1)
    residual = obs - nearest
    return max(float(np.sqrt(np.mean(residual ** 2))), floor)


class ViterbiDecoder:
    """Maximum-likelihood edge-sequence decoder.

    Parameters
    ----------
    p_flip:
        Prior probability that consecutive bits differ.  0.5 matches
        random payloads; it can be fitted to traffic with
        :meth:`fit_flip_probability`.
    sigma:
        Emission noise scale; estimated per-stream when None.
    banded:
        Enable the banded fast path: when every observation clears the
        emission decision band (see :meth:`_decode_states_banded`), the
        thresholded state path is provably the Viterbi optimum and the
        trellis recursion is skipped.  Any observation inside the band,
        or a thresholded path that violates the trellis, falls back to
        the exact recursion, so the result is always the exact Viterbi
        path.
    band_margin:
        Extra width (observation units) added to the provably-safe
        decision band; observations inside the widened band force the
        exact recursion.
    """

    def __init__(self, p_flip: float = 0.5,
                 sigma: Optional[float] = None,
                 banded: bool = False,
                 band_margin: float = 1e-9,
                 backend: Optional[KernelBackend] = None):
        self.p_flip = p_flip
        self.sigma = sigma
        if sigma is not None and sigma <= 0:
            raise ConfigurationError("sigma must be positive")
        if band_margin < 0:
            raise ConfigurationError("band_margin must be >= 0")
        self.banded = banded
        self.band_margin = band_margin
        #: Kernel backend for the trellis recursions; ``None`` defers
        #: to the process default at call time.
        self.backend = backend
        #: Optional fidelity counter dict; when set, every decode
        #: increments ``viterbi_banded`` or ``viterbi_exact``.
        self.stats: Optional[Dict[str, int]] = None
        self._log_trans = _transition_matrix(p_flip)

    @property
    def kernels(self) -> KernelBackend:
        return self.backend if self.backend is not None \
            else get_backend()

    def fit_flip_probability(self,
                             bit_sequences: Sequence[np.ndarray]) -> float:
        """Learn p_flip from example traffic (state-transition stats)."""
        flips = 0
        total = 0
        for bits in bit_sequences:
            arr = np.asarray(bits, dtype=np.int8)
            if arr.size < 2:
                continue
            flips += int(np.count_nonzero(np.diff(arr) != 0))
            total += arr.size - 1
        if total == 0:
            raise ConfigurationError(
                "need at least one sequence of length >= 2")
        p = min(max(flips / total, 1e-3), 1.0 - 1e-3)
        self.p_flip = p
        self._log_trans = _transition_matrix(p)
        return p

    def _emission_loglik(self, observations: np.ndarray,
                         sigma: float) -> np.ndarray:
        """(T, 4) log-likelihood of each observation under each state."""
        obs = observations[:, None]
        z = (obs - STATE_MEANS[None, :]) / sigma
        return -0.5 * z ** 2 - math.log(sigma) \
            - 0.5 * math.log(2.0 * math.pi)

    def decode_states(self, observations: np.ndarray,
                      initial_state: Optional[int] = None) -> np.ndarray:
        """Most likely state sequence for projected observations.

        ``initial_state`` pins the first state (the anchor stage forces
        RISE at the frame start); when None, the physically valid start
        states RISE and HOLD_LOW (level was 0 before the stream) share
        the prior.
        """
        obs = np.asarray(observations, dtype=np.float64).ravel()
        if obs.size == 0:
            raise ConfigurationError("need at least one observation")
        sigma = self.sigma if self.sigma is not None \
            else estimate_sigma(obs)

        if self.banded:
            states = self._decode_states_banded(obs, sigma,
                                                initial_state)
            if states is not None:
                if self.stats is not None:
                    self.stats["viterbi_banded"] = (
                        self.stats.get("viterbi_banded", 0) + 1)
                return states
        if self.stats is not None:
            self.stats["viterbi_exact"] = (
                self.stats.get("viterbi_exact", 0) + 1)

        if initial_state is not None \
                and initial_state not in (RISE, FALL, HOLD_HIGH,
                                          HOLD_LOW):
            raise ConfigurationError(
                f"invalid initial state {initial_state}")
        lf = float(self._log_trans[RISE, FALL])       # log p_flip
        lh = float(self._log_trans[RISE, HOLD_HIGH])  # log (1 - p_flip)
        return self.kernels.viterbi_exact(
            obs, sigma, lf, lh,
            -1 if initial_state is None else int(initial_state))

    def _decode_states_banded(self, obs: np.ndarray, sigma: float,
                              initial_state: Optional[int]
                              ) -> Optional[np.ndarray]:
        """Thresholded state path when it is provably Viterbi-optimal.

        Returns None when optimality cannot be certified (the exact
        recursion must run).  The certificate: round each observation
        to its nearest emission mean in {-1, 0, +1}.  For any valid
        alternative path, the transition score differs from the
        thresholded path's only at slots whose mean *type* differs
        (edge vs hold — the transition into slot t is a flip iff the
        state at t is an edge state), and each such slot changes the
        transition score by at most ``swing = |log p_flip -
        log(1 - p_flip)|`` while losing at least ``|1 - 2|obs_t|| /
        (2 sigma^2)`` of emission score (the gap between the nearest
        and second-nearest mean).  So when every observation satisfies

            | |obs_t| - 0.5 | > sigma^2 * swing  (+ band_margin)

        every deviation from the thresholded path strictly lowers the
        total score, making it the unique optimum — provided the path
        is trellis-valid and starts in an admissible state; otherwise
        the optimum takes a different shape and we fall back.
        """
        band = sigma * sigma * abs(
            math.log(self.p_flip) - math.log(1.0 - self.p_flip))
        start_high = initial_state in (FALL, HOLD_HIGH)
        return self.kernels.viterbi_banded(
            obs, band + self.band_margin, start_high,
            -1 if initial_state is None else int(initial_state))

    def decode_bits(self, observations: np.ndarray,
                    initial_state: Optional[int] = None) -> np.ndarray:
        """Most likely bit sequence (level after each boundary)."""
        return BIT_OF_STATE[self.decode_states(observations,
                                               initial_state)]


def hard_decode_bits(observations: np.ndarray) -> np.ndarray:
    """Error-correction-free decode: threshold each slot independently.

    Rounds each observation to the nearest edge state and integrates the
    level, with no validity enforcement — the "Edge"-only ablation of
    Figure 9.  An (invalid) repeated rise simply keeps the level high.
    """
    obs = np.asarray(observations, dtype=np.float64).ravel()
    states = np.minimum(np.maximum(np.rint(obs), -1),
                        1).astype(np.int8)
    # Forward-fill the level from the most recent non-hold state: the
    # level at t is 1 iff the last edge seen was a rise (level starts 0).
    edge_idx = np.where(states != 0, np.arange(states.size), -1)
    last_edge = np.maximum.accumulate(edge_idx)
    bits = np.where(last_edge >= 0,
                    states[np.maximum(last_edge, 0)] == 1,
                    False)
    return bits.astype(np.int8)


def edge_states_to_bits(states: Sequence[int]) -> np.ndarray:
    """Map a state-index sequence to the bit sequence it encodes."""
    arr = np.asarray(states, dtype=np.int8)
    if arr.size and (arr.min() < 0 or arr.max() > 3):
        raise ConfigurationError("state indices must be in 0..3")
    return BIT_OF_STATE[arr]


def bits_to_edge_states(bits: Sequence[int],
                        initial_level: int = 0) -> np.ndarray:
    """Inverse mapping: the valid state sequence that produces ``bits``."""
    arr = np.asarray(bits, dtype=np.int8)
    if arr.size and not np.all((arr == 0) | (arr == 1)):
        raise ConfigurationError("bits must be 0/1")
    if initial_level not in (0, 1):
        raise ConfigurationError("initial level must be 0 or 1")
    # The level entering slot t is simply the previous bit.
    prev = np.concatenate([[initial_level], arr[:-1]]).astype(np.int8)
    return np.where(arr == 1,
                    np.where(prev == 0, RISE, HOLD_HIGH),
                    np.where(prev == 1, FALL, HOLD_LOW)).astype(np.int8)


def is_valid_state_sequence(states: Sequence[int],
                            initial_level: int = 0) -> bool:
    """Check that a state sequence respects the trellis constraints."""
    level = initial_level
    for s in np.asarray(states, dtype=np.int8):
        if s == RISE:
            if level != 0:
                return False
            level = 1
        elif s == FALL:
            if level != 1:
                return False
            level = 0
        elif s == HOLD_HIGH:
            if level != 1:
                return False
        elif s == HOLD_LOW:
            if level != 0:
                return False
        else:
            return False
    return True
