"""Exception hierarchy for the LF-Backscatter reproduction.

All library errors derive from :class:`ReproError` so callers can catch
everything from this package with a single except clause while still
being able to distinguish configuration problems from decode failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class ConfigurationError(ReproError, ValueError):
    """A simulation or decoder parameter is invalid or inconsistent."""


class SignalError(ReproError):
    """An IQ trace is malformed (wrong dtype, empty, inconsistent rate)."""


class SignalQualityError(SignalError):
    """A capture is too impaired for the trace guard to repair.

    Raised by :func:`repro.robustness.guard.sanitize_trace` when an
    impairment exceeds the repairable budget.  ``fraction`` is the
    share of samples implicated, so callers can report degradation
    quantitatively instead of guessing from the message.
    """

    def __init__(self, fraction: float, message: str = ""):
        self.fraction = float(fraction)
        if not message:
            message = (f"{100.0 * self.fraction:.1f}% of samples are "
                       "unusable")
        super().__init__(message)


class NonFiniteSignalError(SignalQualityError):
    """Too many NaN/Inf samples to interpolate across (dead ADC runs)."""


class SaturatedSignalError(SignalQualityError):
    """The capture spends too long pinned at the ADC rails to trust."""


class FlatlineSignalError(SignalQualityError):
    """The capture is (almost) constant: no receiver was listening."""


class DecodeError(ReproError):
    """The decoder could not recover a stream from the received signal."""


class CollisionUnresolvableError(DecodeError):
    """A collision involved more tags than the separator can split.

    The paper's parallelogram method (Section 3.4) separates two-way
    collisions; three-way and higher collisions are rare (Section 3.3)
    and surface as this error so callers can fall back to epoch-level
    retransmission (Section 3.6).
    """

    def __init__(self, n_colliders: int, message: str = ""):
        self.n_colliders = n_colliders
        if not message:
            message = (f"cannot separate a {n_colliders}-way collision; "
                       "the parallelogram separator handles at most 2 tags")
        super().__init__(message)


class ChannelEstimationError(ReproError):
    """Buzz-style channel estimation failed (ill-conditioned system)."""


class HardwareModelError(ReproError):
    """A hardware design references an unknown component or bad budget."""


class ServiceError(ReproError):
    """The streaming decode service could not honor a request."""


class RingFullError(ServiceError):
    """A chunk ring has no contiguous space left for a new frame.

    Live (queued or in-flight) frames hold their ring regions until
    they are retired; a producer that outruns its consumer sees this
    error and must shed load or fall back to inline transport.
    """


class FrameTooLargeError(ServiceError):
    """A chunk is larger than its ring's total capacity.

    No amount of retirement can make such a frame fit; the chunk must
    be split (or the ring sized up) before submission.
    """
