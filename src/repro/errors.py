"""Exception hierarchy for the LF-Backscatter reproduction.

All library errors derive from :class:`ReproError` so callers can catch
everything from this package with a single except clause while still
being able to distinguish configuration problems from decode failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class ConfigurationError(ReproError, ValueError):
    """A simulation or decoder parameter is invalid or inconsistent."""


class SignalError(ReproError):
    """An IQ trace is malformed (wrong dtype, empty, inconsistent rate)."""


class DecodeError(ReproError):
    """The decoder could not recover a stream from the received signal."""


class CollisionUnresolvableError(DecodeError):
    """A collision involved more tags than the separator can split.

    The paper's parallelogram method (Section 3.4) separates two-way
    collisions; three-way and higher collisions are rare (Section 3.3)
    and surface as this error so callers can fall back to epoch-level
    retransmission (Section 3.6).
    """

    def __init__(self, n_colliders: int, message: str = ""):
        self.n_colliders = n_colliders
        if not message:
            message = (f"cannot separate a {n_colliders}-way collision; "
                       "the parallelogram separator handles at most 2 tags")
        super().__init__(message)


class ChannelEstimationError(ReproError):
    """Buzz-style channel estimation failed (ill-conditioned system)."""


class HardwareModelError(ReproError):
    """A hardware design references an unknown component or bad budget."""
