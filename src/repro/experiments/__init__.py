"""Experiment runners: one per table/figure in the paper's evaluation.

Every module exposes ``run(...) -> ExperimentResult`` with a ``quick``
flag for fast CI-scale runs; the benchmark harness, the examples and
EXPERIMENTS.md all call through :mod:`registry`.
"""

from .common import ExperimentResult
from .registry import REGISTRY, run_experiment

__all__ = ["ExperimentResult", "REGISTRY", "run_experiment"]
