"""Ablation: the analog eye-pattern fallback at low SNR (Section 3.2).

The edge-based stream search needs individual edges to clear the noise
floor; the analog fold accumulates a stream's periodic energy and can
acquire it when no single edge is detectable.  This ablation measures
single-tag acquisition probability across raw-sample SNR with the
fallback enabled vs disabled.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from ..core.engine import TrialSpec
from ..types import SimulationProfile
from ..utils.rng import SeedLike, make_rng
from .common import ExperimentResult
from .sweep import SweepGrid, SweepRunner, results_of


def analog_trial(trace, payload: Dict[str, Any], rng,
                 config) -> Dict[str, int]:
    """One capture decoded with and without the analog fold.

    ``rng`` (the engine's ``default_rng(seed)``) renders the capture;
    the decoders re-derive their legacy generators from the raw seed in
    the payload (``seed + 1``, one fresh generator per variant).
    """
    from ..analysis.ber import _single_tag_capture
    from ..core.pipeline import LFDecoder, LFDecoderConfig
    prof = payload["profile"]
    capture = _single_tag_capture(
        payload["snr_db"], payload["n_bits"], prof, 0.1 + 0.04j, rng)
    truth = capture.truths[0]
    hits = {}
    for fallback in (True, False):
        decoder = LFDecoder(LFDecoderConfig(
            candidate_bitrates_bps=[prof.default_bitrate_bps],
            profile=prof, min_header_score=0.6,
            enable_analog_fallback=fallback),
            rng=np.random.default_rng(payload["seed"] + 1))
        result = decoder.decode_epoch(capture.trace)
        hit = any(abs(s.offset_samples - truth.offset_samples) < 30
                  for s in result.streams)
        hits["with_fallback" if fallback else "without"] = int(hit)
    return hits


def run(snr_db_values: Optional[List[float]] = None,
        n_trials: int = 6,
        n_bits: int = 150,
        profile: Optional[SimulationProfile] = None,
        rng: SeedLike = 44,
        quick: bool = False) -> ExperimentResult:
    """Acquisition probability with and without the analog fold."""
    snrs = snr_db_values or [-2.0, 0.0, 2.0, 4.0, 6.0, 10.0]
    if quick:
        snrs = [0.0, 4.0, 10.0]
        n_trials = 3
    prof = profile or SimulationProfile.fast()
    gen = make_rng(rng)

    # Trial seeds pre-drawn in the legacy snr-then-trial order; each
    # engine trial renders the capture from its seed and runs both
    # decoder variants against it.
    grid = SweepGrid()
    for snr in snrs:
        trials = []
        for _ in range(n_trials):
            seed = int(gen.integers(0, 2 ** 31))
            trials.append(TrialSpec(seed=seed, payload={
                "snr_db": snr, "n_bits": n_bits, "profile": prof,
                "seed": seed}))
        grid.add_cell({"snr_db": snr}, trials)

    def _fold(cell, outcomes):
        results = results_of(outcomes)
        return {
            "snr_db": cell.coords["snr_db"],
            "acquired_with_fallback":
                sum(r["with_fallback"] for r in results) / n_trials,
            "acquired_without":
                sum(r["without"] for r in results) / n_trials,
        }

    rows = SweepRunner(analog_trial).run(grid, _fold)
    return ExperimentResult(
        experiment_id="ablation_analog",
        description="Single-tag stream acquisition vs SNR, with/"
                    "without the analog eye-pattern fallback",
        rows=rows,
        paper_reference={
            "claim": "folding analog samples at the candidate period "
                     "detects streams whose individual edges are "
                     "buried (Section 3.2's eye pattern)",
        })
