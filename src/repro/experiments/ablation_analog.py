"""Ablation: the analog eye-pattern fallback at low SNR (Section 3.2).

The edge-based stream search needs individual edges to clear the noise
floor; the analog fold accumulates a stream's periodic energy and can
acquire it when no single edge is detectable.  This ablation measures
single-tag acquisition probability across raw-sample SNR with the
fallback enabled vs disabled.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..analysis.ber import _single_tag_capture
from ..core.pipeline import LFDecoder, LFDecoderConfig
from ..types import SimulationProfile
from ..utils.rng import SeedLike, make_rng
from .common import ExperimentResult


def run(snr_db_values: Optional[List[float]] = None,
        n_trials: int = 6,
        n_bits: int = 150,
        profile: Optional[SimulationProfile] = None,
        rng: SeedLike = 44,
        quick: bool = False) -> ExperimentResult:
    """Acquisition probability with and without the analog fold."""
    snrs = snr_db_values or [-2.0, 0.0, 2.0, 4.0, 6.0, 10.0]
    if quick:
        snrs = [0.0, 4.0, 10.0]
        n_trials = 3
    prof = profile or SimulationProfile.fast()
    gen = make_rng(rng)

    rows = []
    for snr in snrs:
        acquired = {True: 0, False: 0}
        for trial in range(n_trials):
            seed = int(gen.integers(0, 2 ** 31))
            capture = _single_tag_capture(
                snr, n_bits, prof, 0.1 + 0.04j,
                np.random.default_rng(seed))
            truth = capture.truths[0]
            for fallback in (True, False):
                decoder = LFDecoder(LFDecoderConfig(
                    candidate_bitrates_bps=[prof.default_bitrate_bps],
                    profile=prof, min_header_score=0.6,
                    enable_analog_fallback=fallback),
                    rng=np.random.default_rng(seed + 1))
                result = decoder.decode_epoch(capture.trace)
                hit = any(abs(s.offset_samples - truth.offset_samples)
                          < 30 for s in result.streams)
                acquired[fallback] += int(hit)
        rows.append({
            "snr_db": snr,
            "acquired_with_fallback": acquired[True] / n_trials,
            "acquired_without": acquired[False] / n_trials,
        })
    return ExperimentResult(
        experiment_id="ablation_analog",
        description="Single-tag stream acquisition vs SNR, with/"
                    "without the analog eye-pattern fallback",
        rows=rows,
        paper_reference={
            "claim": "folding analog samples at the candidate period "
                     "detects streams whose individual edges are "
                     "buried (Section 3.2's eye pattern)",
        })
