"""Ablation: decoder tolerance to tag clock drift (Section 4.1).

"Our decoding method can tolerate roughly 200 ppm of clock drift" — the
reason the Moo's 40,000 ppm internal DCO had to be replaced with a
crystal.  This ablation sweeps the crystal quality and measures decode
goodput: losses should be negligible through ~200 ppm and degrade
beyond the fold/tracker tolerance.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.engine import TrialSpec
from ..core.pipeline import LFDecoderConfig
from ..phy.channel import random_coefficients
from ..types import SimulationProfile
from ..utils.rng import SeedLike, make_rng
from .common import ExperimentResult
from .scenario import ScenarioSpec
from .sweep import SweepGrid, SweepRunner, results_of
from .trials import scenario_decode_trial


def run(drift_values_ppm: Optional[List[float]] = None,
        n_tags: int = 4,
        n_epochs: int = 3,
        epoch_duration_s: float = 0.012,
        profile: Optional[SimulationProfile] = None,
        rng: SeedLike = 41,
        quick: bool = False) -> ExperimentResult:
    """Measure goodput across crystal drift magnitudes."""
    drifts = drift_values_ppm or [0.0, 200.0, 1000.0, 4000.0,
                                  16000.0, 40000.0]
    if quick:
        drifts = [0.0, 200.0, 40000.0]
        n_epochs = 2
    prof = profile or SimulationProfile.fast()
    rate = prof.default_bitrate_bps
    gen = make_rng(rng)

    # Each (drift, epoch) trial's entropy — coefficients, per-tag and
    # simulator seeds, decoder seed — is pre-drawn in the legacy serial
    # order and pinned into a self-contained spec.
    grid = SweepGrid()
    for drift in drifts:
        trials = []
        for epoch in range(n_epochs):
            coeffs = random_coefficients(n_tags, rng=gen)
            seeds = tuple(int(gen.integers(0, 2 ** 63))
                          for _ in range(n_tags + 1))
            decoder_seed = int(gen.integers(0, 2 ** 63))
            spec = ScenarioSpec(
                name="ablation_drift", n_tags=n_tags,
                bitrate_bps=rate, drift_ppm=drift,
                coefficients=tuple(coeffs), population_seeds=seeds)
            trials.append(TrialSpec(seed=decoder_seed, payload={
                "spec": spec, "profile": prof,
                "decoder_config": LFDecoderConfig(
                    candidate_bitrates_bps=[rate], profile=prof),
                "duration": epoch_duration_s, "epoch_index": epoch}))
        grid.add_cell({"drift_ppm": drift}, trials)

    def _fold(cell, outcomes):
        results = results_of(outcomes)
        correct = sum(r["bits_correct"] for r in results)
        sent = sum(r["bits_sent"] for r in results)
        return {"drift_ppm": cell.coords["drift_ppm"],
                "goodput_fraction": correct / sent if sent else 0.0}

    rows = SweepRunner(scenario_decode_trial).run(grid, _fold)
    return ExperimentResult(
        experiment_id="ablation_drift",
        description="Decoder goodput vs tag clock drift",
        rows=rows,
        paper_reference={
            "claim": "the decoding method tolerates roughly 200 ppm of "
                     "clock drift (Section 4.1); the Moo's 40,000 ppm "
                     "DCO is unusable",
        },
        notes="our progressive edge tracker absorbs constant ppm "
              "offsets well beyond the paper's 200 ppm budget — the "
              "binding limit is per-bit phase walk vs the matching "
              "tolerance, reached near DCO-class drift")
