"""Ablation: decoder tolerance to tag clock drift (Section 4.1).

"Our decoding method can tolerate roughly 200 ppm of clock drift" — the
reason the Moo's 40,000 ppm internal DCO had to be replaced with a
crystal.  This ablation sweeps the crystal quality and measures decode
goodput: losses should be negligible through ~200 ppm and degrade
beyond the fold/tracker tolerance.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..analysis.throughput import score_epoch
from ..core.pipeline import LFDecoder, LFDecoderConfig
from ..phy.channel import ChannelModel, random_coefficients
from ..reader.simulator import NetworkSimulator
from ..tags.lf_tag import LFTag
from ..types import SimulationProfile, TagConfig
from ..utils.rng import SeedLike, make_rng
from .common import ExperimentResult


def run(drift_values_ppm: Optional[List[float]] = None,
        n_tags: int = 4,
        n_epochs: int = 3,
        epoch_duration_s: float = 0.012,
        profile: Optional[SimulationProfile] = None,
        rng: SeedLike = 41,
        quick: bool = False) -> ExperimentResult:
    """Measure goodput across crystal drift magnitudes."""
    drifts = drift_values_ppm or [0.0, 200.0, 1000.0, 4000.0,
                                  16000.0, 40000.0]
    if quick:
        drifts = [0.0, 200.0, 40000.0]
        n_epochs = 2
    prof = profile or SimulationProfile.fast()
    rate = prof.default_bitrate_bps
    gen = make_rng(rng)

    rows = []
    for drift in drifts:
        correct = 0
        sent = 0
        for epoch in range(n_epochs):
            coeffs = random_coefficients(n_tags, rng=gen)
            channel = ChannelModel(
                {k: coeffs[k] for k in range(n_tags)},
                environment_offset=0.5 + 0.3j)
            tags = [LFTag(TagConfig(tag_id=k, bitrate_bps=rate,
                                    channel_coefficient=coeffs[k],
                                    clock_drift_ppm=drift),
                          profile=prof,
                          rng=np.random.default_rng(
                              gen.integers(0, 2 ** 63)))
                    for k in range(n_tags)]
            sim = NetworkSimulator(
                tags, channel, profile=prof, noise_std=0.01,
                rng=np.random.default_rng(gen.integers(0, 2 ** 63)))
            capture = sim.run_epoch(epoch_duration_s,
                                    epoch_index=epoch)
            decoder = LFDecoder(
                LFDecoderConfig(candidate_bitrates_bps=[rate],
                                profile=prof),
                rng=np.random.default_rng(gen.integers(0, 2 ** 63)))
            report = score_epoch(capture,
                                 decoder.decode_epoch(capture.trace))
            correct += report.bits_correct
            sent += report.bits_sent
        rows.append({
            "drift_ppm": drift,
            "goodput_fraction": correct / sent if sent else 0.0,
        })
    return ExperimentResult(
        experiment_id="ablation_drift",
        description="Decoder goodput vs tag clock drift",
        rows=rows,
        paper_reference={
            "claim": "the decoding method tolerates roughly 200 ppm of "
                     "clock drift (Section 4.1); the Moo's 40,000 ppm "
                     "DCO is unusable",
        },
        notes="our progressive edge tracker absorbs constant ppm "
              "offsets well beyond the paper's 200 ppm budget — the "
              "binding limit is per-bit phase walk vs the matching "
              "tolerance, reached near DCO-class drift")
