"""Shared experiment scaffolding."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..errors import ConfigurationError


@dataclass
class ExperimentResult:
    """Structured output of one experiment run.

    ``rows`` mirrors the table/figure series of the paper: one dict per
    row/point, with stable keys so the bench harness can print the same
    columns every run.  ``paper_reference`` records the values the
    paper reports for side-by-side comparison in EXPERIMENTS.md.
    """

    experiment_id: str
    description: str
    rows: List[Dict[str, Any]] = field(default_factory=list)
    paper_reference: Dict[str, Any] = field(default_factory=dict)
    notes: str = ""

    def column(self, key: str) -> List[Any]:
        """Extract one column across all rows."""
        missing = [i for i, r in enumerate(self.rows) if key not in r]
        if missing:
            raise ConfigurationError(
                f"rows {missing} lack column {key!r}")
        return [r[key] for r in self.rows]

    def format_table(self) -> str:
        """Render rows as an aligned text table (bench output)."""
        if not self.rows:
            return f"[{self.experiment_id}] (no rows)"
        keys = list(self.rows[0].keys())
        for row in self.rows[1:]:
            for key in row:
                if key not in keys:
                    keys.append(key)
        header = " | ".join(keys)
        lines = [f"[{self.experiment_id}] {self.description}",
                 header, "-" * len(header)]
        for row in self.rows:
            lines.append(" | ".join(_fmt(row.get(k)) for k in keys))
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}"
    return str(value)
