"""Figure 1: channel-coefficient dynamics under movement.

Reproduces the three 12-second traces that motivate channel-estimation-
free decoding: (a) a person walking near a stationary tag, (b) a tag
rotated in place, and (c) two tags brought within coupling distance.
The quantitative claim checked here: coefficients are stable in the
static regime and shift substantially (relative excursion far above the
noise floor) once the dynamic begins.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..phy import dynamics
from ..utils.rng import SeedLike, make_rng
from .common import ExperimentResult


def _excursion(values: np.ndarray) -> float:
    """Peak deviation from the initial value, relative to |initial|."""
    ref = values[0]
    return float(np.max(np.abs(values - ref)) / max(abs(ref), 1e-12))


def run(duration_s: float = 12.0, sample_rate_hz: float = 100.0,
        rng: SeedLike = 42, quick: bool = False) -> ExperimentResult:
    """Generate the three Figure 1 scenarios and summarize them."""
    if quick:
        duration_s = min(duration_s, 3.0)
    gen = make_rng(rng)
    times = np.arange(0.0, duration_s, 1.0 / sample_rate_hz)
    base_a = 0.15 + 0.05j
    base_b = -0.08 + 0.12j

    people = dynamics.people_movement(base_a, duration_s, rng=gen)(times)
    rotation = dynamics.tag_rotation(base_a, duration_s, rng=gen)(times)
    coup_a_fn, coup_b_fn = dynamics.coupled_tags(
        base_a, base_b, duration_s,
        approach_start_s=duration_s / 2.0, rng=gen)
    coup_a, coup_b = coup_a_fn(times), coup_b_fn(times)

    half = times.size // 2
    rows = []
    for name, series in (("people_movement", people),
                         ("tag_rotation", rotation),
                         ("coupled_tag_a", coup_a),
                         ("coupled_tag_b", coup_b)):
        rows.append({
            "scenario": name,
            "excursion_total": _excursion(series),
            "excursion_first_half": _excursion(series[:half]),
            "excursion_second_half": _excursion(series[half:]),
            "i_range": float(np.ptp(series.real)),
            "q_range": float(np.ptp(series.imag)),
        })
    return ExperimentResult(
        experiment_id="fig1",
        description="Channel coefficient dynamics (movement, rotation, "
                    "near-field coupling)",
        rows=rows,
        paper_reference={
            "claim": "channel coefficients change substantially under "
                     "people movement, tag rotation, and coupling when "
                     "tags come within ~5cm (Figure 1a-c)",
        },
        notes="coupled tags hold steady in the first half (1m apart) "
              "and shift in the second half (approach to 5cm)")


def traces(duration_s: float = 12.0, sample_rate_hz: float = 100.0,
           rng: SeedLike = 42) -> Dict[str, np.ndarray]:
    """Raw I/Q coefficient traces for plotting (examples use this)."""
    gen = make_rng(rng)
    times = np.arange(0.0, duration_s, 1.0 / sample_rate_hz)
    base_a = 0.15 + 0.05j
    base_b = -0.08 + 0.12j
    coup_a, coup_b = dynamics.coupled_tags(
        base_a, base_b, duration_s,
        approach_start_s=duration_s / 2.0, rng=gen)
    return {
        "time_s": times,
        "people_movement": dynamics.people_movement(
            base_a, duration_s, rng=gen)(times),
        "tag_rotation": dynamics.tag_rotation(
            base_a, duration_s, rng=gen)(times),
        "coupled_tag_a": coup_a(times),
        "coupled_tag_b": coup_b(times),
    }
