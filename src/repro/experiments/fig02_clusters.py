"""Figure 2: IQ cluster structure and its collapse with tag count.

(a) QAM's structured constellation as the reference, (b) two
synchronous tags forming 4 clean separable clusters, (c) six tags
forming 64 crowded clusters where nearest-cluster decoding degrades.
The measured quantity is full-state symbol accuracy of the Section 2.3
cluster separator, plus the minimum inter-cluster gap relative to the
noise scale.
"""

from __future__ import annotations

from ..baselines.qam_cluster import (ClusterSeparator,
                                     synthesize_synchronous_samples)
from ..phy.channel import random_coefficients
from ..phy.modulation import qam_constellation
from ..utils.rng import SeedLike, make_rng
from .common import ExperimentResult


def run(noise_std: float = 0.02, n_symbols: int = 400,
        rng: SeedLike = 7, quick: bool = False) -> ExperimentResult:
    """Measure cluster decodability for 2 vs 6 concurrent tags."""
    if quick:
        n_symbols = min(n_symbols, 120)
    gen = make_rng(rng)
    rows = []

    qam = qam_constellation(order=16, noise_std=noise_std, rng=gen)
    rows.append({
        "scenario": "qam16_reference",
        "n_clusters": 16,
        "min_gap_over_noise": float(
            (2.0 / 16 ** 0.5) / max(noise_std, 1e-12)),
        "symbol_accuracy": float("nan"),
        "n_points": int(qam.size),
    })

    for n_tags in (2, 6):
        coeffs = random_coefficients(n_tags, rng=gen)
        separator = ClusterSeparator(coeffs)
        samples, truth = synthesize_synchronous_samples(
            coeffs, n_symbols, noise_std=noise_std, rng=gen)
        rows.append({
            "scenario": f"{n_tags}_tags",
            "n_clusters": separator.n_clusters,
            "min_gap_over_noise": separator.min_cluster_gap()
            / max(noise_std, 1e-12),
            "symbol_accuracy": separator.symbol_accuracy(samples, truth),
            "n_points": int(samples.size),
        })
    return ExperimentResult(
        experiment_id="fig2",
        description="IQ clusters: QAM reference vs unstructured "
                    "backscatter clusters (2 and 6 tags)",
        rows=rows,
        paper_reference={
            "claim": "4 dense clusters for 2 tags decode easily; 64 "
                     "clusters for 6 tags are very close together and "
                     "cluster classification becomes challenging "
                     "(Figure 2b-c; Angerer et al. conclude the "
                     "technique does not scale beyond two nodes)",
        })
