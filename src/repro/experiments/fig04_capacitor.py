"""Figure 4: capacitor charging and comparator fire-time jitter.

The tag begins transmitting when its receive capacitor crosses the
comparator threshold; incoming energy, capacitor tolerance, and
charging noise spread the fire times.  The experiment measures that the
spread (a) covers a useful fraction of a bit period modulo the bit
time, and (b) responds to energy level as the figure shows (less
incoming energy -> later fire).
"""

from __future__ import annotations

import numpy as np

from ..phy.capacitor import CapacitorModel, ComparatorJitterModel
from ..tags.lf_tag import default_offset_model
from ..utils.rng import SeedLike, make_rng
from .common import ExperimentResult


def run(bit_period_s: float = 1e-4, n_tags: int = 200,
        rng: SeedLike = 11, quick: bool = False) -> ExperimentResult:
    """Characterize the fire-time spread of the default jitter model."""
    if quick:
        n_tags = min(n_tags, 50)
    gen = make_rng(rng)
    rows = []

    # Energy dependence of the deterministic crossing time.
    cap = CapacitorModel(c_farad=1e-9, r_ohm=bit_period_s * 6.0 / 1e-9)
    for energy in (0.8, 1.0, 1.2):
        rows.append({
            "quantity": f"crossing_time_energy_{energy}",
            "value_bit_periods": cap.crossing_time(
                1.0, energy_scale=energy) / bit_period_s,
        })

    # Fire-time population across tags (one draw per tag, as at the
    # start of one epoch).
    fires = []
    for k in range(n_tags):
        model = default_offset_model(
            bit_period_s, rng=np.random.default_rng(
                gen.integers(0, 2 ** 63)))
        fires.append(model.fire_time_s())
    fires = np.asarray(fires) / bit_period_s
    phases = np.mod(fires, 1.0)
    rows.extend([
        {"quantity": "fire_time_mean", "value_bit_periods":
            float(np.mean(fires))},
        {"quantity": "fire_time_spread",
         "value_bit_periods": float(np.ptp(fires))},
        {"quantity": "phase_std",
         "value_bit_periods": float(np.std(phases))},
    ])
    # Epoch-to-epoch jitter of a single tag (charging noise only).
    model = ComparatorJitterModel(
        capacitor=CapacitorModel(c_farad=1e-9,
                                 r_ohm=bit_period_s * 6.0 / 1e-9),
        threshold_v=1.0, rng=gen)
    repeats = model.fire_times_s(n_tags) / bit_period_s
    rows.append({"quantity": "single_tag_epoch_jitter_std",
                 "value_bit_periods": float(np.std(repeats))})
    return ExperimentResult(
        experiment_id="fig4",
        description="Capacitor charging / comparator fire-time jitter",
        rows=rows,
        paper_reference={
            "claim": "energy, capacitor tolerance (~20%), and charging "
                     "noise naturally randomize transmit start times "
                     "(Figure 4)",
        },
        notes="uniform phase std would be 1/sqrt(12) ~ 0.289 bit "
              "periods")
