"""Figure 5: the nine-cluster parallelogram of a two-way collision.

Two tags forced to collide produce grid differentials on the lattice
a*e1 + b*e2; the experiment verifies the recovered basis matches the
true per-tag channel coefficients and that the paper's co-linear
mid-point construction agrees with the exhaustive lattice fit.
"""

from __future__ import annotations

import numpy as np

from ..core.separation import (basis_from_collinear_midpoints,
                               basis_from_lattice_fit, separate_two_way)
from ..utils.rng import SeedLike, make_rng
from .common import ExperimentResult


def _basis_error(recovered, truth_pair) -> float:
    """Best-assignment relative error between recovered and true basis,
    tolerating order swap and sign flips."""
    e1, e2 = recovered
    t1, t2 = truth_pair
    options = []
    for a, b in ((e1, e2), (e2, e1)):
        for s1 in (1, -1):
            for s2 in (1, -1):
                err = (abs(s1 * a - t1) + abs(s2 * b - t2)) \
                    / (abs(t1) + abs(t2))
                options.append(err)
    return float(min(options))


def synthesize_collision(e1: complex, e2: complex, n_slots: int,
                         noise_std: float,
                         rng: SeedLike = None) -> np.ndarray:
    """Grid differentials of two colliding random NRZ streams."""
    gen = make_rng(rng)
    states1 = gen.integers(-1, 2, n_slots)
    states2 = gen.integers(-1, 2, n_slots)
    clean = states1 * e1 + states2 * e2
    noise = (gen.normal(0, noise_std / np.sqrt(2), n_slots)
             + 1j * gen.normal(0, noise_std / np.sqrt(2), n_slots))
    return clean + noise


def run(n_slots: int = 400, noise_std: float = 0.008,
        n_trials: int = 10, rng: SeedLike = 23,
        quick: bool = False) -> ExperimentResult:
    """Recover collision bases over randomized tag geometries."""
    if quick:
        n_trials = min(n_trials, 3)
        n_slots = min(n_slots, 150)
    gen = make_rng(rng)
    errors_fit = []
    errors_mid = []
    for _ in range(n_trials):
        mag1 = gen.uniform(0.05, 0.2)
        mag2 = gen.uniform(0.05, 0.2)
        ang1 = gen.uniform(0, 2 * np.pi)
        # Keep at least 25 degrees between edge vectors: closer pairs
        # are the physically degenerate case Table 2 loses accuracy on.
        ang2 = ang1 + gen.uniform(np.deg2rad(25), np.deg2rad(155)) \
            * gen.choice([-1, 1])
        e1 = mag1 * np.exp(1j * ang1)
        e2 = mag2 * np.exp(1j * ang2)
        diffs = synthesize_collision(e1, e2, n_slots, noise_std, gen)
        separation = separate_two_way(diffs, rng=gen)
        errors_fit.append(_basis_error((separation.e1, separation.e2),
                                       (e1, e2)))
        from ..core.clustering import kmeans
        fit = kmeans(diffs, 9, rng=gen, n_init=6)
        mid = basis_from_collinear_midpoints(fit.centroids)
        errors_mid.append(_basis_error(mid, (e1, e2)))
    rows = [
        {"method": "lattice_fit",
         "mean_basis_error": float(np.mean(errors_fit)),
         "max_basis_error": float(np.max(errors_fit)),
         "n_trials": n_trials},
        {"method": "collinear_midpoints (paper)",
         "mean_basis_error": float(np.mean(errors_mid)),
         "max_basis_error": float(np.max(errors_mid)),
         "n_trials": n_trials},
    ]
    return ExperimentResult(
        experiment_id="fig5",
        description="Two-way collision parallelogram: basis recovery",
        rows=rows,
        paper_reference={
            "claim": "the 9 cluster centroids form a parallelogram "
                     "whose co-linear mid-points identify e1 and e2 "
                     "(Figure 5, Section 3.4)",
        })
