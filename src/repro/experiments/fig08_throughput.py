"""Figure 8: aggregate throughput of TDMA, Buzz and LF-Backscatter.

All tags stream at the default rate; the tag count sweeps 4/8/12/16.
LF throughput is *measured* end-to-end (simulate, decode, score);
TDMA and Buzz come from their protocol models (TDMA serializes to one
channel; Buzz needs ~n/2 lock-step retransmissions per bit).

Throughputs are reported normalized to the single-tag bitrate so the
fast profile's numbers read directly against the paper's 100 kbps
axis: the paper's 16-node point is ~16x for LF (near the 1600 kbps
maximum), ~2x for Buzz, and 1x for TDMA.
"""

from __future__ import annotations

from typing import List, Optional

from ..baselines.buzz import BuzzConfig, BuzzSimulator
from ..baselines.tdma import TdmaConfig, TdmaSimulator
from ..core.engine import TrialSpec
from ..phy.channel import ChannelModel, random_coefficients
from ..types import SimulationProfile
from ..utils.rng import SeedLike, make_rng
from .common import ExperimentResult
from .sweep import SweepGrid, SweepRunner, results_of
from .trials import lf_epochs_trial


def run(tag_counts: Optional[List[int]] = None,
        n_epochs: int = 4,
        epoch_duration_s: float = 0.012,
        profile: Optional[SimulationProfile] = None,
        rng: SeedLike = 2015,
        quick: bool = False) -> ExperimentResult:
    """Measure the Figure 8 sweep.

    The measured LF runs dispatch through the sweep layer (one
    engine-supervised trial per tag count, seeded exactly as the old
    serial ``lf_throughput_sweep`` loop drew them); the TDMA and Buzz
    columns stay in-process — they are analytic protocol models, not
    decodes.
    """
    counts = tag_counts or [4, 8, 12, 16]
    if quick:
        counts = [c for c in counts if c <= 8] or counts[:1]
        n_epochs = 2
    prof = profile or SimulationProfile.fast()
    rate = prof.default_bitrate_bps
    gen = make_rng(rng)

    # Pre-draw each count's run seed in the legacy order (the sweep
    # consumed one child draw per count before TDMA/Buzz touched gen).
    grid = SweepGrid()
    for n in counts:
        seed = int(gen.integers(0, 2 ** 63))
        grid.add_cell({"n_tags": n}, TrialSpec(seed=seed, payload={
            "n_tags": n, "rate": rate, "n_epochs": n_epochs,
            "duration": epoch_duration_s, "profile": prof}))
    lf_rows = SweepRunner(lf_epochs_trial).run(
        grid, lambda cell, outs: {**cell.coords,
                                  **results_of(outs)[0]})
    lf_runs = {row["n_tags"]: row for row in lf_rows}
    tdma = TdmaSimulator(TdmaConfig(bitrate_bps=rate), rng=gen)

    rows = []
    for n in counts:
        coeffs = random_coefficients(n, rng=gen)
        buzz = BuzzSimulator(
            ChannelModel({k: c for k, c in enumerate(coeffs)}),
            BuzzConfig(bitrate_bps=rate), rng=gen)
        lf_bps = lf_runs[n]["throughput_bps"]
        rows.append({
            "n_tags": n,
            "tdma_x": tdma.aggregate_throughput_bps(n) / rate,
            "buzz_x": buzz.aggregate_throughput_bps(n) / rate,
            "lf_x": lf_bps / rate,
            "lf_goodput_fraction": lf_runs[n]["goodput_fraction"],
            "max_x": float(n),
        })
    last = rows[-1]
    return ExperimentResult(
        experiment_id="fig8",
        description="Aggregate throughput vs number of devices "
                    "(normalized to single-tag bitrate)",
        rows=rows,
        paper_reference={
            "lf_vs_tdma_at_16": 16.4,
            "lf_vs_buzz_at_16": 7.9,
            "claim": "LF-Backscatter achieves close to the maximum "
                     "possible throughput in all cases",
        },
        notes=f"measured LF/TDMA at n={last['n_tags']}: "
              f"{last['lf_x'] / last['tdma_x']:.1f}x, LF/Buzz: "
              f"{last['lf_x'] / last['buzz_x']:.1f}x")
