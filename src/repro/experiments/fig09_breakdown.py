"""Figure 9: contribution of each decoding stage to LF throughput.

Three decoder variants over the same workload:

* **Edge** — time-domain separation only (collisions decode garbled,
  no error correction),
* **Edge+IQ** — adds cluster-based collision detection/separation,
* **Edge+IQ+Error** — adds the Viterbi error-correction stage.

The paper: edge-only leaves ~15.3% of throughput on the table at 16
nodes; collision recovery adds ~5.6% and error correction ~7.7%.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..analysis.throughput import run_lf_epochs
from ..core.pipeline import LFDecoderConfig
from ..types import SimulationProfile
from ..utils.rng import SeedLike, make_rng
from .common import ExperimentResult

VARIANTS = (
    ("edge", False, False),
    ("edge_iq", True, False),
    ("edge_iq_error", True, True),
)


def run(tag_counts: Optional[List[int]] = None,
        n_epochs: int = 3,
        epoch_duration_s: float = 0.012,
        profile: Optional[SimulationProfile] = None,
        rng: SeedLike = 99,
        quick: bool = False) -> ExperimentResult:
    """Measure the ablation sweep."""
    counts = tag_counts or [4, 8, 12, 16]
    if quick:
        counts = [c for c in counts if c <= 8] or counts[:1]
        n_epochs = 2
    prof = profile or SimulationProfile.fast()
    rate = prof.default_bitrate_bps
    gen = make_rng(rng)

    rows = []
    for n in counts:
        row = {"n_tags": n, "max_x": float(n)}
        # Same seed across variants: identical workload, only the
        # decoder differs.
        seed = int(gen.integers(0, 2 ** 31))
        for name, iq, ec in VARIANTS:
            config = LFDecoderConfig(
                candidate_bitrates_bps=[rate], profile=prof,
                enable_iq_separation=iq, enable_error_correction=ec)
            result = run_lf_epochs(
                n, rate, n_epochs, epoch_duration_s, profile=prof,
                decoder_config=config,
                rng=np.random.default_rng(seed))
            row[f"{name}_x"] = result.throughput_bps / rate
        rows.append(row)
    return ExperimentResult(
        experiment_id="fig9",
        description="Decoder-stage ablation: Edge / Edge+IQ / "
                    "Edge+IQ+Error (normalized throughput)",
        rows=rows,
        paper_reference={
            "edge_only_gap_at_16": 0.153,
            "iq_gain_at_16": 0.056,
            "error_correction_gain_at_16": 0.077,
        },
        notes="each stage should add throughput, with the gaps growing "
              "with node count")
