"""Figure 10: aggregate throughput vs per-tag bitrate (16 nodes).

Sixteen tags sweep their common bitrate upward until the time-domain
edge budget saturates: the paper sees throughput climb to ~200 kbps
per tag and crash by 250 kbps, where the 250-sample bit period can no
longer hold 16 tags' worth of 3-sample edges without constant
collisions.  The samples-per-bit at the crash point (~100) is profile
invariant, so the fast profile reproduces the same curve at one tenth
the absolute rates.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.engine import TrialSpec
from ..core.pipeline import LFDecoderConfig
from ..types import SimulationProfile
from ..utils.rng import SeedLike, make_rng
from .common import ExperimentResult
from .sweep import SweepGrid, SweepRunner, results_of
from .trials import lf_epochs_trial

VARIANTS = (
    ("edge", False, False),
    ("edge_iq", True, False),
    ("edge_iq_error", True, True),
)


def run(n_tags: int = 16,
        rate_fractions: Optional[List[float]] = None,
        n_epochs: int = 2,
        profile: Optional[SimulationProfile] = None,
        rng: SeedLike = 1010,
        quick: bool = False) -> ExperimentResult:
    """Sweep per-tag bitrate as fractions of the profile default.

    ``rate_fractions`` are multiples of the profile's default bitrate
    (1.0 = the "100 kbps" reference point; 2.5 = the paper's 250 kbps
    crash region).
    """
    fractions = rate_fractions or [0.25, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0]
    if quick:
        fractions = [0.5, 1.0, 2.5]
        n_tags = min(n_tags, 8)
    prof = profile or SimulationProfile.fast()
    gen = make_rng(rng)

    # One cell per rate fraction; its three decoder-variant trials
    # share the cell seed (identical captures, ablated configs) and
    # dispatch through the engine.
    grid = SweepGrid()
    for fraction in fractions:
        rate = prof.default_bitrate_bps * fraction
        prof.validate_bitrate(rate)
        # Keep the per-epoch bit budget roughly constant across rates.
        duration = 130.0 / rate
        seed = int(gen.integers(0, 2 ** 31))
        trials = []
        for name, iq, ec in VARIANTS:
            config = LFDecoderConfig(
                candidate_bitrates_bps=[rate], profile=prof,
                enable_iq_separation=iq, enable_error_correction=ec)
            trials.append(TrialSpec(seed=seed, payload={
                "n_tags": n_tags, "rate": rate, "n_epochs": n_epochs,
                "duration": duration, "profile": prof,
                "decoder_config": config}))
        grid.add_cell({"rate_x": fraction,
                       "samples_per_bit": prof.samples_per_bit(rate)},
                      trials)

    def _fold(cell, outcomes):
        row = dict(cell.coords)
        for (name, _, _), result in zip(VARIANTS, results_of(outcomes)):
            row[f"{name}_x"] = result["throughput_bps"] \
                / prof.default_bitrate_bps
        return row

    rows = SweepRunner(lf_epochs_trial).run(grid, _fold)
    return ExperimentResult(
        experiment_id="fig10",
        description=f"Throughput vs per-tag bitrate, {n_tags} nodes "
                    "(x = multiples of the reference rate)",
        rows=rows,
        paper_reference={
            "claim": "aggregate throughput crashes past ~2x the "
                     "reference rate (200 kbps at 25 Msps) as edges "
                     "can no longer interleave; IQ recovery and error "
                     "correction matter most near the crash "
                     "(Figure 10)",
        })
