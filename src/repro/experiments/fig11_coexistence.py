"""Figure 11: coexistence of slow and fast tags.

Per the paper's setup ("we let two node transmit at each of the
following eight sets of bitrates starting from slow to fast"), each
trial pairs one slow tag with one reference-rate tag and measures both.
The claim to reproduce: slow tags are not adversely impacted by fast
ones — their loss rate is zero — because the eye-pattern fold separates
rates cleanly.  Rates are expressed as fractions of the profile's
reference rate (the fast profile divides the paper's absolute numbers
by 10 at identical samples-per-bit).
"""

from __future__ import annotations

from typing import List, Optional

from ..core.engine import TrialSpec
from ..core.pipeline import LFDecoderConfig
from ..phy.channel import random_coefficients
from ..types import SimulationProfile
from ..utils.rng import SeedLike, make_rng
from .common import ExperimentResult
from .scenario import ScenarioSpec
from .sweep import SweepGrid, SweepRunner, results_of


def pair_trial(trace, payload, rng, config) -> List[dict]:
    """Engine-dispatched slow+fast pair: render, decode, score both.

    The pair's capture is fully pinned in the payload's spec
    (coefficients + population seeds); ``rng`` seeds the decoder, with
    the exact generator the legacy serial loop drew for it.
    """
    from ..analysis.throughput import match_streams
    from ..core.pipeline import LFDecoder
    from .scenario import ScenarioSynth
    profile = payload["profile"]
    synth = ScenarioSynth(payload["spec"], profile=profile)
    slow_rate = payload["spec"].bitrates_bps[0]
    capture = synth.capture(26.0 / slow_rate)
    decoder = LFDecoder(payload["decoder_config"], rng=rng)
    result = decoder.decode_epoch(capture.trace)
    matches = match_streams(capture, result)
    rows = []
    for match in sorted(matches, key=lambda m: m.tag_id):
        truth = capture.truth_for(match.tag_id)
        rows.append({
            "rate_x": truth.nominal_bitrate_bps
            / profile.default_bitrate_bps,
            "achieved_bps_x": (match.bits_correct / capture.duration_s)
            / profile.default_bitrate_bps,
            "upper_bound_x": (truth.n_bits / capture.duration_s)
            / profile.default_bitrate_bps,
            "loss_rate": match.bit_errors / match.bits_sent,
        })
    return rows


def run(rate_fractions: Optional[List[float]] = None,
        profile: Optional[SimulationProfile] = None,
        rng: SeedLike = 1111,
        quick: bool = False) -> ExperimentResult:
    """Run one slow+fast pair per rate fraction; score each node."""
    fractions = rate_fractions or [0.005, 0.01, 0.02, 0.05, 0.1,
                                   0.5, 1.0]
    if quick:
        fractions = [0.02, 0.1, 0.5]
    prof = profile or SimulationProfile.fast()
    gen = make_rng(rng)

    # Pre-draw each pair's entropy in the legacy serial order
    # (coefficients, two tag seeds, sim seed, decoder seed) and pin it
    # into a self-contained spec per sweep cell.
    grid = SweepGrid()
    for fraction in fractions:
        slow_rate = prof.default_bitrate_bps * fraction
        prof.validate_bitrate(slow_rate)
        coeffs = random_coefficients(2, min_separation=0.03, rng=gen)
        seeds = tuple(int(gen.integers(0, 2 ** 63)) for _ in range(3))
        decoder_seed = int(gen.integers(0, 2 ** 63))
        spec = ScenarioSpec(
            name="fig11_pair", n_tags=2,
            bitrates_bps=(slow_rate, prof.default_bitrate_bps),
            coefficients=tuple(coeffs), population_seeds=seeds)
        config = LFDecoderConfig(
            candidate_bitrates_bps=sorted(
                {slow_rate, prof.default_bitrate_bps}),
            profile=prof)
        grid.add_cell(
            {"fraction": fraction},
            TrialSpec(seed=decoder_seed,
                      payload={"spec": spec, "profile": prof,
                               "decoder_config": config}))

    pair_rows_by_cell = SweepRunner(pair_trial).run(
        grid, lambda cell, outs: {"pair_rows": results_of(outs)[0]})

    rows = []
    node = 0
    for folded in pair_rows_by_cell:
        for row in folded["pair_rows"]:
            row["node"] = node
            node += 1
            rows.append(row)
    slow_losses = [r["loss_rate"] for r in rows if r["rate_x"] < 0.2]
    return ExperimentResult(
        experiment_id="fig11",
        description="Throughput per node with mixed bitrates "
                    "(x = multiples of the reference rate)",
        rows=[{k: r[k] for k in ("node", "rate_x", "achieved_bps_x",
                                 "upper_bound_x", "loss_rate")}
              for r in rows],
        paper_reference={
            "claim": "slow nodes are not adversely impacted by fast "
                     "nodes and have a loss rate of zero (Figure 11)",
        },
        notes=f"max slow-node loss rate: "
              f"{max(slow_losses) if slow_losses else 0.0:.3f}")
