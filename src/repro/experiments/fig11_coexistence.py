"""Figure 11: coexistence of slow and fast tags.

Per the paper's setup ("we let two node transmit at each of the
following eight sets of bitrates starting from slow to fast"), each
trial pairs one slow tag with one reference-rate tag and measures both.
The claim to reproduce: slow tags are not adversely impacted by fast
ones — their loss rate is zero — because the eye-pattern fold separates
rates cleanly.  Rates are expressed as fractions of the profile's
reference rate (the fast profile divides the paper's absolute numbers
by 10 at identical samples-per-bit).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..analysis.throughput import match_streams
from ..core.pipeline import LFDecoder, LFDecoderConfig
from ..phy.channel import ChannelModel, random_coefficients
from ..reader.simulator import NetworkSimulator
from ..tags.lf_tag import LFTag
from ..types import SimulationProfile, TagConfig
from ..utils.rng import SeedLike, make_rng
from .common import ExperimentResult


def _run_pair(slow_rate: float, fast_rate: float,
              profile: SimulationProfile, gen) -> List[dict]:
    coeffs = random_coefficients(2, min_separation=0.03, rng=gen)
    channel = ChannelModel({0: coeffs[0], 1: coeffs[1]},
                           environment_offset=0.5 + 0.3j)
    tags = [
        LFTag(TagConfig(tag_id=0, bitrate_bps=slow_rate,
                        channel_coefficient=coeffs[0]),
              profile=profile,
              rng=np.random.default_rng(gen.integers(0, 2 ** 63))),
        LFTag(TagConfig(tag_id=1, bitrate_bps=fast_rate,
                        channel_coefficient=coeffs[1]),
              profile=profile,
              rng=np.random.default_rng(gen.integers(0, 2 ** 63))),
    ]
    sim = NetworkSimulator(tags, channel, profile=profile,
                           noise_std=0.01,
                           rng=np.random.default_rng(
                               gen.integers(0, 2 ** 63)))
    duration = 26.0 / slow_rate
    capture = sim.run_epoch(duration)
    decoder = LFDecoder(LFDecoderConfig(
        candidate_bitrates_bps=sorted({slow_rate, fast_rate}),
        profile=profile),
        rng=np.random.default_rng(gen.integers(0, 2 ** 63)))
    result = decoder.decode_epoch(capture.trace)
    matches = match_streams(capture, result)
    rows = []
    for match in sorted(matches, key=lambda m: m.tag_id):
        truth = capture.truth_for(match.tag_id)
        rows.append({
            "rate_x": truth.nominal_bitrate_bps
            / profile.default_bitrate_bps,
            "achieved_bps_x": (match.bits_correct / capture.duration_s)
            / profile.default_bitrate_bps,
            "upper_bound_x": (truth.n_bits / capture.duration_s)
            / profile.default_bitrate_bps,
            "loss_rate": match.bit_errors / match.bits_sent,
        })
    return rows


def run(rate_fractions: Optional[List[float]] = None,
        profile: Optional[SimulationProfile] = None,
        rng: SeedLike = 1111,
        quick: bool = False) -> ExperimentResult:
    """Run one slow+fast pair per rate fraction; score each node."""
    fractions = rate_fractions or [0.005, 0.01, 0.02, 0.05, 0.1,
                                   0.5, 1.0]
    if quick:
        fractions = [0.02, 0.1, 0.5]
    prof = profile or SimulationProfile.fast()
    gen = make_rng(rng)

    rows = []
    node = 0
    for fraction in fractions:
        slow_rate = prof.default_bitrate_bps * fraction
        prof.validate_bitrate(slow_rate)
        pair_rows = _run_pair(slow_rate, prof.default_bitrate_bps,
                              prof, gen)
        for row in pair_rows:
            row["node"] = node
            node += 1
            rows.append(row)
    slow_losses = [r["loss_rate"] for r in rows if r["rate_x"] < 0.2]
    return ExperimentResult(
        experiment_id="fig11",
        description="Throughput per node with mixed bitrates "
                    "(x = multiples of the reference rate)",
        rows=[{k: r[k] for k in ("node", "rate_x", "achieved_bps_x",
                                 "upper_bound_x", "loss_rate")}
              for r in rows],
        paper_reference={
            "claim": "slow nodes are not adversely impacted by fast "
                     "nodes and have a loss rate of zero (Figure 11)",
        },
        notes=f"max slow-node loss rate: "
              f"{max(slow_losses) if slow_losses else 0.0:.3f}")
