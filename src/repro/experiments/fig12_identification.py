"""Figure 12: node identification time (RFID inventory latency).

Every tag must deliver its 96-bit EPC identifier (plus 5-bit CRC)
reliably.  LF-Backscatter is measured end-to-end: all tags blast their
IDs concurrently each epoch and retransmit (with fresh random offsets)
until their CRC validates.  TDMA runs Gen 2-style framed slotted ALOHA;
Buzz pays channel estimation plus ~n/2 lock-step slots per bit.

Times are reported in units of one identifier airtime (101 bits at the
common bitrate), making the numbers profile-invariant.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .. import constants
from ..analysis.latency import LFIdentification
from ..baselines.buzz import BuzzConfig, BuzzSimulator
from ..baselines.tdma import TdmaConfig, TdmaSimulator
from ..phy.channel import ChannelModel, random_coefficients
from ..types import SimulationProfile
from ..utils.rng import SeedLike, make_rng
from .common import ExperimentResult


def run(tag_counts: Optional[List[int]] = None,
        n_trials: int = 2,
        profile: Optional[SimulationProfile] = None,
        rng: SeedLike = 1212,
        quick: bool = False) -> ExperimentResult:
    """Measure identification time for each scheme and tag count."""
    counts = tag_counts or [4, 8, 12, 16]
    if quick:
        counts = [c for c in counts if c <= 8] or counts[:1]
        n_trials = 1
    prof = profile or SimulationProfile.fast()
    rate = prof.default_bitrate_bps
    gen = make_rng(rng)
    id_airtime = (constants.EPC_ID_BITS + constants.EPC_CRC_BITS) / rate

    tdma = TdmaSimulator(TdmaConfig(bitrate_bps=rate), rng=gen)
    rows = []
    for n in counts:
        lf_times = []
        for _ in range(n_trials):
            ident = LFIdentification(
                n, bitrate_bps=rate, profile=prof,
                rng=np.random.default_rng(gen.integers(0, 2 ** 63)))
            lf_times.append(ident.run().elapsed_s)
        lf_s = float(np.mean(lf_times))
        tdma_s = float(np.mean(
            [tdma.identification_time_s(n) for _ in range(8)]))
        coeffs = random_coefficients(n, rng=gen)
        buzz = BuzzSimulator(
            ChannelModel({k: c for k, c in enumerate(coeffs)}),
            BuzzConfig(bitrate_bps=rate), rng=gen)
        buzz_s = buzz.identification_time_s(n)
        rows.append({
            "n_tags": n,
            "lf_x_id_airtime": lf_s / id_airtime,
            "buzz_x_id_airtime": buzz_s / id_airtime,
            "tdma_x_id_airtime": tdma_s / id_airtime,
            "tdma_over_lf": tdma_s / lf_s,
            "buzz_over_lf": buzz_s / lf_s,
        })
    last = rows[-1]
    return ExperimentResult(
        experiment_id="fig12",
        description="Node identification time (in identifier-airtime "
                    "units)",
        rows=rows,
        paper_reference={
            "tdma_over_lf_at_16": 17.0,
            "buzz_over_lf_at_16": 9.5,
        },
        notes=f"measured at n={last['n_tags']}: TDMA/LF = "
              f"{last['tdma_over_lf']:.1f}x, Buzz/LF = "
              f"{last['buzz_over_lf']:.1f}x")
