"""Figure 13: energy efficiency (bits per micro-joule) vs network size.

Efficiency divides each scheme's aggregate goodput by the summed tag
power from the calibrated hardware/power model.  LF throughput scales
with the tag count at tens of uW per tag, so its efficiency stays flat
and high; TDMA and Buzz split one (or two) channels' worth of goodput
across n tags that all burn receiver/buffer power, so their efficiency
decays as 1/n.  The paper's 16-node point: LF ~20x Buzz, ~100x Gen 2.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .. import constants
from ..analysis.throughput import lf_throughput_sweep
from ..baselines.buzz import BuzzConfig, BuzzSimulator
from ..baselines.tdma import TdmaConfig, TdmaSimulator
from ..hardware.energy import energy_efficiency_bits_per_uj
from ..phy.channel import ChannelModel, random_coefficients
from ..types import SimulationProfile
from ..utils.rng import SeedLike, make_rng
from .common import ExperimentResult


def run(tag_counts: Optional[List[int]] = None,
        measure_lf: bool = True,
        n_epochs: int = 2,
        profile: Optional[SimulationProfile] = None,
        rng: SeedLike = 1313,
        quick: bool = False) -> ExperimentResult:
    """Compute the Figure 13 efficiency sweep.

    The power model is evaluated at the paper's 100 kbps reference
    bitrate; LF goodput fractions are measured in the fast profile
    (identical decoder maths) and scaled onto the reference rate.
    """
    counts = tag_counts or [1, 4, 8, 12, 16]
    if quick:
        counts = [1, 4]
        n_epochs = 1
    prof = profile or SimulationProfile.fast()
    ref_rate = constants.DEFAULT_BITRATE_BPS
    gen = make_rng(rng)

    lf_fraction: Dict[int, float] = {}
    if measure_lf:
        runs = lf_throughput_sweep(counts, prof.default_bitrate_bps,
                                   n_epochs=n_epochs,
                                   epoch_duration_s=0.012,
                                   profile=prof, rng=gen)
        lf_fraction = {n: runs[n].goodput_fraction for n in counts}
    tdma = TdmaSimulator(TdmaConfig(bitrate_bps=ref_rate), rng=gen)

    rows = []
    for n in counts:
        coeffs = random_coefficients(max(n, 1), rng=gen)
        buzz = BuzzSimulator(
            ChannelModel({k: c for k, c in enumerate(coeffs)}),
            BuzzConfig(bitrate_bps=ref_rate), rng=gen)
        fraction = lf_fraction.get(n, 1.0)
        lf_tput = n * ref_rate * fraction
        buzz_tput = buzz.aggregate_throughput_bps(n)
        tdma_tput = tdma.aggregate_throughput_bps(n)
        rows.append({
            "n_tags": n,
            "lf_bits_per_uj": energy_efficiency_bits_per_uj(
                "lf", n, lf_tput, ref_rate),
            "buzz_bits_per_uj": energy_efficiency_bits_per_uj(
                "buzz", n, buzz_tput, ref_rate),
            "tdma_bits_per_uj": energy_efficiency_bits_per_uj(
                "tdma", n, tdma_tput, ref_rate),
        })
    last = rows[-1]
    return ExperimentResult(
        experiment_id="fig13",
        description="Energy efficiency (bits/uJ) vs number of devices",
        rows=rows,
        paper_reference={
            "lf_over_buzz_at_16": 20.0,
            "lf_over_tdma": "two orders of magnitude",
        },
        notes=f"at n={last['n_tags']}: LF/Buzz = "
              f"{last['lf_bits_per_uj'] / last['buzz_bits_per_uj']:.1f}"
              f"x, LF/TDMA = "
              f"{last['lf_bits_per_uj'] / last['tdma_bits_per_uj']:.0f}"
              "x")
