"""Figure 14: SNR vs BER, LF-Backscatter edge decoding vs plain ASK.

A lone tag is captured across a range of receiver SNRs; both decoders
run on statistically identical captures.  The expected shape: ASK's
whole-bit integration needs several dB less SNR for the same BER, the
gap is roughly constant through the waterfall region, and both schemes
reach zero measured errors by the mid-teens of dB.
"""

from __future__ import annotations

from typing import List, Optional

from ..analysis.ber import ber_sweep, snr_gap_db
from ..errors import ConfigurationError
from ..types import SimulationProfile
from ..utils.rng import SeedLike, make_rng
from .common import ExperimentResult


def run(snr_db_values: Optional[List[float]] = None,
        n_bits: int = 300,
        n_trials: int = 3,
        profile: Optional[SimulationProfile] = None,
        rng: SeedLike = 1414,
        quick: bool = False) -> ExperimentResult:
    """Measure both BER curves and the SNR gap between them."""
    snrs = snr_db_values or [3.0, 5.0, 7.0, 9.0, 11.0, 13.0, 15.0]
    if quick:
        snrs = [5.0, 8.0, 11.0, 14.0]
        n_bits = 150
        n_trials = 2
    prof = profile or SimulationProfile.fast()
    gen = make_rng(rng)
    lf_points = ber_sweep(snrs, decoder="lf", n_bits=n_bits,
                          n_trials=n_trials, profile=prof, rng=gen)
    ask_points = ber_sweep(snrs, decoder="ask", n_bits=n_bits,
                           n_trials=n_trials, profile=prof, rng=gen)
    rows = []
    for lf_p, ask_p in zip(lf_points, ask_points):
        rows.append({
            "snr_db": lf_p.snr_db,
            "lf_ber": lf_p.ber,
            "ask_ber": ask_p.ber,
            "bits_per_point": lf_p.bits_measured,
        })
    try:
        gap = snr_gap_db(lf_points, ask_points)
        gap_note = f"fitted SNR gap at BER 1e-2: {gap:.1f} dB"
    except ConfigurationError:
        gap = float("nan")
        gap_note = "not enough non-zero BER points to fit the gap"
    return ExperimentResult(
        experiment_id="fig14",
        description="BER vs raw-sample SNR: LF edge decoding vs "
                    "conventional ASK",
        rows=rows,
        paper_reference={
            "snr_gap_db": 4.0,
            "claim": "LF-Backscatter needs ~4 dB more SNR than ASK for "
                     "equal BER; both reach zero by ~15 dB (Figure 14)",
        },
        notes=gap_note)
