"""Registry mapping experiment ids to their runners."""

from __future__ import annotations

from typing import Callable, Dict

from ..errors import ConfigurationError
from . import (ablation_analog, ablation_drift, fig01_dynamics,
               fig02_clusters, fig04_capacitor, fig05_parallelogram,
               fig08_throughput, fig09_breakdown, fig10_bitrate,
               fig11_coexistence, fig12_identification, fig13_energy,
               fig14_snr_ber, sec33_collision_prob,
               sec36_reliability, sec52_scaling, sec54_range,
               sec6_modulation, table1_anchor, table2_separation,
               table3_transistors)
from .common import ExperimentResult

REGISTRY: Dict[str, Callable[..., ExperimentResult]] = {
    "fig1": fig01_dynamics.run,
    "fig2": fig02_clusters.run,
    "fig4": fig04_capacitor.run,
    "fig5": fig05_parallelogram.run,
    "fig8": fig08_throughput.run,
    "fig9": fig09_breakdown.run,
    "fig10": fig10_bitrate.run,
    "fig11": fig11_coexistence.run,
    "fig12": fig12_identification.run,
    "fig13": fig13_energy.run,
    "fig14": fig14_snr_ber.run,
    "table1": table1_anchor.run,
    "table2": table2_separation.run,
    "table3": table3_transistors.run,
    "sec33": sec33_collision_prob.run,
    "sec36": sec36_reliability.run,
    "sec52": sec52_scaling.run,
    "sec54": sec54_range.run,
    "sec6": sec6_modulation.run,
    "ablation_drift": ablation_drift.run,
    "ablation_analog": ablation_analog.run,
}


def run_experiment(experiment_id: str, **kwargs) -> ExperimentResult:
    """Run one experiment by id (e.g. ``"fig8"``)."""
    if experiment_id not in REGISTRY:
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; available: "
            f"{sorted(REGISTRY)}")
    return REGISTRY[experiment_id](**kwargs)
