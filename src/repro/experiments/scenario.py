"""One scenario synthesis path for every experiment substrate.

Before this module the repo had three bespoke ways to turn "a scenario"
into an :class:`~repro.reader.epoch.EpochCapture`: each
``experiments/fig*.py`` hand-rolled its own network construction, the
robustness survival matrix had :mod:`repro.robustness.scenarios`, and
the service soak pre-rendered its own epoch pools.  All three followed
the same RNG discipline — draw channel coefficients, then one child
generator per tag, then the simulator's noise generator — but each
re-implemented it, so a new workload (the signoff suite's SNR × tags ×
drift sweeps) had no single substrate to build on.

:class:`ScenarioSpec` names a channel condition declaratively — tag
count, per-tag bitrates, SNR or noise floor, clock drift, multipath
preset, impairment cocktail — and :class:`ScenarioSynth` renders it
with the canonical draw order, so a spec plus a seed *is* the capture:

>>> spec = ScenarioSpec(n_tags=4, snr_db=12.0, drift_ppm=200.0)
>>> capture = ScenarioSynth(spec).capture()

The synthesizer is stateful on purpose: tags carry RNG state across
epochs (offset re-randomization, payload bits), so consecutive
``capture(epoch_index=k)`` calls reproduce a multi-epoch session
exactly the way a long-lived :class:`NetworkSimulator` would.
Single-shot consumers use :func:`build_capture`.

Draw order (the compatibility contract every consumer relies on):

1. coefficients — one ``random_coefficients`` draw, unless the spec
   pins them explicitly;
2. one ``integers(0, 2**63)`` draw per tag, seeding that tag's
   generator;
3. one ``integers(0, 2**63)`` draw for the simulator's noise generator
   — or, with ``spawn_sim_rng=False``, the scenario generator itself
   is handed to the simulator (the soak-pool and benchmark-fixture
   convention, whose captures predate this module and are pinned by
   committed baselines).

Impairments apply through the truth-preserving
:func:`repro.robustness.impairments.impair_capture`, seeded by the
spec (not the scenario generator), so the same impaired waveform
regenerates from the spec alone.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..phy.channel import ChannelModel, random_coefficients
from ..phy.noise import noise_std_for_snr
from ..reader.epoch import EpochCapture
from ..reader.simulator import NetworkSimulator
from ..tags.ask_tag import AskTag
from ..tags.lf_tag import LFTag
from ..types import SimulationProfile, TagConfig
from ..utils.rng import SeedLike, make_rng

__all__ = ["ScenarioSpec", "ScenarioSynth", "build_capture"]

#: Tag implementations a spec may request.
_TAG_KINDS = ("lf", "ask")

#: Named profiles a spec may pin (``None`` defers to the caller).
_PROFILES = {"fast": SimulationProfile.fast,
             "paper": SimulationProfile.paper}


@dataclass(frozen=True)
class ScenarioSpec:
    """Declarative description of one reproducible channel condition.

    A spec is hashable and comparison-friendly so sweep grids can use
    specs (or their fields) as cell coordinates.  Everything stochastic
    about the rendered capture derives from ``seed`` (or an explicit
    generator handed to :class:`ScenarioSynth`).
    """

    name: str = "adhoc"
    n_tags: int = 6
    #: Uniform tag bitrate; ``None`` uses the profile's default rate.
    bitrate_bps: Optional[float] = None
    #: Per-tag bitrates (overrides ``bitrate_bps``; length must equal
    #: ``n_tags``) — the fig11 slow/fast coexistence shape.
    bitrates_bps: Optional[Tuple[float, ...]] = None
    #: Receiver noise floor (complex AWGN std).
    noise_std: float = 0.01
    #: Raw-sample SNR in dB; when set it overrides ``noise_std`` via
    #: the mean modulated power of the drawn coefficients.
    snr_db: Optional[float] = None
    #: Tag crystal quality (Section 4.1's tolerance axis).  ``None``
    #: keeps :class:`TagConfig`'s default crystal (150 ppm) — the
    #: regime every pre-existing experiment ran in.
    drift_ppm: Optional[float] = None
    #: Multipath preset name (``room`` / ``hallway`` / ``exponential``)
    #: — shorthand for a ``MultipathChannel`` impairment.
    channel_preset: Optional[str] = None
    #: Impairment cocktail applied to the clean capture, in order,
    #: after any ``channel_preset`` echo.
    impairments: Tuple = ()
    epoch_s: float = 0.01
    #: Seeds coefficients, tags, noise and impairments when no
    #: explicit generator is supplied.
    seed: int = 42
    #: First tag id (churned soak generations offset this so a fresh
    #: population reads as new streams, not drift of old ones).
    tag_id_base: int = 0
    #: ``"lf"`` (comparator-jitter offsets) or ``"ask"`` (deterministic
    #: start offset — the Figure 14 baseline tag).
    tag_kind: str = "lf"
    #: Start offset for ``ask`` tags, in seconds (``None``: 0).
    start_offset_s: Optional[float] = None
    #: Pin coefficients instead of drawing them (skips draw step 1).
    coefficients: Optional[Tuple[complex, ...]] = None
    #: Pin the population entropy instead of drawing it (skips draw
    #: steps 2-3): one integer seed per tag, plus one trailing seed
    #: for the simulator when ``spawn_sim_rng`` is set.  Sweep cells
    #: use this to reproduce legacy shared-generator draw orders in
    #: engine workers — the parent pre-draws the integers in the
    #: canonical order and ships a fully self-contained spec.
    population_seeds: Optional[Tuple[int, ...]] = None
    #: Minimum pairwise coefficient separation for the draw (``None``
    #: uses :func:`random_coefficients`'s default).
    min_separation: Optional[float] = None
    environment_offset: complex = 0.5 + 0.3j
    #: ``True`` (default): the simulator gets its own child generator.
    #: ``False``: it shares the scenario generator — the soak-pool and
    #: benchmark-fixture convention, kept for their pinned baselines.
    spawn_sim_rng: bool = True
    #: Impairment randomness seed (``None``: reuse ``seed``).
    impairment_seed: Optional[int] = None
    #: Pin the simulation profile by name (``fast`` / ``paper``);
    #: ``None`` defers to the profile handed to the synthesizer.
    profile_name: Optional[str] = None
    description: str = ""

    def __post_init__(self) -> None:
        if self.n_tags < 1:
            raise ConfigurationError(
                f"need at least one tag, got {self.n_tags}")
        if self.epoch_s <= 0:
            raise ConfigurationError("epoch_s must be positive")
        if self.noise_std < 0:
            raise ConfigurationError("noise_std must be >= 0")
        if self.tag_kind not in _TAG_KINDS:
            raise ConfigurationError(
                f"tag_kind must be one of {_TAG_KINDS}, "
                f"got {self.tag_kind!r}")
        if self.bitrates_bps is not None \
                and len(self.bitrates_bps) != self.n_tags:
            raise ConfigurationError(
                f"bitrates_bps has {len(self.bitrates_bps)} entries "
                f"for {self.n_tags} tags")
        if self.coefficients is not None \
                and len(self.coefficients) != self.n_tags:
            raise ConfigurationError(
                f"coefficients has {len(self.coefficients)} entries "
                f"for {self.n_tags} tags")
        if self.population_seeds is not None:
            want = self.n_tags + (1 if self.spawn_sim_rng else 0)
            if len(self.population_seeds) != want:
                raise ConfigurationError(
                    f"population_seeds needs {want} entries "
                    f"({self.n_tags} tags"
                    + (" + simulator" if self.spawn_sim_rng else "")
                    + f"), got {len(self.population_seeds)}")
        if self.profile_name is not None \
                and self.profile_name not in _PROFILES:
            raise ConfigurationError(
                f"unknown profile {self.profile_name!r}; available: "
                f"{sorted(_PROFILES)}")

    # -- derived views -----------------------------------------------------

    def tag_rates(self, profile: SimulationProfile) -> Tuple[float, ...]:
        """The per-tag bitrates this spec resolves to."""
        if self.bitrates_bps is not None:
            return tuple(self.bitrates_bps)
        rate = self.bitrate_bps if self.bitrate_bps is not None \
            else profile.default_bitrate_bps
        return (rate,) * self.n_tags

    def all_impairments(self) -> Tuple:
        """Preset echo (if any) followed by the explicit cocktail."""
        extra: Tuple = ()
        if self.channel_preset is not None:
            from ..robustness.impairments import MultipathChannel
            extra = (MultipathChannel(preset=self.channel_preset),)
        return extra + tuple(self.impairments)

    def resolve_profile(self, profile: Optional[SimulationProfile]
                        ) -> SimulationProfile:
        if self.profile_name is not None:
            return _PROFILES[self.profile_name]()
        return profile or SimulationProfile.fast()

    def with_(self, **changes) -> "ScenarioSpec":
        """A copy with the given fields replaced (sweep-cell helper)."""
        return replace(self, **changes)


class ScenarioSynth:
    """Renders a :class:`ScenarioSpec` into epoch captures.

    Construction performs every population-level draw (coefficients,
    tag generators, simulator generator) in the canonical order; each
    :meth:`capture` call then renders one epoch, advancing the tags'
    internal state exactly as a long-lived reader deployment would.
    """

    def __init__(self, spec: ScenarioSpec,
                 profile: Optional[SimulationProfile] = None,
                 rng: SeedLike = None):
        self.spec = spec
        self.profile = spec.resolve_profile(profile)
        gen = make_rng(rng) if rng is not None \
            else np.random.default_rng(spec.seed)
        self.gen = gen

        if spec.coefficients is not None:
            coeffs = list(spec.coefficients)
        elif spec.min_separation is not None:
            coeffs = random_coefficients(
                spec.n_tags, min_separation=spec.min_separation,
                rng=gen)
        else:
            coeffs = random_coefficients(spec.n_tags, rng=gen)
        self.coefficients = tuple(coeffs)

        if spec.snr_db is not None:
            power = float(np.mean([abs(c) ** 2 for c in coeffs]))
            self.noise_std = noise_std_for_snr(power, spec.snr_db)
        else:
            self.noise_std = spec.noise_std

        rates = spec.tag_rates(self.profile)
        for rate in rates:
            self.profile.validate_bitrate(rate)
        base = spec.tag_id_base
        self.channel = ChannelModel(
            {base + k: coeffs[k] for k in range(spec.n_tags)},
            environment_offset=spec.environment_offset)
        if spec.population_seeds is not None:
            tag_seeds = list(spec.population_seeds[:spec.n_tags])
            self.tags = [self._make_tag(base + k, rates[k], coeffs[k],
                                        np.random.default_rng(
                                            tag_seeds[k]))
                         for k in range(spec.n_tags)]
            sim_rng = np.random.default_rng(
                spec.population_seeds[spec.n_tags]) \
                if spec.spawn_sim_rng else gen
        else:
            self.tags = [self._make_tag(base + k, rates[k], coeffs[k],
                                        np.random.default_rng(
                                            gen.integers(0, 2 ** 63)))
                         for k in range(spec.n_tags)]
            sim_rng = np.random.default_rng(gen.integers(0, 2 ** 63)) \
                if spec.spawn_sim_rng else gen
        self.sim = NetworkSimulator(self.tags, self.channel,
                                    profile=self.profile,
                                    noise_std=self.noise_std,
                                    rng=sim_rng)

    def _make_tag(self, tag_id: int, rate: float, coeff: complex,
                  rng: np.random.Generator):
        kwargs = {}
        if self.spec.drift_ppm is not None:
            kwargs["clock_drift_ppm"] = self.spec.drift_ppm
        config = TagConfig(tag_id=tag_id, bitrate_bps=rate,
                           channel_coefficient=coeff, **kwargs)
        if self.spec.tag_kind == "ask":
            return AskTag(config,
                          start_offset_s=self.spec.start_offset_s or 0.0,
                          profile=self.profile, rng=rng)
        return LFTag(config, profile=self.profile, rng=rng)

    def capture(self, duration_s: Optional[float] = None,
                epoch_index: int = 0) -> EpochCapture:
        """Render one epoch (impairments applied, truth preserved)."""
        capture = self.sim.run_epoch(
            self.spec.epoch_s if duration_s is None else duration_s,
            epoch_index=epoch_index)
        impairments = self.spec.all_impairments()
        if not impairments:
            return capture
        from ..robustness.impairments import impair_capture
        seed = self.spec.impairment_seed
        if seed is None:
            seed = self.spec.seed
        return impair_capture(capture, impairments, rng=seed)


def build_capture(spec: ScenarioSpec,
                  profile: Optional[SimulationProfile] = None,
                  rng: SeedLike = None,
                  duration_s: Optional[float] = None,
                  epoch_index: int = 0) -> EpochCapture:
    """Render a spec's capture in one shot (fresh synthesizer)."""
    return ScenarioSynth(spec, profile=profile, rng=rng).capture(
        duration_s=duration_s, epoch_index=epoch_index)
