"""Section 3.3's collision-probability claims, analytic + Monte-Carlo.

The paper: at 16 nodes / 100 kbps / 25 Msps / 3-sample edges, a tag
sees a two-node collision with probability 0.1890 and a three-node
collision with probability only 0.0181; at 10 kbps, three-or-more-way
collisions stay rare even with 200 concurrent nodes.
"""

from __future__ import annotations

from .. import constants
from ..analysis.collision_prob import (collision_probability,
                                       collision_probability_at_least,
                                       collision_probability_mc)
from ..utils.rng import SeedLike
from .common import ExperimentResult


def run(mc_trials: int = 20_000, rng: SeedLike = 33,
        quick: bool = False) -> ExperimentResult:
    """Tabulate the paper's §3.3 probabilities against our model."""
    if quick:
        mc_trials = 3000
    fast_positions = constants.samples_per_bit(100e3, 25e6)   # 250
    slow_positions = constants.samples_per_bit(10e3, 25e6)    # 2500

    rows = [
        {
            "case": "16 nodes @100kbps, 2-way",
            "analytic": collision_probability(
                16, 2, n_positions=fast_positions),
            "monte_carlo": collision_probability_mc(
                16, 2, n_positions=fast_positions,
                n_trials=mc_trials, rng=rng),
            "paper": 0.1890,
        },
        {
            "case": "16 nodes @100kbps, 3-way",
            "analytic": collision_probability(
                16, 3, n_positions=fast_positions),
            "monte_carlo": collision_probability_mc(
                16, 3, n_positions=fast_positions,
                n_trials=mc_trials, rng=rng),
            "paper": 0.0181,
        },
        {
            "case": "200 nodes @10kbps, >=3-way (random data)",
            "analytic": collision_probability_at_least(
                200, 3, n_positions=slow_positions,
                toggle_probability=0.5,
                window=constants.EDGE_WIDTH_SAMPLES),
            "monte_carlo": float("nan"),
            "paper": 0.0022,
        },
    ]
    return ExperimentResult(
        experiment_id="sec33",
        description="Edge collision probabilities (Section 3.3)",
        rows=rows,
        paper_reference={"p2_16nodes": 0.1890, "p3_16nodes": 0.0181,
                         "p3plus_200nodes_10kbps": "< 0.0022"},
        notes="200-node case uses per-edge toggling (random data) as "
              "the paper's text implies; the exact window convention "
              "the authors used is not stated, ours is the edge width")
