"""Section 3.6's optional reliability layer, exercised end-to-end.

The Broadcast-ACK loop: tags retransmit CRC-16-framed messages each
epoch until acknowledged; fresh comparator offsets re-randomize the
collision pattern between retries, so deliveries converge within a few
epochs even under heavy concurrency.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from ..core.engine import TrialSpec
from ..types import SimulationProfile
from ..utils.rng import SeedLike, make_rng
from .common import ExperimentResult
from .sweep import SweepGrid, SweepRunner, results_of


def reliability_trial(trace, payload: Dict[str, Any], rng,
                      config) -> Dict[str, float]:
    """One full Broadcast-ACK transfer (simulate every retry epoch)."""
    from ..link.reliability import ReliableLink, ReliableTransferConfig
    n = payload["n_tags"]
    link = ReliableLink(
        n,
        ReliableTransferConfig(message_bits=payload["message_bits"],
                               max_epochs=15),
        profile=payload["profile"], rng=rng)
    outcome = link.run()
    first = (outcome.per_epoch_deliveries[0] / n
             if outcome.per_epoch_deliveries else 0.0)
    return {"epochs_used": outcome.epochs_used,
            "delivery_ratio": outcome.delivery_ratio,
            "first_epoch_delivery": first}


def run(tag_counts: Optional[List[int]] = None,
        message_bits: int = 48,
        n_trials: int = 3,
        profile: Optional[SimulationProfile] = None,
        rng: SeedLike = 36,
        quick: bool = False) -> ExperimentResult:
    """Measure epochs-to-complete-delivery across network sizes."""
    counts = tag_counts or [2, 4, 8, 12]
    if quick:
        counts = [2, 4]
        n_trials = 2
    prof = profile or SimulationProfile.fast()
    gen = make_rng(rng)

    # Each trial's seed is pre-drawn in the legacy per-count order so
    # engine dispatch reproduces the serial loop's generators exactly.
    grid = SweepGrid()
    for n in counts:
        trials = [TrialSpec(seed=int(gen.integers(0, 2 ** 63)),
                            payload={"n_tags": n,
                                     "message_bits": message_bits,
                                     "profile": prof})
                  for _ in range(n_trials)]
        grid.add_cell({"n_tags": n}, trials)

    def _fold(cell, outcomes):
        results = results_of(outcomes)
        return {
            "n_tags": cell.coords["n_tags"],
            "mean_epochs_to_complete": float(np.mean(
                [r["epochs_used"] for r in results])),
            "delivery_ratio": float(np.mean(
                [r["delivery_ratio"] for r in results])),
            "first_epoch_delivery": float(np.mean(
                [r["first_epoch_delivery"] for r in results])),
        }

    rows = SweepRunner(reliability_trial).run(grid, _fold)
    return ExperimentResult(
        experiment_id="sec36",
        description="Broadcast-ACK reliable transfer: epochs to full "
                    "delivery",
        rows=rows,
        paper_reference={
            "claim": "collision patterns differ across epochs, so "
                     "epoch-level retransmission converges "
                     "(Section 3.6)",
        })
