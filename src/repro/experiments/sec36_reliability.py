"""Section 3.6's optional reliability layer, exercised end-to-end.

The Broadcast-ACK loop: tags retransmit CRC-16-framed messages each
epoch until acknowledged; fresh comparator offsets re-randomize the
collision pattern between retries, so deliveries converge within a few
epochs even under heavy concurrency.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..link.reliability import ReliableLink, ReliableTransferConfig
from ..types import SimulationProfile
from ..utils.rng import SeedLike, make_rng
from .common import ExperimentResult


def run(tag_counts: Optional[List[int]] = None,
        message_bits: int = 48,
        n_trials: int = 3,
        profile: Optional[SimulationProfile] = None,
        rng: SeedLike = 36,
        quick: bool = False) -> ExperimentResult:
    """Measure epochs-to-complete-delivery across network sizes."""
    counts = tag_counts or [2, 4, 8, 12]
    if quick:
        counts = [2, 4]
        n_trials = 2
    prof = profile or SimulationProfile.fast()
    gen = make_rng(rng)

    rows = []
    for n in counts:
        epochs = []
        ratios = []
        first_epoch = []
        for _ in range(n_trials):
            link = ReliableLink(
                n,
                ReliableTransferConfig(message_bits=message_bits,
                                       max_epochs=15),
                profile=prof,
                rng=np.random.default_rng(gen.integers(0, 2 ** 63)))
            outcome = link.run()
            epochs.append(outcome.epochs_used)
            ratios.append(outcome.delivery_ratio)
            first = (outcome.per_epoch_deliveries[0] / n
                     if outcome.per_epoch_deliveries else 0.0)
            first_epoch.append(first)
        rows.append({
            "n_tags": n,
            "mean_epochs_to_complete": float(np.mean(epochs)),
            "delivery_ratio": float(np.mean(ratios)),
            "first_epoch_delivery": float(np.mean(first_epoch)),
        })
    return ExperimentResult(
        experiment_id="sec36",
        description="Broadcast-ACK reliable transfer: epochs to full "
                    "delivery",
        rows=rows,
        paper_reference={
            "claim": "collision patterns differ across epochs, so "
                     "epoch-level retransmission converges "
                     "(Section 3.6)",
        })
