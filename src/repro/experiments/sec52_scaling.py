"""Section 5.2's scalability claim: many more tags at lower bitrates.

"One easy approach is to set bitrate to a lower number, say 10 kbps,
and allow LF-Backscatter RFIDs to concurrently transmit their ID.  In
this setting, we can not only support a few hundred tags..."

Two parts:

* **analytic** — edge-packing headroom (samples-per-bit / edge width)
  and the §3.3 collision model give the tag count at which three-way
  collisions stay below a budget, across bitrates;
* **empirical** — an actual decode of a large tag population at a
  reduced rate, showing goodput holds far past the 16-tag testbed.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..analysis.collision_prob import collision_probability_at_least
from ..analysis.throughput import run_lf_epochs
from ..core.engine import TrialSpec
from ..types import SimulationProfile
from ..utils.rng import SeedLike, make_rng
from .common import ExperimentResult
from .sweep import SweepGrid, SweepRunner, results_of
from .trials import lf_epochs_trial


def max_tags_for_collision_budget(samples_per_bit: float,
                                  budget: float = 0.01,
                                  window: float = 4.0,
                                  toggle_probability: float = 0.5,
                                  cap: int = 2000) -> int:
    """Largest n with P(a tag sees a >=3-way collision) below budget."""
    low, high = 1, cap
    while low < high:
        mid = (low + high + 1) // 2
        p = collision_probability_at_least(
            mid, 3, n_positions=samples_per_bit, window=window,
            toggle_probability=toggle_probability)
        if p <= budget:
            low = mid
        else:
            high = mid - 1
    return low


def run(rate_fractions: Optional[List[float]] = None,
        empirical_n_tags: int = 32,
        empirical_fraction: float = 0.1,
        profile: Optional[SimulationProfile] = None,
        rng: SeedLike = 52,
        quick: bool = False) -> ExperimentResult:
    """Tabulate supportable tag counts; spot-check one large network."""
    fractions = rate_fractions or [1.0, 0.5, 0.2, 0.1]
    if quick:
        fractions = [1.0, 0.1]
        empirical_n_tags = 24
    prof = profile or SimulationProfile.fast()

    rows = []
    for fraction in fractions:
        rate = prof.default_bitrate_bps * fraction
        spb = prof.samples_per_bit(rate)
        rows.append({
            "rate_x": fraction,
            "samples_per_bit": spb,
            "edge_slots": int(spb // prof.edge_width_samples),
            "max_tags_p3_below_1pct":
                max_tags_for_collision_budget(spb),
        })

    # Empirical spot check at the reduced rate.  Integer seeds pass
    # straight through the engine (a worker's ``default_rng(seed)`` is
    # the legacy ``make_rng(seed)`` generator); an explicit generator
    # cannot cross a process boundary, so it runs in-process.
    rate = prof.default_bitrate_bps * empirical_fraction
    prof.validate_bitrate(rate)
    duration = 120.0 / rate
    if rng is None or isinstance(rng, (int, np.integer)):
        grid = SweepGrid()
        grid.add_cell(
            {"rate_x": empirical_fraction},
            TrialSpec(seed=None if rng is None else int(rng),
                      payload={"n_tags": empirical_n_tags,
                               "rate": rate, "n_epochs": 2,
                               "duration": duration,
                               "profile": prof}))
        goodput = SweepRunner(lf_epochs_trial).run(
            grid, lambda cell, outs:
            results_of(outs)[0])[0]["goodput_fraction"]
    else:
        result = run_lf_epochs(empirical_n_tags, rate, n_epochs=2,
                               epoch_duration_s=duration, profile=prof,
                               rng=make_rng(rng))
        goodput = result.goodput_fraction
    rows.append({
        "rate_x": empirical_fraction,
        "samples_per_bit": prof.samples_per_bit(rate),
        "edge_slots": -1,
        "max_tags_p3_below_1pct": -1,
        "empirical_n_tags": empirical_n_tags,
        "empirical_goodput_fraction": goodput,
    })
    return ExperimentResult(
        experiment_id="sec52",
        description="Scalability at reduced bitrates (Section 5.2)",
        rows=rows,
        paper_reference={
            "claim": "at 10 kbps (a tenth of the reference rate) the "
                     "system can support a few hundred concurrently "
                     "transmitting tags (Section 5.2)",
        },
        notes="analytic rows: edge-packing and 3-way-collision "
              "headroom; final row: measured goodput of a real decode "
              f"with {empirical_n_tags} tags at "
              f"{empirical_fraction}x rate")
