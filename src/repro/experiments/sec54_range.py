"""Section 5.4's range-equivalence computation via the radar equation.

"if a tag has a working range of 10ft with ASK, it will have an
equivalent range of 8.1ft with LF-Backscatter. Similarly,
LF-Backscatter will have a working range of 23.7ft if a tag works 30ft
with ASK."
"""

from __future__ import annotations

from typing import Optional

from ..analysis.link_budget import range_equivalents, range_table
from ..phy.antenna import LinkBudget
from .common import ExperimentResult


def run(snr_gap_db: Optional[float] = None,
        quick: bool = False) -> ExperimentResult:
    """Compute LF-equivalent ranges for the paper's two ASK ranges."""
    del quick  # analytic
    gap = 4.0 if snr_gap_db is None else snr_gap_db
    pairs = range_equivalents([10.0, 30.0], gap)
    paper_lf = {10.0: 8.1, 30.0: 23.7}
    rows = [{
        "ask_range_ft": p.ask_range_ft,
        "lf_range_ft": p.lf_range_ft,
        "paper_lf_range_ft": paper_lf[p.ask_range_ft],
        "range_ratio": p.ratio,
    } for p in pairs]

    # Absolute link budget cross-check: the same ratio must fall out of
    # the full radar equation, not just the d^-4 shortcut.
    budget = LinkBudget()
    table = range_table(budget, required_snr_ask_db=10.0,
                        snr_gap_db=gap)
    rows.append({
        "ask_range_ft": table["ask_range_m"] * 3.280839895,
        "lf_range_ft": table["lf_range_m"] * 3.280839895,
        "paper_lf_range_ft": float("nan"),
        "range_ratio": table["ratio"],
    })
    return ExperimentResult(
        experiment_id="sec54",
        description="Operating-range equivalence under the measured "
                    "SNR gap (radar equation)",
        rows=rows,
        paper_reference={"10ft_ask": "8.1 ft LF",
                         "30ft_ask": "23.7 ft LF"},
        notes=f"gap used: {gap:.1f} dB; ratio = 10^(-gap/40) = "
              f"{10 ** (-gap / 40):.3f}")
