"""Section 6's modulation comparison: ASK vs FSK vs QAM for backscatter.

"FSK is less efficient than ASK since it requires multiple edge
transitions for each bit, so the energy efficiency and throughput of
LF-Backscatter is certainly better.  QAM could have similar throughput
but it is certain to involve considerably more complex hardware at the
tag."

The tag-side energy cost is dominated by RF-transistor toggles; this
experiment counts toggles per bit for each modulation and converts
them through the calibrated power model, plus a transistor-count
comparison for the QAM tag (Thomas & Reynolds' 16-QAM modulator needs
a multi-level DAC-like switch network).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..hardware.designs import lf_backscatter_design
from ..hardware.power import (CARRIER_COMPARATOR, PowerModel,
                              RTC_CLOCK)
from ..types import SimulationProfile
from ..utils.rng import SeedLike, make_rng
from .common import ExperimentResult


def toggles_per_bit(scheme: str, fsk_cycles_per_bit: int = 4) -> float:
    """Mean RF-transistor toggles per transmitted bit.

    * ASK/NRZ toggles only when consecutive bits differ (0.5 for
      random data);
    * FSK transmits a burst of cycles every bit — two toggles per
      cycle at either f0 or f1;
    * QAM (4 bits/symbol for 16-QAM) switches impedance states once
      per symbol, i.e. 0.25 state changes per bit, but each "toggle"
      drives a multi-transistor network.
    """
    if scheme == "ask":
        return 0.5
    if scheme == "fsk":
        return 2.0 * fsk_cycles_per_bit
    if scheme == "qam16":
        return 0.25
    raise ValueError(f"unknown scheme {scheme!r}")


def run(bitrate_bps: Optional[float] = None,
        profile: Optional[SimulationProfile] = None,
        rng: SeedLike = 6,
        quick: bool = False) -> ExperimentResult:
    """Compare per-bit tag energy across modulations."""
    del quick  # analytic
    prof = profile or SimulationProfile.fast()
    rate = bitrate_bps or prof.default_bitrate_bps
    gen = make_rng(rng)
    del gen
    model = PowerModel()
    base_analog = RTC_CLOCK.power_w + CARRIER_COMPARATOR.power_w
    design = lf_backscatter_design()
    digital = model.digital_power_w(design.transistors_without_fifo,
                                    rate)

    rows = []
    specs = [
        ("ask (LF-Backscatter)", "ask", 1.0, 176),
        ("fsk", "fsk", 1.0, 176 + 240),      # adds a tone divider
        ("qam16", "qam16", 4.0, 176 + 2200),  # multi-level switch bank
    ]
    for label, scheme, bits_per_state_rate, transistors in specs:
        toggles = toggles_per_bit(scheme)
        # Per-toggle energy scales with the switch network size for
        # QAM (more gates slewed per state change).
        toggle_energy = model.rf_switch_energy_j * (
            transistors / 176.0 if scheme == "qam16" else 1.0)
        switch_power = rate * toggles * toggle_energy
        total = digital + base_analog + switch_power
        energy_per_bit = total / rate
        rows.append({
            "modulation": label,
            "toggles_per_bit": toggles,
            "tag_transistors": transistors,
            "power_uw": total * 1e6,
            "energy_pj_per_bit": energy_per_bit * 1e12,
        })
    ask = rows[0]["energy_pj_per_bit"]
    return ExperimentResult(
        experiment_id="sec6",
        description="Tag-side energy per bit across modulations "
                    "(Section 6)",
        rows=rows,
        paper_reference={
            "claim": "FSK requires multiple edge transitions per bit "
                     "so ASK is more energy-efficient; QAM needs "
                     "considerably more complex tag hardware",
        },
        notes=f"FSK costs {rows[1]['energy_pj_per_bit'] / ask:.1f}x "
              f"ASK per bit; QAM16 needs "
              f"{rows[2]['tag_transistors'] / 176:.0f}x the "
              "transistors")
