"""Grid sweeps over scenario cells, executed by the batch engine.

Every experiment in this repo is ultimately the same shape: enumerate
a grid of conditions (tag counts, SNR points, bitrate mixes, drift
settings), run a few independent trials per cell, and fold each cell's
trial outcomes into one row of an :class:`ExperimentResult`.  Before
this module each ``fig*.py`` hand-rolled that shape as a serial loop;
:class:`SweepGrid` + :class:`SweepRunner` make it a declarative
substrate that dispatches every trial through
:class:`~repro.core.engine.BatchDecoder` — ordered streaming, retry
and crash supervision, and parallelism on multi-core hosts — while
keeping results bit-identical for any worker count.

Determinism contract
--------------------
A trial that carries an explicit ``seed`` keeps it verbatim (this is
how refit experiments reproduce their serial ancestors' RNG streams
exactly).  A trial without one gets a :class:`numpy.random.SeedSequence`
spawned from ``(runner seed, cell index, trial index)``, so a cell's
randomness never depends on how many trials earlier cells scheduled —
grids can grow axes without reshuffling existing cells.

The runner folds cells *as they complete* (the engine streams outcomes
in submission order), so a long sweep's rows materialize incrementally
rather than after the last trial.

>>> grid = SweepGrid.from_axes(
...     {"snr_db": [0.0, 5.0], "n_tags": [1, 4]},
...     lambda coords: TrialSpec(payload=coords))
>>> rows = SweepRunner(my_trial_fn).run(grid, my_fold)
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from itertools import product
from typing import (Any, Callable, Dict, Iterable, List, Mapping,
                    Optional, Sequence, Tuple, Union)

import numpy as np

from ..core.engine import BatchDecoder, EpochOutcome, TrialSpec
from ..core.pipeline import LFDecoderConfig
from ..errors import ConfigurationError
from .common import ExperimentResult

__all__ = ["SweepCell", "SweepGrid", "SweepRunner"]

#: What a cell builder may return: one spec or several.
TrialsLike = Union[TrialSpec, Sequence[TrialSpec]]

#: Folds one cell's ordered outcomes into zero or more result rows.
FoldFn = Callable[["SweepCell", List[EpochOutcome]],
                  Union[None, Dict[str, Any], List[Dict[str, Any]]]]


@dataclass(frozen=True)
class SweepCell:
    """One grid point: its coordinates and its scheduled trials.

    ``index`` is the cell's position in grid enumeration order — the
    coordinate the determinism contract keys on.  ``coords`` holds the
    axis values (or whatever the cell was registered with) for the
    fold to build its row from.
    """

    index: int
    coords: Mapping[str, Any]
    trials: Tuple[TrialSpec, ...]
    fold: Optional[FoldFn] = None


class SweepGrid:
    """An ordered collection of sweep cells.

    Build one either explicitly (:meth:`add_cell` per grid point —
    the shape refit experiments use, since their cells are rarely a
    clean cartesian product) or from axes (:meth:`from_axes`, which
    crosses the axis values in definition order).
    """

    def __init__(self) -> None:
        self._cells: List[SweepCell] = []

    def __len__(self) -> int:
        return len(self._cells)

    def __iter__(self):
        return iter(self._cells)

    @property
    def cells(self) -> Tuple[SweepCell, ...]:
        return tuple(self._cells)

    def add_cell(self, coords: Mapping[str, Any], trials: TrialsLike,
                 fold: Optional[FoldFn] = None) -> SweepCell:
        """Register one cell; returns it (index already assigned)."""
        if isinstance(trials, TrialSpec):
            trials = (trials,)
        trials = tuple(trials)
        if not trials:
            raise ConfigurationError(
                f"cell {dict(coords)!r} has no trials")
        cell = SweepCell(index=len(self._cells), coords=dict(coords),
                         trials=trials, fold=fold)
        self._cells.append(cell)
        return cell

    @classmethod
    def from_axes(cls, axes: Mapping[str, Sequence[Any]],
                  trial_builder: Callable[[Dict[str, Any]], TrialsLike],
                  fold: Optional[FoldFn] = None) -> "SweepGrid":
        """Cross the axes; one cell per coordinate combination.

        ``trial_builder`` receives each cell's coordinate dict and
        returns that cell's trial(s).
        """
        if not axes:
            raise ConfigurationError("from_axes needs at least one axis")
        grid = cls()
        names = list(axes)
        for values in product(*(axes[name] for name in names)):
            coords = dict(zip(names, values))
            grid.add_cell(coords, trial_builder(coords), fold=fold)
        return grid


class SweepRunner:
    """Executes a :class:`SweepGrid` through the batch engine.

    Parameters
    ----------
    trial_fn:
        Top-level picklable callable ``(trace, payload, rng, config)
        -> Any`` run once per trial under full engine supervision.
    config:
        Decoder config handed to workers (``trial_fn``'s fourth
        argument); trials needing per-trial variants carry them in
        their payloads instead.
    seed:
        Root of the per-cell seed derivation for trials without
        explicit seeds.
    max_workers / engine_kwargs:
        Forwarded to :class:`BatchDecoder` (worker count, watchdog,
        retry policy, transport).
    """

    def __init__(self, trial_fn: Callable,
                 config: Optional[LFDecoderConfig] = None,
                 seed: int = 0,
                 max_workers: Optional[int] = None,
                 **engine_kwargs: Any):
        self.trial_fn = trial_fn
        self.seed = seed
        self.engine = BatchDecoder(config=config, seed=seed,
                                   max_workers=max_workers,
                                   **engine_kwargs)

    # -- execution ---------------------------------------------------------

    def _seeded(self, cell: SweepCell) -> List[TrialSpec]:
        """Resolve the cell's trial seeds per the determinism contract."""
        out = []
        for t, spec in enumerate(cell.trials):
            if spec.seed is None:
                child = np.random.SeedSequence(
                    entropy=self.seed, spawn_key=(cell.index, t))
                spec = replace(spec, seed=child)
            out.append(spec)
        return out

    def run_cells(self, grid: Union[SweepGrid, Iterable[SweepCell]],
                  fold: Optional[FoldFn] = None
                  ) -> List[Dict[str, Any]]:
        """Run every cell; returns the folded rows in cell order.

        A cell's ``fold`` (or the shared ``fold`` given here) receives
        ``(cell, outcomes)`` with one :class:`EpochOutcome` per trial,
        in trial order, and returns a row dict, a list of rows, or
        ``None`` to contribute nothing.  Without any fold the raw
        outcome results land under a ``results`` key beside the cell
        coordinates.
        """
        cells = list(grid)
        flat = [spec for cell in cells for spec in self._seeded(cell)]
        rows: List[Dict[str, Any]] = []
        outcome_iter = self.engine.iter_trials(self.trial_fn, flat)
        for cell in cells:
            outcomes = [next(outcome_iter) for _ in cell.trials]
            fold_fn = cell.fold or fold
            if fold_fn is None:
                rows.append({**cell.coords,
                             "results": [o.result for o in outcomes]})
                continue
            folded = fold_fn(cell, outcomes)
            if folded is None:
                continue
            if isinstance(folded, dict):
                rows.append(folded)
            else:
                rows.extend(folded)
        return rows

    # Alias: a grid is the common argument, cells the general one.
    run = run_cells

    def run_experiment(self, grid: Union[SweepGrid, Iterable[SweepCell]],
                       experiment_id: str, description: str,
                       fold: Optional[FoldFn] = None,
                       paper_reference: Optional[Dict[str, Any]] = None,
                       notes: str = "") -> ExperimentResult:
        """:meth:`run_cells` packaged as an :class:`ExperimentResult`."""
        rows = self.run_cells(grid, fold=fold)
        return ExperimentResult(
            experiment_id=experiment_id, description=description,
            rows=rows, paper_reference=paper_reference or {},
            notes=notes)


def results_of(outcomes: Sequence[EpochOutcome]) -> List[Any]:
    """The settled results of a cell's outcomes (failed tasks raise:
    an experiment trial that cannot complete is a bug, not data)."""
    bad = [o for o in outcomes if o.status == "failed"]
    if bad:
        raise ConfigurationError(
            f"{len(bad)} sweep trial(s) failed; first: {bad[0].error}")
    return [o.result for o in outcomes]
