"""Table 1: single-node data recovery with the anchor bit.

The paper's worked example: a tag sends ``1 0 0 0 0 1 1 0 1 0`` where
the first bit is the known anchor; the reader sees the edge sequence
``rise - - - - rise? ...`` (in the paper's notation) and, disambiguated
by the anchor, recovers the bits exactly.  We run the example through
the real pipeline end-to-end — waveform synthesis, edge detection,
projection, anchor resolution — not just the mapping table.
"""

from __future__ import annotations

import numpy as np

from ..core.pipeline import LFDecoder, LFDecoderConfig
from ..phy.channel import ChannelModel
from ..reader.simulator import NetworkSimulator
from ..tags.base import FixedPayload
from ..tags.lf_tag import LFTag
from ..types import SimulationProfile, TagConfig, bits_from_string
from ..utils.rng import SeedLike
from .common import ExperimentResult

#: The paper's example sequence; its first bit (1) is the anchor.
PAPER_SEQUENCE = "1000011010"


def run(rng: SeedLike = 3, quick: bool = False) -> ExperimentResult:
    """Decode the Table 1 sequence through the full pipeline."""
    del quick  # the example is already tiny
    profile = SimulationProfile.fast()
    payload = bits_from_string(PAPER_SEQUENCE)[1:]  # anchor comes from
    # the frame header; the paper folds it into the message.
    coeff = 0.13 + 0.06j
    tag = LFTag(TagConfig(tag_id=0,
                          bitrate_bps=profile.default_bitrate_bps,
                          channel_coefficient=coeff),
                payload_source=FixedPayload(payload),
                profile=profile, rng=rng)
    channel = ChannelModel({0: coeff}, environment_offset=0.5 + 0.3j)
    sim = NetworkSimulator([tag], channel, profile=profile,
                           noise_std=0.008, rng=rng)
    n_bits = tag.header_bits() + payload.size
    duration = (n_bits + 16) / profile.default_bitrate_bps
    capture = sim.run_epoch(duration)
    truth = capture.truths[0]

    decoder = LFDecoder(LFDecoderConfig(
        candidate_bitrates_bps=[profile.default_bitrate_bps],
        profile=profile), rng=rng)
    result = decoder.decode_epoch(capture.trace)
    stream = result.streams[0] if result.streams else None

    sent = truth.bits
    decoded = stream.bits[:sent.size] if stream is not None \
        else np.empty(0, dtype=np.int8)
    n = min(sent.size, decoded.size)
    errors = int(np.count_nonzero(sent[:n] != decoded[:n])) \
        + (sent.size - n)
    # Render the paper's edge notation for the decoded payload region.
    edge_marks = []
    prev = 0
    for bit in decoded:
        if bit == 1 and prev == 0:
            edge_marks.append("rise")
        elif bit == 0 and prev == 1:
            edge_marks.append("fall")
        else:
            edge_marks.append("-")
        prev = int(bit)
    rows = [{
        "sent_bits": "".join(map(str, sent.tolist())),
        "decoded_bits": "".join(map(str, decoded.tolist())),
        "edges": " ".join(edge_marks[:12]) + (" ..." if len(edge_marks)
                                              > 12 else ""),
        "bit_errors": errors,
        "anchor_resolved": bool(stream is not None),
    }]
    return ExperimentResult(
        experiment_id="table1",
        description="Single node data recovery via the anchor bit",
        rows=rows,
        paper_reference={
            "sent": PAPER_SEQUENCE,
            "claim": "anchor bit disambiguates rising/falling clusters; "
                     "sequence decodes exactly (Table 1)",
        })
