"""Table 2: accuracy of IQ-based separation of collided edges.

Three settings, per the paper (rates quoted at the 25 Msps reference —
the fast profile uses the same samples-per-bit at 2.5 Msps):

* two colliding tags at the fast rate with background tags chattering,
* the same without background,
* colliding tags at 1/10th the rate (10x more samples to average per
  edge differential), no background.

Accuracy is the fraction of collided-tag payload bits recovered
correctly after separation — the paper reports 80.88 / 86.89 / 95.40 %.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..analysis.throughput import match_streams, score_epoch
from ..core.pipeline import LFDecoder, LFDecoderConfig
from ..phy.channel import ChannelModel, random_coefficients
from ..reader.simulator import NetworkSimulator
from ..tags.base import FixedOffsetModel
from ..tags.lf_tag import LFTag
from ..types import SimulationProfile, TagConfig
from ..utils.rng import SeedLike, make_rng
from .common import ExperimentResult


def _collision_accuracy(fast_rate: float, collider_rate: float,
                        n_background: int, n_trials: int,
                        profile: SimulationProfile,
                        rng, noise_std: float = 0.02) -> float:
    """Mean payload accuracy of two forced-collision tags.

    Colliders get deliberately weak coefficients (the regime where the
    paper's accuracies sit below 100%); background tags are stronger,
    raising the effective noise floor as in the measured Table 2.
    """
    correct = 0
    total = 0
    for trial in range(n_trials):
        gen = np.random.default_rng(rng.integers(0, 2 ** 63))
        n_tags = 2 + n_background
        coeffs = random_coefficients(
            n_tags, magnitude_range=(0.04, 0.09), rng=gen)
        channel = ChannelModel({k: coeffs[k] for k in range(n_tags)},
                               environment_offset=0.5 + 0.3j)
        # Colliders: identical forced offset => all edges collide.
        # The paper's setup holds that condition for the whole
        # measurement, which requires the pair's clocks to stay aligned
        # (relative ppm drift would walk their edges apart mid-epoch at
        # the slow rate), so the pair's crystals are pinned to 10 ppm.
        shared_offset = float(gen.uniform(2, 4)) / collider_rate
        tags = [
            LFTag(TagConfig(tag_id=k, bitrate_bps=collider_rate,
                            channel_coefficient=coeffs[k],
                            clock_drift_ppm=10.0),
                  offset_model=FixedOffsetModel(shared_offset),
                  profile=profile,
                  rng=np.random.default_rng(gen.integers(0, 2 ** 63)))
            for k in range(2)]
        tags += [
            LFTag(TagConfig(tag_id=k, bitrate_bps=fast_rate,
                            channel_coefficient=coeffs[k]),
                  profile=profile,
                  rng=np.random.default_rng(gen.integers(0, 2 ** 63)))
            for k in range(2, n_tags)]
        sim = NetworkSimulator(tags, channel, profile=profile,
                               noise_std=noise_std,
                               rng=np.random.default_rng(
                                   gen.integers(0, 2 ** 63)))
        duration = 60.0 / collider_rate
        capture = sim.run_epoch(duration, epoch_index=trial)
        rates = sorted({collider_rate, fast_rate})
        decoder = LFDecoder(LFDecoderConfig(
            candidate_bitrates_bps=rates, profile=profile),
            rng=np.random.default_rng(gen.integers(0, 2 ** 63)))
        result = decoder.decode_epoch(capture.trace)
        matches = match_streams(capture, result)
        for match in matches:
            if match.tag_id in (0, 1):
                correct += match.bits_correct
                total += match.bits_sent
    return correct / total if total else 0.0


def run(n_trials: int = 20, profile: Optional[SimulationProfile] = None,
        rng: SeedLike = 17, quick: bool = False) -> ExperimentResult:
    """Measure collided-edge separation accuracy in the three settings."""
    if quick:
        n_trials = min(n_trials, 2)
    prof = profile or SimulationProfile.fast()
    gen = make_rng(rng)
    fast = prof.default_bitrate_bps          # the "100 kbps" point
    slow = prof.default_bitrate_bps / 10.0   # the "10 kbps" point

    settings = [
        ("fast rate, background nodes", fast, fast, 6),
        ("fast rate, no background", fast, fast, 0),
        ("slow rate, no background", fast, slow, 0),
    ]
    rows = []
    paper_values = (0.8088, 0.8689, 0.9540)
    for (name, fast_rate, collider_rate, n_bg), paper in zip(
            settings, paper_values):
        acc = _collision_accuracy(fast_rate, collider_rate, n_bg,
                                  n_trials, prof, gen)
        rows.append({"setting": name, "accuracy": acc,
                     "paper_accuracy": paper})
    return ExperimentResult(
        experiment_id="table2",
        description="Separating edge collisions with IQ-based "
                    "classification",
        rows=rows,
        paper_reference={
            "with_background": 0.8088,
            "no_background": 0.8689,
            "slow_no_background": 0.9540,
        },
        notes="expected ordering: background < clean <= slow "
                "(the scalar-lattice extension recovers near-parallel\n"
                "geometries, so the slow case is no longer geometry-capped)")
