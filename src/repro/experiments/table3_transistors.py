"""Table 3: hardware complexity of the three tag designs.

Composes each design from gate-level primitives and reports the
transistor totals with and without the 1k packet FIFO.  The totals
must match the paper exactly — they are asserted in the test suite.
"""

from __future__ import annotations

from ..hardware.designs import (buzz_design, gen2_design,
                                lf_backscatter_design)
from .common import ExperimentResult

PAPER_TABLE3 = {
    "RFID chip": {"without_fifo": 22704, "with_fifo": 34992},
    "Buzz": {"without_fifo": 1792, "with_fifo": 14080},
    "LF-Backscatter": {"without_fifo": 176, "with_fifo": 176},
}


def run(quick: bool = False) -> ExperimentResult:
    """Reproduce Table 3 from the gate-level design inventory."""
    del quick  # static computation
    labels = {"gen2": "RFID chip", "buzz": "Buzz",
              "lf_backscatter": "LF-Backscatter"}
    rows = []
    for design in (gen2_design(), buzz_design(),
                   lf_backscatter_design()):
        label = labels[design.name]
        rows.append({
            "design": label,
            "transistors_without_fifo": design.transistors_without_fifo,
            "transistors_with_1k_fifo": design.transistors_with_fifo,
            "paper_without_fifo": PAPER_TABLE3[label]["without_fifo"],
            "paper_with_fifo": PAPER_TABLE3[label]["with_fifo"],
        })
    return ExperimentResult(
        experiment_id="table3",
        description="Hardware complexity (transistor counts)",
        rows=rows,
        paper_reference=PAPER_TABLE3)
