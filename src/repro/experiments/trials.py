"""Top-level trial functions for engine-dispatched experiment sweeps.

:meth:`repro.core.engine.BatchDecoder.iter_trials` pickles its trial
function by module path, so the callables every refit experiment
shares live here as plain top-level functions.  Each follows the
engine's trial signature ``(trace, payload, rng, config) -> Any`` and
returns plain dicts/tuples (derived data only — never views of an
engine-transported trace).

The determinism story: a trial's entire randomness comes from ``rng``
(seeded explicitly by the calling experiment for parity with its
serial ancestor) plus whatever pinned entropy rides in the payload's
:class:`~repro.experiments.scenario.ScenarioSpec` (``coefficients``,
``population_seeds``).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

__all__ = ["lf_epochs_trial", "scenario_decode_trial"]


def lf_epochs_trial(trace, payload: Dict[str, Any], rng,
                    config) -> Dict[str, float]:
    """One multi-epoch LF run (simulate + decode + score), whole.

    The epoch loop stays inside the trial because one decoder's RNG
    state deliberately persists across a session's epochs — splitting
    the epochs into separate tasks would change every decode after the
    first.  Payload keys: ``n_tags, rate, n_epochs, duration,
    profile`` and optionally ``decoder_config``.
    """
    from ..analysis.throughput import run_lf_epochs
    run = run_lf_epochs(payload["n_tags"], payload["rate"],
                        payload["n_epochs"], payload["duration"],
                        profile=payload["profile"],
                        decoder_config=payload.get("decoder_config"),
                        rng=rng)
    return {"throughput_bps": run.throughput_bps,
            "goodput_fraction": run.goodput_fraction}


def scenario_decode_trial(trace, payload: Dict[str, Any], rng,
                          config) -> Dict[str, Any]:
    """Render one scenario epoch, decode it fresh, score vs truth.

    Payload keys: ``spec`` (a fully-pinned ScenarioSpec), ``profile``,
    ``decoder_config``, and optionally ``duration`` / ``epoch_index``.
    ``rng`` seeds the decoder (the capture's entropy is pinned in the
    spec).
    """
    from ..analysis.throughput import score_epoch
    from ..core.pipeline import LFDecoder
    from .scenario import ScenarioSynth
    synth = ScenarioSynth(payload["spec"], profile=payload["profile"])
    capture = synth.capture(payload.get("duration"),
                            epoch_index=payload.get("epoch_index", 0))
    decoder = LFDecoder(payload["decoder_config"], rng=rng)
    result = decoder.decode_epoch(capture.trace)
    report = score_epoch(capture, result)
    return {"bits_correct": report.bits_correct,
            "bits_sent": report.bits_sent,
            "n_streams": result.n_streams,
            "offsets": [float(s.offset_samples)
                        for s in result.streams],
            "truth_offsets": [float(t.offset_samples)
                              for t in capture.truths]}
