"""Tag hardware complexity and power models (Table 3, Figure 13).

The paper implements LF-Backscatter, Buzz, and an EPC Gen 2 chip in
Verilog, counts transistors, and runs SPICE for power.  We reproduce
the *model*: a gate-level transistor inventory (:mod:`gates`,
:mod:`components`), the three tag designs composed from it
(:mod:`designs`, calibrated to Table 3's totals), and a power model
combining digital switching, analog blocks and RF-switch drive
(:mod:`power`), from which :mod:`energy` derives the bits/uJ efficiency
of Figure 13.
"""

from .gates import Gate, TRANSISTORS_PER_GATE, transistor_count
from .components import (
    Component,
    register,
    counter,
    lfsr,
    crc_checker,
    fifo,
    logic_block,
)
from .designs import (
    TagDesign,
    lf_backscatter_design,
    buzz_design,
    gen2_design,
    FIFO_BITS,
)
from .power import PowerModel, AnalogBlock
from .energy import energy_efficiency_bits_per_uj

__all__ = [
    "Gate",
    "TRANSISTORS_PER_GATE",
    "transistor_count",
    "Component",
    "register",
    "counter",
    "lfsr",
    "crc_checker",
    "fifo",
    "logic_block",
    "TagDesign",
    "lf_backscatter_design",
    "buzz_design",
    "gen2_design",
    "FIFO_BITS",
    "PowerModel",
    "AnalogBlock",
    "energy_efficiency_bits_per_uj",
]
