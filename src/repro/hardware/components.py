"""Composite hardware blocks built from gate primitives.

These are the building blocks the three Table 3 designs are composed
from: registers, counters, LFSRs (PN generators and PRNGs), CRC
checkers, SRAM FIFOs and free-form glue-logic blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..errors import HardwareModelError
from .gates import Gate, transistor_count


@dataclass
class Component:
    """A named hardware block: its own gates plus sub-components."""

    name: str
    gates: Dict[Gate, int] = field(default_factory=dict)
    children: List["Component"] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.name:
            raise HardwareModelError("component needs a name")
        # Validate eagerly so a bad inventory fails at construction.
        transistor_count(self.gates)

    @property
    def transistors(self) -> int:
        """Total transistors including all sub-components."""
        return transistor_count(self.gates) + sum(
            child.transistors for child in self.children)

    def flattened(self) -> Dict[str, int]:
        """Per-block transistor breakdown (leaf-level)."""
        out: Dict[str, int] = {}
        own = transistor_count(self.gates)
        if own:
            out[self.name] = own
        for child in self.children:
            for name, count in child.flattened().items():
                key = f"{self.name}/{name}"
                out[key] = out.get(key, 0) + count
        return out


def register(name: str, n_bits: int) -> Component:
    """An n-bit register: one D flip-flop per bit."""
    if n_bits < 1:
        raise HardwareModelError("register must be >= 1 bit")
    return Component(name, gates={Gate.DFF: n_bits})


def counter(name: str, n_bits: int) -> Component:
    """A ripple/increment counter: DFF plus half-adder per bit."""
    if n_bits < 1:
        raise HardwareModelError("counter must be >= 1 bit")
    return Component(name, gates={Gate.DFF: n_bits,
                                  Gate.HALF_ADDER: n_bits})


def lfsr(name: str, n_bits: int, n_taps: int = 2) -> Component:
    """A linear-feedback shift register (PN generator / PRNG)."""
    if n_bits < 2:
        raise HardwareModelError("LFSR must be >= 2 bits")
    if n_taps < 1:
        raise HardwareModelError("LFSR needs at least one feedback tap")
    return Component(name, gates={Gate.DFF: n_bits, Gate.XOR2: n_taps})


def crc_checker(name: str = "crc16", n_bits: int = 16,
                n_taps: int = 3, n_glue: int = 9) -> Component:
    """A serial CRC checker: shift register, feedback XORs, glue."""
    if n_bits < 1:
        raise HardwareModelError("CRC register must be >= 1 bit")
    return Component(name, gates={Gate.DFF: n_bits, Gate.XOR2: n_taps,
                                  Gate.NAND2: n_glue})


def fifo(name: str, n_bits: int) -> Component:
    """An SRAM FIFO buffer: 6 transistors per stored bit.

    Table 3's "1k FIFO" column adds 12288 transistors to both the Gen 2
    chip and the Buzz tag — exactly a 2048-bit 6T array.
    """
    if n_bits < 1:
        raise HardwareModelError("FIFO must store >= 1 bit")
    return Component(name, gates={Gate.SRAM_CELL: n_bits})


def logic_block(name: str, **gate_counts: int) -> Component:
    """Free-form glue logic specified as ``gate_name=count`` kwargs.

    Example: ``logic_block("sync_fsm", dff=10, nand2=20, and2=10)``.
    """
    gates: Dict[Gate, int] = {}
    for gate_name, count in gate_counts.items():
        try:
            gate = Gate(gate_name)
        except ValueError:
            raise HardwareModelError(f"unknown gate {gate_name!r}")
        gates[gate] = count
    return Component(name, gates=gates)


def total_transistors(components: Sequence[Component]) -> int:
    """Sum of transistors over a list of components."""
    return sum(c.transistors for c in components)
