"""The three tag designs of Table 3, composed from gate-level blocks.

Totals reproduce the paper's Table 3 exactly:

=================  ============  ==========
design             w/o FIFO      + 1k FIFO
=================  ============  ==========
EPC Gen 2 chip     22704         34992
Buzz tag           1792          14080
LF-Backscatter     176           176
=================  ============  ==========

The Gen 2 inventory is calibrated against the public Verilog
implementation of Yeager et al. [23] that the paper counts; the Buzz
and LF compositions follow the block structure each protocol needs
(Sections 2.2 and 3.6).  The FIFO delta (34992-22704 = 14080-1792 =
12288) is exactly a 2048-bit 6T SRAM array.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..errors import HardwareModelError
from .components import (Component, counter, crc_checker, fifo,
                         lfsr, logic_block, register)

#: Capacity of the "1k FIFO" of Table 3 (the published transistor delta
#: of 12288 = 2048 cells x 6T).
FIFO_BITS = 2048


@dataclass
class TagDesign:
    """A complete tag digital design: named blocks plus optional FIFO."""

    name: str
    blocks: List[Component]
    needs_packet_buffer: bool

    @property
    def transistors_without_fifo(self) -> int:
        return sum(b.transistors for b in self.blocks)

    @property
    def transistors_with_fifo(self) -> int:
        """Total including the 1k packet FIFO where the protocol needs
        one (LF-Backscatter does not — tags transmit as they sense)."""
        if not self.needs_packet_buffer:
            return self.transistors_without_fifo
        return self.transistors_without_fifo + fifo(
            "packet_fifo", FIFO_BITS).transistors

    def breakdown(self) -> Dict[str, int]:
        """Per-block transistor counts."""
        out: Dict[str, int] = {}
        for block in self.blocks:
            out[block.name] = block.transistors
        return out


def lf_backscatter_design() -> TagDesign:
    """The laissez-faire tag: 176 transistors, no buffer, no receiver.

    A 6-bit serializer shifts sensor bits straight onto the RF
    transistor; eight NAND gates of carrier-detect and reset glue are
    the entire control path (Section 3.6: "virtually no tag-side
    logic").
    """
    blocks = [
        register("serializer", 6),                      # 6 x 24 = 144
        logic_block("carrier_glue", nand2=8),           # 8 x 4  = 32
    ]
    return TagDesign("lf_backscatter", blocks, needs_packet_buffer=False)


def buzz_design() -> TagDesign:
    """The Buzz tag: 1792 transistors plus a packet FIFO.

    Buzz needs a PN generator for the randomization matrix, lock-step
    bit and retransmission counters, modulation gating, and a
    synchronization FSM to stay in lock-step — and a packet buffer so
    samples are not lost while bits are retransmitted (Section 2.2).
    """
    blocks = [
        lfsr("pn_generator", 31, n_taps=2),             # 744 + 20 = 764
        counter("bit_counter", 8),                      # 192 + 112 = 304
        counter("retransmission_counter", 8),           # 304
        logic_block("modulation_gate", and2=4, mux2=2),  # 24 + 16 = 40
        logic_block("sync_fsm", dff=10, nand2=20, and2=10),  # 380
    ]
    design = TagDesign("buzz", blocks, needs_packet_buffer=True)
    if design.transistors_without_fifo != 1792:
        raise HardwareModelError(
            f"Buzz composition drifted: {design.transistors_without_fifo}"
            " != 1792")
    return design


def gen2_design() -> TagDesign:
    """The EPC Gen 2 chip: 22704 transistors plus a packet FIFO.

    Block budget calibrated to the public Gen 2 Verilog implementation
    of Yeager et al. [23]: PIE demodulation, full command decoding, the
    inventory state machine with Q/slot handling, CRC16, PRNG, EPC
    register file, FM0/Miller encoder, and the session/select protocol
    control sprawl that dominates the count.
    """
    blocks = [
        crc_checker("crc16"),                                    # 450
        lfsr("prng16", 16, n_taps=2),                            # 404
        logic_block("pie_demodulator", dff=40, nand2=85),        # 1300
        logic_block("command_decoder", dff=80, nand2=345,
                    xor2=70),                                    # 4000
        logic_block("inventory_fsm", dff=60, nand2=240,
                    inv=100),                                    # 2600
        Component("slot_q", children=[
            counter("slot_counter", 15),                         # 570
            logic_block("q_register", dff=4, nand2=4),           # 112
        ]),                                                      # 682
        Component("epc_memory", children=[
            register("epc_register", 96),                        # 2304
            logic_block("memory_addressing", nand2=50),          # 200
        ]),                                                      # 2504
        logic_block("backscatter_encoder", dff=20, nand2=55),    # 700
        logic_block("protocol_control", dff=250, nand2=766,
                    inv=500),                                    # 10064
    ]
    design = TagDesign("gen2", blocks, needs_packet_buffer=True)
    if design.transistors_without_fifo != 22704:
        raise HardwareModelError(
            f"Gen 2 composition drifted: "
            f"{design.transistors_without_fifo} != 22704")
    return design


def table3() -> Dict[str, Dict[str, int]]:
    """Reproduce Table 3: transistor counts with and without the FIFO."""
    rows = {}
    for design in (gen2_design(), buzz_design(), lf_backscatter_design()):
        label = {"gen2": "RFID chip", "buzz": "Buzz",
                 "lf_backscatter": "LF-Backscatter"}[design.name]
        rows[label] = {
            "without_fifo": design.transistors_without_fifo,
            "with_fifo": design.transistors_with_fifo,
        }
    return rows
