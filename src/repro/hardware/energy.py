"""Energy-efficiency accounting in bits per micro-joule (Figure 13).

Efficiency = aggregate goodput / total tag power.  LF-Backscatter tags
all stream concurrently, so per-tag goodput stays at the full bitrate;
TDMA and Buzz serialize (fully or partially), so each added tag splits
the channel while still burning receiver/buffer power — their
efficiency falls roughly as 1/n while LF stays flat.
"""

from __future__ import annotations

from typing import Dict, Optional

from .. import constants
from ..errors import ConfigurationError
from .power import PowerModel, default_tag_power_w


def energy_efficiency_bits_per_uj(scheme: str, n_tags: int,
                                  aggregate_throughput_bps: float,
                                  bitrate_bps: float = constants.
                                  DEFAULT_BITRATE_BPS,
                                  model: Optional[PowerModel] = None
                                  ) -> float:
    """Figure 13's metric for one scheme at one network size.

    ``aggregate_throughput_bps`` is the measured (or modelled) goodput
    of the whole network; the denominator is the summed power of all
    ``n_tags`` tag radios.
    """
    if n_tags < 1:
        raise ConfigurationError("need at least one tag")
    if aggregate_throughput_bps < 0:
        raise ConfigurationError("throughput must be >= 0")
    per_tag_power = default_tag_power_w(scheme, bitrate_bps, model)
    total_power_w = per_tag_power * n_tags
    bits_per_joule = aggregate_throughput_bps / total_power_w
    return bits_per_joule / 1e6


def efficiency_table(throughputs: Dict[str, Dict[int, float]],
                     bitrate_bps: float = constants.DEFAULT_BITRATE_BPS,
                     model: Optional[PowerModel] = None
                     ) -> Dict[str, Dict[int, float]]:
    """Efficiency for every (scheme, n_tags) cell of Figure 13.

    ``throughputs[scheme][n_tags]`` is the aggregate goodput in bps.
    """
    out: Dict[str, Dict[int, float]] = {}
    for scheme, by_n in throughputs.items():
        out[scheme] = {
            n: energy_efficiency_bits_per_uj(scheme, n, tput,
                                             bitrate_bps, model)
            for n, tput in by_n.items()}
    return out
