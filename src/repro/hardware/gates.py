"""Transistor counts of CMOS logic primitives.

Counts follow standard static-CMOS implementations (the same accounting
used by the public Gen 2 Verilog implementation of Yeager et al. [23]
that Table 3 compares against): an inverter is 2 transistors, a 2-input
NAND/NOR 4, a transmission-gate XOR 10, a standard-cell D flip-flop 24,
and a 6T SRAM cell 6.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, Mapping

from ..errors import HardwareModelError


class Gate(str, Enum):
    """Logic primitives with known transistor counts."""

    INV = "inv"
    NAND2 = "nand2"
    NOR2 = "nor2"
    AND2 = "and2"
    OR2 = "or2"
    XOR2 = "xor2"
    MUX2 = "mux2"
    LATCH = "latch"
    DFF = "dff"
    SRAM_CELL = "sram_cell"
    FULL_ADDER = "full_adder"
    HALF_ADDER = "half_adder"


TRANSISTORS_PER_GATE: Dict[Gate, int] = {
    Gate.INV: 2,
    Gate.NAND2: 4,
    Gate.NOR2: 4,
    Gate.AND2: 6,     # NAND + INV
    Gate.OR2: 6,      # NOR + INV
    Gate.XOR2: 10,
    Gate.MUX2: 8,     # two transmission gates + inverter pair
    Gate.LATCH: 12,
    Gate.DFF: 24,     # master-slave standard cell
    Gate.SRAM_CELL: 6,
    Gate.FULL_ADDER: 28,
    Gate.HALF_ADDER: 14,
}


def transistor_count(gates: Mapping[Gate, int]) -> int:
    """Total transistors of a gate inventory.

    Raises :class:`HardwareModelError` for unknown gates or negative
    counts.
    """
    total = 0
    for gate, count in gates.items():
        if gate not in TRANSISTORS_PER_GATE:
            raise HardwareModelError(f"unknown gate {gate!r}")
        if count < 0:
            raise HardwareModelError(
                f"negative count {count} for gate {gate.value}")
        total += TRANSISTORS_PER_GATE[gate] * count
    return total
