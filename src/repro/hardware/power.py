"""Tag power model: digital switching + analog blocks + RF switch drive.

Calibrated to the power regimes the paper cites:

* an LF-Backscatter streaming tag at 100 kbps consumes "a paltry tens
  of micro-watts" (abstract; EkhoNet [26] reports the same class);
* a Buzz tag additionally keeps a lock-step synchronization receiver
  powered and clocks its PN generator, roughly doubling-plus its draw;
* an EPC Gen 2 chip powers a full command receiver/decoder chain and
  sits in the hundreds of micro-watts (Yeager et al. [23]).

Digital switching uses the standard alpha*C*V^2*f per-transistor model;
it is a minor term at backscatter clock rates — the analog blocks and
the RF-switch drive dominate, which is exactly why Table 3's transistor
reduction translates into the Figure 13 energy gap only together with
the protocol differences (no receiver, no buffering, no lock-step).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .. import constants
from ..errors import ConfigurationError
from .designs import TagDesign


@dataclass(frozen=True)
class AnalogBlock:
    """A fixed-draw analog block (receiver, clock source, comparator)."""

    name: str
    power_w: float

    def __post_init__(self) -> None:
        if self.power_w < 0:
            raise ConfigurationError(
                f"analog block {self.name} has negative power")


#: Blocks shared by every backscatter tag.
RTC_CLOCK = AnalogBlock("rtc_clock", 1.2e-6)       # NXP PCF8523 (§3.6)
CARRIER_COMPARATOR = AnalogBlock("carrier_comparator", 1.5e-6)

#: Blocks only protocol-heavy tags need.
LOCKSTEP_SYNC_RECEIVER = AnalogBlock("lockstep_sync_receiver", 45e-6)
GEN2_COMMAND_RECEIVER = AnalogBlock("gen2_command_receiver", 150e-6)
GEN2_BIAS_REGULATOR = AnalogBlock("gen2_bias_regulator", 25e-6)


@dataclass
class PowerModel:
    """Computes a tag design's power draw at a given bitrate.

    Parameters follow a 0.13 um low-leakage process: ~1 fF switched
    capacitance per transistor, 1 V supply, 10 pW leakage per
    transistor.  ``rf_switch_energy_j`` is the energy to slew the RF
    transistor gate (including its level shifter) once.
    """

    switched_capacitance_f: float = 1e-15
    supply_v: float = 1.0
    activity_factor: float = 0.15
    leakage_per_transistor_w: float = 10e-12
    rf_switch_energy_j: float = 0.55e-9

    def __post_init__(self) -> None:
        for name in ("switched_capacitance_f", "supply_v",
                     "activity_factor", "rf_switch_energy_j"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")
        if self.leakage_per_transistor_w < 0:
            raise ConfigurationError("leakage must be >= 0")

    def digital_power_w(self, n_transistors: int,
                        clock_hz: float) -> float:
        """alpha * C * V^2 * f switching power plus leakage."""
        if n_transistors < 0:
            raise ConfigurationError("transistor count must be >= 0")
        if clock_hz < 0:
            raise ConfigurationError("clock must be >= 0 Hz")
        dynamic = (self.activity_factor * n_transistors
                   * self.switched_capacitance_f
                   * self.supply_v ** 2 * clock_hz)
        leakage = n_transistors * self.leakage_per_transistor_w
        return dynamic + leakage

    def rf_switch_power_w(self, bitrate_bps: float,
                          toggle_probability: float = 0.5) -> float:
        """Energy to toggle the RF transistor, averaged over traffic."""
        if bitrate_bps <= 0:
            raise ConfigurationError("bitrate must be positive")
        if not 0 <= toggle_probability <= 1:
            raise ConfigurationError(
                "toggle probability must be in [0, 1]")
        return (bitrate_bps * toggle_probability
                * self.rf_switch_energy_j)

    def tag_power_w(self, design: TagDesign, bitrate_bps: float,
                    analog_blocks: List[AnalogBlock],
                    clock_hz: Optional[float] = None,
                    include_fifo: Optional[bool] = None) -> float:
        """Total power of ``design`` streaming at ``bitrate_bps``."""
        if include_fifo is None:
            include_fifo = design.needs_packet_buffer
        n = design.transistors_with_fifo if include_fifo \
            else design.transistors_without_fifo
        clock = bitrate_bps if clock_hz is None else clock_hz
        total = self.digital_power_w(n, clock)
        total += self.rf_switch_power_w(bitrate_bps)
        total += sum(block.power_w for block in analog_blocks)
        return total


def default_tag_power_w(scheme: str,
                        bitrate_bps: float = constants.
                        DEFAULT_BITRATE_BPS,
                        model: Optional[PowerModel] = None) -> float:
    """Per-tag power of each scheme's reference design at ``bitrate``.

    ``scheme`` is one of ``lf``, ``buzz``, ``tdma`` (the Gen 2 chip).
    """
    from .designs import (buzz_design, gen2_design,
                          lf_backscatter_design)
    pm = model or PowerModel()
    if scheme == "lf":
        return pm.tag_power_w(
            lf_backscatter_design(), bitrate_bps,
            [RTC_CLOCK, CARRIER_COMPARATOR])
    if scheme == "buzz":
        return pm.tag_power_w(
            buzz_design(), bitrate_bps,
            [RTC_CLOCK, CARRIER_COMPARATOR, LOCKSTEP_SYNC_RECEIVER])
    if scheme == "tdma":
        # Gen 2 clocks its decoder well above the link rate (PIE
        # oversampling); 1.92 MHz is the canonical reference clock.
        return pm.tag_power_w(
            gen2_design(), bitrate_bps,
            [GEN2_COMMAND_RECEIVER, GEN2_BIAS_REGULATOR,
             CARRIER_COMPARATOR],
            clock_hz=1.92e6)
    raise ConfigurationError(
        f"unknown scheme {scheme!r}; expected lf / buzz / tdma")
