"""Optional link-layer services (Section 3.6).

The base LF-Backscatter design deliberately omits link-layer
reliability to keep tags simple.  Section 3.6 sketches the two hooks a
deployment can add at modest tag cost, both implemented here:

* :mod:`reliability` — a Broadcast-ACK epoch loop: the reader asks the
  whole network to retransmit next epoch; fresh comparator jitter
  re-randomizes the collision pattern, so retries converge quickly;
* :mod:`rate_control` — reader-commanded maximum-bitrate reduction when
  collisions persist; stringently constrained (slow) tags may ignore
  the command, as the paper allows.
"""

from .reliability import (ReliableLink, ReliableTransferConfig,
                          TransferOutcome, append_crc16, check_crc16,
                          crc16)
from .rate_control import RateController, RateDecision

__all__ = [
    "ReliableLink",
    "ReliableTransferConfig",
    "TransferOutcome",
    "crc16",
    "append_crc16",
    "check_crc16",
    "RateController",
    "RateDecision",
]
