"""Reader-commanded bitrate reduction (Section 3.6).

"The reader might broadcast a message to reduce the maximum bit-rate
in the network to reduce collisions. ... stringently constrained tags
can ignore these ACK messages [since] their transmissions are unlikely
to cause collisions, so it is sufficient to slow down the faster
nodes."

The controller watches per-epoch decode health (streams decoded vs
expected, collisions detected) and steps the network's maximum bitrate
down — always to a multiple of the base rate — when collisions persist,
and back up after a run of clean epochs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..errors import ConfigurationError
from ..types import EpochResult, SimulationProfile


@dataclass(frozen=True)
class RateDecision:
    """The controller's output after observing one epoch."""

    max_bitrate_bps: float
    changed: bool
    reason: str


class RateController:
    """Hysteresis controller over the network's maximum bitrate.

    ``reduce_threshold`` is the fraction of expected streams that must
    fail (or be involved in unresolved collisions) before the rate is
    halved; after ``recover_after`` consecutive clean epochs the rate
    steps back up (never beyond the initial maximum).
    """

    def __init__(self, initial_bitrate_bps: float,
                 profile: Optional[SimulationProfile] = None,
                 min_bitrate_bps: Optional[float] = None,
                 reduce_threshold: float = 0.25,
                 recover_after: int = 3):
        self.profile = profile or SimulationProfile.fast()
        self.profile.validate_bitrate(initial_bitrate_bps)
        if min_bitrate_bps is None:
            min_bitrate_bps = max(self.profile.base_rate_bps,
                                  initial_bitrate_bps / 8.0)
        if min_bitrate_bps > initial_bitrate_bps:
            raise ConfigurationError(
                "minimum bitrate exceeds the initial bitrate")
        if not 0.0 < reduce_threshold <= 1.0:
            raise ConfigurationError(
                "reduce_threshold must be in (0, 1]")
        if recover_after < 1:
            raise ConfigurationError("recover_after must be >= 1")
        self.initial_bitrate_bps = initial_bitrate_bps
        self.min_bitrate_bps = min_bitrate_bps
        self.reduce_threshold = reduce_threshold
        self.recover_after = recover_after
        self._current = initial_bitrate_bps
        self._clean_streak = 0
        self.history: List[RateDecision] = []

    @property
    def current_bitrate_bps(self) -> float:
        return self._current

    def _snap_to_base(self, rate: float) -> float:
        """Round down to the nearest multiple of the base rate."""
        base = self.profile.base_rate_bps
        snapped = max(base, int(rate / base) * base)
        return float(snapped)

    def observe(self, result: EpochResult,
                expected_streams: int) -> RateDecision:
        """Update the rate command from one epoch's decode outcome."""
        if expected_streams < 1:
            raise ConfigurationError(
                "expected_streams must be >= 1")
        missing = max(expected_streams - result.n_streams, 0)
        unresolved = (result.n_collisions_detected
                      - result.n_collisions_resolved)
        trouble = (missing + max(unresolved, 0)) / expected_streams

        decision: RateDecision
        if trouble >= self.reduce_threshold:
            self._clean_streak = 0
            reduced = self._snap_to_base(self._current / 2.0)
            if reduced < self.min_bitrate_bps:
                reduced = self._snap_to_base(self.min_bitrate_bps)
            if reduced < self._current:
                self._current = reduced
                decision = RateDecision(
                    self._current, True,
                    f"{trouble:.0%} of streams in trouble; halving")
            else:
                decision = RateDecision(
                    self._current, False,
                    "already at the minimum bitrate")
        else:
            self._clean_streak += 1
            if (self._clean_streak >= self.recover_after
                    and self._current < self.initial_bitrate_bps):
                recovered = self._snap_to_base(
                    min(self._current * 2.0,
                        self.initial_bitrate_bps))
                self._current = recovered
                self._clean_streak = 0
                decision = RateDecision(
                    self._current, True,
                    f"{self.recover_after} clean epochs; stepping up")
            else:
                decision = RateDecision(self._current, False,
                                        "healthy")
        self.history.append(decision)
        return decision
