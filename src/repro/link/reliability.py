"""Broadcast-ACK reliable transfer (Section 3.6).

"A simple way to add reliability is for the reader to send a Broadcast
ACK to the entire network asking them to retransmit data for the next
epoch.  The benefit of this approach is that collision patterns are
different across epochs, which can be used to decode messages."

Tags frame their payload with a CRC-16; each epoch the reader decodes
whatever it can, CRC-validates, and (conceptually) broadcasts which
messages got through.  Tags whose message failed simply transmit it
again next epoch — with a fresh comparator-jitter offset, so a
collision that killed them last epoch almost never repeats.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

import numpy as np

from ..core.pipeline import LFDecoder, LFDecoderConfig
from ..errors import ConfigurationError
from ..phy.channel import ChannelModel, random_coefficients
from ..reader.simulator import NetworkSimulator
from ..tags.base import FixedPayload
from ..tags.lf_tag import LFTag
from ..types import SimulationProfile, TagConfig
from ..utils.rng import SeedLike, make_rng

#: CRC-16-CCITT generator polynomial x^16 + x^12 + x^5 + 1.
CRC16_POLY = 0x1021
CRC16_BITS = 16


def crc16(bits: np.ndarray) -> np.ndarray:
    """CRC-16-CCITT remainder of a bit sequence (MSB-first)."""
    arr = np.asarray(bits, dtype=np.int8)
    if arr.size == 0:
        raise ConfigurationError("cannot CRC an empty message")
    reg = 0xFFFF  # CCITT initial value
    for bit in arr:
        feedback = ((reg >> 15) & 1) ^ int(bit)
        reg = (reg << 1) & 0xFFFF
        if feedback:
            reg ^= CRC16_POLY
    return np.array([(reg >> (15 - i)) & 1 for i in range(16)],
                    dtype=np.int8)


def append_crc16(message: np.ndarray) -> np.ndarray:
    """Message with its CRC-16 appended."""
    msg = np.asarray(message, dtype=np.int8)
    return np.concatenate([msg, crc16(msg)])


def check_crc16(frame: np.ndarray) -> bool:
    """Validate a message+CRC-16 frame."""
    arr = np.asarray(frame, dtype=np.int8)
    if arr.size <= CRC16_BITS:
        return False
    return bool(np.array_equal(crc16(arr[:-CRC16_BITS]),
                               arr[-CRC16_BITS:]))


@dataclass(frozen=True)
class ReliableTransferConfig:
    """Parameters of the Broadcast-ACK transfer loop."""

    message_bits: int = 64
    max_epochs: int = 20
    bitrate_bps: float = 10e3
    noise_std: float = 0.01

    def __post_init__(self) -> None:
        if self.message_bits < 1:
            raise ConfigurationError("message must be >= 1 bit")
        if self.max_epochs < 1:
            raise ConfigurationError("need at least one epoch")
        if self.bitrate_bps <= 0:
            raise ConfigurationError("bitrate must be positive")


@dataclass
class TransferOutcome:
    """Result of one reliable multi-tag transfer."""

    n_tags: int
    delivered: Set[int] = field(default_factory=set)
    epochs_used: int = 0
    elapsed_s: float = 0.0
    per_epoch_deliveries: List[int] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return len(self.delivered) == self.n_tags

    @property
    def delivery_ratio(self) -> float:
        return len(self.delivered) / self.n_tags if self.n_tags else 0.0


class ReliableLink:
    """Runs the Broadcast-ACK loop over a simulated tag network.

    Each tag has one fixed CRC-16-framed message.  Every epoch, all
    not-yet-delivered messages are (re)transmitted — the paper's
    broadcast semantics, where the reader's single ACK tells the whole
    network whether to go again; delivered tags fall silent.
    """

    def __init__(self, n_tags: int,
                 config: Optional[ReliableTransferConfig] = None,
                 profile: Optional[SimulationProfile] = None,
                 rng: SeedLike = None):
        if n_tags < 1:
            raise ConfigurationError("need at least one tag")
        self.config = config or ReliableTransferConfig()
        self.profile = profile or SimulationProfile.fast()
        self.profile.validate_bitrate(self.config.bitrate_bps)
        self._rng = make_rng(rng)

        gen = self._rng
        self.n_tags = n_tags
        coeffs = random_coefficients(n_tags, rng=gen)
        self.messages: Dict[int, np.ndarray] = {
            k: gen.integers(0, 2, self.config.message_bits
                            ).astype(np.int8)
            for k in range(n_tags)}
        self._frames = {k: append_crc16(m)
                        for k, m in self.messages.items()}
        self._tags = {
            k: LFTag(TagConfig(tag_id=k,
                               bitrate_bps=self.config.bitrate_bps,
                               channel_coefficient=coeffs[k]),
                     payload_source=FixedPayload(self._frames[k]),
                     profile=self.profile,
                     rng=np.random.default_rng(
                         gen.integers(0, 2 ** 63)))
            for k in range(n_tags)}
        self._channel = ChannelModel(
            {k: coeffs[k] for k in range(n_tags)},
            environment_offset=0.5 + 0.3j)
        self._decoder = LFDecoder(
            LFDecoderConfig(
                candidate_bitrates_bps=[self.config.bitrate_bps],
                profile=self.profile),
            rng=np.random.default_rng(gen.integers(0, 2 ** 63)))

    def epoch_duration_s(self) -> float:
        """Long enough for offset spread + header + framed message."""
        frame_bits = (9 + self.config.message_bits + CRC16_BITS)
        return (frame_bits + 14) / self.config.bitrate_bps

    def run(self) -> TransferOutcome:
        """Drive epochs until every message CRC-validates."""
        outcome = TransferOutcome(n_tags=self.n_tags)
        duration = self.epoch_duration_s()
        frame_len = self.config.message_bits + CRC16_BITS
        for epoch in range(self.config.max_epochs):
            pending = [tag for tag_id, tag in self._tags.items()
                       if tag_id not in outcome.delivered]
            if not pending:
                break
            simulator = NetworkSimulator(
                pending, self._channel, profile=self.profile,
                noise_std=self.config.noise_std,
                rng=np.random.default_rng(
                    self._rng.integers(0, 2 ** 63)))
            capture = simulator.run_epoch(duration, epoch_index=epoch)
            result = self._decoder.decode_epoch(capture.trace)
            new_deliveries = 0
            for stream in result.streams:
                payload = stream.payload_bits()[:frame_len]
                if payload.size < frame_len or not check_crc16(payload):
                    continue
                message = payload[:self.config.message_bits]
                for tag_id, true_message in self.messages.items():
                    if tag_id in outcome.delivered:
                        continue
                    if np.array_equal(message, true_message):
                        outcome.delivered.add(tag_id)
                        new_deliveries += 1
                        break
            outcome.per_epoch_deliveries.append(new_deliveries)
            outcome.epochs_used = epoch + 1
            outcome.elapsed_s = outcome.epochs_used * duration
        return outcome
