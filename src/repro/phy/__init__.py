"""Physical-layer substrate: carrier, channel, noise, tag analog models.

Everything the paper measures with real RF hardware (USRP reader, Moo
tags, multipath environment) is modelled here so the decoder in
:mod:`repro.core` can be exercised on synthetic IQ that has the same
structure as a real capture.
"""

from .carrier import EpochSchedule
from .channel import ChannelModel, random_coefficients
from .capacitor import CapacitorModel, ComparatorJitterModel
from .clock import DriftingClock
from .noise import (awgn, noise_std_for_snr, measure_snr_db,
                    phase_noise_walk, apply_phase_noise)
from .modulation import nrz_waveform, toggle_positions, qam_constellation
from .antenna import LinkBudget, equivalent_range

__all__ = [
    "EpochSchedule",
    "ChannelModel",
    "random_coefficients",
    "CapacitorModel",
    "ComparatorJitterModel",
    "DriftingClock",
    "awgn",
    "noise_std_for_snr",
    "measure_snr_db",
    "phase_noise_walk",
    "apply_phase_noise",
    "nrz_waveform",
    "toggle_positions",
    "qam_constellation",
    "LinkBudget",
    "equivalent_range",
]
