"""Radar-equation link budget for backscatter range analysis (Section 5.4).

The paper uses the classical radar equation

    Pr = Pt * Gt^2 * (lambda / (4 pi d))^4 * Gtag^2 * K

to translate the measured ~4 dB SNR gap between LF-Backscatter and
plain ASK decoding into an equivalent operating-range reduction:
a 10 ft ASK range becomes ~8.1 ft under LF decoding, and 30 ft becomes
~23.7 ft.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .. import constants
from ..errors import ConfigurationError

FEET_PER_METER = 3.280839895


@dataclass(frozen=True)
class LinkBudget:
    """Backscatter link budget via the radar equation.

    Defaults approximate the paper's setup: USRP transmitting ~1 W
    through a ~6 dBi Cushcraft panel at 915 MHz to a dipole-equivalent
    tag with a few dB of modulation loss.
    """

    tx_power_w: float = 1.0
    reader_gain_dbi: float = 6.0
    tag_gain_dbi: float = 2.0
    modulation_loss_db: float = 6.0
    carrier_freq_hz: float = constants.CARRIER_FREQ_HZ

    def __post_init__(self) -> None:
        if self.tx_power_w <= 0:
            raise ConfigurationError("tx power must be positive")
        if self.carrier_freq_hz <= 0:
            raise ConfigurationError("carrier frequency must be positive")

    @property
    def wavelength_m(self) -> float:
        return constants.SPEED_OF_LIGHT_M_S / self.carrier_freq_hz

    def received_power_w(self, distance_m: float) -> float:
        """Backscattered power at the reader for a tag at ``distance_m``.

        Implements ``Pr = Pt G_t^2 (lambda/(4 pi d))^4 G_tag^2 K``.
        """
        if distance_m <= 0:
            raise ConfigurationError("distance must be positive")
        g_t = 10.0 ** (self.reader_gain_dbi / 10.0)
        g_tag = 10.0 ** (self.tag_gain_dbi / 10.0)
        k = 10.0 ** (-self.modulation_loss_db / 10.0)
        path = (self.wavelength_m / (4.0 * math.pi * distance_m)) ** 4
        return self.tx_power_w * g_t ** 2 * path * g_tag ** 2 * k

    def received_power_dbm(self, distance_m: float) -> float:
        """Backscattered power in dBm."""
        return 10.0 * math.log10(self.received_power_w(distance_m) * 1e3)

    def range_for_power(self, min_power_w: float) -> float:
        """Maximum distance at which the received power stays above
        ``min_power_w`` (inverts the d^-4 law)."""
        if min_power_w <= 0:
            raise ConfigurationError("power threshold must be positive")
        # Pr(d) = A / d^4  =>  d = (A / Pr)^(1/4)
        a = self.received_power_w(1.0)  # power at 1 m
        return (a / min_power_w) ** 0.25


def equivalent_range(range_with_ask: float, snr_gap_db: float) -> float:
    """Range achievable by LF decoding given ASK's range and its SNR edge.

    Received power falls as d^-4, so an SNR penalty of ``snr_gap_db``
    shrinks range by the factor ``10 ** (-snr_gap_db / 40)``.  With the
    paper's ~4 dB gap a 10 ft ASK range maps to ~7.9-8.1 ft.
    """
    if range_with_ask <= 0:
        raise ConfigurationError("range must be positive")
    if snr_gap_db < 0:
        raise ConfigurationError("SNR gap must be >= 0 dB")
    return range_with_ask * 10.0 ** (-snr_gap_db / 40.0)


def feet_to_meters(feet: float) -> float:
    """Convert feet to meters."""
    return feet / FEET_PER_METER


def meters_to_feet(meters: float) -> float:
    """Convert meters to feet."""
    return meters * FEET_PER_METER
