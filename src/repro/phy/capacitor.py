"""Receive-capacitor charging and comparator fire-time jitter (Figure 4).

Section 3.2 ("Selecting fine-grained offsets"): a tag starts transmitting
when its receive capacitor, charged by the incoming carrier, crosses a
comparator threshold.  Three randomness sources spread the fire times:

* incoming energy (placement/orientation) scales the charge rate,
* capacitor tolerance (~20 %) scales the RC constant,
* charging noise perturbs the curve around the threshold crossing.

The resulting natural jitter is what gives LF-Backscatter its
fine-grained random offsets without a fine-grained tag clock.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .. import constants
from ..errors import ConfigurationError
from ..utils.rng import SeedLike, make_rng


@dataclass(frozen=True)
class CapacitorModel:
    """RC charging of the receive capacitor toward ``v_max``.

    ``V(t) = v_max * (1 - exp(-t / (r_ohm * c_farad)))``
    """

    c_farad: float = 100e-9
    r_ohm: float = 50e3
    v_max: float = 1.8

    def __post_init__(self) -> None:
        if self.c_farad <= 0 or self.r_ohm <= 0 or self.v_max <= 0:
            raise ConfigurationError(
                "capacitor parameters must all be positive")

    @property
    def tau_s(self) -> float:
        """RC time constant."""
        return self.r_ohm * self.c_farad

    def voltage(self, t_s: np.ndarray,
                energy_scale: float = 1.0,
                tau_scale: float = 1.0) -> np.ndarray:
        """Charge curve sampled at times ``t_s`` (seconds).

        ``energy_scale`` scales the asymptotic voltage (incoming RF
        energy); ``tau_scale`` scales the RC constant (capacitor
        tolerance).
        """
        t = np.asarray(t_s, dtype=np.float64)
        tau = self.tau_s * tau_scale
        return energy_scale * self.v_max * (1.0 - np.exp(-np.maximum(t, 0.0)
                                                         / tau))

    def crossing_time(self, threshold_v: float,
                      energy_scale: float = 1.0,
                      tau_scale: float = 1.0) -> float:
        """Deterministic time at which the charge curve hits threshold."""
        v_inf = energy_scale * self.v_max
        if threshold_v <= 0:
            raise ConfigurationError("threshold must be positive")
        if threshold_v >= v_inf:
            raise ConfigurationError(
                f"threshold {threshold_v} V unreachable: asymptote is "
                f"{v_inf} V")
        tau = self.tau_s * tau_scale
        return -tau * math.log(1.0 - threshold_v / v_inf)


class ComparatorJitterModel:
    """Random transmit-start offsets from the capacitor/comparator chain.

    Draws the three randomness sources of Section 3.2 and returns the
    comparator fire time relative to carrier-on.  With default settings
    the spread of fire times across tags and epochs covers roughly one
    bit period, which is what the eye-pattern folding assumes.
    """

    def __init__(self,
                 capacitor: CapacitorModel = CapacitorModel(),
                 threshold_v: float = 1.0,
                 tolerance: float = constants.CAPACITOR_TOLERANCE,
                 energy_spread: float = 0.25,
                 noise_v: float = 0.02,
                 rng: SeedLike = None):
        if not 0 <= tolerance < 1:
            raise ConfigurationError(
                f"tolerance must be in [0, 1), got {tolerance}")
        if not 0 <= energy_spread < 1:
            raise ConfigurationError(
                f"energy spread must be in [0, 1), got {energy_spread}")
        if noise_v < 0:
            raise ConfigurationError("noise must be >= 0 V")
        self.capacitor = capacitor
        self.threshold_v = threshold_v
        self.tolerance = tolerance
        self.energy_spread = energy_spread
        self.noise_v = noise_v
        self._rng = make_rng(rng)
        # A per-tag placement factor is fixed at construction; epoch-to-
        # epoch randomness comes from charging noise and supply ripple.
        self._energy_scale = float(
            self._rng.uniform(1.0 - energy_spread, 1.0 + energy_spread))
        self._tau_scale = float(
            self._rng.uniform(1.0 - tolerance, 1.0 + tolerance))

    @property
    def energy_scale(self) -> float:
        return self._energy_scale

    @property
    def tau_scale(self) -> float:
        return self._tau_scale

    def fire_time_s(self) -> float:
        """One comparator fire time (a fresh draw each call = each epoch).

        Charging noise is converted into timing noise through the local
        slope of the charge curve at the threshold crossing, which is how
        small voltage ripples translate into fire-time jitter.
        """
        t_cross = self.capacitor.crossing_time(
            self.threshold_v, self._energy_scale, self._tau_scale)
        if self.noise_v == 0:
            return t_cross
        # Slope dV/dt at crossing: (v_inf - v_th) / tau.
        v_inf = self._energy_scale * self.capacitor.v_max
        tau = self.capacitor.tau_s * self._tau_scale
        slope = (v_inf - self.threshold_v) / tau
        dt = self._rng.normal(0.0, self.noise_v / slope)
        return max(t_cross + dt, 0.0)

    def fire_times_s(self, n: int) -> np.ndarray:
        """``n`` independent fire times (one per epoch)."""
        if n < 0:
            raise ConfigurationError(f"n must be >= 0, got {n}")
        return np.array([self.fire_time_s() for _ in range(n)])
