"""Reader carrier gating and epoch scheduling.

Section 3.2: "the reader chops up time into shorter epochs, where each
epoch is initiated by the reader by shutting off and re-starting its
carrier wave."  An :class:`EpochSchedule` describes that gating; the
network simulator uses it to reset tag offsets (fresh comparator fire
times) at every epoch boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from ..errors import ConfigurationError


@dataclass(frozen=True)
class EpochSchedule:
    """Carrier-on/carrier-off timing for a run of epochs.

    ``epoch_duration_s`` is the carrier-on time available for tag
    transmission; ``gap_s`` is the carrier-off pause that delimits
    epochs (long enough for the tags' receive capacitors to discharge).
    """

    epoch_duration_s: float
    gap_s: float = 100e-6
    n_epochs: int = 1

    def __post_init__(self) -> None:
        if self.epoch_duration_s <= 0:
            raise ConfigurationError("epoch duration must be positive")
        if self.gap_s < 0:
            raise ConfigurationError("gap must be >= 0")
        if self.n_epochs < 1:
            raise ConfigurationError("need at least one epoch")

    @property
    def period_s(self) -> float:
        """Epoch-to-epoch period including the carrier-off gap."""
        return self.epoch_duration_s + self.gap_s

    @property
    def total_duration_s(self) -> float:
        """Wall-clock duration of the full schedule."""
        return self.n_epochs * self.period_s

    def epoch_bounds(self) -> Iterator[Tuple[float, float]]:
        """Yield (carrier_on_s, carrier_off_s) for each epoch."""
        for k in range(self.n_epochs):
            start = k * self.period_s
            yield start, start + self.epoch_duration_s

    def carrier_envelope(self, sample_rate_hz: float) -> np.ndarray:
        """0/1 envelope of the carrier over the whole schedule."""
        if sample_rate_hz <= 0:
            raise ConfigurationError("sample rate must be positive")
        n = int(round(self.total_duration_s * sample_rate_hz))
        envelope = np.zeros(n, dtype=np.float64)
        for start, stop in self.epoch_bounds():
            lo = int(round(start * sample_rate_hz))
            hi = min(int(round(stop * sample_rate_hz)), n)
            envelope[lo:hi] = 1.0
        return envelope

    def fits_bits(self, bitrate_bps: float, n_bits: int,
                  max_offset_s: float = 0.0) -> bool:
        """Can ``n_bits`` at ``bitrate_bps`` fit within one epoch,
        even for the slowest-starting tag?"""
        if bitrate_bps <= 0:
            raise ConfigurationError("bitrate must be positive")
        needed = max_offset_s + n_bits / bitrate_bps
        return needed <= self.epoch_duration_s
