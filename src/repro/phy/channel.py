"""Backscatter channel model: per-tag complex coefficients + environment.

Equation 1 of the paper expresses the received signal as a linear
combination of per-tag complex channel coefficients h_i times the tag's
antenna state, plus the environment's static reflection.  The decoder's
IQ cluster geometry is entirely determined by these coefficients, so a
faithful channel model only needs to (a) place coefficients plausibly in
the IQ plane and (b) let them vary over time for the Figure 1 dynamics
experiments.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..utils.rng import SeedLike, make_rng

#: A time-varying coefficient: maps an array of times (s) to complex values.
CoefficientTrajectory = Callable[[np.ndarray], np.ndarray]


def random_coefficients(n_tags: int,
                        magnitude_range: Sequence[float] = (0.05, 0.2),
                        min_separation: float = 0.01,
                        rng: SeedLike = None,
                        max_attempts: int = 10_000) -> List[complex]:
    """Draw per-tag channel coefficients with distinct IQ directions.

    Magnitudes fall in ``magnitude_range`` (the backscattered signal is
    far weaker than the carrier) and phases are uniform.  A minimum
    pairwise separation keeps the experiment honest: tags whose
    coefficients coincide exactly are indistinguishable for *any*
    receiver, and real placements essentially never produce that.
    """
    if n_tags < 0:
        raise ConfigurationError(f"n_tags must be >= 0, got {n_tags}")
    lo, hi = magnitude_range
    if not 0 < lo <= hi:
        raise ConfigurationError(
            f"magnitude range must satisfy 0 < lo <= hi, got {magnitude_range}")
    if min_separation < 0:
        raise ConfigurationError("min_separation must be >= 0")
    gen = make_rng(rng)
    coefficients: List[complex] = []
    attempts = 0
    while len(coefficients) < n_tags:
        attempts += 1
        if attempts > max_attempts:
            raise ConfigurationError(
                f"could not place {n_tags} coefficients with separation "
                f"{min_separation} in magnitude range {magnitude_range}")
        mag = gen.uniform(lo, hi)
        phase = gen.uniform(0.0, 2.0 * math.pi)
        candidate = mag * complex(math.cos(phase), math.sin(phase))
        if all(abs(candidate - c) >= min_separation for c in coefficients):
            coefficients.append(candidate)
    return coefficients


class ChannelModel:
    """Per-tag complex coefficients plus an environment reflection.

    Coefficients may be static complex numbers or time-varying
    trajectories (see :mod:`repro.phy.dynamics`).  The environment
    reflection is an additive complex offset — "the reflection from the
    environment ... will only add an offset" (Section 2.3).
    """

    def __init__(self,
                 coefficients: Dict[int, complex],
                 environment_offset: complex = 0.5 + 0.3j,
                 trajectories: Optional[Dict[int,
                                             CoefficientTrajectory]] = None,
                 environment_trajectory: Optional[
                     CoefficientTrajectory] = None):
        if not coefficients:
            raise ConfigurationError(
                "channel model needs at least one tag coefficient")
        for tag_id, coeff in coefficients.items():
            if tag_id < 0:
                raise ConfigurationError(
                    f"tag ids must be >= 0, got {tag_id}")
            if coeff == 0:
                raise ConfigurationError(
                    f"tag {tag_id} has a zero coefficient")
        self.coefficients = dict(coefficients)
        self.environment_offset = environment_offset
        self.trajectories = dict(trajectories or {})
        self.environment_trajectory = environment_trajectory
        unknown = set(self.trajectories) - set(self.coefficients)
        if unknown:
            raise ConfigurationError(
                f"trajectories reference unknown tags: {sorted(unknown)}")

    @classmethod
    def with_random_coefficients(cls, tag_ids: Sequence[int],
                                 rng: SeedLike = None,
                                 **kwargs) -> "ChannelModel":
        """Convenience constructor drawing coefficients for ``tag_ids``."""
        coeffs = random_coefficients(len(tag_ids), rng=rng)
        return cls(dict(zip(tag_ids, coeffs)), **kwargs)

    @property
    def tag_ids(self) -> List[int]:
        return sorted(self.coefficients)

    def coefficient_at(self, tag_id: int, times_s: np.ndarray) -> np.ndarray:
        """Coefficient of ``tag_id`` evaluated at each time in ``times_s``."""
        if tag_id not in self.coefficients:
            raise ConfigurationError(f"unknown tag id {tag_id}")
        times = np.atleast_1d(np.asarray(times_s, dtype=np.float64))
        if tag_id in self.trajectories:
            return np.asarray(self.trajectories[tag_id](times),
                              dtype=np.complex128)
        return np.full(times.shape, self.coefficients[tag_id],
                       dtype=np.complex128)

    def environment_at(self, times_s: np.ndarray) -> np.ndarray:
        """Environment reflection evaluated at each time."""
        times = np.atleast_1d(np.asarray(times_s, dtype=np.float64))
        if self.environment_trajectory is not None:
            return np.asarray(self.environment_trajectory(times),
                              dtype=np.complex128)
        return np.full(times.shape, self.environment_offset,
                       dtype=np.complex128)

    def is_static(self) -> bool:
        """True when neither tags nor environment vary over time."""
        return not self.trajectories and self.environment_trajectory is None

    def combine(self, times_s: np.ndarray,
                states: Dict[int, np.ndarray]) -> np.ndarray:
        """Combine per-tag antenna states into the received baseband.

        ``states[tag_id]`` is the antenna waveform (0..1) sampled at
        ``times_s``.  Implements Equation 1 plus the environment offset;
        noise is added separately by the reader front end.
        """
        times = np.asarray(times_s, dtype=np.float64)
        received = self.environment_at(times).astype(np.complex128)
        for tag_id, state in states.items():
            arr = np.asarray(state, dtype=np.float64)
            if arr.shape != times.shape:
                raise ConfigurationError(
                    f"state of tag {tag_id} has shape {arr.shape}, "
                    f"expected {times.shape}")
            received = received + self.coefficient_at(tag_id, times) * arr
        return received
