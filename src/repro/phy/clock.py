"""Tag clock model with crystal drift.

Section 4.1: the Moo's internal DCO drifts ~40,000 ppm which is unusable;
the paper replaces it with an 8 MHz crystal with a typical drift of
150 ppm, and states the decoder tolerates roughly 200 ppm.  A
:class:`DriftingClock` draws one drift realization per instantiation
(crystals have a fixed offset that changes slowly with temperature) plus
optional per-tick jitter.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import constants
from ..errors import ConfigurationError
from ..utils.rng import SeedLike, make_rng


class DriftingClock:
    """A tag clock whose actual period deviates from nominal by ppm drift.

    Parameters
    ----------
    nominal_period_s:
        The intended tick period (one bit time for the communication
        clock).
    drift_ppm:
        Magnitude scale of the part-per-million frequency error.  The
        realized drift is drawn uniformly from ``[-drift_ppm, drift_ppm]``
        once per clock.
    jitter_s:
        Optional white per-tick timing jitter standard deviation.
    """

    def __init__(self, nominal_period_s: float,
                 drift_ppm: float = constants.DEFAULT_CLOCK_DRIFT_PPM,
                 jitter_s: float = 0.0,
                 rng: SeedLike = None):
        if nominal_period_s <= 0:
            raise ConfigurationError(
                f"nominal period must be positive, got {nominal_period_s}")
        if drift_ppm < 0:
            raise ConfigurationError(
                f"drift must be >= 0 ppm, got {drift_ppm}")
        if jitter_s < 0:
            raise ConfigurationError(
                f"jitter must be >= 0, got {jitter_s}")
        self.nominal_period_s = nominal_period_s
        self.drift_ppm = drift_ppm
        self.jitter_s = jitter_s
        self._rng = make_rng(rng)
        self._realized_ppm = float(
            self._rng.uniform(-drift_ppm, drift_ppm)) if drift_ppm else 0.0

    @property
    def realized_drift_ppm(self) -> float:
        """The drift realization of this particular crystal."""
        return self._realized_ppm

    @property
    def actual_period_s(self) -> float:
        """Nominal period scaled by the realized drift."""
        return self.nominal_period_s * (1.0 + self._realized_ppm * 1e-6)

    def tick_times(self, n_ticks: int, start_s: float = 0.0) -> np.ndarray:
        """Timestamps of the first ``n_ticks`` ticks starting at start_s.

        Jitter, when enabled, is white (it does not accumulate): a
        crystal's cycle-to-cycle wander is tiny compared with its static
        ppm offset.
        """
        if n_ticks < 0:
            raise ConfigurationError(f"n_ticks must be >= 0, got {n_ticks}")
        times = start_s + np.arange(n_ticks) * self.actual_period_s
        if self.jitter_s > 0 and n_ticks > 0:
            times = times + self._rng.normal(0.0, self.jitter_s, n_ticks)
        return times

    def reseed_drift(self, rng: Optional[SeedLike] = None) -> float:
        """Draw a fresh drift realization (e.g. temperature change)."""
        if rng is not None:
            self._rng = make_rng(rng)
        self._realized_ppm = float(
            self._rng.uniform(-self.drift_ppm, self.drift_ppm)) \
            if self.drift_ppm else 0.0
        return self._realized_ppm
