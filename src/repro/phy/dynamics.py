"""Channel-coefficient dynamics reproducing Figure 1.

Buzz-style decoders need per-tag channel coefficients and therefore have
to re-estimate whenever the channel moves.  Figure 1 shows the three
movement regimes that perturb coefficients in practice:

* (a) **people movement** — a person walking near a stationary tag
  perturbs the multipath environment, producing slow large-amplitude
  wander in I and Q;
* (b) **tag rotation** — rotating a tag in place sweeps the phase of its
  coefficient (and modulates magnitude through the antenna pattern);
* (c) **near-field coupling** — two tags brought within ~5 cm couple
  through their antennas, so both coefficients shift when close.

Each generator returns a :data:`CoefficientTrajectory` suitable for
:class:`repro.phy.channel.ChannelModel`.
"""

from __future__ import annotations

import math
from typing import Callable, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..utils.rng import SeedLike, make_rng
from .channel import CoefficientTrajectory


def _smooth_random_walk(duration_s: float, n_knots: int, scale: float,
                        rng: SeedLike) -> Callable[[np.ndarray], np.ndarray]:
    """Complex random walk interpolated smoothly over [0, duration]."""
    gen = make_rng(rng)
    knot_t = np.linspace(0.0, duration_s, n_knots)
    steps = (gen.normal(0.0, scale, n_knots)
             + 1j * gen.normal(0.0, scale, n_knots))
    walk = np.cumsum(steps)
    walk -= walk.mean()

    def trajectory(times: np.ndarray) -> np.ndarray:
        t = np.clip(np.asarray(times, dtype=np.float64), 0.0, duration_s)
        re = np.interp(t, knot_t, walk.real)
        im = np.interp(t, knot_t, walk.imag)
        return re + 1j * im

    return trajectory


def people_movement(base: complex, duration_s: float = 12.0,
                    wander_scale: float = 0.15,
                    step_rate_hz: float = 2.0,
                    rng: SeedLike = None) -> CoefficientTrajectory:
    """Figure 1(a): multipath wander from a person walking nearby.

    The perturbation is a smooth complex random walk around the static
    coefficient, with knots at roughly footstep rate.
    """
    if duration_s <= 0:
        raise ConfigurationError("duration must be positive")
    if wander_scale < 0:
        raise ConfigurationError("wander scale must be >= 0")
    n_knots = max(int(duration_s * step_rate_hz), 2)
    walk = _smooth_random_walk(duration_s, n_knots, wander_scale, rng)

    def trajectory(times: np.ndarray) -> np.ndarray:
        return base + walk(times)

    return trajectory


def tag_rotation(base: complex, duration_s: float = 12.0,
                 total_rotation_rad: float = 2.0 * math.pi,
                 pattern_depth: float = 0.4,
                 rng: SeedLike = None) -> CoefficientTrajectory:
    """Figure 1(b): rotating a tag sweeps its coefficient phase.

    The phase advances with the physical rotation while the antenna
    pattern modulates the magnitude (``pattern_depth`` = fractional dip
    at the pattern null).
    """
    if duration_s <= 0:
        raise ConfigurationError("duration must be positive")
    if not 0 <= pattern_depth < 1:
        raise ConfigurationError(
            f"pattern depth must be in [0, 1), got {pattern_depth}")
    gen = make_rng(rng)
    wobble = float(gen.uniform(0.0, 2.0 * math.pi))

    def trajectory(times: np.ndarray) -> np.ndarray:
        t = np.asarray(times, dtype=np.float64)
        angle = total_rotation_rad * t / duration_s
        # Dipole-like pattern: magnitude dips as the tag turns edge-on.
        magnitude = 1.0 - pattern_depth * np.sin(angle + wobble) ** 2
        return base * magnitude * np.exp(1j * angle)

    return trajectory


def coupled_tags(base_a: complex, base_b: complex,
                 duration_s: float = 12.0,
                 approach_start_s: float = 6.0,
                 far_distance_m: float = 1.0,
                 near_distance_m: float = 0.05,
                 coupling_distance_m: float = 0.15,
                 coupling_strength: float = 0.5,
                 rng: SeedLike = None
                 ) -> Tuple[CoefficientTrajectory, CoefficientTrajectory]:
    """Figure 1(c): two tags brought close enough to couple near-field.

    Both coefficients are unchanged while the tags are ~1 m apart; once
    the separation drops below ``coupling_distance_m`` the antennas
    detune each other, mixing a distance-dependent fraction of each
    coefficient into the other and shifting both.
    Returns the pair of trajectories ``(tag_a, tag_b)``.
    """
    if duration_s <= 0:
        raise ConfigurationError("duration must be positive")
    if not 0 < near_distance_m < coupling_distance_m <= far_distance_m:
        raise ConfigurationError(
            "distances must satisfy 0 < near < coupling <= far")
    if not 0 <= approach_start_s < duration_s:
        raise ConfigurationError(
            "approach must start within the trace duration")
    gen = make_rng(rng)
    detune_phase = float(gen.uniform(0.0, 2.0 * math.pi))

    def distance(t: np.ndarray) -> np.ndarray:
        """Linear approach from far to near over the second half."""
        frac = np.clip((t - approach_start_s)
                       / max(duration_s - approach_start_s, 1e-9), 0.0, 1.0)
        return far_distance_m + frac * (near_distance_m - far_distance_m)

    def coupling(t: np.ndarray) -> np.ndarray:
        """0 when far; ramps to coupling_strength at near distance."""
        d = distance(t)
        inside = np.clip((coupling_distance_m - d)
                         / (coupling_distance_m - near_distance_m), 0.0, 1.0)
        return coupling_strength * inside

    detune = np.exp(1j * detune_phase)

    def trajectory_a(times: np.ndarray) -> np.ndarray:
        t = np.asarray(times, dtype=np.float64)
        k = coupling(t)
        return base_a * (1.0 - 0.5 * k) + k * detune * base_b

    def trajectory_b(times: np.ndarray) -> np.ndarray:
        t = np.asarray(times, dtype=np.float64)
        k = coupling(t)
        return base_b * (1.0 - 0.5 * k) + k * detune * base_a

    return trajectory_a, trajectory_b
