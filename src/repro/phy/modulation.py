"""Waveform synthesis for ASK backscatter and reference constellations.

The simulated tag toggles its antenna between reflecting (1) and detuned
(0) states; :func:`nrz_waveform` renders that state sequence onto the
reader's sample grid with finite-width edge ramps ("an edge is roughly 3
samples wide", Section 2.4).  A QAM reference constellation generator
supports the Figure 2(a) comparison.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .. import constants
from ..errors import ConfigurationError
from ..utils.rng import SeedLike, make_rng


def toggle_positions(bits: Sequence[int], offset_samples: float,
                     period_samples: float,
                     initial_state: int = 0) -> np.ndarray:
    """Fractional sample positions where the antenna state toggles.

    Bit k occupies ``[offset + k*period, offset + (k+1)*period)``; a
    toggle happens at a bit boundary whenever the NRZ level changes
    (including the boundary before bit 0 if it differs from
    ``initial_state``).
    """
    arr = np.asarray(bits, dtype=np.int8)
    if arr.ndim != 1:
        raise ConfigurationError("bits must be 1-D")
    if not np.all((arr == 0) | (arr == 1)):
        raise ConfigurationError("bits must be 0/1")
    if period_samples <= 0:
        raise ConfigurationError("period must be positive")
    if initial_state not in (0, 1):
        raise ConfigurationError("initial state must be 0 or 1")
    levels = np.concatenate([[initial_state], arr])
    boundaries = np.flatnonzero(np.diff(levels) != 0)
    return offset_samples + boundaries * period_samples


def nrz_waveform(bits: Sequence[int], offset_samples: float,
                 period_samples: float, n_samples: int,
                 edge_width_samples: int = constants.EDGE_WIDTH_SAMPLES,
                 initial_state: int = 0,
                 final_state: Optional[int] = None) -> np.ndarray:
    """Render an NRZ bit sequence as an antenna-state waveform.

    Returns a float array of length ``n_samples`` in [0, 1].  The state
    holds ``initial_state`` before the transmission starts, follows the
    bits, and after the last bit either returns to ``final_state``
    (default: stays at the last bit's level).  Transitions are linear
    ramps ``edge_width_samples`` wide, centred on the (possibly
    fractional) toggle position — the shape a reader sees when a real RF
    transistor switches over a few sample periods.
    """
    arr = np.asarray(bits, dtype=np.int8)
    if n_samples <= 0:
        raise ConfigurationError("n_samples must be positive")
    if edge_width_samples < 1:
        raise ConfigurationError("edge width must be >= 1 sample")
    if period_samples <= 0:
        raise ConfigurationError("period must be positive")
    if initial_state not in (0, 1):
        raise ConfigurationError("initial state must be 0 or 1")

    # Build the step sequence: level before each boundary position.
    toggles = list(toggle_positions(arr, offset_samples, period_samples,
                                    initial_state))
    levels = [float(initial_state)]
    state = initial_state
    for _ in toggles:
        state = 1 - state
        levels.append(float(state))
    if final_state is not None and arr.size > 0 and final_state != state:
        toggles.append(offset_samples + arr.size * period_samples)
        levels.append(float(final_state))

    toggle_arr = np.asarray(toggles, dtype=np.float64)
    level_arr = np.asarray(levels, dtype=np.float64)

    t = np.arange(n_samples, dtype=np.float64)
    # Index of the level in effect at each sample (step waveform).
    idx = np.searchsorted(toggle_arr, t, side="right")
    waveform = level_arr[idx]

    if edge_width_samples > 1 and toggle_arr.size:
        # Replace each step with a linear ramp of the requested width.
        half = edge_width_samples / 2.0
        for pos, new_level in zip(toggle_arr, level_arr[1:]):
            old_level = 1.0 - new_level  # the state before the toggle
            lo = int(np.floor(pos - half))
            hi = int(np.ceil(pos + half))
            if hi < 0 or lo >= n_samples:
                continue
            span = np.arange(max(lo, 0), min(hi + 1, n_samples))
            frac = np.clip((span - (pos - half)) / edge_width_samples,
                           0.0, 1.0)
            waveform[span] = old_level + (new_level - old_level) * frac
    return waveform


def qam_constellation(order: int = 16,
                      n_points_per_symbol: int = 200,
                      noise_std: float = 0.05,
                      rng: SeedLike = None) -> np.ndarray:
    """Noisy square-QAM constellation samples (Figure 2a reference).

    Returns complex samples clustered on a unit-average-power square QAM
    grid; the paper contrasts QAM's *structured* clusters with the
    unstructured clusters of colliding backscatter tags.
    """
    side = int(round(order ** 0.5))
    if side * side != order or side < 2:
        raise ConfigurationError(
            f"order must be a perfect square >= 4, got {order}")
    if n_points_per_symbol < 1:
        raise ConfigurationError("need at least one point per symbol")
    if noise_std < 0:
        raise ConfigurationError("noise std must be >= 0")
    gen = make_rng(rng)
    axis = np.arange(side, dtype=np.float64) * 2.0 - (side - 1)
    grid = axis[:, None] + 1j * axis[None, :]
    grid = grid.ravel()
    grid = grid / np.sqrt(np.mean(np.abs(grid) ** 2))  # unit average power
    points = np.repeat(grid, n_points_per_symbol)
    noise = (gen.normal(0.0, noise_std, points.size)
             + 1j * gen.normal(0.0, noise_std, points.size))
    return points + noise
