"""Frequency-selective multipath channel model (FIR taps + presets).

The paper's channel model (Eq. 1) is *flat*: one complex coefficient
per tag.  The ambient-backscatter transceiver literature (arXiv
1812.11278, 1901.00368) centers on the frequency-selective regime
instead — the received waveform is the tag waveform convolved with a
sparse FIR impulse response whose echoes arrive spread over a
meaningful fraction of the symbol period.  :class:`MultipathProfile`
captures that response as ``(delay, gain)`` taps; the presets model
the two indoor geometries the literature keeps returning to:

* :meth:`MultipathProfile.dense_reflector_room` — many weak early
  echoes (cluttered lab / metal shelving): short delay spread, mild
  edge smearing the edge-differential front end mostly survives;
* :meth:`MultipathProfile.hallway` — few *strong late* echoes (guided
  propagation down a corridor): long delay spread that smears a bit
  edge into a staircase and defeats plain edge detection — the regime
  that needs the equalizing pre-stage
  (:class:`repro.core.stages.equalizer.EqualizerStage`).

Delays are expressed in **samples**.  At the repo's simulation rates a
sample is a large physical distance, so the presets are scaled to be
meaningful relative to the *bit period* (the quantity that decides
whether a channel reads as flat or selective), not to the meters of a
physical room.

:func:`doppler_trajectory` is the mobility-side companion: a
time-varying per-tag coefficient with Doppler-style phase drift plus
antenna-pattern fading, pluggable into
:class:`repro.phy.channel.ChannelModel` trajectories exactly like the
Figure 1 generators in :mod:`repro.phy.dynamics`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..errors import ConfigurationError
from ..utils.rng import SeedLike, make_rng
from .channel import CoefficientTrajectory


@dataclass(frozen=True)
class MultipathProfile:
    """A sparse FIR channel: per-tap integer delays and complex gains.

    ``delays_samples[0]`` must be 0 (the direct path) and ``gains[0]``
    is its complex gain; echoes follow in increasing delay order.
    """

    delays_samples: Tuple[int, ...]
    gains: Tuple[complex, ...]

    def __post_init__(self) -> None:
        if len(self.delays_samples) != len(self.gains):
            raise ConfigurationError(
                "need one gain per delay, got "
                f"{len(self.delays_samples)} delays / "
                f"{len(self.gains)} gains")
        if not self.delays_samples:
            raise ConfigurationError("profile needs at least one tap")
        if self.delays_samples[0] != 0:
            raise ConfigurationError(
                "first tap must be the direct path (delay 0)")
        if any(d < 0 for d in self.delays_samples):
            raise ConfigurationError("tap delays must be >= 0")
        if list(self.delays_samples) != sorted(set(self.delays_samples)):
            raise ConfigurationError(
                "tap delays must be strictly increasing")
        if self.gains[0] == 0:
            raise ConfigurationError("direct path gain must be nonzero")

    @property
    def n_taps(self) -> int:
        return len(self.delays_samples)

    @property
    def delay_spread_samples(self) -> int:
        """Delay of the last echo (0 for a flat channel)."""
        return int(self.delays_samples[-1])

    @property
    def echo_energy(self) -> float:
        """Echo power relative to the direct path, ``sum|h_k/h_0|^2``."""
        direct = abs(self.gains[0])
        return float(sum(abs(g) ** 2 for g in self.gains[1:])
                     / (direct ** 2))

    def impulse_response(self) -> np.ndarray:
        """Dense complex FIR taps, length ``delay_spread + 1``."""
        h = np.zeros(self.delay_spread_samples + 1, dtype=np.complex128)
        for delay, gain in zip(self.delays_samples, self.gains):
            h[delay] = gain
        return h

    # -- construction ------------------------------------------------------

    @classmethod
    def exponential(cls, n_echoes: int, max_delay_samples: int,
                    echo_amplitude: float = 0.4,
                    decay: float = 2.0,
                    rng: SeedLike = None) -> "MultipathProfile":
        """Random sparse profile with an exponential power-delay decay.

        ``n_echoes`` echoes at distinct random delays in
        ``[1, max_delay_samples]``; echo ``k`` at delay ``d`` has
        magnitude ``echo_amplitude * exp(-decay * d / max_delay)``
        and a uniform random phase.  Seed-deterministic.
        """
        if n_echoes < 1:
            raise ConfigurationError("need at least one echo")
        if max_delay_samples < 1:
            raise ConfigurationError("max delay must be >= 1 sample")
        if n_echoes > max_delay_samples:
            raise ConfigurationError(
                f"cannot place {n_echoes} distinct echoes in "
                f"{max_delay_samples} delay slots")
        gen = make_rng(rng)
        delays = np.sort(gen.choice(
            np.arange(1, max_delay_samples + 1), size=n_echoes,
            replace=False))
        # The furthest echo defines the spread; pin one there so the
        # profile's delay_spread matches what was asked for.
        delays[-1] = max_delay_samples
        gains = [complex(1.0)]
        for delay in delays:
            magnitude = echo_amplitude * math.exp(
                -decay * float(delay) / max_delay_samples)
            phase = gen.uniform(0.0, 2.0 * math.pi)
            gains.append(magnitude * complex(math.cos(phase),
                                             math.sin(phase)))
        return cls(delays_samples=(0, *(int(d) for d in delays)),
                   gains=tuple(gains))

    @classmethod
    def dense_reflector_room(cls, samples_per_bit: int = 250,
                             rng: SeedLike = None) -> "MultipathProfile":
        """Many weak early echoes: cluttered room, short delay spread.

        Spread ~ 15% of a bit period, per-echo amplitudes <= 0.35 —
        edges blur slightly but stay detectable.
        """
        max_delay = max(int(0.15 * samples_per_bit), 4)
        return cls.exponential(n_echoes=min(8, max_delay),
                               max_delay_samples=max_delay,
                               echo_amplitude=0.35, decay=1.5, rng=rng)

    @classmethod
    def hallway(cls, samples_per_bit: int = 250,
                rng: SeedLike = None) -> "MultipathProfile":
        """Few strong late echoes: corridor-guided propagation.

        Spread ~ 60% of a bit period with echo amplitudes up to ~0.7:
        each bit edge becomes a staircase of comparable steps, which
        the edge-differential front end mis-reads as several distinct
        transitions.  This is the scenario the equalizing pre-stage
        exists for.
        """
        gen = make_rng(rng)
        max_delay = max(int(0.6 * samples_per_bit), 8)
        # Three echoes clustered late (wall-bounce round trips).
        delays = sorted({max(1, int(max_delay * f))
                         for f in (0.35, 0.7, 1.0)})
        gains = [complex(1.0)]
        for k, delay in enumerate(delays):
            magnitude = 0.7 * (0.75 ** k)
            phase = gen.uniform(0.0, 2.0 * math.pi)
            gains.append(magnitude * complex(math.cos(phase),
                                             math.sin(phase)))
        return cls(delays_samples=(0, *delays), gains=tuple(gains))


def apply_multipath(samples: np.ndarray,
                    profile: MultipathProfile) -> np.ndarray:
    """Convolve a capture with the profile's FIR response, causally.

    The capture starts mid-carrier, so the filter is warmed up on a
    constant extension of the first sample instead of on zeros — the
    output has no artificial startup edge and keeps the input length.
    """
    h = profile.impulse_response()
    x = np.asarray(samples, dtype=np.complex128)
    if h.size == 1:
        return x * h[0]
    warm = np.full(h.size - 1, x[0], dtype=np.complex128)
    padded = np.concatenate([warm, x])
    out = np.convolve(padded, h)[h.size - 1:h.size - 1 + x.size]
    return np.ascontiguousarray(out)


def doppler_trajectory(base: complex,
                       doppler_hz: float = 40.0,
                       fade_depth: float = 0.3,
                       fade_rate_hz: float = 7.0,
                       rng: SeedLike = None) -> CoefficientTrajectory:
    """Fast tag mobility: Doppler phase drift plus pattern fading.

    The coefficient's phase advances at ``doppler_hz`` (a tag moving
    radially sweeps carrier phase at the Doppler rate) while the
    antenna pattern and changing multipath modulate the magnitude at
    ``fade_rate_hz`` with fractional depth ``fade_depth``.  Plug into
    :class:`repro.phy.channel.ChannelModel` ``trajectories`` like the
    :mod:`repro.phy.dynamics` generators.
    """
    if fade_depth < 0 or fade_depth >= 1:
        raise ConfigurationError(
            f"fade depth must be in [0, 1), got {fade_depth}")
    gen = make_rng(rng)
    phase0 = float(gen.uniform(0.0, 2.0 * math.pi))
    fade0 = float(gen.uniform(0.0, 2.0 * math.pi))

    def trajectory(times: np.ndarray) -> np.ndarray:
        t = np.asarray(times, dtype=np.float64)
        phase = 2.0 * math.pi * doppler_hz * t + phase0
        fade = 1.0 - fade_depth * np.sin(
            2.0 * math.pi * fade_rate_hz * t + fade0) ** 2
        return base * fade * np.exp(1j * phase)

    return trajectory
