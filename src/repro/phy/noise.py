"""Receiver noise models and SNR accounting.

The reader's received signal gets circular complex AWGN; SNR throughout
the package is defined the way the paper's Figure 14 uses it — the ratio
of the tag's backscattered signal power (the modulated component) to the
noise power, in dB.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import ConfigurationError
from ..utils.rng import SeedLike, make_rng


def awgn(n_samples: int, noise_std: float,
         rng: SeedLike = None) -> np.ndarray:
    """Circular complex Gaussian noise with total std ``noise_std``.

    Total power is ``noise_std**2``, split evenly between I and Q.
    """
    if n_samples < 0:
        raise ConfigurationError(f"n_samples must be >= 0, got {n_samples}")
    if noise_std < 0:
        raise ConfigurationError(f"noise std must be >= 0, got {noise_std}")
    if noise_std == 0:
        return np.zeros(n_samples, dtype=np.complex128)
    gen = make_rng(rng)
    scale = noise_std / math.sqrt(2.0)
    return (gen.normal(0.0, scale, n_samples)
            + 1j * gen.normal(0.0, scale, n_samples))


def noise_std_for_snr(signal_power: float, snr_db: float) -> float:
    """Noise standard deviation that yields ``snr_db`` for signal_power.

    ``signal_power`` is the mean square of the modulated backscatter
    component (e.g. ``|h|**2 * mean(state**2)`` for an OOK tag).
    """
    if signal_power <= 0:
        raise ConfigurationError(
            f"signal power must be positive, got {signal_power}")
    noise_power = signal_power / (10.0 ** (snr_db / 10.0))
    return math.sqrt(noise_power)


def measure_snr_db(signal: np.ndarray, noise: np.ndarray) -> float:
    """Empirical SNR between a clean signal component and a noise array."""
    sig = np.asarray(signal)
    nse = np.asarray(noise)
    p_sig = float(np.mean(np.abs(sig) ** 2))
    p_nse = float(np.mean(np.abs(nse) ** 2))
    if p_nse <= 0:
        raise ConfigurationError("noise power must be positive to measure")
    if p_sig <= 0:
        raise ConfigurationError("signal power must be positive to measure")
    return 10.0 * math.log10(p_sig / p_nse)


def phase_noise_walk(n_samples: int, rate_rad: float,
                     rng: SeedLike = None) -> np.ndarray:
    """Wiener phase-noise process: cumulative LO phase drift.

    ``rate_rad`` is the per-sample standard deviation of the phase
    increments; the reader's local oscillator multiplies the received
    baseband by ``exp(1j * walk)``.  Backscatter is naturally robust to
    slow LO drift — the IQ differential cancels rotation that is
    common to both averaging windows — which the decoder tests verify.
    """
    if n_samples < 0:
        raise ConfigurationError(f"n_samples must be >= 0, got "
                                 f"{n_samples}")
    if rate_rad < 0:
        raise ConfigurationError(f"rate must be >= 0, got {rate_rad}")
    if rate_rad == 0 or n_samples == 0:
        return np.zeros(n_samples)
    gen = make_rng(rng)
    return np.cumsum(gen.normal(0.0, rate_rad, n_samples))


def apply_phase_noise(signal: np.ndarray, rate_rad: float,
                      rng: SeedLike = None) -> np.ndarray:
    """Rotate ``signal`` by a Wiener phase-noise walk."""
    arr = np.asarray(signal, dtype=np.complex128)
    walk = phase_noise_walk(arr.size, rate_rad, rng)
    return arr * np.exp(1j * walk)


def ook_signal_power(coefficient: complex, duty: float = 0.5) -> float:
    """Average modulated power of an OOK tag with reflect duty cycle.

    The modulated component of an on-off keyed reflection with channel
    coefficient ``h`` and reflect probability ``duty`` has variance
    ``|h|**2 * duty * (1 - duty)`` around its mean; Figure 14-style SNR
    sweeps use the full on-state power ``|h|**2 * duty`` since the edge
    detector sees the whole swing.
    """
    if not 0 < duty <= 1:
        raise ConfigurationError(f"duty must be in (0, 1], got {duty}")
    return abs(coefficient) ** 2 * duty
