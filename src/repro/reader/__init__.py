"""Reader-side capture: front end, epoch records, network simulator."""

from .frontend import ReaderFrontend
from .epoch import EpochCapture, TagTruth
from .simulator import NetworkSimulator
from .batch import chunk_trace, decode_captures, decode_chunked

__all__ = [
    "ReaderFrontend",
    "EpochCapture",
    "TagTruth",
    "NetworkSimulator",
    "chunk_trace",
    "decode_captures",
    "decode_chunked",
]
