"""Reader-side capture: front end, epoch records, network simulator."""

from .frontend import ReaderFrontend
from .epoch import EpochCapture, TagTruth
from .simulator import NetworkSimulator

__all__ = [
    "ReaderFrontend",
    "EpochCapture",
    "TagTruth",
    "NetworkSimulator",
]
