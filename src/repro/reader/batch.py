"""Reader-side batch decoding: many captures (or one long one) at once.

This is the reader-facing facade over the core batch engine
(:class:`repro.core.engine.BatchDecoder`).  It covers the two shapes a
multi-epoch experiment takes:

* a *list of epoch captures* (e.g. every epoch of a throughput sweep)
  — :func:`decode_captures` decodes them concurrently and hands back
  ordered :class:`EpochResult` records with ``epoch_index`` set;
* *one long capture* that should be decoded in bounded-memory chunks —
  :func:`chunk_trace` splits the trace on bit-period-aligned
  boundaries and :func:`decode_chunked` decodes the chunks as a batch,
  translating every recovered stream's offset back into global sample
  coordinates.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from ..core.engine import BatchDecoder
from ..core.pipeline import LFDecoderConfig
from ..core.session_decoder import SessionDecoder
from ..core.stages import StatsAccumulator, dedup_streams, worse_health
from ..errors import ConfigurationError
from ..types import EpochResult, IQTrace
from .epoch import EpochCapture


def decode_captures(captures: Sequence[EpochCapture],
                    config: Optional[LFDecoderConfig] = None,
                    seed: int = 0,
                    max_workers: Optional[int] = None
                    ) -> List[EpochResult]:
    """Decode every capture's trace; results ordered like the input.

    Each result's ``epoch_index`` matches its position in ``captures``
    (and therefore pairs with that capture's ground truth).
    """
    engine = BatchDecoder(config=config, seed=seed,
                          max_workers=max_workers)
    return engine.decode_epochs([c.trace for c in captures])


def chunk_trace(trace: IQTrace, chunk_samples: int,
                min_tail_fraction: float = 0.25) -> List[IQTrace]:
    """Split a long capture into decode-sized sub-traces.

    Chunks are ``chunk_samples`` long; a final partial chunk shorter
    than ``min_tail_fraction`` of that is folded into its predecessor
    instead of being emitted as a fragment too short to decode.  Chunk
    boundaries carry the original timebase (``start_time_s``), so
    per-chunk stream offsets can be mapped back to global coordinates.
    """
    if chunk_samples < 1:
        raise ConfigurationError(
            f"chunk_samples must be >= 1, got {chunk_samples}")
    n = len(trace)
    if n <= chunk_samples:
        return [trace]
    starts = list(range(0, n, chunk_samples))
    if len(starts) > 1 and (n - starts[-1]) < \
            min_tail_fraction * chunk_samples:
        starts.pop()
    chunks = []
    for i, start in enumerate(starts):
        stop = starts[i + 1] if i + 1 < len(starts) else n
        chunks.append(trace.slice(start, stop))
    return chunks


def decode_chunked(trace: IQTrace, chunk_samples: int,
                   config: Optional[LFDecoderConfig] = None,
                   seed: int = 0,
                   max_workers: Optional[int] = None,
                   session: Optional[SessionDecoder] = None
                   ) -> EpochResult:
    """Decode one long capture chunk-by-chunk and merge the results.

    Without a ``session``, every chunk decodes independently (and
    concurrently, when workers are available).  With one, chunks decode
    serially through the session's warm-start state — the right mode
    for one continuous capture, where every tag's offset phase persists
    across chunk boundaries (the comparator only re-randomizes it at
    carrier power-up), so tracker phase matching, cached k-means
    centroids, and cached collision bases all stay valid from chunk to
    chunk.  Pass a fresh
    :class:`~repro.core.session_decoder.SessionDecoder`
    (or one still warm from an earlier capture of the same tag
    population); its trackers and cache counters remain inspectable
    after the call.

    Either way stream offsets are shifted from chunk-local to global
    sample coordinates, the per-chunk edge/collision counters are
    summed, and duplicate streams straddling a chunk boundary are
    collapsed by the pipeline's ghost-stream filter.
    """
    chunks = chunk_trace(trace, chunk_samples)
    fs = trace.sample_rate_hz
    shifts = [(chunk.start_time_s - trace.start_time_s) * fs
              for chunk in chunks]
    if session is not None:
        results = [session.decode_epoch(chunk, sample_offset=shift)
                   for chunk, shift in zip(chunks, shifts)]
    else:
        engine = BatchDecoder(config=config, seed=seed,
                              max_workers=max_workers)
        results = engine.iter_decode(chunks)
    return merge_chunk_results(zip(shifts, results), trace.duration_s)


def merge_chunk_results(pairs: Iterable[Tuple[float, EpochResult]],
                        duration_s: float) -> EpochResult:
    """Merge per-chunk decode results into one capture-level result.

    ``pairs`` holds ``(shift, result)`` per chunk, in capture order,
    where ``shift`` is the chunk's start offset in samples relative to
    the capture.  Stream offsets move into global coordinates, the
    per-chunk edge/collision counters are summed, and duplicate
    streams straddling a chunk boundary are collapsed by the
    pipeline's ghost-stream filter.  This is the one merge shared by
    :func:`decode_chunked` and the streaming service's
    :func:`repro.service.service.merge_stream_results`.
    """
    merged = EpochResult(duration_s=duration_s)
    stats = StatsAccumulator()
    for shift, result in pairs:
        for stream in result.streams:
            stream.offset_samples += shift
        merged.streams.extend(result.streams)
        merged.n_edges_detected += result.n_edges_detected
        merged.n_collisions_detected += result.n_collisions_detected
        merged.n_collisions_resolved += result.n_collisions_resolved
        merged.n_spurious_edges += result.n_spurious_edges
        # Timings / cache counters / fidelity counters / faults /
        # trace health all merge through the one accumulator.  Faults
        # are *copied* into the merged coordinate frame, so per-chunk
        # results stay unmutated (their ``expected`` flags and
        # chunk-local offsets remain inspectable afterwards).
        stats.absorb_result(result, offset_shift=shift)
    merged.streams = dedup_streams(merged.streams)
    return stats.publish(merged)


#: Back-compat alias: the health-merge helper now lives in
#: :mod:`repro.core.stages.stats` next to the rest of the merge logic.
_worse_health = worse_health
