"""Epoch capture records: the IQ trace plus per-tag ground truth.

A simulated epoch keeps the ground truth alongside the trace so the
evaluation harness can score the decoder exactly — the synthetic
equivalent of knowing what each Moo tag was programmed to send.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..errors import ConfigurationError
from ..types import IQTrace


@dataclass
class TagTruth:
    """What one tag actually transmitted during a captured epoch."""

    tag_id: int
    bits: np.ndarray
    offset_samples: float
    period_samples: float
    nominal_bitrate_bps: float
    coefficient: complex

    def __post_init__(self) -> None:
        self.bits = np.asarray(self.bits, dtype=np.int8)
        if self.offset_samples < 0:
            raise ConfigurationError("offset must be >= 0 samples")
        if self.period_samples <= 0:
            raise ConfigurationError("period must be positive")

    @property
    def n_bits(self) -> int:
        return int(self.bits.size)


@dataclass
class EpochCapture:
    """One reader epoch: the captured trace and the per-tag truth."""

    trace: IQTrace
    truths: List[TagTruth] = field(default_factory=list)
    epoch_index: int = 0

    @property
    def n_tags(self) -> int:
        return len(self.truths)

    @property
    def duration_s(self) -> float:
        return self.trace.duration_s

    def truth_for(self, tag_id: int) -> Optional[TagTruth]:
        """Ground truth for ``tag_id``, or None if it did not transmit."""
        for truth in self.truths:
            if truth.tag_id == tag_id:
                return truth
        return None

    def total_bits_sent(self) -> int:
        """Bits transmitted across all tags this epoch (incl. headers)."""
        return int(sum(t.n_bits for t in self.truths))
