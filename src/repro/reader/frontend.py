"""Reader RF front end: noise injection and optional ADC quantization.

Models the path between the clean combined backscatter signal (produced
by :class:`repro.phy.channel.ChannelModel`) and the complex samples the
decoder sees: additive receiver noise and, optionally, finite ADC
resolution.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ConfigurationError, SignalError
from ..phy.noise import awgn
from ..types import IQTrace
from ..utils.rng import SeedLike, make_rng


class ReaderFrontend:
    """Converts a clean baseband array into a captured :class:`IQTrace`."""

    def __init__(self, sample_rate_hz: float,
                 noise_std: float = 0.0,
                 adc_bits: Optional[int] = None,
                 adc_full_scale: float = 2.0,
                 rng: SeedLike = None):
        if sample_rate_hz <= 0:
            raise ConfigurationError("sample rate must be positive")
        if noise_std < 0:
            raise ConfigurationError("noise std must be >= 0")
        if adc_bits is not None and adc_bits < 2:
            raise ConfigurationError("ADC must have at least 2 bits")
        if adc_full_scale <= 0:
            raise ConfigurationError("ADC full scale must be positive")
        self.sample_rate_hz = sample_rate_hz
        self.noise_std = noise_std
        self.adc_bits = adc_bits
        self.adc_full_scale = adc_full_scale
        self._rng = make_rng(rng)

    def capture(self, clean: np.ndarray,
                start_time_s: float = 0.0) -> IQTrace:
        """Add noise (and quantization, if configured) to ``clean``."""
        arr = np.asarray(clean, dtype=np.complex128)
        if arr.ndim != 1 or arr.size == 0:
            # A malformed input array is a signal-path problem, not a
            # front-end configuration problem: raise the same error
            # family IQTrace itself uses so callers need one handler.
            raise SignalError(
                "clean signal must be a non-empty 1-D array")
        received = arr
        if self.noise_std > 0:
            received = received + awgn(arr.size, self.noise_std,
                                       rng=self._rng)
        if self.adc_bits is not None:
            received = self._quantize(received)
        return IQTrace(samples=received, sample_rate_hz=self.sample_rate_hz,
                       start_time_s=start_time_s)

    def _quantize(self, signal: np.ndarray) -> np.ndarray:
        """Uniform mid-rise quantization of I and Q independently."""
        levels = 2 ** self.adc_bits
        half = self.adc_full_scale / 2.0
        step = self.adc_full_scale / levels

        def q(x: np.ndarray) -> np.ndarray:
            clipped = np.clip(x, -half, half - step)
            return (np.floor(clipped / step) + 0.5) * step

        return q(signal.real) + 1j * q(signal.imag)
