"""Network simulator: tags x channel x reader front end -> epoch captures.

This is the synthetic stand-in for the paper's testbed (USRP N210 +
UMass Moo tags, Figure 7).  For each epoch it asks every tag for its
transmission plan, renders the antenna-state waveforms on the reader's
sample grid, combines them through the channel model (Equation 1), and
passes the result through the noisy front end.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..phy.carrier import EpochSchedule
from ..phy.channel import ChannelModel
from ..phy.modulation import nrz_waveform
from ..phy.noise import noise_std_for_snr
from ..tags.lf_tag import LFTag
from ..types import SimulationProfile
from ..utils.rng import SeedLike, make_rng
from .epoch import EpochCapture, TagTruth
from .frontend import ReaderFrontend


class NetworkSimulator:
    """Simulates a population of LF tags in front of one reader.

    Parameters
    ----------
    tags:
        The tag population.  Tag ids must be unique and every tag must
        have a coefficient in ``channel``.
    channel:
        Channel model with per-tag coefficients (and optional dynamics).
    profile:
        Sampling profile (defines the reader sample rate).
    noise_std:
        Receiver noise standard deviation.  Mutually exclusive with
        ``snr_db``.
    snr_db:
        Alternatively, target SNR relative to the mean per-tag
        backscatter power; converted to a noise std at construction.
    """

    def __init__(self, tags: Sequence[LFTag], channel: ChannelModel,
                 profile: Optional[SimulationProfile] = None,
                 noise_std: Optional[float] = None,
                 snr_db: Optional[float] = None,
                 rng: SeedLike = None):
        if not tags:
            raise ConfigurationError("need at least one tag")
        ids = [tag.tag_id for tag in tags]
        if len(set(ids)) != len(ids):
            raise ConfigurationError(f"duplicate tag ids: {sorted(ids)}")
        missing = set(ids) - set(channel.coefficients)
        if missing:
            raise ConfigurationError(
                f"channel model lacks coefficients for tags: "
                f"{sorted(missing)}")
        if noise_std is not None and snr_db is not None:
            raise ConfigurationError(
                "specify noise_std or snr_db, not both")
        self.tags = list(tags)
        self.channel = channel
        self.profile = profile or SimulationProfile.paper()
        gen = make_rng(rng)
        if snr_db is not None:
            mean_power = float(np.mean(
                [abs(channel.coefficients[i]) ** 2 for i in ids]))
            resolved_noise = noise_std_for_snr(mean_power, snr_db)
        else:
            resolved_noise = noise_std if noise_std is not None else 0.0
        self.frontend = ReaderFrontend(
            sample_rate_hz=self.profile.sample_rate_hz,
            noise_std=resolved_noise,
            rng=np.random.default_rng(gen.integers(0, 2 ** 63)))

    @property
    def noise_std(self) -> float:
        return self.frontend.noise_std

    def run_epoch(self, duration_s: float,
                  epoch_index: int = 0) -> EpochCapture:
        """Simulate one carrier-on epoch and capture it at the reader."""
        if duration_s <= 0:
            raise ConfigurationError("epoch duration must be positive")
        fs = self.profile.sample_rate_hz
        n_samples = int(round(duration_s * fs))
        if n_samples < 2:
            raise ConfigurationError(
                f"epoch of {duration_s} s is shorter than two samples")

        plans = [tag.plan_epoch(epoch_index, duration_s)
                 for tag in self.tags]
        waveforms = {}
        truths: List[TagTruth] = []
        for tag, plan in zip(self.tags, plans):
            offset_samples = plan.start_offset_s * fs
            period_samples = plan.bit_period_s * fs
            waveforms[tag.tag_id] = nrz_waveform(
                plan.bits, offset_samples, period_samples, n_samples,
                edge_width_samples=self.profile.edge_width_samples)
            truths.append(TagTruth(
                tag_id=tag.tag_id,
                bits=plan.bits,
                offset_samples=offset_samples,
                period_samples=period_samples,
                nominal_bitrate_bps=plan.nominal_bitrate_bps,
                coefficient=self.channel.coefficients[tag.tag_id]))

        clean = self._combine(n_samples, waveforms, epoch_index, duration_s)
        trace = self.frontend.capture(
            clean, start_time_s=epoch_index * duration_s)
        return EpochCapture(trace=trace, truths=truths,
                            epoch_index=epoch_index)

    def run_epochs(self, n_epochs: int,
                   duration_s: float) -> List[EpochCapture]:
        """Simulate ``n_epochs`` back-to-back epochs."""
        if n_epochs < 1:
            raise ConfigurationError("need at least one epoch")
        return [self.run_epoch(duration_s, epoch_index=k)
                for k in range(n_epochs)]

    def run_schedule(self, schedule: EpochSchedule
                     ) -> List[EpochCapture]:
        """Simulate a full carrier schedule (Section 3.2's epoching).

        Each carrier-on window becomes one capture whose start time
        reflects its position in the schedule (including the carrier-off
        gaps that reset the tags' receive capacitors); tag offsets
        re-randomize per epoch exactly as with :meth:`run_epoch`.
        """
        captures: List[EpochCapture] = []
        for index, (start_s, _stop_s) in enumerate(
                schedule.epoch_bounds()):
            capture = self.run_epoch(schedule.epoch_duration_s,
                                     epoch_index=index)
            capture.trace.start_time_s = start_s
            captures.append(capture)
        return captures

    def _combine(self, n_samples: int, waveforms: dict,
                 epoch_index: int, duration_s: float) -> np.ndarray:
        """Combine tag waveforms through the channel (Equation 1)."""
        if self.channel.is_static():
            clean = np.full(n_samples, self.channel.environment_offset,
                            dtype=np.complex128)
            for tag_id, waveform in waveforms.items():
                clean += self.channel.coefficients[tag_id] * waveform
            return clean
        # Dynamic channel: evaluate trajectories on the sample grid.
        times = (epoch_index * duration_s
                 + np.arange(n_samples) / self.profile.sample_rate_hz)
        states = {tag_id: waveform
                  for tag_id, waveform in waveforms.items()}
        return self.channel.combine(times, states)
