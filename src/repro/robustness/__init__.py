"""Robustness layer: fault injection and the decode-path trace guard.

Real captures on commodity receivers are full of impairments the clean
simulator never produces — dropped USB buffers, dead-ADC NaN runs,
saturated front ends, DC steps when the reader re-tunes, and epochs cut
short by carrier shutdown.  This package provides both sides of
hardening against them:

* :mod:`impairments` — composable, seed-deterministic trace
  impairments applied to an :class:`~repro.reader.epoch.EpochCapture`
  with its ground truth preserved, so degraded decodes stay scoreable;
* :mod:`guard` — :func:`~repro.robustness.guard.sanitize_trace`, the
  validation/repair front-end the decoder runs before touching a
  capture: repair what is repairable, reject (with a structured
  :class:`~repro.errors.SignalQualityError`) what is not, and report
  everything in a :class:`~repro.robustness.guard.TraceHealth`.
"""

from .guard import GuardConfig, TraceHealth, sanitize_trace
from .impairments import (
    AdcSaturation,
    BurstInterferer,
    CarrierPhaseJump,
    DcOffsetStep,
    Impairment,
    NonFiniteBurst,
    SampleDropout,
    TruncateEpoch,
    apply_impairments,
    impair_capture,
    random_cocktail,
)

__all__ = [
    "GuardConfig",
    "TraceHealth",
    "sanitize_trace",
    "Impairment",
    "SampleDropout",
    "NonFiniteBurst",
    "AdcSaturation",
    "DcOffsetStep",
    "CarrierPhaseJump",
    "TruncateEpoch",
    "BurstInterferer",
    "apply_impairments",
    "impair_capture",
    "random_cocktail",
]
