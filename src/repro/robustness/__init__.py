"""Robustness layer: fault injection and the decode-path trace guard.

Real captures on commodity receivers are full of impairments the clean
simulator never produces — dropped USB buffers, dead-ADC NaN runs,
saturated front ends, DC steps when the reader re-tunes, and epochs cut
short by carrier shutdown.  This package provides both sides of
hardening against them:

* :mod:`impairments` — composable, seed-deterministic trace
  impairments applied to an :class:`~repro.reader.epoch.EpochCapture`
  with its ground truth preserved, so degraded decodes stay scoreable;
* :mod:`guard` — :func:`~repro.robustness.guard.sanitize_trace`, the
  validation/repair front-end the decoder runs before touching a
  capture: repair what is repairable, reject (with a structured
  :class:`~repro.errors.SignalQualityError`) what is not, and report
  everything in a :class:`~repro.robustness.guard.TraceHealth`.
"""

from .guard import GuardConfig, TraceHealth, sanitize_trace
from .impairments import (
    AdcSaturation,
    BurstInterferer,
    CarrierPhaseJump,
    DcOffsetStep,
    Impairment,
    MultipathChannel,
    NonFiniteBurst,
    SampleDropout,
    SweptInterferer,
    TagMobility,
    TruncateEpoch,
    apply_impairments,
    impair_capture,
    random_cocktail,
)
# Scenario / survival symbols are re-exported lazily (PEP 562):
# survival imports the decoder through repro.analysis, and the decode
# path's guard stage imports this package — an eager import here would
# be circular.
_LAZY = {
    "Scenario": "scenarios",
    "SCENARIOS": "scenarios",
    "build_scenario_capture": "scenarios",
    "SurvivalCell": "survival",
    "SurvivalMatrix": "survival",
    "classify_decode": "survival",
    "run_survival_matrix": "survival",
}


def __getattr__(name):
    if name in _LAZY:
        from importlib import import_module

        module = import_module(f".{_LAZY[name]}", __name__)
        value = getattr(module, name)
        globals()[name] = value
        return value
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "GuardConfig",
    "TraceHealth",
    "sanitize_trace",
    "Impairment",
    "SampleDropout",
    "NonFiniteBurst",
    "AdcSaturation",
    "DcOffsetStep",
    "CarrierPhaseJump",
    "TruncateEpoch",
    "BurstInterferer",
    "MultipathChannel",
    "TagMobility",
    "SweptInterferer",
    "apply_impairments",
    "impair_capture",
    "random_cocktail",
    "Scenario",
    "SCENARIOS",
    "build_scenario_capture",
    "SurvivalCell",
    "SurvivalMatrix",
    "classify_decode",
    "run_survival_matrix",
]
