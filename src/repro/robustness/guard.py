"""Trace guard: validate and repair a capture before decoding it.

:func:`sanitize_trace` is the decode path's front door.  It inspects a
raw capture for the impairments a commodity receiver actually produces
and applies a conservative repair policy:

* **non-finite runs** (NaN/Inf) — short interior gaps are linearly
  interpolated (no artificial edges: a straight line has zero
  differential except at its ends, which sit inside the excluded
  guard); long runs are *excised* by keeping the longest clean
  contiguous region, with the sanitized-to-original index mapping
  recorded in the health report so downstream offsets stay meaningful;
* **ADC saturation** — runs pinned at the I/Q rails are detected and
  reported (clipping destroys information; there is nothing honest to
  repair), rejecting only when most of the capture is pinned;
* **flat-lines** — an (almost) constant capture means no receiver was
  listening; it is rejected outright rather than decoded into noise.

A clean capture passes through untouched — the *same* trace object is
returned, so derived-array caches survive and decode output is
bit-identical to an unguarded decode.  Unrepairable captures raise a
structured :class:`~repro.errors.SignalQualityError` subclass carrying
the implicated sample fraction and the partial health report
(``exc.health``), which :meth:`LFDecoder.decode_epoch` turns into an
empty-but-honest :class:`~repro.types.EpochResult` instead of a crash.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..errors import (ConfigurationError, FlatlineSignalError,
                      NonFiniteSignalError, SaturatedSignalError)
from ..types import IQTrace

__all__ = ["GuardConfig", "TraceHealth", "sanitize_trace"]


@dataclass(frozen=True)
class GuardConfig:
    """Tuning of the trace guard's repair/reject policy."""

    #: Longest non-finite run repaired by linear interpolation; longer
    #: runs partition the trace and the longest clean region survives.
    max_interp_gap: int = 64
    #: Non-finite sample fraction above which the capture is rejected.
    max_bad_fraction: float = 0.5
    #: Shortest sanitized trace worth decoding (else reject).
    min_usable_samples: int = 32
    #: Relative tolerance for "pinned at the rail" detection.
    rail_tolerance: float = 1e-9
    #: Shortest pinned run that counts as clipping (isolated extreme
    #: samples are legitimate noise peaks).
    min_clip_run: int = 4
    #: Clipped-sample fraction above which the health is flagged.
    clip_flag_fraction: float = 1e-3
    #: Clipped-sample fraction above which the capture is rejected.
    clip_reject_fraction: float = 0.5
    #: Peak-to-peak spread (relative to the sample scale) below which
    #: the capture counts as a flat-line.
    flatline_relative_spread: float = 1e-12

    def __post_init__(self) -> None:
        if self.max_interp_gap < 1:
            raise ConfigurationError("max_interp_gap must be >= 1")
        if not 0 < self.max_bad_fraction <= 1:
            raise ConfigurationError(
                "max_bad_fraction must be in (0, 1]")
        if self.min_usable_samples < 2:
            raise ConfigurationError(
                "min_usable_samples must be >= 2")
        if self.min_clip_run < 1:
            raise ConfigurationError("min_clip_run must be >= 1")
        if not 0 < self.clip_reject_fraction <= 1:
            raise ConfigurationError(
                "clip_reject_fraction must be in (0, 1]")


@dataclass
class TraceHealth:
    """What the guard found (and did) to one capture.

    ``origin_start`` maps sanitized sample indices back to the original
    capture: sanitized index ``i`` is original index
    ``origin_start + i`` (the guard only ever keeps one contiguous
    region, so the map is a single offset plus the interpolated spans
    listed in ``repaired_spans``).
    """

    n_samples: int
    verdict: str = "clean"        # "clean" | "degraded" | "rejected"
    n_nonfinite: int = 0
    n_interpolated: int = 0
    n_excised: int = 0
    n_clipped: int = 0
    origin_start: int = 0
    #: Sanitized-coordinate (start, stop) spans filled by interpolation.
    repaired_spans: List[Tuple[int, int]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def to_original_index(self, sanitized_index: int) -> int:
        """Original-capture index of a sanitized sample."""
        return self.origin_start + int(sanitized_index)

    @property
    def is_clean(self) -> bool:
        return self.verdict == "clean"


def _runs_of(mask: np.ndarray) -> List[Tuple[int, int]]:
    """(start, stop) runs of True in a boolean mask."""
    if not mask.any():
        return []
    padded = np.concatenate([[False], mask, [False]])
    changes = np.flatnonzero(padded[1:] != padded[:-1])
    return list(zip(changes[0::2].tolist(), changes[1::2].tolist()))


def _pinned_run_count(channel: np.ndarray, config: GuardConfig) -> int:
    """Samples pinned at this channel's rails in runs >= min_clip_run.

    Detection is only meaningful on a noisy channel: receiver noise
    jitters every sample, so a run of samples repeating the extreme
    value to within ``rail_tolerance`` cannot happen unless the ADC
    clipped them.  A noiseless synthetic capture (zero successive
    difference during holds) legitimately repeats its peak level and
    is skipped outright.
    """
    magnitude = np.abs(channel)
    rail = float(magnitude.max(initial=0.0))
    if rail <= 0 or channel.size < 2:
        return 0
    pinned = magnitude >= rail * (1.0 - config.rail_tolerance)
    # Estimate the noise floor away from the rails: inside a clipped
    # run every successive difference is exactly zero, so including
    # the run would let heavy clipping hide its own evidence.
    off_rail = ~(pinned[:-1] | pinned[1:])
    diffs = np.abs(np.diff(channel))[off_rail]
    if diffs.size == 0:
        return 0  # everything pinned: the flat-line check owns this
    noise_floor = float(np.median(diffs))
    if noise_floor <= rail * config.rail_tolerance:
        return 0
    total = 0
    for start, stop in _runs_of(pinned):
        if stop - start >= config.min_clip_run:
            total += stop - start
    return total


def _detect_quality(samples: np.ndarray, health: TraceHealth,
                    config: GuardConfig) -> None:
    """Flag clipping and flat-lines on finite samples (reject extremes)."""
    real, imag = samples.real, samples.imag
    scale = max(float(np.max(np.abs(real), initial=0.0)),
                float(np.max(np.abs(imag), initial=0.0)), 1e-30)
    spread = float(real.max() - real.min()) \
        + float(imag.max() - imag.min())
    if spread <= config.flatline_relative_spread * scale:
        health.verdict = "rejected"
        health.notes.append("flat-line capture")
        error = FlatlineSignalError(
            1.0, "capture is constant: no signal reached the receiver")
        error.health = health
        raise error
    n_clipped = _pinned_run_count(real, config) \
        + _pinned_run_count(imag, config)
    fraction = n_clipped / (2.0 * samples.size)
    health.n_clipped = n_clipped
    if fraction > config.clip_reject_fraction:
        health.verdict = "rejected"
        health.notes.append("saturated capture")
        error = SaturatedSignalError(
            fraction, f"{100.0 * fraction:.1f}% of samples pinned at "
            "the ADC rails")
        error.health = health
        raise error
    if fraction > config.clip_flag_fraction:
        health.verdict = "degraded"
        health.notes.append(
            f"clipping: {n_clipped} rail-pinned samples")


def _usable_region(bad: np.ndarray,
                   config: GuardConfig) -> Tuple[int, int]:
    """Longest contiguous region free of long non-finite runs."""
    boundaries = [(start, stop) for start, stop in _runs_of(bad)
                  if stop - start > config.max_interp_gap]
    if not boundaries:
        return 0, bad.size
    best = (0, 0)
    cursor = 0
    for start, stop in boundaries:
        if start - cursor > best[1] - best[0]:
            best = (cursor, start)
        cursor = stop
    if bad.size - cursor > best[1] - best[0]:
        best = (cursor, bad.size)
    return best


def sanitize_trace(trace: IQTrace,
                   config: Optional[GuardConfig] = None
                   ) -> Tuple[IQTrace, TraceHealth]:
    """Validate ``trace`` and repair what is repairable.

    Returns ``(sanitized_trace, health)``.  A clean capture returns the
    *same* trace object (caches intact, decode bit-identical); a
    repairable one returns a new finite trace plus a ``degraded``
    health report; an unrepairable one raises a
    :class:`~repro.errors.SignalQualityError` subclass with the partial
    health report attached as ``exc.health``.
    """
    cfg = config or GuardConfig()
    samples = trace.samples
    health = TraceHealth(n_samples=int(samples.size))
    bad = ~(np.isfinite(samples.real) & np.isfinite(samples.imag))
    n_bad = int(np.count_nonzero(bad))
    if n_bad == 0:
        _detect_quality(samples, health, cfg)
        return trace, health

    health.n_nonfinite = n_bad
    health.verdict = "degraded"
    fraction = n_bad / samples.size
    if fraction >= cfg.max_bad_fraction:
        health.verdict = "rejected"
        health.notes.append("non-finite beyond repair budget")
        error = NonFiniteSignalError(
            fraction, f"{100.0 * fraction:.1f}% of samples are "
            "non-finite (budget "
            f"{100.0 * cfg.max_bad_fraction:.0f}%)")
        error.health = health
        raise error

    start, stop = _usable_region(bad, cfg)
    region_bad = bad[start:stop]
    if region_bad.size == 0 or region_bad.all():
        stop = start
    else:
        # Trim short non-finite runs touching the region edges: there
        # is no second anchor point to interpolate toward.
        if region_bad[0]:
            start += int(np.argmax(~region_bad))
            region_bad = bad[start:stop]
        if region_bad[-1]:
            stop -= int(np.argmax(~region_bad[::-1]))
            region_bad = bad[start:stop]
    health.origin_start = start
    health.n_excised = int(samples.size - (stop - start))
    if stop - start < cfg.min_usable_samples:
        health.verdict = "rejected"
        health.notes.append("no usable region survives excision")
        error = NonFiniteSignalError(
            fraction, "longest clean region is "
            f"{max(stop - start, 0)} samples "
            f"(need {cfg.min_usable_samples})")
        error.health = health
        raise error

    region = np.array(samples[start:stop], dtype=np.complex128,
                      copy=True)
    if region_bad.any():
        good = np.flatnonzero(~region_bad)
        holes = np.flatnonzero(region_bad)
        region[holes] = (
            np.interp(holes, good, region.real[good])
            + 1j * np.interp(holes, good, region.imag[good]))
        health.n_interpolated = int(holes.size)
        health.repaired_spans = _runs_of(region_bad)
    if health.n_excised:
        health.notes.append(
            f"excised {health.n_excised} samples outside the longest "
            f"clean region [{start}, {stop})")
    if health.n_interpolated:
        health.notes.append(
            f"interpolated {health.n_interpolated} samples across "
            f"{len(health.repaired_spans)} gaps")

    repaired = IQTrace(
        samples=region, sample_rate_hz=trace.sample_rate_hz,
        start_time_s=trace.start_time_s + start / trace.sample_rate_hz)
    _detect_quality(repaired.samples, health, cfg)
    return repaired, health
