"""Composable, seed-deterministic trace impairments (fault injection).

Each :class:`Impairment` is a small frozen dataclass that rewrites a
complex sample array the way one concrete receiver pathology would:

* :class:`SampleDropout` — the capture chain dropped buffers; the
  affected runs read as zeros (the USRP driver's overflow behaviour).
* :class:`NonFiniteBurst` — dead ADC / DMA corruption; runs of NaN or
  ``inf`` samples.
* :class:`AdcSaturation` — front-end overload; I/Q pinned at the rails
  for whole runs.
* :class:`DcOffsetStep` — the reader re-tuned or an interferer's
  carrier leaked in; the baseband mean jumps mid-capture.
* :class:`CarrierPhaseJump` — reader PLL re-lock; every sample after
  the jump is rotated by a fixed phase.
* :class:`TruncateEpoch` — the carrier shut down early; the tail of
  the epoch is simply missing.
* :class:`BurstInterferer` — a foreign transmitter keyed up for a few
  hundred microseconds; an additive complex tone burst.

Impairments draw every random choice (positions, run lengths, phases)
from the generator handed to :func:`apply_impairments`, so a cocktail
is exactly reproducible from ``(capture, impairments, seed)`` — the
property the chaos harness relies on.  Ground truth is never touched:
:func:`impair_capture` returns a new
:class:`~repro.reader.epoch.EpochCapture` whose ``truths`` are the
original records, so a degraded decode can still be scored bit-by-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..reader.epoch import EpochCapture
from ..types import IQTrace
from ..utils.rng import SeedLike, make_rng


def _draw_runs(rng: np.random.Generator, n_samples: int, n_runs: int,
               max_run: int) -> List[Tuple[int, int]]:
    """Random (start, stop) runs inside ``[0, n_samples)``."""
    runs: List[Tuple[int, int]] = []
    for _ in range(n_runs):
        length = int(rng.integers(1, max(max_run, 1) + 1))
        length = min(length, n_samples)
        start = int(rng.integers(0, max(n_samples - length, 0) + 1))
        runs.append((start, start + length))
    return runs


@dataclass(frozen=True)
class Impairment:
    """Base class: one deterministic rewrite of a sample array."""

    def apply(self, samples: np.ndarray,
              rng: np.random.Generator) -> np.ndarray:
        """Return the impaired samples (may modify ``samples`` in place;
        callers pass a private copy)."""
        raise NotImplementedError


@dataclass(frozen=True)
class SampleDropout(Impairment):
    """Zero runs where the capture chain dropped buffers."""

    n_runs: int = 2
    max_run: int = 200

    def apply(self, samples, rng):
        for start, stop in _draw_runs(rng, samples.size, self.n_runs,
                                      self.max_run):
            samples[start:stop] = 0.0
        return samples


@dataclass(frozen=True)
class NonFiniteBurst(Impairment):
    """Runs of NaN (or infinite) samples from a dead ADC / bad DMA."""

    n_runs: int = 2
    max_run: int = 100
    use_inf: bool = False

    def apply(self, samples, rng):
        value = complex(np.inf, np.inf) if self.use_inf \
            else complex(np.nan, np.nan)
        for start, stop in _draw_runs(rng, samples.size, self.n_runs,
                                      self.max_run):
            samples[start:stop] = value
        return samples


@dataclass(frozen=True)
class AdcSaturation(Impairment):
    """Pin I and Q at the rails for whole runs (front-end overload)."""

    n_runs: int = 2
    max_run: int = 300
    #: Rail level relative to the capture's own peak |I|/|Q|.
    level_factor: float = 1.0

    def apply(self, samples, rng):
        finite = samples[np.isfinite(samples.real)
                         & np.isfinite(samples.imag)]
        if finite.size == 0:
            return samples
        rail = self.level_factor * max(
            float(np.max(np.abs(finite.real))),
            float(np.max(np.abs(finite.imag))), 1e-12)
        for start, stop in _draw_runs(rng, samples.size, self.n_runs,
                                      self.max_run):
            chunk = samples[start:stop]
            samples[start:stop] = (np.sign(chunk.real) * rail
                                   + 1j * np.sign(chunk.imag) * rail)
        return samples


@dataclass(frozen=True)
class DcOffsetStep(Impairment):
    """Add a complex DC step from a random position onward."""

    magnitude: float = 0.2

    def apply(self, samples, rng):
        at = int(rng.integers(0, samples.size))
        phase = rng.uniform(0.0, 2.0 * np.pi)
        samples[at:] += self.magnitude * np.exp(1j * phase)
        return samples


@dataclass(frozen=True)
class CarrierPhaseJump(Impairment):
    """Rotate everything after a random position (reader PLL re-lock)."""

    max_radians: float = float(np.pi)

    def apply(self, samples, rng):
        at = int(rng.integers(0, samples.size))
        angle = rng.uniform(-self.max_radians, self.max_radians)
        samples[at:] *= np.exp(1j * angle)
        return samples


@dataclass(frozen=True)
class TruncateEpoch(Impairment):
    """Cut the capture short (carrier shut down early).

    Keeps at least ``min_keep_fraction`` of the samples so the result
    is still a decodable (if shorter) epoch.
    """

    min_keep_fraction: float = 0.5

    def apply(self, samples, rng):
        keep_min = max(int(self.min_keep_fraction * samples.size), 2)
        keep = int(rng.integers(keep_min, samples.size + 1))
        return samples[:keep]


@dataclass(frozen=True)
class BurstInterferer(Impairment):
    """Additive complex tone burst from a foreign transmitter."""

    amplitude: float = 0.3
    max_run: int = 2000
    #: Tone frequency as a fraction of the sample rate.
    max_cycles_per_sample: float = 0.05

    def apply(self, samples, rng):
        (start, stop), = _draw_runs(rng, samples.size, 1, self.max_run)
        n = stop - start
        freq = rng.uniform(-self.max_cycles_per_sample,
                           self.max_cycles_per_sample)
        phase = rng.uniform(0.0, 2.0 * np.pi)
        tone = self.amplitude * np.exp(
            1j * (2.0 * np.pi * freq * np.arange(n) + phase))
        samples[start:stop] += tone
        return samples


def apply_impairments(trace: IQTrace,
                      impairments: Sequence[Impairment],
                      rng: SeedLike = None) -> IQTrace:
    """Apply ``impairments`` in order to a copy of ``trace``.

    The returned trace is constructed with ``allow_nonfinite=True`` so
    NaN/Inf bursts survive into it; the original trace is untouched.
    """
    gen = make_rng(rng)
    samples = np.array(trace.samples, dtype=np.complex128, copy=True)
    for impairment in impairments:
        samples = impairment.apply(samples, gen)
        if samples.size == 0:
            raise ConfigurationError(
                f"impairment {impairment!r} consumed the whole trace")
    return IQTrace(samples=samples, sample_rate_hz=trace.sample_rate_hz,
                   start_time_s=trace.start_time_s, allow_nonfinite=True)


def impair_capture(capture: EpochCapture,
                   impairments: Sequence[Impairment],
                   rng: SeedLike = None) -> EpochCapture:
    """Impaired copy of an epoch capture, ground truth preserved."""
    trace = apply_impairments(capture.trace, impairments, rng=rng)
    return EpochCapture(trace=trace, truths=list(capture.truths),
                        epoch_index=capture.epoch_index)


#: The candidate impairments :func:`random_cocktail` samples from, each
#: paired with its inclusion probability.  Parameters are drawn per
#: cocktail so two cocktails with the same ingredient still differ.
_COCKTAIL_MENU = (
    ("dropout", 0.5),
    ("nonfinite", 0.5),
    ("saturation", 0.4),
    ("dc_step", 0.4),
    ("phase_jump", 0.3),
    ("truncate", 0.25),
    ("interferer", 0.4),
)


def random_cocktail(rng: SeedLike = None,
                    max_run_samples: int = 400) -> List[Impairment]:
    """A randomized impairment cocktail for chaos testing.

    Draws a subset of the impairment menu with randomized parameters.
    The same seed always produces the same cocktail; an empty draw is
    re-rolled into a single dropout so every cocktail perturbs the
    trace at least once.
    """
    gen = make_rng(rng)
    cocktail: List[Impairment] = []
    for name, probability in _COCKTAIL_MENU:
        if gen.random() >= probability:
            continue
        if name == "dropout":
            cocktail.append(SampleDropout(
                n_runs=int(gen.integers(1, 4)),
                max_run=int(gen.integers(10, max_run_samples))))
        elif name == "nonfinite":
            cocktail.append(NonFiniteBurst(
                n_runs=int(gen.integers(1, 4)),
                max_run=int(gen.integers(5, max_run_samples // 2 + 6)),
                use_inf=bool(gen.random() < 0.3)))
        elif name == "saturation":
            cocktail.append(AdcSaturation(
                n_runs=int(gen.integers(1, 3)),
                max_run=int(gen.integers(20, max_run_samples))))
        elif name == "dc_step":
            cocktail.append(DcOffsetStep(
                magnitude=float(gen.uniform(0.05, 0.5))))
        elif name == "phase_jump":
            cocktail.append(CarrierPhaseJump())
        elif name == "truncate":
            cocktail.append(TruncateEpoch(
                min_keep_fraction=float(gen.uniform(0.5, 0.9))))
        elif name == "interferer":
            cocktail.append(BurstInterferer(
                amplitude=float(gen.uniform(0.05, 0.6)),
                max_run=int(gen.integers(100, 5 * max_run_samples))))
    if not cocktail:
        cocktail.append(SampleDropout(
            n_runs=1, max_run=int(gen.integers(10, max_run_samples))))
    return cocktail
