"""Composable, seed-deterministic trace impairments (fault injection).

Each :class:`Impairment` is a small frozen dataclass that rewrites a
complex sample array the way one concrete receiver pathology would:

* :class:`SampleDropout` — the capture chain dropped buffers; the
  affected runs read as zeros (the USRP driver's overflow behaviour).
* :class:`NonFiniteBurst` — dead ADC / DMA corruption; runs of NaN or
  ``inf`` samples.
* :class:`AdcSaturation` — front-end overload; I/Q pinned at the rails
  for whole runs.
* :class:`DcOffsetStep` — the reader re-tuned or an interferer's
  carrier leaked in; the baseband mean jumps mid-capture.
* :class:`CarrierPhaseJump` — reader PLL re-lock; every sample after
  the jump is rotated by a fixed phase.
* :class:`TruncateEpoch` — the carrier shut down early; the tail of
  the epoch is simply missing.
* :class:`BurstInterferer` — a foreign transmitter keyed up for a few
  hundred microseconds; an additive complex tone burst.

The frequency-selective family (this file's second generation) models
the channel itself rather than the capture chain:

* :class:`MultipathChannel` — the whole capture convolved with a
  sparse FIR echo profile (:mod:`repro.phy.multipath` presets):
  dense-reflector room, hallway, or a randomized exponential decay.
* :class:`TagMobility` — bulk fast mobility; a slow complex envelope
  (Doppler-style phase drift plus pattern fading) multiplies the
  capture, expressed in cycles/sample so no sample rate is needed.
* :class:`SweptInterferer` — a frequency-hopping neighbour; an
  additive chirp sweeping through the band during a run.

Impairments draw every random choice (positions, run lengths, phases)
from the generator handed to :func:`apply_impairments`, so a cocktail
is exactly reproducible from ``(capture, impairments, seed)`` — the
property the chaos harness relies on.  Ground truth is never touched:
:func:`impair_capture` returns a new
:class:`~repro.reader.epoch.EpochCapture` whose ``truths`` are the
original records, so a degraded decode can still be scored bit-by-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..reader.epoch import EpochCapture
from ..types import IQTrace
from ..utils.rng import SeedLike, make_rng


def _draw_runs(rng: np.random.Generator, n_samples: int, n_runs: int,
               max_run: int) -> List[Tuple[int, int]]:
    """Random (start, stop) runs inside ``[0, n_samples)``."""
    runs: List[Tuple[int, int]] = []
    for _ in range(n_runs):
        length = int(rng.integers(1, max(max_run, 1) + 1))
        length = min(length, n_samples)
        start = int(rng.integers(0, max(n_samples - length, 0) + 1))
        runs.append((start, start + length))
    return runs


@dataclass(frozen=True)
class Impairment:
    """Base class: one deterministic rewrite of a sample array."""

    def apply(self, samples: np.ndarray,
              rng: np.random.Generator) -> np.ndarray:
        """Return the impaired samples (may modify ``samples`` in place;
        callers pass a private copy)."""
        raise NotImplementedError


@dataclass(frozen=True)
class SampleDropout(Impairment):
    """Zero runs where the capture chain dropped buffers."""

    n_runs: int = 2
    max_run: int = 200

    def apply(self, samples, rng):
        for start, stop in _draw_runs(rng, samples.size, self.n_runs,
                                      self.max_run):
            samples[start:stop] = 0.0
        return samples


@dataclass(frozen=True)
class NonFiniteBurst(Impairment):
    """Runs of NaN (or infinite) samples from a dead ADC / bad DMA."""

    n_runs: int = 2
    max_run: int = 100
    use_inf: bool = False

    def apply(self, samples, rng):
        value = complex(np.inf, np.inf) if self.use_inf \
            else complex(np.nan, np.nan)
        for start, stop in _draw_runs(rng, samples.size, self.n_runs,
                                      self.max_run):
            samples[start:stop] = value
        return samples


@dataclass(frozen=True)
class AdcSaturation(Impairment):
    """Pin I and Q at the rails for whole runs (front-end overload)."""

    n_runs: int = 2
    max_run: int = 300
    #: Rail level relative to the capture's own peak |I|/|Q|.
    level_factor: float = 1.0

    def apply(self, samples, rng):
        finite = samples[np.isfinite(samples.real)
                         & np.isfinite(samples.imag)]
        if finite.size == 0:
            return samples
        rail = self.level_factor * max(
            float(np.max(np.abs(finite.real))),
            float(np.max(np.abs(finite.imag))), 1e-12)
        for start, stop in _draw_runs(rng, samples.size, self.n_runs,
                                      self.max_run):
            chunk = samples[start:stop]
            samples[start:stop] = (np.sign(chunk.real) * rail
                                   + 1j * np.sign(chunk.imag) * rail)
        return samples


@dataclass(frozen=True)
class DcOffsetStep(Impairment):
    """Add a complex DC step from a random position onward."""

    magnitude: float = 0.2

    def apply(self, samples, rng):
        at = int(rng.integers(0, samples.size))
        phase = rng.uniform(0.0, 2.0 * np.pi)
        samples[at:] += self.magnitude * np.exp(1j * phase)
        return samples


@dataclass(frozen=True)
class CarrierPhaseJump(Impairment):
    """Rotate everything after a random position (reader PLL re-lock)."""

    max_radians: float = float(np.pi)

    def apply(self, samples, rng):
        at = int(rng.integers(0, samples.size))
        angle = rng.uniform(-self.max_radians, self.max_radians)
        samples[at:] *= np.exp(1j * angle)
        return samples


@dataclass(frozen=True)
class TruncateEpoch(Impairment):
    """Cut the capture short (carrier shut down early).

    Keeps at least ``min_keep_fraction`` of the samples so the result
    is still a decodable (if shorter) epoch.
    """

    min_keep_fraction: float = 0.5

    def apply(self, samples, rng):
        keep_min = max(int(self.min_keep_fraction * samples.size), 2)
        keep = int(rng.integers(keep_min, samples.size + 1))
        return samples[:keep]


@dataclass(frozen=True)
class BurstInterferer(Impairment):
    """Additive complex tone burst from a foreign transmitter."""

    amplitude: float = 0.3
    max_run: int = 2000
    #: Tone frequency as a fraction of the sample rate.
    max_cycles_per_sample: float = 0.05

    def apply(self, samples, rng):
        (start, stop), = _draw_runs(rng, samples.size, 1, self.max_run)
        n = stop - start
        freq = rng.uniform(-self.max_cycles_per_sample,
                           self.max_cycles_per_sample)
        phase = rng.uniform(0.0, 2.0 * np.pi)
        tone = self.amplitude * np.exp(
            1j * (2.0 * np.pi * freq * np.arange(n) + phase))
        samples[start:stop] += tone
        return samples


@dataclass(frozen=True)
class MultipathChannel(Impairment):
    """Convolve the capture with a sparse FIR echo profile.

    ``preset`` picks the geometry (``"room"``, ``"hallway"`` or
    ``"exponential"``); the tap layout is drawn from the cocktail's
    generator, so the same seed reproduces the same channel.  Explicit
    ``delays_samples``/``gains`` override the preset entirely (and use
    no randomness).
    """

    preset: str = "room"
    #: Scales preset delay spreads; should match the capture's
    #: samples-per-bit for the presets to read as intended.
    samples_per_bit: int = 250
    delays_samples: Tuple[int, ...] = ()
    gains: Tuple[complex, ...] = ()

    def __post_init__(self) -> None:
        if self.preset not in ("room", "hallway", "exponential"):
            raise ConfigurationError(
                f"unknown multipath preset {self.preset!r}")
        if bool(self.delays_samples) != bool(self.gains):
            raise ConfigurationError(
                "explicit taps need both delays_samples and gains")

    def _profile(self, rng: np.random.Generator) -> "MultipathProfile":
        from ..phy.multipath import MultipathProfile
        if self.delays_samples:
            return MultipathProfile(
                delays_samples=tuple(self.delays_samples),
                gains=tuple(self.gains))
        if self.preset == "room":
            return MultipathProfile.dense_reflector_room(
                self.samples_per_bit, rng=rng)
        if self.preset == "hallway":
            return MultipathProfile.hallway(self.samples_per_bit,
                                            rng=rng)
        max_delay = max(int(0.25 * self.samples_per_bit), 4)
        return MultipathProfile.exponential(
            n_echoes=min(8, max_delay), max_delay_samples=max_delay,
            echo_amplitude=0.45, decay=1.0, rng=rng)

    def apply(self, samples, rng):
        from ..phy.multipath import apply_multipath
        finite = np.isfinite(samples.real) & np.isfinite(samples.imag)
        profile = self._profile(rng)
        if np.all(finite):
            return apply_multipath(samples, profile)
        # Echoes of a NaN burst would smear non-finite values across
        # the delay spread; convolve the finite content instead and
        # re-impose the original non-finite runs afterwards.
        patched = samples.copy()
        patched[~finite] = samples[finite].mean() if finite.any() \
            else 0.0
        out = apply_multipath(patched, profile)
        out[~finite] = samples[~finite]
        return out


@dataclass(frozen=True)
class TagMobility(Impairment):
    """Multiply by a slow Doppler-drift + fading envelope.

    Rates are in cycles per sample (sample-rate agnostic); the
    defaults correspond to tens-of-Hz Doppler and a few-Hz fade at the
    fast profile's 2.5 Msps.
    """

    max_doppler_cycles_per_sample: float = 4e-5
    fade_depth: float = 0.4
    fade_cycles_per_sample: float = 8e-6

    def __post_init__(self) -> None:
        if not 0.0 <= self.fade_depth < 1.0:
            raise ConfigurationError(
                "fade_depth must be in [0, 1)")

    def apply(self, samples, rng):
        n = samples.size
        doppler = rng.uniform(-self.max_doppler_cycles_per_sample,
                              self.max_doppler_cycles_per_sample)
        phase0 = rng.uniform(0.0, 2.0 * np.pi)
        fade0 = rng.uniform(0.0, 2.0 * np.pi)
        t = np.arange(n)
        envelope = (1.0 - self.fade_depth * np.sin(
            2.0 * np.pi * self.fade_cycles_per_sample * t
            + fade0) ** 2) * np.exp(
            1j * (2.0 * np.pi * doppler * t + phase0))
        # Non-finite samples (from an earlier cocktail ingredient)
        # stay non-finite through the multiply; the warning is noise.
        with np.errstate(invalid="ignore"):
            samples *= envelope
        return samples


@dataclass(frozen=True)
class SweptInterferer(Impairment):
    """Additive linear chirp sweeping through the band during a run."""

    amplitude: float = 0.3
    max_run: int = 4000
    #: Sweep start/end frequency bounds, as fractions of sample rate.
    max_cycles_per_sample: float = 0.1

    def apply(self, samples, rng):
        (start, stop), = _draw_runs(rng, samples.size, 1, self.max_run)
        n = stop - start
        f0 = rng.uniform(-self.max_cycles_per_sample,
                         self.max_cycles_per_sample)
        f1 = rng.uniform(-self.max_cycles_per_sample,
                         self.max_cycles_per_sample)
        phase = rng.uniform(0.0, 2.0 * np.pi)
        t = np.arange(n)
        inst_phase = 2.0 * np.pi * (f0 * t
                                    + (f1 - f0) * t ** 2
                                    / (2.0 * max(n, 1)))
        samples[start:stop] += self.amplitude * np.exp(
            1j * (inst_phase + phase))
        return samples


def apply_impairments(trace: IQTrace,
                      impairments: Sequence[Impairment],
                      rng: SeedLike = None) -> IQTrace:
    """Apply ``impairments`` in order to a copy of ``trace``.

    The returned trace is constructed with ``allow_nonfinite=True`` so
    NaN/Inf bursts survive into it; the original trace is untouched.
    """
    gen = make_rng(rng)
    samples = np.array(trace.samples, dtype=np.complex128, copy=True)
    for impairment in impairments:
        samples = impairment.apply(samples, gen)
        if samples.size == 0:
            raise ConfigurationError(
                f"impairment {impairment!r} consumed the whole trace")
    return IQTrace(samples=samples, sample_rate_hz=trace.sample_rate_hz,
                   start_time_s=trace.start_time_s, allow_nonfinite=True)


def impair_capture(capture: EpochCapture,
                   impairments: Sequence[Impairment],
                   rng: SeedLike = None) -> EpochCapture:
    """Impaired copy of an epoch capture, ground truth preserved."""
    trace = apply_impairments(capture.trace, impairments, rng=rng)
    return EpochCapture(trace=trace, truths=list(capture.truths),
                        epoch_index=capture.epoch_index)


#: The candidate impairments :func:`random_cocktail` samples from, each
#: paired with its inclusion probability.  Parameters are drawn per
#: cocktail so two cocktails with the same ingredient still differ.
_COCKTAIL_MENU = (
    ("dropout", 0.5),
    ("nonfinite", 0.5),
    ("saturation", 0.4),
    ("dc_step", 0.4),
    ("phase_jump", 0.3),
    ("truncate", 0.25),
    ("interferer", 0.4),
)

#: Frequency-selective additions, kept in a separate tuple appended
#: *after* the flat menu so a seed's flat-ingredient draws are a
#: stable prefix — old seeds keep their old cocktails' flat part.
_SELECTIVE_MENU = (
    ("multipath", 0.35),
    ("mobility", 0.3),
    ("swept", 0.3),
)


def random_cocktail(rng: SeedLike = None,
                    max_run_samples: int = 400,
                    frequency_selective: bool = True
                    ) -> List[Impairment]:
    """A randomized impairment cocktail for chaos testing.

    Draws a subset of the impairment menu with randomized parameters.
    The same seed always produces the same cocktail; an empty draw is
    re-rolled into a single dropout so every cocktail perturbs the
    trace at least once.  ``frequency_selective=False`` restricts the
    draw to the original flat-channel menu (whose draws are a stable
    prefix of the full menu's for any seed).
    """
    gen = make_rng(rng)
    menu = _COCKTAIL_MENU + (_SELECTIVE_MENU if frequency_selective
                             else ())
    cocktail: List[Impairment] = []
    for name, probability in menu:
        if gen.random() >= probability:
            continue
        if name == "dropout":
            cocktail.append(SampleDropout(
                n_runs=int(gen.integers(1, 4)),
                max_run=int(gen.integers(10, max_run_samples))))
        elif name == "nonfinite":
            cocktail.append(NonFiniteBurst(
                n_runs=int(gen.integers(1, 4)),
                max_run=int(gen.integers(5, max_run_samples // 2 + 6)),
                use_inf=bool(gen.random() < 0.3)))
        elif name == "saturation":
            cocktail.append(AdcSaturation(
                n_runs=int(gen.integers(1, 3)),
                max_run=int(gen.integers(20, max_run_samples))))
        elif name == "dc_step":
            cocktail.append(DcOffsetStep(
                magnitude=float(gen.uniform(0.05, 0.5))))
        elif name == "phase_jump":
            cocktail.append(CarrierPhaseJump())
        elif name == "truncate":
            cocktail.append(TruncateEpoch(
                min_keep_fraction=float(gen.uniform(0.5, 0.9))))
        elif name == "interferer":
            cocktail.append(BurstInterferer(
                amplitude=float(gen.uniform(0.05, 0.6)),
                max_run=int(gen.integers(100, 5 * max_run_samples))))
        elif name == "multipath":
            cocktail.append(MultipathChannel(
                preset=str(gen.choice(
                    ["room", "hallway", "exponential"]))))
        elif name == "mobility":
            cocktail.append(TagMobility(
                max_doppler_cycles_per_sample=float(
                    gen.uniform(5e-6, 8e-5)),
                fade_depth=float(gen.uniform(0.1, 0.6))))
        elif name == "swept":
            cocktail.append(SweptInterferer(
                amplitude=float(gen.uniform(0.05, 0.5)),
                max_run=int(gen.integers(500, 10 * max_run_samples))))
    if not cocktail:
        cocktail.append(SampleDropout(
            n_runs=1, max_run=int(gen.integers(10, max_run_samples))))
    return cocktail
