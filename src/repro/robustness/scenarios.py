"""Named, reproducible channel scenarios for the survival sweep.

A :class:`Scenario` bundles everything needed to regenerate one
deterministic impaired epoch: the tag population, the simulation seed,
and the impairment cocktail (applied through the truth-preserving
:func:`repro.robustness.impairments.impair_capture`, with the
scenario's own seed).  The registry spans the regimes the ROADMAP
calls for — flat baselines, dense-reflector rooms, cluttered spaces,
corridor propagation, fast mobility, swept interference and a mixed
cocktail — at tag densities where the edge-differential front end
ranges from comfortable to broken.

:mod:`repro.robustness.survival` sweeps this registry against decoder
configurations and classifies each cell; the scenario definitions stay
here so tests and benchmarks can regenerate any single cell without
running the whole sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..reader.epoch import EpochCapture
from ..types import SimulationProfile
from .impairments import (Impairment, MultipathChannel, SweptInterferer,
                          TagMobility)

__all__ = ["Scenario", "SCENARIOS", "build_scenario_capture"]


@dataclass(frozen=True)
class Scenario:
    """One reproducible channel condition for the survival matrix."""

    name: str
    description: str
    n_tags: int
    #: Impairments applied to the clean capture (may be empty for the
    #: flat baselines); randomness inside them draws from ``seed``.
    impairments: Tuple[Impairment, ...] = ()
    #: Seeds the simulation (tag data, coefficients, noise) and the
    #: impairment draw; one scenario is one exact capture.
    seed: int = 42
    epoch_seconds: float = 0.01
    noise_std: float = 0.01

    def to_spec(self):
        """This scenario as a :class:`ScenarioSpec` (same waveform)."""
        from ..experiments.scenario import ScenarioSpec
        return ScenarioSpec(
            name=self.name, n_tags=self.n_tags, bitrate_bps=10e3,
            noise_std=self.noise_std, impairments=self.impairments,
            epoch_s=self.epoch_seconds, seed=self.seed,
            description=self.description)


def _hallway(n_tags: int, name: str, blurb: str) -> Scenario:
    return Scenario(
        name=name, description=blurb, n_tags=n_tags,
        impairments=(MultipathChannel(preset="hallway"),))


#: The registry the survival sweep iterates, in presentation order.
SCENARIOS: Tuple[Scenario, ...] = (
    Scenario(
        name="flat_6", n_tags=6,
        description="Flat channel, light load — the paper's regime."),
    Scenario(
        name="flat_14", n_tags=14,
        description="Flat channel at high tag density."),
    Scenario(
        name="room_10", n_tags=10, seed=7,
        impairments=(MultipathChannel(preset="room"),),
        description="Dense-reflector room: many weak early echoes "
                    "(~15% of a bit period)."),
    Scenario(
        name="clutter_14", n_tags=14,
        impairments=(MultipathChannel(preset="exponential"),),
        description="Cluttered space at high density: exponential "
                    "power-delay profile, ~25% of a bit period."),
    _hallway(6, "hallway_6",
             "Corridor propagation, light load: strong late echoes "
             "(~60% of a bit period)."),
    _hallway(14, "hallway_14",
             "Corridor propagation at high density — the regime the "
             "equalizer pre-stage exists for."),
    Scenario(
        name="mobility_10", n_tags=10,
        impairments=(TagMobility(),),
        description="Fast bulk mobility: Doppler-style phase drift "
                    "plus pattern fading."),
    Scenario(
        name="swept_10", n_tags=10,
        impairments=(SweptInterferer(amplitude=0.2, max_run=6000),),
        description="Frequency-hopping neighbour sweeping through "
                    "the band."),
    Scenario(
        name="mixed_12", n_tags=12,
        impairments=(MultipathChannel(preset="room"), TagMobility(),
                     SweptInterferer(amplitude=0.25, max_run=4000)),
        description="Room multipath + mobility + swept interference "
                    "at once."),
)


def build_scenario_capture(scenario: Scenario,
                           profile: SimulationProfile = None
                           ) -> EpochCapture:
    """Regenerate a scenario's exact impaired capture.

    Delegates to the unified scenario factory
    (:mod:`repro.experiments.scenario`), which implements the same
    construction this module used to hand-roll — same coefficient
    draw, same seeding discipline — so survival-matrix cells, tests
    and the signoff suite all talk about the same waveform.
    """
    from ..experiments.scenario import build_capture
    return build_capture(scenario.to_spec(), profile=profile)
