"""Survival matrix: scenario × decoder-config → how the decode fared.

For every :data:`repro.robustness.scenarios.SCENARIOS` entry and every
decoder configuration (the plain edge-differential front end versus
the blind-equalizer pre-stage), regenerate the scenario's exact
capture, decode it, score against ground truth and classify:

* ``decoded``  — every truth stream matched and goodput ≥ 0.85: the
  configuration handles the scenario.
* ``degraded`` — partial recovery; some information got through.
* ``confined`` — the decode *returned* (fault confinement held) but
  recovered essentially nothing (goodput < 0.3).
* ``failed``   — the decode raised; confinement itself broke.

The matrix is emitted as JSON for CI artifacts and gated informally by
``benchmarks/check_regression.py`` — the gate asserts that no cell is
``failed``, that flat baselines decode, and that at least one
multipath scenario is confined/degraded without the equalizer yet
decoded with it (the reason the pre-stage exists).

Run directly::

    PYTHONPATH=src python -m repro.robustness.survival --out matrix.json
"""

from __future__ import annotations

import argparse
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..analysis.throughput import match_streams, score_epoch
from ..core.pipeline import LFDecoder, LFDecoderConfig
from ..types import SimulationProfile
from .scenarios import SCENARIOS, Scenario, build_scenario_capture

__all__ = ["DECODER_CONFIGS", "SurvivalCell", "SurvivalMatrix",
           "classify_decode", "run_survival_matrix"]

#: Goodput at or above which a full-match decode counts as decoded.
DECODED_GOODPUT = 0.85
#: Goodput below which a returned decode counts as confined.
CONFINED_GOODPUT = 0.30

#: The decoder configurations every scenario is swept against.
DECODER_CONFIGS: Dict[str, Dict[str, object]] = {
    "baseline": {},
    "equalizer": {"enable_equalizer": True},
}


@dataclass
class SurvivalCell:
    """One (scenario, decoder-config) outcome."""

    classification: str
    matched: int = 0
    n_tags: int = 0
    goodput: float = 0.0
    #: Exception summary when classification == "failed".
    error: str = ""
    #: Whether the equalizer pre-stage rewrote the samples.
    equalizer_applied: bool = False

    def to_dict(self) -> Dict[str, object]:
        return {
            "classification": self.classification,
            "matched": self.matched,
            "n_tags": self.n_tags,
            "goodput": round(self.goodput, 4),
            "error": self.error,
            "equalizer_applied": self.equalizer_applied,
        }


@dataclass
class SurvivalMatrix:
    """The full sweep, JSON-serializable for CI artifacts."""

    cells: Dict[str, Dict[str, SurvivalCell]] = field(
        default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "configs": sorted(DECODER_CONFIGS),
            "thresholds": {"decoded_goodput": DECODED_GOODPUT,
                           "confined_goodput": CONFINED_GOODPUT},
            "scenarios": {
                name: {cfg: cell.to_dict()
                       for cfg, cell in row.items()}
                for name, row in self.cells.items()},
        }

    def classification(self, scenario: str, config: str) -> str:
        return self.cells[scenario][config].classification


def classify_decode(matched: int, n_tags: int,
                    goodput: float) -> str:
    """Map a scored decode onto the survival taxonomy."""
    if matched >= n_tags and goodput >= DECODED_GOODPUT:
        return "decoded"
    if goodput < CONFINED_GOODPUT:
        return "confined"
    return "degraded"


def _decode_cell(scenario: Scenario, config_kwargs: Dict[str, object],
                 profile: SimulationProfile) -> SurvivalCell:
    capture = build_scenario_capture(scenario, profile)
    decoder = LFDecoder(
        LFDecoderConfig(candidate_bitrates_bps=[10e3],
                        profile=profile, **config_kwargs),
        rng=1)
    try:
        result = decoder.decode_epoch(capture.trace)
    except Exception as exc:  # classification, not flow control
        return SurvivalCell(classification="failed",
                            n_tags=scenario.n_tags,
                            error=f"{type(exc).__name__}: {exc}")
    matched = len(match_streams(capture, result))
    goodput = float(score_epoch(capture, result).goodput_fraction)
    report = result.equalizer
    return SurvivalCell(
        classification=classify_decode(matched, scenario.n_tags,
                                       goodput),
        matched=matched, n_tags=scenario.n_tags, goodput=goodput,
        equalizer_applied=bool(report is not None
                               and getattr(report, "applied", False)))


def run_survival_matrix(scenarios: Sequence[Scenario] = SCENARIOS,
                        profile: Optional[SimulationProfile] = None
                        ) -> SurvivalMatrix:
    """Sweep scenarios × decoder configs into a survival matrix."""
    profile = profile or SimulationProfile.fast()
    matrix = SurvivalMatrix()
    for scenario in scenarios:
        row: Dict[str, SurvivalCell] = {}
        for config_name, kwargs in DECODER_CONFIGS.items():
            row[config_name] = _decode_cell(scenario, dict(kwargs),
                                            profile)
        matrix.cells[scenario.name] = row
    return matrix


def _format_table(matrix: SurvivalMatrix) -> str:
    configs = sorted(DECODER_CONFIGS)
    width = max(len(name) for name in matrix.cells) + 2
    lines = ["".join([f"{'scenario':<{width}}"]
                     + [f"{c:>22}" for c in configs])]
    for name, row in matrix.cells.items():
        entries = []
        for config in configs:
            cell = row[config]
            entries.append(
                f"{cell.classification} "
                f"({cell.matched}/{cell.n_tags} gp={cell.goodput:.2f})")
        lines.append("".join([f"{name:<{width}}"]
                             + [f"{e:>22}" for e in entries]))
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Sweep the survival matrix and emit JSON.")
    parser.add_argument("--out", default=None,
                        help="Write the matrix JSON here.")
    args = parser.parse_args(argv)
    matrix = run_survival_matrix()
    print(_format_table(matrix))
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(matrix.to_dict(), handle, indent=2,
                      sort_keys=True)
        print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
