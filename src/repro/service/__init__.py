"""Streaming decode service: sharded async ingest over warm decoders.

The "millions of users" layer of the reproduction: a long-running
asyncio front end (:class:`DecodeService`) that absorbs continuously
arriving IQ chunks from many readers, routes them to per-shard workers
— threads, or one child process per shard
(``ServiceConfig.executor``) for multi-core scaling — whose
:class:`~repro.core.session_decoder.SessionDecoder` caches stay warm
chunk to chunk, sheds load under overload instead of growing memory,
and exports live Prometheus-style metrics aggregated across
executors.

See ``docs/ARCHITECTURE.md`` (service layer) and ``docs/API.md`` for
the full reference; ``python -m repro.service`` runs a quickstart
against the network simulator and ``benchmarks/run_soak.py`` the
multi-reader soak benchmark.
"""

from .chaos import (CHAOS_COCKTAILS, ChaosConfig, ChaosCrashError,
                    ChaosInjector, ChaosWorkerKill,
                    capture_thread_exceptions, chaos_service_config)
from .config import (BLOCK, EXECUTOR_ENV, PROCESS, SHED_OLDEST, THREAD,
                     ServiceConfig)
from .framing import ChunkFrame, ChunkRing, RingView
from .metrics import (DEFAULT_BUCKETS, Counter, Gauge, Histogram,
                      MetricsRegistry, RegistrySnapshotter,
                      StageLatencyObserver, diff_snapshot)
from .process_worker import ProcessShardWorker
from .router import shard_index, stream_seed
from .service import DecodeService, ServiceStats, merge_stream_results
from .worker import (STATUS_DEGRADED, STATUS_FAILED, STATUS_OK,
                     STATUS_SHED, ChunkResult, SessionPool, ShardWorker)

__all__ = [
    "CHAOS_COCKTAILS", "ChaosConfig", "ChaosCrashError",
    "ChaosInjector", "ChaosWorkerKill", "capture_thread_exceptions",
    "chaos_service_config",
    "BLOCK", "EXECUTOR_ENV", "PROCESS", "SHED_OLDEST", "THREAD",
    "ServiceConfig",
    "ChunkFrame", "ChunkRing", "RingView",
    "DEFAULT_BUCKETS", "Counter", "Gauge", "Histogram",
    "MetricsRegistry", "RegistrySnapshotter", "StageLatencyObserver",
    "diff_snapshot",
    "ProcessShardWorker",
    "shard_index", "stream_seed",
    "DecodeService", "ServiceStats", "merge_stream_results",
    "STATUS_DEGRADED", "STATUS_FAILED", "STATUS_OK", "STATUS_SHED",
    "ChunkResult", "SessionPool", "ShardWorker",
]
