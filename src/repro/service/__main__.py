"""Quickstart: run the streaming service against the simulator.

::

    PYTHONPATH=src python -m repro.service --seconds 5 --readers 2 \
        --executor process --n-shards 4

Renders a small pool of multi-reader traffic, streams it through a
:class:`~repro.service.service.DecodeService` in closed loop, and
prints the live metrics page plus a one-line summary — the smallest
end-to-end demonstration of ingest → shard router → warm workers →
metrics.  Use ``benchmarks/run_soak.py`` for the gated soak numbers.

SIGTERM (and SIGINT) shut down gracefully: the replay loop stops
offering, in-flight frames drain, shard children are reaped, and every
shared-memory ring is unlinked — ``/dev/shm`` is left exactly as it
was found.
"""

from __future__ import annotations

import argparse
import signal
import threading

from .config import PROCESS, THREAD, _default_executor
from .soak import SoakConfig, run_soak


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Stream simulated multi-reader traffic through "
                    "the decode service.")
    parser.add_argument("--seconds", type=float, default=5.0,
                        help="replay duration (default 5)")
    parser.add_argument("--readers", type=int, default=2)
    parser.add_argument("--tags", type=int, default=4,
                        help="tags per reader (default 4)")
    parser.add_argument("--n-shards", "--shards", type=int, default=2,
                        dest="n_shards",
                        help="shard workers (default 2)")
    parser.add_argument("--executor", choices=[THREAD, PROCESS],
                        default=_default_executor(),
                        help="shard executor: worker threads or one "
                             "child process per shard (default: "
                             "$REPRO_SERVICE_EXECUTOR or 'thread')")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--metrics", action="store_true",
                        help="print the Prometheus metrics page too")
    args = parser.parse_args(argv)

    # Graceful shutdown: the first SIGTERM/SIGINT stops the replay
    # loop at the next epoch boundary; the soak then drains the
    # service normally (rings retired and unlinked, children reaped).
    stop = threading.Event()
    previous = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            previous[signum] = signal.signal(
                signum, lambda *_: stop.set())
        except (ValueError, OSError):  # pragma: no cover - no tty
            pass

    try:
        cfg = SoakConfig(n_readers=args.readers,
                         tags_per_reader=args.tags,
                         n_shards=args.n_shards,
                         executor=args.executor,
                         duration_s=args.seconds,
                         seed=args.seed,
                         overload=False)
        report = run_soak(cfg, log=print,
                          should_stop=stop.is_set)
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    t = report.throughput
    if args.metrics:
        print("\n" + getattr(t, "metrics_text", "").rstrip())
    if stop.is_set():
        print("\nshutdown requested: replay stopped early, queues "
              "drained, workers reaped")
    print(f"\n[{args.executor} x{args.n_shards}] "
          f"decoded {t.decoded} chunks "
          f"({t.samples_decoded:,} samples) in {t.wall_s:.1f}s -> "
          f"{t.sustained_samples_per_second:,.0f} samples/s, "
          f"p99 chunk latency {t.p99_chunk_latency_s * 1e3:.1f} ms")
    hits = {k: v for k, v in t.cache_stats.items()
            if k.endswith("_hits")}
    print(f"warm-cache hits: {hits}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
