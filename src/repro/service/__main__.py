"""Quickstart: run the streaming service against the simulator.

::

    PYTHONPATH=src python -m repro.service --seconds 5 --readers 2

Renders a small pool of multi-reader traffic, streams it through a
:class:`~repro.service.service.DecodeService` in closed loop, and
prints the live metrics page plus a one-line summary — the smallest
end-to-end demonstration of ingest → shard router → warm workers →
metrics.  Use ``benchmarks/run_soak.py`` for the gated soak numbers.
"""

from __future__ import annotations

import argparse

from .soak import SoakConfig, run_soak


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Stream simulated multi-reader traffic through "
                    "the decode service.")
    parser.add_argument("--seconds", type=float, default=5.0,
                        help="replay duration (default 5)")
    parser.add_argument("--readers", type=int, default=2)
    parser.add_argument("--tags", type=int, default=4,
                        help="tags per reader (default 4)")
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--metrics", action="store_true",
                        help="print the Prometheus metrics page too")
    args = parser.parse_args(argv)

    cfg = SoakConfig(n_readers=args.readers,
                     tags_per_reader=args.tags,
                     n_shards=args.shards,
                     duration_s=args.seconds,
                     seed=args.seed,
                     overload=False)
    report = run_soak(cfg, log=print)
    t = report.throughput
    if args.metrics:
        print("\n" + getattr(t, "metrics_text", "").rstrip())
    print(f"\ndecoded {t.decoded} chunks "
          f"({t.samples_decoded:,} samples) in {t.wall_s:.1f}s -> "
          f"{t.sustained_samples_per_second:,.0f} samples/s, "
          f"p99 chunk latency {t.p99_chunk_latency_s * 1e3:.1f} ms")
    hits = {k: v for k, v in t.cache_stats.items()
            if k.endswith("_hits")}
    print(f"warm-cache hits: {hits}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
