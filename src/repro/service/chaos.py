"""Service-level fault injection for :class:`DecodeService`.

Channel-level chaos (:mod:`repro.robustness.impairments`) corrupts the
*waveform*; this module corrupts the *infrastructure* underneath a
running service, through the one seam the service already exposes —
``ServiceConfig.decoder_factory``.  A :class:`ChaosInjector` wraps
every per-stream decoder the service builds and, per decode call,
deterministically draws from its fault menu:

* **stall** — the decode sleeps before running: a wedged shard queue;
  backpressure and shed-oldest absorb the backlog.
* **crash** — the decode raises :class:`ChaosCrashError` (an ordinary
  ``Exception``): exercises the per-chunk retry budget and, repeated,
  the cold session respawn ladder.
* **kill** — the decode raises :class:`ChaosWorkerKill`, a
  ``BaseException`` no supervision ``except Exception`` may absorb:
  the worker *thread* dies mid-frame.  The worker must still retire
  the frame's ring region, deliver a failed result, and be respawned
  by ``ensure_alive``/``join_idle`` — the exact invariants the shm
  cleanup regression pins.
* **corrupt** — NaN-scribbles a run of the chunk's samples *in the
  shared-memory ring view* before decoding (real shm corruption, not
  a copy): the decode path's guard stage must repair or reject it.

Clock-skewed chunk arrival is a submit-side fault and lives in the
soak driver (:func:`repro.service.soak.run_soak` with a
:class:`ChaosConfig`), which perturbs each chunk's ``start_time_s``
before submission.

Chaos reaches both executors through the same seam: under
``executor="process"`` the chaos-wrapped decoders are built *inside*
each shard's child (the fork-inherited injector builds them there), so
a **kill** takes down a real child process — the parent must reap and
respawn it — while a **corrupt** scribbles the child's mapping of the
shared ring.  The injector's counters are ``multiprocessing.Value``
cells, so faults fired in children are visible to the parent's
assertions.

Every draw comes from a per-stream generator seeded by
``(chaos.seed, stream seed)``, so a chaos soak replays exactly.
:data:`CHAOS_COCKTAILS` names the standard single-fault and
everything-at-once mixes the chaos-service CI job sweeps.
"""

from __future__ import annotations

import multiprocessing as _mp
import threading
import time
from dataclasses import dataclass, replace
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ..core.session_decoder import SessionDecoder
from ..errors import ConfigurationError
from ..utils.rng import make_rng
from .config import ServiceConfig
from .router import stream_seed

__all__ = ["ChaosConfig", "ChaosCrashError", "ChaosWorkerKill",
           "ChaosInjector", "CHAOS_COCKTAILS", "chaos_service_config",
           "capture_thread_exceptions"]


class ChaosCrashError(RuntimeError):
    """A deliberate decode failure (ordinary, retryable)."""


class ChaosWorkerKill(BaseException):
    """A deliberate worker-thread death.

    Derives from ``BaseException`` so no supervision ``except
    Exception`` can absorb it — the worker thread genuinely dies, the
    way a segfaulting native kernel or an interpreter teardown would
    take it down.
    """


@dataclass(frozen=True)
class ChaosConfig:
    """Per-decode fault probabilities for a :class:`ChaosInjector`."""

    #: Probability a decode call stalls for ``stall_seconds`` first.
    stall_rate: float = 0.0
    stall_seconds: float = 0.05
    #: Probability a decode call raises :class:`ChaosCrashError`.
    crash_rate: float = 0.0
    #: Probability a decode call raises :class:`ChaosWorkerKill`.
    kill_rate: float = 0.0
    #: Probability a chunk's ring region is NaN-scribbled first.
    corrupt_rate: float = 0.0
    #: Longest scribbled run, in samples.
    corrupt_max_run: int = 500
    #: Probability a chunk's ``start_time_s`` is skewed at submit
    #: time (applied by the soak driver, not the injector).
    skew_rate: float = 0.0
    max_skew_seconds: float = 0.5
    #: Seeds the per-stream fault draws (composed with each stream's
    #: own seed, so one stream's faults replay independently).
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("stall_rate", "crash_rate", "kill_rate",
                     "corrupt_rate", "skew_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"{name} must be in [0, 1], got {value}")
        if self.stall_seconds < 0:
            raise ConfigurationError("stall_seconds must be >= 0")
        if self.corrupt_max_run < 1:
            raise ConfigurationError("corrupt_max_run must be >= 1")

    @property
    def active(self) -> bool:
        return any(getattr(self, name) > 0.0
                   for name in ("stall_rate", "crash_rate",
                                "kill_rate", "corrupt_rate",
                                "skew_rate"))


#: Named fault mixes the chaos soak and the CI job sweep.  One mix per
#: injector so a failure names its fault; ``everything`` proves the
#: ladders compose.
CHAOS_COCKTAILS: Dict[str, ChaosConfig] = {
    "stalls": ChaosConfig(stall_rate=0.2, stall_seconds=0.03),
    "crashes": ChaosConfig(crash_rate=0.25),
    "kills": ChaosConfig(kill_rate=0.1),
    "corruption": ChaosConfig(corrupt_rate=0.25),
    "skew": ChaosConfig(skew_rate=0.5, max_skew_seconds=0.2),
    "everything": ChaosConfig(stall_rate=0.1, stall_seconds=0.02,
                              crash_rate=0.1, kill_rate=0.05,
                              corrupt_rate=0.15, skew_rate=0.25,
                              max_skew_seconds=0.2),
}


class _ChaosDecoder:
    """Wraps one stream's real decoder with deterministic fault draws."""

    def __init__(self, inner, chaos: ChaosConfig, stream_seed_: int,
                 injector: "ChaosInjector"):
        self._inner = inner
        self._chaos = chaos
        self._rng = make_rng((chaos.seed, stream_seed_, 0xC4A05))
        self._injector = injector

    @property
    def cache_stats(self):
        return getattr(self._inner, "cache_stats", None)

    def add_observer(self, observer) -> None:
        add = getattr(self._inner, "add_observer", None)
        if add is not None:
            add(observer)

    def decode_epoch(self, trace, sample_offset: float = 0.0):
        chaos = self._chaos
        if chaos.corrupt_rate and \
                self._rng.random() < chaos.corrupt_rate:
            self._scribble(trace)
        if chaos.stall_rate and \
                self._rng.random() < chaos.stall_rate:
            self._injector.count("stall")
            time.sleep(chaos.stall_seconds)
        if chaos.kill_rate and self._rng.random() < chaos.kill_rate:
            self._injector.count("kill")
            raise ChaosWorkerKill("chaos: worker killed mid-frame")
        if chaos.crash_rate and \
                self._rng.random() < chaos.crash_rate:
            self._injector.count("crash")
            raise ChaosCrashError("chaos: decode crashed")
        return self._inner.decode_epoch(trace,
                                        sample_offset=sample_offset)

    def _scribble(self, trace) -> None:
        """NaN-scribble a run of the chunk's samples in place.

        ``trace.samples`` is the zero-copy view into the shard's
        shm ring, so this is genuine shared-memory corruption.  It
        happens before the decode touches the trace, so the trace's
        lazily-memoized prefix sums are computed *from* the corrupted
        data — the guard stage sees exactly what a scribbled DMA
        would have produced.
        """
        samples = trace.samples
        if samples.size == 0 or not samples.flags.writeable:
            return
        length = int(self._rng.integers(
            1, min(self._chaos.corrupt_max_run, samples.size) + 1))
        start = int(self._rng.integers(0, samples.size - length + 1))
        samples[start:start + length] = complex(np.nan, np.nan)
        self._injector.count("corrupt")


class ChaosInjector:
    """Builds chaos-wrapped per-stream decoders for a service.

    Use :func:`chaos_service_config` to wire one into a
    :class:`~repro.service.config.ServiceConfig`; the injector's
    ``injected`` counters say what actually fired (a soak asserting
    "the service survived X" should also assert X happened).
    """

    #: The fault menu, fixed up front so the counters can live in
    #: fork-inherited shared memory (see ``__init__``).
    FAULTS: Tuple[str, ...] = ("stall", "crash", "kill", "corrupt",
                               "skew")

    def __init__(self, chaos: ChaosConfig,
                 base_config: ServiceConfig):
        self.chaos = chaos
        self._base = base_config
        self._inner_factory = base_config.decoder_factory
        self._lock = threading.Lock()
        # multiprocessing.Value counters so faults fired inside a
        # process-executor child (the _ChaosDecoder is built in the
        # child, from the fork-inherited copy of this injector) tick
        # the *same* shared cells the parent reads.  Each Value brings
        # its own cross-process lock.
        self._counters = {name: _mp.Value("q", 0)
                          for name in self.FAULTS}

    def count(self, fault: str) -> None:
        counter = self._counters.get(fault)
        if counter is None:
            # Unknown fault names only ever come from parent-side
            # extensions; a Value created after the fork would not be
            # shared, so gate creation behind the in-process lock.
            with self._lock:
                counter = self._counters.setdefault(
                    fault, _mp.Value("q", 0))
        with counter.get_lock():
            counter.value += 1

    def counts(self) -> Dict[str, int]:
        with self._lock:
            return {name: int(counter.value)
                    for name, counter in self._counters.items()}

    @property
    def injected(self) -> Dict[str, int]:
        """Alias of :meth:`counts` kept for the PR 8 soak API."""
        return self.counts()

    def decoder_factory(self, key: Tuple[int, int], seed: int):
        if self._inner_factory is not None:
            inner = self._inner_factory(key, seed)
        else:
            inner = SessionDecoder(self._base.decoder, rng=seed,
                                   session_config=self._base.session)
        return _ChaosDecoder(inner, self.chaos, seed, self)

    # -- submit-side faults ------------------------------------------------

    def skew_for(self, reader_id: int, antenna: int,
                 seq: int) -> float:
        """Deterministic clock skew for one chunk, in seconds.

        Zero when the draw says this chunk arrives on time.  The soak
        driver adds the skew to the chunk's ``start_time_s`` before
        submission — arrival timestamps wander while the sample
        streams themselves stay in order, the way NTP-adrift readers
        feed a collector.
        """
        if not self.chaos.skew_rate:
            return 0.0
        gen = make_rng((self.chaos.seed,
                        stream_seed(0xC10C, reader_id, antenna), seq))
        if gen.random() >= self.chaos.skew_rate:
            return 0.0
        self.count("skew")
        return float(gen.uniform(-self.chaos.max_skew_seconds,
                                 self.chaos.max_skew_seconds))


def chaos_service_config(base: ServiceConfig, chaos: ChaosConfig
                         ) -> Tuple[ServiceConfig, ChaosInjector]:
    """A copy of ``base`` whose decoders are chaos-wrapped.

    Returns ``(config, injector)``; pass the config to
    :class:`~repro.service.service.DecodeService` and read the
    injector's counters after the run.
    """
    injector = ChaosInjector(chaos, base)
    return replace(base, decoder_factory=injector.decoder_factory), \
        injector


class capture_thread_exceptions:
    """Record uncaught worker-thread exceptions during a chaos run.

    The "zero uncaught exceptions" soak invariant needs a witness:
    Python routes exceptions that escape a ``Thread`` run loop to
    ``threading.excepthook`` rather than crashing the process, so a
    broken supervision path would otherwise fail silently.  Within
    this context every such escape is recorded; deliberate
    :class:`ChaosWorkerKill` escapes (the injected fault doing its
    job) are filtered out of ``unexpected``.
    """

    def __init__(self) -> None:
        self.escapes: list = []
        self._previous: Optional[Callable] = None

    @property
    def unexpected(self) -> list:
        return [args for args in self.escapes
                if not issubclass(args.exc_type, ChaosWorkerKill)]

    def __enter__(self) -> "capture_thread_exceptions":
        self._previous = threading.excepthook
        threading.excepthook = self._hook
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        threading.excepthook = self._previous

    def _hook(self, args) -> None:
        self.escapes.append(args)
