"""Configuration of the streaming decode service."""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Tuple

from ..core.pipeline import LFDecoderConfig
from ..core.session import SessionConfig
from ..errors import ConfigurationError
from .metrics import DEFAULT_BUCKETS

#: Overflow policies for a full shard queue.
SHED_OLDEST = "shed_oldest"
BLOCK = "block"

#: Shard executors: worker threads in the service process (GIL-bound,
#: zero setup cost) or one long-lived child process per shard
#: (multi-core scaling; frames decode zero-copy from the shard's shm
#: ring mapped by name in the child).
THREAD = "thread"
PROCESS = "process"

#: Environment override for the default executor — how CI runs the
#: whole service suite once per executor without editing every test.
EXECUTOR_ENV = "REPRO_SERVICE_EXECUTOR"


def _default_executor() -> str:
    return os.environ.get(EXECUTOR_ENV, THREAD)


@dataclass
class ServiceConfig:
    """Every knob of :class:`~repro.service.service.DecodeService`.

    The service defaults are sized for a couple of readers on one box;
    scale ``n_shards`` with cores and ``queue_depth`` with the jitter
    of the offered load.
    """

    #: Worker shards.  Each shard is one worker thread owning the warm
    #: per-stream SessionDecoders routed to it; every chunk of one
    #: (reader, antenna) stream lands on the same shard.
    n_shards: int = 2
    #: Shard executor: ``"thread"`` decodes in worker threads of the
    #: service process; ``"process"`` gives each shard a long-lived
    #: child process that maps the shard's shm ring by name and
    #: decodes frames zero-copy with warm sessions resident in the
    #: child.  Default honours ``REPRO_SERVICE_EXECUTOR``.
    executor: str = field(default_factory=_default_executor)
    #: Seconds a process-executor child may spend on one frame before
    #: the parent declares it hung, kills it, and resubmits the frame
    #: to a fresh child (``None`` = never; thread executor ignores it).
    child_timeout_s: Optional[float] = None
    #: Bounded per-shard queue depth (frames waiting to decode).
    queue_depth: int = 8
    #: What a full queue does to new work: ``"shed_oldest"`` drops the
    #: oldest *queued* frame (freshest data wins, shed counters tick),
    #: ``"block"`` makes ``submit`` await free room (closed-loop
    #: backpressure to the producer).
    overflow: str = SHED_OLDEST
    #: Per-shard ring capacity in complex128 samples (16 bytes each).
    ring_samples: int = 1 << 20
    #: Back the rings with multiprocessing.shared_memory blocks
    #: (``None`` = when the platform has them).
    use_shared_memory: Optional[bool] = None
    #: Decoder configuration shared by every stream's SessionDecoder.
    decoder: LFDecoderConfig = field(default_factory=LFDecoderConfig)
    #: Cross-epoch tracking configuration (``None`` = defaults).
    session: Optional[SessionConfig] = None
    #: Root seed; each stream's decoder RNG derives from
    #: (seed, reader_id, antenna) so results replay bit-identically.
    seed: int = 0
    #: Decode attempts per chunk before it is reported failed.
    max_attempts: int = 2
    #: Consecutive failed chunks on one stream before its session is
    #: respawned cold (the service-level analogue of the batch
    #: engine's worker respawn).
    respawn_after: int = 3
    #: Hard cap on live per-stream sessions per shard; the least
    #: recently used stream is evicted first (its tags re-warm on
    #: return) so tag churn cannot grow memory without bound.
    max_sessions: int = 64
    #: Latency histogram bucket bounds, seconds.
    latency_buckets: Sequence[float] = DEFAULT_BUCKETS
    #: Test seam: builds the per-stream decoder for a stream key.
    #: ``None`` builds a SessionDecoder from ``decoder``/``session``
    #: seeded by :func:`repro.service.router.stream_seed`.  A custom
    #: factory receives ``(stream_key, seed)`` and must return an
    #: object with ``decode_epoch(trace, sample_offset=...)``.
    decoder_factory: Optional[Callable[[Tuple[int, int], int],
                                       object]] = None

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ConfigurationError(
                f"n_shards must be >= 1, got {self.n_shards}")
        if self.queue_depth < 1:
            raise ConfigurationError(
                f"queue_depth must be >= 1, got {self.queue_depth}")
        if self.executor not in (THREAD, PROCESS):
            raise ConfigurationError(
                f"executor must be {THREAD!r} or {PROCESS!r}, "
                f"got {self.executor!r}")
        if self.child_timeout_s is not None and self.child_timeout_s <= 0:
            raise ConfigurationError(
                f"child_timeout_s must be > 0, got {self.child_timeout_s}")
        if self.overflow not in (SHED_OLDEST, BLOCK):
            raise ConfigurationError(
                f"overflow must be {SHED_OLDEST!r} or {BLOCK!r}, "
                f"got {self.overflow!r}")
        if self.ring_samples < 1:
            raise ConfigurationError(
                f"ring_samples must be >= 1, got {self.ring_samples}")
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.respawn_after < 1:
            raise ConfigurationError(
                f"respawn_after must be >= 1, got {self.respawn_after}")
        if self.max_sessions < 1:
            raise ConfigurationError(
                f"max_sessions must be >= 1, got {self.max_sessions}")
