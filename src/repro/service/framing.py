"""Ring-buffer chunk framing over the shared-memory transport.

The streaming service moves IQ chunks from the async ingest front end
to the shard workers without pickling sample arrays: each shard owns
one :class:`ChunkRing` — a fixed-capacity ``complex128`` ring backed by
a ``multiprocessing.shared_memory`` block (the same transport the batch
engine uses, :mod:`repro.core.engine`) — and every accepted chunk
becomes a :class:`ChunkFrame` describing a zero-copy view into it.

Framing rules
-------------

* Frames are allocated contiguously.  When the tail of the ring is too
  short for the next chunk, allocation *wraps*: the partial tail is
  left unused and the frame starts at sample 0 (a frame never straddles
  the ring boundary, so its view is always one contiguous slice).
* A chunk larger than the whole ring raises
  :class:`~repro.errors.FrameTooLargeError` — no retirement can ever
  make it fit.
* A chunk that does not fit *right now* (live frames hold the space)
  raises :class:`~repro.errors.RingFullError`; the service reacts by
  shedding queued frames or falling back to inline (in-object) sample
  transport.
* Frames retire in any order (load shedding retires queued frames
  around an in-flight one), but space is reclaimed in allocation order:
  a retired frame's region is only reusable once every earlier frame
  has retired too.  This keeps the free region a single span and the
  accounting O(1) amortized.

The ring is thread-safe: the ingest loop writes and sheds while a
worker thread views and retires.

Cross-process use (the ``executor="process"`` shard workers) splits
the ring across the boundary: the *parent* owns the ring — all
allocation, retirement and reclamation bookkeeping stays in one
process — while a child process attaches the same shared-memory block
by name through :class:`RingView` and maps any frame's samples
zero-copy from the ``(start, n)`` region the parent hands it
(:meth:`ChunkRing.region`).  Retire/reclaim signalling rides the
worker's command pipe: the parent retires a frame when the child's
terminal verdict for it arrives (or when the child dies holding it),
so a crashed child can never leak its in-flight slot.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..errors import FrameTooLargeError, RingFullError, ServiceError

try:
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - always present on CPython 3.8+
    _shared_memory = None

_SAMPLE_DTYPE = np.complex128


@dataclass
class ChunkFrame:
    """One IQ chunk accepted by the service, plus its routing identity.

    ``reader_id`` / ``antenna`` identify the stream the chunk belongs
    to (the shard key); ``seq`` is the submitter's per-stream sequence
    number.  ``sample_offset`` positions the chunk inside its capture
    in *samples* — the same value :func:`repro.reader.batch.decode_chunked`
    passes to ``SessionDecoder.decode_epoch`` so warm trackers match in
    global coordinates.

    ``frame_id`` ≥ 0 names a region in the shard's :class:`ChunkRing`;
    ``frame_id == -1`` means the samples travel inline (``inline`` holds
    the array) because the ring had no room.
    """

    reader_id: int
    antenna: int
    seq: int
    n_samples: int
    sample_rate_hz: float
    start_time_s: float
    sample_offset: float
    frame_id: int = -1
    inline: Optional[np.ndarray] = None
    #: ``time.perf_counter()`` at ingest, for end-to-end chunk latency.
    submitted_at: float = 0.0
    #: Metadata the submitter wants echoed back on the result (epoch
    #: index, truth handle, ...); the service never reads it.
    meta: dict = field(default_factory=dict)

    @property
    def stream_key(self) -> tuple:
        return (self.reader_id, self.antenna)


class ChunkRing:
    """Fixed-capacity complex-sample ring with in-order reclamation.

    Parameters
    ----------
    capacity_samples:
        Ring size in ``complex128`` samples (16 bytes each).
    use_shared_memory:
        ``True`` backs the ring with a ``multiprocessing.shared_memory``
        block (default when the platform provides one); ``False`` uses
        a private numpy array.  Framing behaviour is identical — the
        knob only changes where the bytes live.
    """

    def __init__(self, capacity_samples: int,
                 use_shared_memory: Optional[bool] = None):
        if capacity_samples < 1:
            raise ServiceError(
                f"ring capacity must be >= 1 sample, got "
                f"{capacity_samples}")
        if use_shared_memory is None:
            use_shared_memory = _shared_memory is not None
        if use_shared_memory and _shared_memory is None:
            raise ServiceError("shared-memory ring requested but "
                               "multiprocessing.shared_memory is "
                               "unavailable")
        self.capacity = int(capacity_samples)
        self._shm = None
        if use_shared_memory:
            try:
                self._shm = _shared_memory.SharedMemory(
                    create=True,
                    size=self.capacity * _SAMPLE_DTYPE().itemsize)
            except OSError:  # exhausted /dev/shm — degrade silently
                self._shm = None
        if self._shm is not None:
            self._buf = np.ndarray((self.capacity,),
                                   dtype=_SAMPLE_DTYPE,
                                   buffer=self._shm.buf)
        else:
            self._buf = np.empty(self.capacity, dtype=_SAMPLE_DTYPE)
        self._lock = threading.Lock()
        #: frame_id -> (start, n, retired), in allocation order.
        self._live: "OrderedDict[int, list]" = OrderedDict()
        self._head = 0           # end of the newest allocation
        self._next_id = 0
        #: Lifetime counters (exposed through the service metrics).
        self.frames_written = 0
        self.frames_wrapped = 0
        self.samples_wasted_tail = 0

    # -- producer side -----------------------------------------------------

    def write(self, samples: np.ndarray) -> int:
        """Copy ``samples`` into the ring; return the new frame id.

        Raises :class:`FrameTooLargeError` when the chunk can never
        fit and :class:`RingFullError` when live frames currently hold
        the space.
        """
        samples = np.ascontiguousarray(samples, dtype=_SAMPLE_DTYPE)
        n = int(samples.size)
        if n == 0:
            raise ServiceError("cannot frame an empty chunk")
        if n > self.capacity:
            raise FrameTooLargeError(
                f"chunk of {n} samples exceeds the ring capacity of "
                f"{self.capacity} samples")
        with self._lock:
            start = self._allocate(n)
            self._buf[start:start + n] = samples
            frame_id = self._next_id
            self._next_id += 1
            self._live[frame_id] = [start, n, False]
            self._head = start + n
            self.frames_written += 1
            return frame_id

    def _allocate(self, n: int) -> int:
        """Find a contiguous start for ``n`` samples (lock held).

        The live span runs from the oldest frame's start to ``_head``
        in allocation order; it *wraps* exactly when the oldest start
        sits at or past ``_head`` (``>=`` disambiguates the exactly-full
        ring, where head == tail with frames still live).
        """
        if not self._live:
            # Empty ring: reset to 0 so long chunks always fit.
            return 0
        tail = next(iter(self._live.values()))[0]
        if tail >= self._head:
            # Wrapped span: the only free run is [head, tail).
            if n <= tail - self._head:
                return self._head
            raise RingFullError(
                f"no contiguous run of {n} samples free "
                f"(gap {tail - self._head})")
        # Unwrapped span [tail, head): free space is the buffer tail
        # past head, plus the prefix before the oldest frame.
        if n <= self.capacity - self._head:
            return self._head
        if n <= tail:
            self.frames_wrapped += 1
            self.samples_wasted_tail += self.capacity - self._head
            return 0
        raise RingFullError(
            f"no contiguous run of {n} samples free "
            f"(end {self.capacity - self._head}, prefix {tail})")

    # -- consumer side -----------------------------------------------------

    def view(self, frame_id: int) -> np.ndarray:
        """Zero-copy view of a live frame's samples.

        The view is only valid until the frame is retired; the worker
        must finish decoding (every array an ``EpochResult`` carries is
        derived, never a slice of the raw trace) before calling
        :meth:`retire`.
        """
        with self._lock:
            try:
                start, n, retired = self._live[frame_id]
            except KeyError:
                raise ServiceError(f"frame {frame_id} is not live")
            if retired:
                raise ServiceError(f"frame {frame_id} already retired")
            return self._buf[start:start + n]

    def region(self, frame_id: int) -> tuple:
        """``(start, n)`` of a live frame — what a cross-process
        reader needs to map the frame's samples from a
        :class:`RingView` without sharing any ring bookkeeping."""
        with self._lock:
            try:
                start, n, retired = self._live[frame_id]
            except KeyError:
                raise ServiceError(f"frame {frame_id} is not live")
            if retired:
                raise ServiceError(f"frame {frame_id} already retired")
            return start, n

    def retire(self, frame_id: int) -> None:
        """Mark a frame done; reclaim space in allocation order."""
        with self._lock:
            if frame_id not in self._live:
                raise ServiceError(f"frame {frame_id} is not live")
            self._live[frame_id][2] = True
            while self._live:
                oldest_id = next(iter(self._live))
                if not self._live[oldest_id][2]:
                    break
                self._live.popitem(last=False)

    # -- introspection -----------------------------------------------------

    @property
    def live_frames(self) -> int:
        with self._lock:
            return sum(1 for e in self._live.values() if not e[2])

    @property
    def free_samples(self) -> int:
        """Largest chunk guaranteed to fit right now."""
        with self._lock:
            if not self._live:
                return self.capacity
            tail = next(iter(self._live.values()))[0]
            if tail >= self._head:
                return tail - self._head
            return max(self.capacity - self._head, tail)

    @property
    def uses_shared_memory(self) -> bool:
        return self._shm is not None

    @property
    def shm_name(self) -> Optional[str]:
        """Name a child process can attach the backing block by
        (``None`` when the ring degraded to a private buffer)."""
        return self._shm.name if self._shm is not None else None

    def close(self) -> None:
        """Release the backing block (frames become invalid)."""
        with self._lock:
            self._live.clear()
            self._buf = np.empty(0, dtype=_SAMPLE_DTYPE)
            if self._shm is not None:
                self._shm.close()
                try:
                    self._shm.unlink()
                except FileNotFoundError:  # pragma: no cover
                    pass
                self._shm = None

    def __del__(self):  # pragma: no cover - belt and braces
        try:
            self.close()
        except Exception:
            pass


class RingView:
    """Read-side attachment to another process's :class:`ChunkRing`.

    The child end of the process-executor split: attaches the parent's
    shared-memory block by name and maps ``(start, n)`` regions the
    parent hands over the command pipe as zero-copy ``complex128``
    views.  Holds **no** ring bookkeeping — allocation, retirement and
    reclamation all stay with the owning parent, so there is no
    cross-process state to keep coherent.

    Attaching re-registers the block with the ``shared_memory``
    resource tracker.  Under the ``fork`` start method the tracker
    process is shared with the parent and registration is a set, so
    the extra registration is harmless (and unregistering would strip
    the parent's own entry); under per-process trackers the attachment
    must be unregistered or the child's tracker tears the block down
    when the child exits — the same dance the batch engine's shm
    transport does (:func:`repro.core.engine._decode_task_shm`).
    """

    def __init__(self, name: str):
        if _shared_memory is None:  # pragma: no cover - CPython 3.8+
            raise ServiceError("multiprocessing.shared_memory is "
                               "unavailable")
        self._shm = _shared_memory.SharedMemory(name=name)
        try:
            import multiprocessing
            if multiprocessing.get_start_method() != "fork":
                from multiprocessing import resource_tracker
                resource_tracker.unregister(self._shm._name,
                                            "shared_memory")
        except Exception:  # pragma: no cover - tracker layout varies
            pass
        self.capacity = self._shm.size // _SAMPLE_DTYPE().itemsize
        self._buf = np.ndarray((self.capacity,), dtype=_SAMPLE_DTYPE,
                               buffer=self._shm.buf)

    def view(self, start: int, n: int) -> np.ndarray:
        """Zero-copy view of the region the parent allocated.

        Valid only until the parent retires the frame — which it does
        on receipt of this frame's verdict, never before.
        """
        if not 0 <= start <= start + n <= self.capacity:
            raise ServiceError(
                f"region [{start}, {start + n}) outside the "
                f"{self.capacity}-sample ring")
        return self._buf[start:start + n]

    def close(self) -> None:
        """Detach (the parent still owns — and unlinks — the block)."""
        if self._shm is not None:
            self._buf = np.empty(0, dtype=_SAMPLE_DTYPE)
            self._shm.close()
            self._shm = None

    def __del__(self):  # pragma: no cover - belt and braces
        try:
            self.close()
        except Exception:
            pass
