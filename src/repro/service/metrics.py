"""Prometheus-style live metrics for the streaming decode service.

A tiny, dependency-free metrics kernel: :class:`Counter`,
:class:`Gauge` and :class:`Histogram` families with label support, one
:class:`MetricsRegistry` that renders the whole set in the Prometheus
text exposition format (``render()``), and a
:class:`StageLatencyObserver` that taps the decode pipeline's
:class:`~repro.core.stages.context.StageObserver` seam to turn every
stage invocation into a latency-histogram observation and every
confined stream fault into a counter bump.

Everything is thread-safe (shard workers bump from their own threads
while the ingest loop renders snapshots) and allocation-light: a
labelled series is one list of floats behind one dict lookup.

Cross-process aggregation (the ``executor="process"`` shard workers)
is snapshot-delta based: a child process runs its *own* registry,
ships the cell-wise difference since its last report with each decode
verdict (:class:`RegistrySnapshotter` → :func:`diff_snapshot`), and
the parent folds the delta into the one exported registry
(:meth:`MetricsRegistry.apply_delta`).  Counters and histogram cells
add; gauges adopt the child's latest value — correct here because
every child-produced gauge series carries that child's unique
``shard`` label.  A child respawn simply starts a fresh snapshotter:
deltas from the old incarnation are already merged, so cumulative
counters never go backwards.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.stages.context import StageObserver

#: Default latency buckets (seconds): spans sub-ms metric taps through
#: multi-second overload queueing.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0)


def _label_items(labels: Dict[str, str]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(items: Tuple[Tuple[str, str], ...],
                   extra: str = "") -> str:
    parts = [f'{k}="{v}"' for k, v in items]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class _Family:
    """Shared plumbing of one named metric family."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str):
        self.name = name
        self.help = help_text
        self._lock = threading.Lock()
        self._series: Dict[Tuple[Tuple[str, str], ...], object] = {}

    def _cell(self, labels: Dict[str, str], factory):
        key = _label_items(labels)
        with self._lock:
            cell = self._series.get(key)
            if cell is None:
                cell = factory()
                self._series[key] = cell
            return cell

    def _snapshot(self):
        with self._lock:
            return list(self._series.items())

    def header(self) -> List[str]:
        return [f"# HELP {self.name} {self.help}",
                f"# TYPE {self.name} {self.kind}"]

    def snapshot_cells(self) -> Dict[Tuple[Tuple[str, str], ...],
                                     List[float]]:
        """Copy of every cell's raw values, keyed by label items."""
        with self._lock:
            return {key: list(cell)
                    for key, cell in self._series.items()}

    def merge_cell(self, key: Tuple[Tuple[str, str], ...],
                   values: Sequence[float]) -> None:
        """Fold a delta cell in: element-wise add (gauges override)."""
        with self._lock:
            cell = self._series.get(key)
            if cell is None:
                self._series[key] = list(values)
                return
            for i, value in enumerate(values):
                cell[i] += value


class Counter(_Family):
    """A monotonically increasing value per label set."""

    kind = "counter"

    def inc(self, value: float = 1.0, **labels) -> None:
        if value < 0:
            raise ValueError("counters only go up")
        cell = self._cell(labels, lambda: [0.0])
        with self._lock:
            cell[0] += value

    def value(self, **labels) -> float:
        cell = self._cell(labels, lambda: [0.0])
        with self._lock:
            return cell[0]

    def total(self) -> float:
        """Sum across every label set (convenience for tests/CLIs)."""
        with self._lock:
            return sum(cell[0] for cell in self._series.values())

    def render(self) -> List[str]:
        lines = self.header()
        for items, cell in self._snapshot():
            lines.append(
                f"{self.name}{_render_labels(items)} {cell[0]:g}")
        return lines


class Gauge(_Family):
    """A value that can go up and down (queue depth, live sessions)."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        cell = self._cell(labels, lambda: [0.0])
        with self._lock:
            cell[0] = float(value)

    def inc(self, value: float = 1.0, **labels) -> None:
        cell = self._cell(labels, lambda: [0.0])
        with self._lock:
            cell[0] += value

    def value(self, **labels) -> float:
        cell = self._cell(labels, lambda: [0.0])
        with self._lock:
            return cell[0]

    def merge_cell(self, key: Tuple[Tuple[str, str], ...],
                   values: Sequence[float]) -> None:
        """A gauge delta is the child's current value: adopt it."""
        with self._lock:
            self._series[key] = list(values)

    def render(self) -> List[str]:
        lines = self.header()
        for items, cell in self._snapshot():
            lines.append(
                f"{self.name}{_render_labels(items)} {cell[0]:g}")
        return lines


class Histogram(_Family):
    """Cumulative-bucket histogram (Prometheus semantics).

    A cell is ``[counts per bucket..., +Inf count, sum]``; quantiles
    for reports come from :meth:`quantile` (bucket upper-bound
    interpolation, the same estimate PromQL's ``histogram_quantile``
    computes).
    """

    kind = "histogram"

    def __init__(self, name: str, help_text: str,
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        super().__init__(name, help_text)
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket")

    def _new_cell(self):
        return [0.0] * (len(self.buckets) + 2)

    def observe(self, value: float, **labels) -> None:
        cell = self._cell(labels, self._new_cell)
        idx = bisect_left(self.buckets, value)
        with self._lock:
            cell[idx] += 1
            cell[-1] += value

    def count(self, **labels) -> float:
        cell = self._cell(labels, self._new_cell)
        with self._lock:
            return sum(cell[:-1])

    def quantile(self, q: float, **labels) -> float:
        """Estimated q-quantile over one label set's observations."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        cell = self._cell(labels, self._new_cell)
        with self._lock:
            counts = list(cell[:-1])
        total = sum(counts)
        if total == 0:
            return float("nan")
        rank = q * total
        cumulative = 0.0
        for i, count in enumerate(counts):
            cumulative += count
            if cumulative >= rank and count > 0:
                if i >= len(self.buckets):
                    return self.buckets[-1]
                lower = self.buckets[i - 1] if i else 0.0
                upper = self.buckets[i]
                inside = (rank - (cumulative - count)) / count
                return lower + (upper - lower) * inside
        return self.buckets[-1]

    def render(self) -> List[str]:
        lines = self.header()
        for items, cell in self._snapshot():
            cumulative = 0.0
            for bound, count in zip(self.buckets, cell[:-2]):
                cumulative += count
                le = 'le="%g"' % bound
                lines.append(
                    f"{self.name}_bucket{_render_labels(items, le)} "
                    f"{cumulative:g}")
            cumulative += cell[-2]
            inf = 'le="+Inf"'
            lines.append(
                f"{self.name}_bucket{_render_labels(items, inf)} "
                f"{cumulative:g}")
            lines.append(
                f"{self.name}_count{_render_labels(items)} "
                f"{cumulative:g}")
            lines.append(
                f"{self.name}_sum{_render_labels(items)} "
                f"{cell[-1]:g}")
        return lines


class MetricsRegistry:
    """All metric families of one service, renderable as one page."""

    def __init__(self):
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}

    def _get(self, name: str, factory, kind) -> _Family:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = factory()
                self._families[name] = family
            elif not isinstance(family, kind):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(family).__name__}")
            return family

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._get(name, lambda: Counter(name, help_text),
                         Counter)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._get(name, lambda: Gauge(name, help_text), Gauge)

    def histogram(self, name: str, help_text: str = "",
                  buckets: Sequence[float] = DEFAULT_BUCKETS
                  ) -> Histogram:
        return self._get(
            name, lambda: Histogram(name, help_text, buckets),
            Histogram)

    def render(self) -> str:
        """The whole registry in Prometheus text exposition format."""
        with self._lock:
            families = [self._families[name]
                        for name in sorted(self._families)]
        lines: List[str] = []
        for family in families:
            lines.extend(family.render())
        return "\n".join(lines) + "\n"

    def snapshot(self) -> Dict[str, dict]:
        """Raw cumulative state of every family, plain picklable data.

        ``{name: {"kind", "help", "buckets" (histograms), "cells"}}`` —
        the wire format the process-executor children diff and ship.
        """
        with self._lock:
            families = list(self._families.items())
        out: Dict[str, dict] = {}
        for name, family in families:
            entry = {"kind": family.kind, "help": family.help,
                     "cells": family.snapshot_cells()}
            if isinstance(family, Histogram):
                entry["buckets"] = family.buckets
            out[name] = entry
        return out

    def apply_delta(self, delta: Dict[str, dict]) -> None:
        """Fold a :func:`diff_snapshot` delta from another registry in.

        Families are created on first sight (same name/kind rules as
        direct registration); counter and histogram cells add
        element-wise, gauge cells adopt the delta's value.
        """
        for name, entry in delta.items():
            kind = entry["kind"]
            help_text = entry.get("help", "")
            if kind == Counter.kind:
                family = self.counter(name, help_text)
            elif kind == Gauge.kind:
                family = self.gauge(name, help_text)
            elif kind == Histogram.kind:
                family = self.histogram(
                    name, help_text,
                    buckets=entry.get("buckets", DEFAULT_BUCKETS))
            else:
                raise ValueError(f"unknown metric kind {kind!r}")
            for key, values in entry["cells"].items():
                family.merge_cell(key, values)

    def merge_counts(self, counter: Counter,
                     counts: Optional[Dict[str, int]],
                     **labels) -> None:
        """Fold a decode-side counter dict (cache stats, fidelity
        stats) into a labelled counter family, one series per key."""
        if not counts:
            return
        for key, value in counts.items():
            if value:
                counter.inc(float(value), kind=key, **labels)


def diff_snapshot(current: Dict[str, dict],
                  previous: Dict[str, dict]) -> Dict[str, dict]:
    """Cell-wise ``current - previous`` of two registry snapshots.

    Counter and histogram cells subtract (so repeated applications
    accumulate correctly); gauge cells pass through at their current
    value (a gauge's delta *is* its latest reading).  All-zero cells
    and empty families are dropped, keeping the wire payload of an
    idle child a few bytes.
    """
    delta: Dict[str, dict] = {}
    for name, entry in current.items():
        prev_cells = previous.get(name, {}).get("cells", {})
        cells = {}
        for key, values in entry["cells"].items():
            if entry["kind"] == Gauge.kind:
                cells[key] = list(values)
                continue
            old = prev_cells.get(key)
            if old is None:
                changed = list(values)
            else:
                changed = [v - o for v, o in zip(values, old)]
            if any(changed):
                cells[key] = changed
        if cells:
            out = {"kind": entry["kind"], "help": entry["help"],
                   "cells": cells}
            if "buckets" in entry:
                out["buckets"] = entry["buckets"]
            delta[name] = out
    return delta


class RegistrySnapshotter:
    """Incremental delta source over one (child-side) registry.

    Each :meth:`delta` call returns what changed since the previous
    call — exactly what a process shard worker attaches to a verdict
    message so the parent's registry stays a few milliseconds behind
    the child's, never diverging.
    """

    def __init__(self, registry: MetricsRegistry):
        self._registry = registry
        self._last = registry.snapshot()

    def delta(self) -> Dict[str, dict]:
        current = self._registry.snapshot()
        delta = diff_snapshot(current, self._last)
        self._last = current
        return delta


class StageLatencyObserver(StageObserver):
    """StageObserver that exports per-stage latency + fault metrics.

    One observer is attached to every decoder a shard worker builds;
    all observers of one service share the registry, so the exported
    series aggregate across shards while the ``shard`` label keeps
    them separable.
    """

    def __init__(self, registry: MetricsRegistry, shard: int,
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        self._latency = registry.histogram(
            "lf_stage_latency_seconds",
            "Wall-clock latency of one decode-stage invocation.",
            buckets=buckets)
        self._faults = registry.counter(
            "lf_stream_faults_total",
            "Stream hypotheses confined to a StreamFault, by stage.")
        self._shard = str(shard)

    def on_stage_end(self, stage, ctx, elapsed_s: float) -> None:
        self._latency.observe(elapsed_s, stage=stage.name,
                              shard=self._shard)

    def on_stream_fault(self, fault, ctx) -> None:
        self._faults.inc(1.0, stage=fault.stage,
                         expected=str(bool(fault.expected)).lower(),
                         shard=self._shard)
